//! The morsel scheduler: partitions a batch into fixed-size row ranges
//! and runs operator stages over them across a worker pool.
//!
//! Execution is **staged**: barrier-free chains stream per morsel with
//! an order-preserving concat sink; grouped aggregation folds morsels
//! into partial states merged in morsel order; and the barrier
//! operators run as short stage sequences over materialised inputs —
//! chains → exchange → barrier stages:
//!
//! * **partitioned hash join** (`run_join`) — an `exchange` buckets
//!   build-side rows by composite-key hash into
//!   [`crate::ExecContext::partitions`] partitions, workers build one
//!   hash table per partition (shared-nothing, rows ascending), then
//!   probe morsels run in parallel and reassemble in morsel order; the
//!   LEFT-join unmatched pass rides the same reassembly;
//! * **parallel merge sort** (`run_sort`) — workers sort per-morsel
//!   runs under the stable `(keys…, input position)` total order, k-way
//!   merged by a tournament heap; `run_topk` keeps only k rows per
//!   run and merges O(k·m);
//! * **shared-nothing DISTINCT** (`run_distinct`) — rows exchange by
//!   grouping-code hash, each partition dedups independently (a key
//!   lives in exactly one partition), survivors re-sort to input order.
//!
//! Determinism is the contract: morsel boundaries depend only on
//! [`crate::ExecContext::morsel_rows`], partition assignment only on the
//! key hash and the partition count (`TDP_PARTITIONS` — deliberately
//! *not* the thread count), and every combine walks morsels/partitions
//! in index order — so every thread count (including 1) produces
//! bitwise-identical batches, byte-equal to the sequential kernels in
//! [`crate::exact`], which remain the fallback and the test oracle.
//! Parallelism only changes *who* processes each morsel.
//!
//! Work distribution is work-stealing-lite: workers claim the next
//! morsel index from a shared atomic counter, so a slow morsel never
//! stalls the queue behind it. The LIMIT sink additionally publishes a
//! stop bound once the contiguous output prefix holds enough rows;
//! morsels past the bound are never claimed (early exit).
//!
//! # Chain exit modes: gathered vs selection-fed barriers
//!
//! A compiled filter→project chain feeding a barrier has two ways to
//! hand over its result (`BarrierInput`):
//!
//! * **Gathered** — the classic exit: the chain materialises survivors
//!   into a dense [`Batch`] (one gather per column) and the barrier
//!   consumes it like any other input. Always available; the only exit
//!   for non-chain children.
//! * **Selected** — late materialisation: the chain returns its input
//!   columns *plus* a `kernel::SelVec` (dense mask or sparse index
//!   list, whichever is smaller for the survivor density), and the
//!   barrier operates on survivor row ids directly. The single gather
//!   is deferred to final assembly — join output positions, sorted
//!   order, DISTINCT representatives — so dropped rows are never
//!   copied, and memory charges scale with survivors instead of input
//!   width (`SelScan`).
//!
//! `chain_barrier_input` is the one constructor: it tries the
//! selection exit and falls back to the gathered one, recording which
//! barrier feeding mode happened (`barriers_selection_fed` /
//! `barriers_gathered` in [`crate::access`]).
//!
//! What each barrier does with a selection:
//!
//! | barrier            | selection-fed behaviour                             |
//! |--------------------|-----------------------------------------------------|
//! | aggregate          | folds survivors straight into partial states: plain  column aggregates use branchless masked accumulation (dense) or survivor iteration (sparse); computed arguments / GROUP BY gather only *referenced* columns into mini-batches per input morsel |
//! | join (`run_join`)  | builds/probes survivor rows only; exchange buckets survivor ids; `join_assemble` gathers once on matched output positions |
//! | sort / top-k       | evaluates keys on survivors; payload gather happens  once, in final sorted order |
//! | DISTINCT           | exchanges survivor grouping codes; representatives   gather at the end |
//!
//! Byte-identity is preserved in every mode: reorder/gather barriers
//! (join, sort, top-k, DISTINCT) move bytes without arithmetic, and
//! selection-fed aggregation chunks its partials by *input* morsel
//! boundaries (`survivor_offsets`), replicating the gathered path's
//! float-accumulation order exactly.
//!
//! # Fallback taxonomy
//!
//! Every decline is named, and lands in EXPLAIN (`barrier_note`,
//! statically) and profiled runs (`barrier_report`, observed):
//!
//! * **Selection-exit declines** (chain gathers instead):
//!   `chain-kernels-disabled`, `computed-projection` (a projection
//!   rewrites columns, so survivors alone cannot represent the output),
//!   `single-morsel` (nothing to parallelise), `kernel-compile` /
//!   `kernel-bailout` (the compiled kernel was unavailable or bailed at
//!   run time — the per-morsel interpreter re-run remains the fallback).
//! * **Parallelism declines** (whole-batch sequential execution, the
//!   [`crate::exact`] kernels): session UDFs holding `Rc`-based autodiff
//!   parameters (`udf-not-parallel-safe(<name>)`), scalar subqueries
//!   (nested plans run against the session), tensor-valued bindings
//!   (row-aligned with the whole batch, not a morsel), `threads=1`.
//!   Sort keys containing such expressions fall back too, since key
//!   expressions are evaluated per morsel on workers.
//!
//! Both fallbacks are equally deterministic — they are the oracle the
//! staged paths are tested against, at every thread count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tdp_encoding::EncodedTensor;
use tdp_sql::ast::{AggFunc, JoinKind};
use tdp_storage::Catalog;
use tdp_tensor::{F32Tensor, I64Tensor, Tensor};

use crate::batch::{Batch, ColumnData};
use crate::error::ExecError;
use crate::exact;
use crate::expr::{eval_expr, Value};
use crate::kernel;
use crate::memory;
use crate::params::ParamValue;
use crate::physical::{CompiledExpr, JoinOn, PhysAggregate, PhysKey, PhysicalPlan};
use crate::pipeline::MorselOp;
use crate::udf::{ExecContext, UdfRegistry};

// ----------------------------------------------------------------------
// Parallel-safety analysis
// ----------------------------------------------------------------------

/// Why a chain must stay on the session thread. `None` = parallel-safe.
/// Session UDFs without a `parallel_safe` declaration (and built-ins
/// currently shadowed by one) may hold non-`Send` parameters; scalar
/// subqueries execute nested plans against the session; tensor bindings
/// are row-aligned with the *whole* input, not a morsel of it.
/// UDFs registered through
/// [`crate::udf::UdfRegistry::register_scalar_parallel`] with a
/// `parallel_safe` spec cross threads freely.
fn expr_fallback(e: &CompiledExpr, ctx: &ExecContext) -> Option<String> {
    match e {
        CompiledExpr::Udf { name, args } => {
            if !ctx.udfs.is_parallel_safe_scalar(name) {
                return Some(format!("udf-not-parallel-safe({name})"));
            }
            args.iter().find_map(|a| expr_fallback(a, ctx))
        }
        CompiledExpr::ScalarSubquery(_) => Some("scalar-subquery".into()),
        CompiledExpr::Builtin { name, args, .. } => {
            // A session UDF registered after compilation shadows the
            // built-in at evaluation time; the shadow decides.
            if ctx.udfs.is_scalar(name) && !ctx.udfs.is_parallel_safe_scalar(name) {
                return Some(format!("udf-not-parallel-safe({name})"));
            }
            args.iter().find_map(|a| expr_fallback(a, ctx))
        }
        CompiledExpr::Param { idx } => matches!(ctx.params.get(*idx), Some(ParamValue::Tensor(_)))
            .then(|| format!("tensor-param(${})", idx + 1)),
        CompiledExpr::Binary { left, right, .. } => {
            expr_fallback(left, ctx).or_else(|| expr_fallback(right, ctx))
        }
        CompiledExpr::Unary { expr, .. } => expr_fallback(expr, ctx),
        CompiledExpr::Case {
            operand,
            branches,
            else_expr,
        } => operand
            .as_deref()
            .and_then(|o| expr_fallback(o, ctx))
            .or_else(|| {
                branches
                    .iter()
                    .find_map(|(w, t)| expr_fallback(w, ctx).or_else(|| expr_fallback(t, ctx)))
            })
            .or_else(|| else_expr.as_deref().and_then(|e| expr_fallback(e, ctx))),
        CompiledExpr::InList { expr, list, .. } => {
            expr_fallback(expr, ctx).or_else(|| list.iter().find_map(|i| expr_fallback(i, ctx)))
        }
        CompiledExpr::Like { expr, .. } => expr_fallback(expr, ctx),
        CompiledExpr::Column(_)
        | CompiledExpr::Num(_)
        | CompiledExpr::Str(_)
        | CompiledExpr::Bool(_) => None,
    }
}

fn op_fallback(op: &MorselOp<'_>, ctx: &ExecContext) -> Option<String> {
    match op {
        MorselOp::Filter(pred) => expr_fallback(pred, ctx),
        MorselOp::Project(items) => items.iter().find_map(|i| expr_fallback(&i.expr, ctx)),
    }
}

/// First reason a fused chain (and optional aggregate sink) cannot leave
/// the session thread — the single source of truth for the sequential
/// fallback, reported by EXPLAIN and profiled runs so fallbacks are
/// observable instead of silent. `None` = the chain is parallel-safe.
pub(crate) fn chain_fallback_reason(
    ops: &[MorselOp<'_>],
    sink: Option<(&[PhysKey], &[PhysAggregate])>,
    ctx: &ExecContext,
) -> Option<String> {
    ops.iter()
        .find_map(|op| op_fallback(op, ctx))
        .or_else(|| sink.and_then(|(keys, aggs)| aggregate_fallback(keys, aggs, ctx)))
}

// ----------------------------------------------------------------------
// Fused-chain execution
// ----------------------------------------------------------------------

/// Apply a fused operator chain to one (morsel) batch.
fn apply_ops(
    mut batch: Batch,
    ops: &[MorselOp<'_>],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    for op in ops {
        batch = match op {
            MorselOp::Filter(pred) => {
                let mask = eval_expr(pred, &batch, ctx)?.into_mask(batch.rows())?;
                exact::filter_batch(&batch, &mask)
            }
            MorselOp::Project(items) => exact::project_batch(&batch, items, ctx)?,
        };
    }
    Ok(batch)
}

/// [`apply_ops`] with an optional compiled chain kernel: the kernel
/// runs the morsel when it can; any bail-out re-runs the interpreter,
/// which reproduces the identical result (or the identical error).
fn apply_ops_k(
    batch: Batch,
    ops: &[MorselOp<'_>],
    kern: Option<&kernel::ChainInstance>,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    if let Some(k) = kern {
        if let Some(out) = k.run(&batch) {
            return Ok(out);
        }
    }
    apply_ops(batch, ops, ctx)
}

/// Owned, `Send` view of a batch's columns (exact encodings only).
type MorselCols = Vec<(String, EncodedTensor)>;

fn to_cols(batch: &Batch) -> MorselCols {
    batch
        .columns()
        .iter()
        .map(|(n, c)| (n.clone(), c.to_exact()))
        .collect()
}

/// Owned view of a partition *source*: integer-compressed layouts
/// (RLE / bit-packed / delta) are decoded to plain i64 once, up front —
/// their `slice_rows` otherwise decodes the whole column per morsel,
/// turning partitioning into O(rows × morsels). Plain, dictionary and PE
/// layouts slice in a single memcpy and stay as they are.
fn to_partition_cols(batch: &Batch) -> MorselCols {
    batch
        .columns()
        .iter()
        .map(|(n, c)| {
            let col = match c.to_exact() {
                e @ (EncodedTensor::Rle(_)
                | EncodedTensor::BitPacked(_)
                | EncodedTensor::Delta(_)) => EncodedTensor::I64(e.decode_i64()),
                other => other,
            };
            (n.clone(), col)
        })
        .collect()
}

fn from_cols(cols: MorselCols) -> Batch {
    let mut out = Batch::new();
    for (name, col) in cols {
        out.push(name, ColumnData::Exact(col));
    }
    out
}

fn slice_cols(cols: &[(String, EncodedTensor)], start: usize, end: usize) -> Batch {
    let mut out = Batch::new();
    for (name, col) in cols {
        out.push(name.clone(), ColumnData::Exact(col.slice_rows(start, end)));
    }
    out
}

/// The `Send` subset of an [`ExecContext`] a worker needs. The session
/// context itself cannot cross threads (the UDF registry may hold
/// `Rc`-based autodiff parameters), but parallel-safe chains reference
/// only the binding, the device knobs, and the `Send + Sync` slice of
/// the function registry (UDFs registered through
/// [`UdfRegistry::register_scalar_parallel`]).
struct WorkerCfg {
    device: tdp_tensor::Device,
    temperature: f32,
    params: crate::params::ParamValues,
    morsel_rows: usize,
    partitions: usize,
    /// Thread-safe scalar UDFs, rebuilt into a per-worker registry so
    /// `CompiledExpr::Udf` resolution works identically off-thread.
    shared_udfs: crate::udf::SharedScalars,
    /// The query's memory ledger, shared so worker-side charges land on
    /// the same reservation the session thread charges.
    memory: std::sync::Arc<tdp_mem::MemoryReservation>,
}

impl WorkerCfg {
    fn of(ctx: &ExecContext) -> WorkerCfg {
        WorkerCfg {
            device: ctx.device,
            temperature: ctx.temperature,
            params: ctx.params.clone(),
            morsel_rows: ctx.morsel_rows,
            partitions: ctx.partitions,
            shared_udfs: ctx.udfs.shared_snapshot(),
            memory: std::sync::Arc::clone(&ctx.memory),
        }
    }
}

/// Build a worker-side context over a thread-local registry holding the
/// shared (parallel-safe) functions and an empty catalog.
fn worker_ctx<'a>(catalog: &'a Catalog, udfs: &'a UdfRegistry, cfg: &WorkerCfg) -> ExecContext<'a> {
    ExecContext {
        catalog,
        udfs,
        device: cfg.device,
        trainable: false,
        temperature: cfg.temperature,
        params: cfg.params.clone(),
        threads: 1,
        morsel_rows: cfg.morsel_rows,
        partitions: cfg.partitions,
        // Workers receive an already-instantiated kernel by reference;
        // they never consult the session cache themselves.
        chain_kernels: None,
        // Pruning decisions are made by the scheduler before morsels are
        // claimed; workers never consult zone maps or record counters.
        zone_maps: false,
        access: std::sync::Arc::new(crate::access::AccessPathCounters::default()),
        // Index maintenance is a scheduler-thread decision; workers
        // never touch the catalog's index registry.
        ivf_rebuild_after: 0,
        memory: std::sync::Arc::clone(&cfg.memory),
    }
}

/// Run `work` on `workers` threads (or inline when 1), each with its own
/// worker context.
fn run_workers(workers: usize, cfg: &WorkerCfg, work: &(impl Fn(&ExecContext) + Sync)) {
    if workers <= 1 {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::from_shared(cfg.shared_udfs.clone());
        work(&worker_ctx(&catalog, &udfs, cfg));
        return;
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || {
                let catalog = Catalog::new();
                let udfs = UdfRegistry::from_shared(cfg.shared_udfs.clone());
                work(&worker_ctx(&catalog, &udfs, cfg));
            });
        }
    });
}

/// Number of morsels a batch splits into.
fn num_morsels(rows: usize, morsel_rows: usize) -> usize {
    rows.div_ceil(morsel_rows.max(1))
}

/// Why this execution falls back to the whole-batch sequential path
/// (`None` = it is morsel-parallel). Unlike [`chain_fallback_reason`]
/// this sees the materialised input, so it also covers differentiable
/// batches flowing out of trainable TVFs.
pub(crate) fn run_fallback_reason(
    input: &Batch,
    ops: &[MorselOp<'_>],
    sink: Option<(&[PhysKey], &[PhysAggregate])>,
    ctx: &ExecContext,
) -> Option<String> {
    if input.has_diff() {
        return Some("differentiable-input".into());
    }
    chain_fallback_reason(ops, sink, ctx)
}

/// Morsel count and fallback reason from one analysis pass (the reason
/// implies the count, so callers needing both — the profiler — pay for
/// the registry/param walk once).
pub(crate) fn planned_and_reason(
    input: &Batch,
    ops: &[MorselOp<'_>],
    sink: Option<(&[PhysKey], &[PhysAggregate])>,
    ctx: &ExecContext,
) -> (usize, Option<String>) {
    let reason = run_fallback_reason(input, ops, sink, ctx);
    let morsels = if reason.is_none() {
        num_morsels(input.rows(), ctx.morsel_rows)
    } else {
        1
    };
    (morsels, reason)
}

/// Run a fused chain over a materialised input, morsel-parallel where
/// safe, with an optional LIMIT sink (early exit + truncation) and an
/// optional zone-map skip mask (`skip[i]` = morsel `i` provably produces
/// no rows under the chain's leading filter, so it runs over an empty
/// slice). Pruning never changes results — only which rows the chain
/// kernels actually touch.
pub(crate) fn run_ops(
    input: &Batch,
    ops: &[MorselOp<'_>],
    limit: Option<usize>,
    skip: Option<&[bool]>,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let rows = input.rows();
    let (morsels, seq_reason) = planned_and_reason(input, ops, None, ctx);
    // Chains pinned to the session thread keep the plain interpreter;
    // otherwise compile (or fetch) the chain kernel once per run.
    let kern = if seq_reason.is_none() {
        kernel::prepare(ops, ctx)
    } else {
        None
    };
    // Single-morsel inputs, unsafe chains and differentiable inputs take
    // the whole-batch path — identical at every thread count. A skip mask
    // covering exactly this one morsel still applies: pruning depends on
    // zone maps and the predicate, not on how the chain is scheduled.
    if morsels <= 1 {
        let whole = single_morsel_input(input, rows, skip, ctx);
        let out = match kern.as_deref().and_then(|k| k.run(&whole)) {
            Some(b) => b,
            None => apply_ops(whole, ops, ctx)?,
        };
        return Ok(match limit {
            Some(n) => out.head(n),
            None => out,
        });
    }

    let cols = to_partition_cols(input);
    // Charged until reassembly returns: the decoded partition columns
    // plus (inside the claim loop) every morsel's materialised output.
    let charges = memory::ScopedCharges::new(&ctx.memory);
    charges.add("morsel materialization", memory::cols_bytes(&cols))?;
    let skip = skip.filter(|s| s.len() == morsels);
    let results = process_morsels(
        &cols,
        rows,
        morsels,
        ops,
        limit,
        skip,
        kern.as_deref(),
        &charges,
        ctx,
    )?;

    // Order-preserving reassembly; with a LIMIT sink, take the shortest
    // morsel prefix that covers `n` rows and truncate.
    let mut parts: Vec<Batch> = Vec::new();
    let mut have = 0usize;
    for r in results {
        let part = from_cols(r.expect("prefix morsels are always processed"));
        have += part.rows();
        parts.push(part);
        if let Some(n) = limit {
            if have >= n {
                break;
            }
        }
    }
    let out = Batch::concat(&parts);
    Ok(match limit {
        Some(n) => out.head(n),
        None => out,
    })
}

/// Whole-batch input for the single-morsel path, with zone-map pruning
/// applied when the skip mask describes exactly this input (one entry at
/// the session's morsel size). A pruned batch becomes the 0-row head —
/// the chain still runs, so schema and encodings match the unpruned run.
fn single_morsel_input(
    input: &Batch,
    rows: usize,
    skip: Option<&[bool]>,
    ctx: &ExecContext,
) -> Batch {
    let Some(skip) = skip.filter(|s| s.len() == 1 && num_morsels(rows, ctx.morsel_rows) == 1)
    else {
        return input.clone();
    };
    ctx.access.note_morsels(skip[0] as u64, !skip[0] as u64);
    if skip[0] {
        input.head(0)
    } else {
        input.clone()
    }
}

/// Claim-and-process loop shared by the worker pool. Returns per-morsel
/// outputs in morsel order; entries past a LIMIT stop bound may be
/// `None`.
#[allow(clippy::too_many_arguments)]
fn process_morsels(
    cols: &[(String, EncodedTensor)],
    rows: usize,
    morsels: usize,
    ops: &[MorselOp<'_>],
    limit: Option<usize>,
    skip: Option<&[bool]>,
    kern: Option<&kernel::ChainInstance>,
    charges: &memory::ScopedCharges,
    ctx: &ExecContext,
) -> Result<Vec<Option<MorselCols>>, ExecError> {
    struct Shared {
        /// Per-morsel output (None = not yet / never processed).
        results: Vec<Option<Result<MorselCols, ExecError>>>,
        /// Longest contiguous prefix of completed morsels and its rows.
        prefix_idx: usize,
        prefix_rows: usize,
    }

    let next = AtomicUsize::new(0);
    // Morsels with index >= stop bound are never claimed (LIMIT early exit).
    let stop = AtomicUsize::new(usize::MAX);
    let shared = Mutex::new(Shared {
        results: (0..morsels).map(|_| None).collect(),
        prefix_idx: 0,
        prefix_rows: 0,
    });
    let morsel_rows = ctx.morsel_rows;
    let pruned = AtomicUsize::new(0);
    let scanned = AtomicUsize::new(0);

    let work = |wctx: &ExecContext| {
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= morsels || i >= stop.load(Ordering::Acquire) {
                break;
            }
            let start = i * morsel_rows;
            // A zone-map-pruned morsel provably yields no rows: run the
            // chain over an empty slice so the output schema, encodings
            // and reassembly stay identical to the unpruned run.
            let end = if skip.is_some_and(|s| s[i]) {
                pruned.fetch_add(1, Ordering::Relaxed);
                start
            } else {
                if skip.is_some() {
                    scanned.fetch_add(1, Ordering::Relaxed);
                }
                (start + morsel_rows).min(rows)
            };
            let out = apply_ops_k(slice_cols(cols, start, end), ops, kern, wctx)
                .map(|b| to_cols(&b))
                .and_then(|c| {
                    charges
                        .add("morsel output", memory::cols_bytes(&c))
                        .map(|()| c)
                });
            let mut s = shared.lock().expect("morsel state poisoned");
            s.results[i] = Some(out);
            // Advance the contiguous prefix; once it covers the limit,
            // publish the stop bound so later morsels are skipped.
            while s.prefix_idx < morsels {
                let Some(done) = &s.results[s.prefix_idx] else {
                    break;
                };
                if let Ok(c) = done {
                    s.prefix_rows += c.first().map_or(0, |(_, t)| t.rows());
                }
                s.prefix_idx += 1;
            }
            if let Some(n) = limit {
                if s.prefix_rows >= n {
                    stop.store(s.prefix_idx, Ordering::Release);
                }
            }
        }
    };

    let workers = ctx.threads.min(morsels).max(1);
    run_workers(workers, &WorkerCfg::of(ctx), &work);
    if skip.is_some() {
        ctx.access.note_morsels(
            pruned.load(Ordering::Relaxed) as u64,
            scanned.load(Ordering::Relaxed) as u64,
        );
    }

    let state = shared.into_inner().expect("morsel state poisoned");
    let mut out = Vec::with_capacity(morsels);
    for r in state.results {
        match r {
            // First error in morsel order wins — deterministic reporting.
            Some(Err(e)) => return Err(e),
            Some(Ok(c)) => out.push(Some(c)),
            None => out.push(None),
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Selection-fed barrier inputs (late materialization)
// ----------------------------------------------------------------------

/// Survivor-fraction bound for demoting a selection mask to an index
/// list at a chain→barrier hand-off: demote only when at most rows/4
/// survive. The kernel's internal rows/2 bound is tuned for
/// intersecting *further conjuncts*; barrier consumers instead replace
/// branchless full-width passes (masked folds, sequential filters) with
/// per-survivor indexed reads, which only pays off when survivors are
/// genuinely sparse.
const HANDOFF_IDX_DIVISOR: usize = 4;

/// A chain's selection-exit hand-off: the (remapped, still full-width)
/// output columns plus the surviving-row selection, produced by
/// [`selection_scan`] and consumed by the barrier `run_*` entry points
/// through [`BarrierInput::Selected`]. The single payload gather the
/// gathered path performs per morsel is deferred to the barrier's own
/// assembly step — or skipped entirely (masked aggregation) — so memory
/// charges scale with survivors, not morsel width.
pub(crate) struct SelScan {
    /// Chain output columns at full input width, integer-compressed
    /// layouts decoded exactly as [`to_partition_cols`] does, so a late
    /// gather yields the same bytes the staged gathered path produces.
    batch: Batch,
    sel: kernel::SelVec,
    /// Full (pre-selection) input width.
    rows: usize,
    /// Human-readable density note (`3% dense→sparse`) for profiles.
    density: String,
    /// Holds the selection-vector bytes on the query's ledger for the
    /// scan's lifetime.
    _charge: memory::ChargeGuard,
}

impl SelScan {
    /// Surviving row count — the logical row count every scheduling
    /// decision uses, identical to the gathered batch's `rows()`.
    fn survivors(&self) -> usize {
        self.sel.len()
    }

    /// Global surviving row ids, ascending.
    fn ids(&self) -> Vec<i64> {
        match &self.sel {
            kernel::SelVec::Idx(s) => s.iter().map(|&i| i as i64).collect(),
            kernel::SelVec::Mask(m, n) => {
                let mut out = Vec::with_capacity(*n);
                for (i, &keep) in m.iter().enumerate() {
                    if keep {
                        out.push(i as i64);
                    }
                }
                out
            }
        }
    }

    /// The one deferred gather: compact every column to survivors. Used
    /// when a barrier shape (or scheduling decision) needs dense rows
    /// after all; byte-identical to the gathered path's output.
    fn materialize(&self) -> Batch {
        let mask = self.sel.gather_mask(self.rows);
        let mut out = Batch::new();
        for (name, col) in self.batch.columns() {
            out.push(
                name.clone(),
                ColumnData::Exact(col.to_exact().filter_rows(&mask)),
            );
        }
        out
    }
}

/// One barrier input: either a densely materialized batch (with the
/// named reason selection was declined, when a compiled chain was a
/// candidate) or a live selection over full-width chain output.
pub(crate) enum BarrierInput {
    Gathered(Batch, Option<String>),
    Selected(SelScan),
}

impl BarrierInput {
    /// Logical (post-filter) row count.
    pub(crate) fn rows_out(&self) -> usize {
        match self {
            BarrierInput::Gathered(b, _) => b.rows(),
            BarrierInput::Selected(s) => s.survivors(),
        }
    }

    fn has_diff(&self) -> bool {
        match self {
            BarrierInput::Gathered(b, _) => b.has_diff(),
            // Selection-exit chains bail on differentiable inputs.
            BarrierInput::Selected(_) => false,
        }
    }

    fn columns_len(&self) -> usize {
        match self {
            BarrierInput::Gathered(b, _) => b.columns().len(),
            BarrierInput::Selected(s) => s.batch.columns().len(),
        }
    }

    fn into_gathered(self) -> Batch {
        match self {
            BarrierInput::Gathered(b, _) => b,
            BarrierInput::Selected(s) => s.materialize(),
        }
    }

    /// The profile note for this input: `selection-fed (3% dense→sparse)`
    /// or `gathered: <reason>`; `None` when no compiled chain was in play.
    pub(crate) fn note(&self) -> Option<String> {
        match self {
            BarrierInput::Selected(s) => Some(format!("selection-fed ({})", s.density)),
            BarrierInput::Gathered(_, Some(reason)) => Some(format!("gathered: {reason}")),
            BarrierInput::Gathered(_, None) => None,
        }
    }

    /// Selection density note (`3% dense→sparse`) when selection-fed.
    pub(crate) fn density(&self) -> Option<&str> {
        match self {
            BarrierInput::Selected(s) => Some(&s.density),
            BarrierInput::Gathered(..) => None,
        }
    }
}

/// Build a barrier's input from its upstream chain: selection exit when
/// the chain supports it, otherwise the ordinary gathered morsel run
/// with the named decline reason attached. The one place the
/// selection-fed / gathered barrier counters tick, so plain and
/// profiled executions account identically.
pub(crate) fn chain_barrier_input(
    input: &Batch,
    ops: &[MorselOp<'_>],
    skip: Option<&[bool]>,
    ctx: &ExecContext,
) -> Result<BarrierInput, ExecError> {
    let out = match selection_scan(input, ops, skip, ctx)? {
        ScanResult::Selected(s) => BarrierInput::Selected(s),
        ScanResult::Declined(reason) => {
            let batch = run_ops(input, ops, None, skip, ctx)?;
            BarrierInput::Gathered(batch, Some(reason))
        }
    };
    match &out {
        BarrierInput::Selected(_) => ctx.access.note_barrier_selection_fed(),
        BarrierInput::Gathered(..) => ctx.access.note_barrier_gathered(),
    }
    Ok(out)
}

/// Outcome of a selection-exit attempt over a barrier's Stream child.
pub(crate) enum ScanResult {
    Selected(SelScan),
    /// The chain must gather; the reason lands in profiles and EXPLAIN.
    Declined(String),
}

/// Seed selection for zone-map pruning: pruned morsel row ranges start
/// deselected, so the chain never resurrects provably-empty rows.
fn skip_init(skip: Option<&[bool]>, rows: usize, morsel_rows: usize) -> Option<kernel::SelVec> {
    let skip = skip?;
    if !skip.iter().any(|&s| s) {
        return None;
    }
    let mut mask = vec![true; rows];
    for (i, &s) in skip.iter().enumerate() {
        if s {
            let start = i * morsel_rows;
            let end = (start + morsel_rows).min(rows);
            mask[start..end].fill(false);
        }
    }
    Some(kernel::SelVec::from_mask(mask))
}

/// Run a barrier's upstream chain in selection exit mode. `Declined`
/// carries the named reason (capability, bail-out, sizing); the caller
/// then takes the gathered path, which does its own zone-map accounting
/// — morsel counters are only recorded here on success.
pub(crate) fn selection_scan(
    input: &Batch,
    ops: &[MorselOp<'_>],
    skip: Option<&[bool]>,
    ctx: &ExecContext,
) -> Result<ScanResult, ExecError> {
    if let Err(reason) = kernel::selection_verdict(ops, ctx) {
        return Ok(ScanResult::Declined(reason));
    }
    let rows = input.rows();
    let morsels = num_morsels(rows, ctx.morsel_rows);
    if morsels <= 1 {
        return Ok(ScanResult::Declined("single-morsel".into()));
    }
    let Some(kern) = kernel::prepare(ops, ctx) else {
        return Ok(ScanResult::Declined("kernel-compile".into()));
    };
    let skip = skip.filter(|s| s.len() == morsels);
    let init = skip_init(skip, rows, ctx.morsel_rows);
    let Some(mut out) = kern.run_selection(input, init) else {
        return Ok(ScanResult::Declined("kernel-bailout".into()));
    };
    // Selective chains demote the mask to a survivor index list once,
    // here at the hand-off, so every barrier consumer (id mapping, key
    // gathers, probe loops) walks survivors instead of full width.
    if matches!(out.sel, kernel::SelVec::Mask(..)) && out.sel.len() * HANDOFF_IDX_DIVISOR <= rows {
        out.sel = kernel::SelVec::Idx(out.sel.into_idx());
    }
    if let Some(s) = skip {
        let pruned = s.iter().filter(|&&b| b).count() as u64;
        ctx.access.note_morsels(pruned, morsels as u64 - pruned);
    }
    let survivors = out.sel.len();
    let charge = memory::charge(&ctx.memory, "selection vector", (survivors as u64 + 1) * 8)?;
    let pct = if rows == 0 {
        0
    } else {
        (survivors * 100).div_ceil(rows)
    };
    let density = match &out.sel {
        kernel::SelVec::Mask(..) => format!("{pct}% dense"),
        kernel::SelVec::Idx(_) => format!("{pct}% dense→sparse"),
    };
    let mut batch = Batch::new();
    for (name, col) in out.cols {
        let col = match col {
            e @ (EncodedTensor::Rle(_) | EncodedTensor::BitPacked(_) | EncodedTensor::Delta(_)) => {
                EncodedTensor::I64(e.decode_i64())
            }
            other => other,
        };
        batch.push(name, ColumnData::Exact(col));
    }
    Ok(ScanResult::Selected(SelScan {
        batch,
        sel: out.sel,
        rows,
        density,
        _charge: charge,
    }))
}

/// Survivor-count prefix over *input* morsel boundaries: `offs[i]` is
/// the number of survivors before morsel `i`, so survivors of morsel
/// `i` occupy `[offs[i], offs[i+1])` in selection space. Partial
/// aggregation chunks by these offsets, which makes its float partials
/// byte-identical to the gathered per-morsel path.
fn survivor_offsets(
    sel: &kernel::SelVec,
    rows: usize,
    morsel_rows: usize,
    morsels: usize,
) -> Vec<usize> {
    let mut offs = Vec::with_capacity(morsels + 1);
    offs.push(0);
    match sel {
        kernel::SelVec::Idx(s) => {
            let mut j = 0usize;
            for i in 1..=morsels {
                let bound = ((i * morsel_rows).min(rows)) as u32;
                while j < s.len() && s[j] < bound {
                    j += 1;
                }
                offs.push(j);
            }
        }
        kernel::SelVec::Mask(m, _) => {
            let mut c = 0usize;
            for i in 0..morsels {
                let start = i * morsel_rows;
                let end = (start + morsel_rows).min(rows);
                c += m[start..end].iter().filter(|&&b| b).count();
                offs.push(c);
            }
        }
    }
    offs
}

// ----------------------------------------------------------------------
// Staged barrier execution: partition exchange + parallel barrier ops
// ----------------------------------------------------------------------
//
// Barriers (join, sort, TopK, DISTINCT) need all their input before they
// can emit anything, so they cannot stream per morsel — but their *work*
// still splits. Each parallel barrier below runs as a short sequence of
// **stages** over its materialised input: a morsel-claiming scan stage,
// optionally a partition-claiming stage after an exchange, and a
// deterministic sequential combine. The partition count
// ([`crate::ExecContext::partitions`], `TDP_PARTITIONS`) is a plan
// property independent of the worker count, and every combine walks
// morsels/partitions in index order — so the staged paths return batches
// byte-identical to the sequential kernels in [`crate::exact`], which
// remain both the fallback and the oracle for equivalence tests.

/// Run `work` on `workers` plain threads (or inline when ≤ 1). Unlike
/// [`run_workers`] there is no per-worker evaluation context: barrier
/// stages that only shuffle precomputed keys/indices need no registry.
fn run_pool(workers: usize, work: &(impl Fn() + Sync)) {
    if workers <= 1 {
        work();
        return;
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(work);
        }
    });
}

/// Shared claim-loop state: a claim counter plus ordered result slots.
/// Workers repeatedly grab the next index and store the item's output
/// at its slot, so outputs come back in index order no matter which
/// worker processed what — the deterministic backbone of every stage.
struct ClaimSlots<T> {
    count: usize,
    next: AtomicUsize,
    slots: Mutex<Vec<Option<T>>>,
}

impl<T: Send> ClaimSlots<T> {
    fn new(count: usize) -> ClaimSlots<T> {
        ClaimSlots {
            count,
            next: AtomicUsize::new(0),
            slots: Mutex::new((0..count).map(|_| None).collect()),
        }
    }

    /// One worker's claim loop: process items until none are left.
    fn drain(&self, f: impl Fn(usize) -> T) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                break;
            }
            let out = f(i);
            self.slots.lock().expect("stage state poisoned")[i] = Some(out);
        }
    }

    /// Outputs in index order (call after every worker has finished).
    fn take(self) -> Vec<T> {
        self.slots
            .into_inner()
            .expect("stage state poisoned")
            .into_iter()
            .map(|s| s.expect("every claimed index is processed"))
            .collect()
    }
}

/// Claim-loop over `count` items on plain threads (no evaluation
/// context): returns `f(i)` outputs in index order.
fn claim_indexed<T: Send>(count: usize, workers: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let slots = ClaimSlots::new(count);
    run_pool(workers.min(count), &|| slots.drain(&f));
    slots.take()
}

/// Partition-exchange primitive: distribute `rows` input rows into
/// `partitions` buckets by key hash. Workers claim morsels and bucket
/// their rows locally; buckets are then concatenated in morsel order, so
/// every partition lists its rows in **ascending input order** at any
/// thread count (the hash, morsel boundaries and partition count are all
/// plan properties — workers only decide *who* buckets each morsel).
fn exchange(
    rows: usize,
    partitions: usize,
    morsel_rows: usize,
    workers: usize,
    hash_of: &(impl Fn(usize) -> u64 + Sync),
) -> Vec<Vec<i64>> {
    let morsels = num_morsels(rows, morsel_rows);
    let per_morsel = claim_indexed(morsels, workers, |i| {
        let start = i * morsel_rows;
        let end = (start + morsel_rows).min(rows);
        let mut buckets: Vec<Vec<i64>> = vec![Vec::new(); partitions];
        for r in start..end {
            buckets[(hash_of(r) % partitions as u64) as usize].push(r as i64);
        }
        buckets
    });
    let mut out: Vec<Vec<i64>> = vec![Vec::new(); partitions];
    for buckets in per_morsel {
        for (p, b) in buckets.into_iter().enumerate() {
            out[p].extend(b);
        }
    }
    out
}

/// `(staged?, capability fallback reason)` for a join barrier. Joins
/// carry no key expressions (keys are resolved column refs), so the only
/// capability reason is a differentiable input. Row counts are the
/// logical (post-selection) counts, so the decision is identical whether
/// an input arrives gathered or selection-fed.
fn join_decision(
    left_rows: usize,
    right_rows: usize,
    diff: bool,
    ctx: &ExecContext,
) -> (bool, Option<String>) {
    let reason = diff.then(|| "differentiable-input".to_string());
    let splits =
        num_morsels(left_rows, ctx.morsel_rows) > 1 || num_morsels(right_rows, ctx.morsel_rows) > 1;
    (reason.is_none() && ctx.threads > 1 && splits, reason)
}

/// `(staged?, capability fallback reason)` for sort/TopK barriers. Key
/// expressions are evaluated per morsel on worker threads, so the same
/// analysis as fused chains applies (UDFs, subqueries, tensor params).
fn sort_decision(
    rows: usize,
    diff: bool,
    keys: &[crate::physical::PhysOrderKey],
    ctx: &ExecContext,
) -> (bool, Option<String>) {
    let reason = if diff {
        Some("differentiable-input".to_string())
    } else {
        keys.iter().find_map(|k| expr_fallback(&k.expr, ctx))
    };
    let splits = num_morsels(rows, ctx.morsel_rows) > 1;
    (reason.is_none() && ctx.threads > 1 && splits, reason)
}

/// `(staged?, capability fallback reason)` for a DISTINCT barrier.
fn distinct_decision(
    rows: usize,
    ncols: usize,
    diff: bool,
    ctx: &ExecContext,
) -> (bool, Option<String>) {
    let reason = diff.then(|| "differentiable-input".to_string());
    let splits = num_morsels(rows, ctx.morsel_rows) > 1;
    (
        reason.is_none() && ctx.threads > 1 && splits && ncols > 0,
        reason,
    )
}

/// Byte estimate of a hash-join build table over `rows` build rows: one
/// row id per row plus hash-entry overhead for the (≤ rows) keys.
fn join_build_bytes(rows: usize) -> u64 {
    rows as u64 * 24
}

/// One join input normalized for the staged stages: a (possibly
/// full-width) batch plus the optional global survivor-id list. `None`
/// ids = a dense batch whose position *is* its row id. Positions map to
/// ascending global ids, so bucketing/probing positions in order visits
/// exactly the rows the gathered path would, in the same order.
struct JoinSide {
    batch: Batch,
    ids: Option<Vec<i64>>,
}

impl JoinSide {
    fn of(input: BarrierInput) -> JoinSide {
        match input {
            BarrierInput::Gathered(batch, _) => JoinSide { batch, ids: None },
            BarrierInput::Selected(s) => {
                let ids = s.ids();
                JoinSide {
                    batch: s.batch,
                    ids: Some(ids),
                }
            }
        }
    }

    fn rows(&self) -> usize {
        self.ids.as_ref().map_or(self.batch.rows(), Vec::len)
    }
}

/// Position-indexed key atoms for both join sides. A selection-fed side
/// atomizes each resolved key column at survivor positions only —
/// plain-layout keys by indexed reads straight off the full-width
/// column, anything else through one `filter_rows` pass — producing
/// exactly the atoms the gathered batch's key columns would (those are
/// `filter_rows` of the same full-width columns), so a selective chain
/// never pays full-width key evaluation.
fn join_side_atoms(
    left: &JoinSide,
    right: &JoinSide,
    on: &JoinOn,
) -> Result<(exact::SideAtoms, exact::SideAtoms), ExecError> {
    let (lcols, rcols) = exact::resolve_join_keys(on, &left.batch, &right.batch)?;
    let (lrows, rrows) = (left.ids.as_deref(), right.ids.as_deref());
    let mut latoms = Vec::with_capacity(lcols.len());
    let mut ratoms = Vec::with_capacity(rcols.len());
    for (l, r) in lcols.iter().zip(&rcols) {
        let (a, b) = exact::join_pair_atoms_at(l, lrows, r, rrows)?;
        latoms.push(a);
        ratoms.push(b);
    }
    Ok((latoms, ratoms))
}

/// Partitioned hash join: exchange the build (right) side into
/// per-partition hash tables, then probe left morsels in parallel.
///
/// Stage 1 buckets build rows by composite-key hash (morsel-claiming);
/// stage 2 builds one hash table per partition (partition-claiming),
/// inserting rows in ascending build order; stage 3 probes left morsels
/// and reassembles match lists in morsel order. The resulting index
/// pairs — and the unmatched-left pass — are exactly the sequential
/// kernel's, so [`exact::join_assemble`] finishes both paths. A
/// selection-fed input skips its gather entirely: key columns alone are
/// filtered to survivor width for atomization, stages hash and probe by
/// survivor position, and the assemble step gathers matched global row
/// ids straight out of the full-width batch.
pub(crate) fn run_join(
    left: BarrierInput,
    right: BarrierInput,
    kind: JoinKind,
    on: &JoinOn,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let diff = left.has_diff() || right.has_diff();
    if !join_decision(left.rows_out(), right.rows_out(), diff, ctx).0 {
        let (left, right) = (left.into_gathered(), right.into_gathered());
        // The sequential kernel builds one hash table over the whole
        // build side; charge the same per-row estimate the staged build
        // uses so enforcement is thread-count-invariant.
        let _charge = memory::charge(&ctx.memory, "join build", join_build_bytes(right.rows()))?;
        return exact::join_batches(&left, &right, kind, on);
    }
    let (lside, rside) = (JoinSide::of(left), JoinSide::of(right));
    let (latoms, ratoms) = join_side_atoms(&lside, &rside, on)?;
    let partitions = ctx.partitions.max(1);
    // Held until the joined batch is assembled: exchange buckets, the
    // per-partition build tables and the probe index vectors.
    let charges = memory::ScopedCharges::new(&ctx.memory);

    // Stage 1: exchange build-side rows into partitions by key hash.
    // Survivor positions (not morsel width) are what gets bucketed, so a
    // selective chain charges and shuffles only what survived. Atoms are
    // position-indexed (survivor space), so every stage hashes and
    // probes by position; global ids appear only in the emitted index
    // lists the assembly gathers on.
    charges.add("join exchange", rside.rows() as u64 * 8)?;
    // Workers must not capture the batches (autodiff columns are not
    // `Sync`); the bare id slices carry everything the stages emit.
    let (lids, rids) = (lside.ids.as_deref(), rside.ids.as_deref());
    let gid = |ids: Option<&[i64]>, pos: usize| ids.map_or(pos as i64, |v| v[pos]);
    let parts: Vec<Vec<i64>> = exchange(
        rside.rows(),
        partitions,
        ctx.morsel_rows,
        ctx.threads,
        &|pos| exact::row_hash(&ratoms, pos),
    );

    // Stage 2: shared-nothing per-partition table build (ascending rows).
    let tables: Vec<exact::JoinTable> = claim_indexed(partitions, ctx.threads, |p| {
        charges
            .add("join build", join_build_bytes(parts[p].len()))
            .map(|()| exact::JoinTable::build(&ratoms, parts[p].iter().copied()))
    })
    .into_iter()
    // First error in partition order wins — deterministic reporting.
    .collect::<Result<_, _>>()?;

    // Stage 3: probe left morsels in parallel; morsel-order reassembly.
    let rows = lside.rows();
    let morsel_rows = ctx.morsel_rows;
    let probe_morsels = num_morsels(rows, morsel_rows);
    let probes = claim_indexed(probe_morsels, ctx.threads, |i| {
        let start = i * morsel_rows;
        let end = (start + morsel_rows).min(rows);
        let mut li: Vec<i64> = Vec::new();
        let mut ri: Vec<i64> = Vec::new();
        let mut unmatched: Vec<i64> = Vec::new();
        for pos in start..end {
            let p = (exact::row_hash(&latoms, pos) % partitions as u64) as usize;
            match tables[p].get(&latoms, pos) {
                Some(matches) => {
                    for &m in matches {
                        li.push(gid(lids, pos));
                        ri.push(gid(rids, m as usize));
                    }
                }
                None if kind == JoinKind::Left => unmatched.push(gid(lids, pos)),
                None => {}
            }
        }
        charges
            .add(
                "join probe",
                ((li.len() + ri.len() + unmatched.len()) * 8) as u64,
            )
            .map(|()| (li, ri, unmatched))
    });

    let mut left_idx: Vec<i64> = Vec::new();
    let mut right_idx: Vec<i64> = Vec::new();
    let mut left_unmatched: Vec<i64> = Vec::new();
    for res in probes {
        let (li, ri, un) = res?;
        left_idx.extend(li);
        right_idx.extend(ri);
        left_unmatched.extend(un);
    }
    Ok(exact::join_assemble(
        &lside.batch,
        &rside.batch,
        kind,
        left_idx,
        right_idx,
        left_unmatched,
    ))
}

/// One evaluated sort-key column of a morsel run. Numeric, boolean and
/// compressed keys keep their integer grouping codes (8 bytes per row,
/// exactly what `exact::sort_batch` compares); dictionary keys keep
/// their codes *plus* the shared dictionary. Morsel slices of one
/// column share the same `Arc`'d dictionary, so run-vs-run comparisons
/// stay integer compares; only expression-generated per-morsel dicts
/// pay a decode — and because dictionaries are order-preserving
/// (sorted), code order equals string order either way, matching the
/// sequential kernel.
enum SortKeyCol {
    Ints(Vec<i64>),
    Dict {
        codes: Vec<i64>,
        dict: std::sync::Arc<tdp_encoding::StringDict>,
    },
}

impl SortKeyCol {
    fn of(col: &EncodedTensor) -> Result<SortKeyCol, ExecError> {
        Ok(match col {
            EncodedTensor::Dict { codes, dict } => SortKeyCol::Dict {
                codes: codes.to_vec(),
                dict: dict.clone(),
            },
            other => SortKeyCol::Ints(exact::key_codes(other)?.to_vec()),
        })
    }

    /// Row range `[start, end)` of this key column. Dictionary slices
    /// share the parent's `Arc`'d dictionary, so slice-vs-slice
    /// comparisons stay integer compares.
    fn slice(&self, start: usize, end: usize) -> SortKeyCol {
        match self {
            SortKeyCol::Ints(v) => SortKeyCol::Ints(v[start..end].to_vec()),
            SortKeyCol::Dict { codes, dict } => SortKeyCol::Dict {
                codes: codes[start..end].to_vec(),
                dict: dict.clone(),
            },
        }
    }

    /// Compare row `a` of this column against row `b` of `other`. A key
    /// expression always evaluates to one encoding family, so
    /// cross-variant comparisons are unreachable; they still order
    /// deterministically (ints before strings) rather than panic.
    #[inline]
    fn cmp_rows(&self, a: usize, other: &SortKeyCol, b: usize) -> std::cmp::Ordering {
        match (self, other) {
            (SortKeyCol::Ints(x), SortKeyCol::Ints(y)) => x[a].cmp(&y[b]),
            (SortKeyCol::Dict { codes: x, dict: dx }, SortKeyCol::Dict { codes: y, dict: dy }) => {
                if std::sync::Arc::ptr_eq(dx, dy) {
                    x[a].cmp(&y[b])
                } else {
                    dx.decode_one(x[a]).cmp(dy.decode_one(y[b]))
                }
            }
            (SortKeyCol::Ints(_), SortKeyCol::Dict { .. }) => std::cmp::Ordering::Less,
            (SortKeyCol::Dict { .. }, SortKeyCol::Ints(_)) => std::cmp::Ordering::Greater,
        }
    }
}

/// Byte estimate of sorting `rows` rows on `nkeys` keys sequentially:
/// the evaluated key codes plus the argsort permutation.
fn sort_bytes(rows: usize, nkeys: usize) -> u64 {
    (rows * (8 + 8 * nkeys)) as u64
}

/// One sorted per-morsel run: local row order plus the evaluated key
/// columns (kept in *original* local order; `order` permutes into them).
struct SortRun {
    start: usize,
    order: Vec<u32>,
    keys: Vec<SortKeyCol>,
}

/// Build per-morsel sorted runs: workers claim morsels, evaluate the key
/// expressions over the morsel slice, and sort local rows by
/// `(keys…, input position)` — the stable-sort total order. With
/// `take_k`, each run keeps only its k best rows (per-morsel top-k).
fn sort_runs(
    input: &Batch,
    keys: &[crate::physical::PhysOrderKey],
    take_k: Option<usize>,
    charges: &memory::ScopedCharges,
    ctx: &ExecContext,
) -> Result<Vec<SortRun>, ExecError> {
    let rows = input.rows();
    let morsel_rows = ctx.morsel_rows;
    let morsels = num_morsels(rows, morsel_rows);
    let cols = to_partition_cols(input);
    charges.add("sort materialization", memory::cols_bytes(&cols))?;

    let make_run = |i: usize, wctx: &ExecContext| -> Result<SortRun, ExecError> {
        let start = i * morsel_rows;
        let end = (start + morsel_rows).min(rows);
        // A run holds the evaluated key codes (8 B/row/key) plus the
        // local permutation (4 B/row).
        charges.add("sort run", ((end - start) * (4 + 8 * keys.len())) as u64)?;
        let batch = slice_cols(&cols, start, end);
        let mut key_cols = Vec::with_capacity(keys.len());
        for k in keys {
            match eval_expr(&k.expr, &batch, wctx)? {
                Value::Column(c) => key_cols.push(SortKeyCol::of(&c)?),
                other => {
                    return Err(ExecError::TypeMismatch(format!(
                        "ORDER BY expression must be a column, got {other:?}"
                    )))
                }
            }
        }
        let order = sorted_order(&key_cols, keys, end - start, take_k);
        Ok(SortRun {
            start,
            order,
            keys: key_cols,
        })
    };

    let slots = ClaimSlots::new(morsels);
    let workers = ctx.threads.min(morsels).max(1);
    run_workers(workers, &WorkerCfg::of(ctx), &|wctx: &ExecContext| {
        slots.drain(|i| make_run(i, wctx))
    });

    // First error in morsel order wins — deterministic reporting.
    slots.take().into_iter().collect()
}

/// Local row order of one run under the stable `(keys…, position)`
/// total order, optionally truncated to the run's k best rows.
fn sorted_order(
    key_cols: &[SortKeyCol],
    keys: &[crate::physical::PhysOrderKey],
    len: usize,
    take_k: Option<usize>,
) -> Vec<u32> {
    let mut order: Vec<u32> = (0..len as u32).collect();
    let cmp = |a: &u32, b: &u32| {
        for (col, k) in key_cols.iter().zip(keys) {
            let (a, b) = (*a as usize, *b as usize);
            let ord = if k.desc {
                col.cmp_rows(b, col, a)
            } else {
                col.cmp_rows(a, col, b)
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.cmp(b) // input position breaks ties, as in the stable sort
    };
    if let Some(k) = take_k {
        if k > 0 && k < len {
            order.select_nth_unstable_by(k - 1, cmp);
            order.truncate(k);
        }
    }
    order.sort_unstable_by(cmp);
    order
}

/// Selection-fed sort/top-k core: evaluate nothing — the keys must be
/// plain column refs (checked by the caller), already gathered to
/// survivor width. Runs chunk **selection space** by the session morsel
/// size; run-local ties break on survivor position, which is ascending
/// global position, so the merged order equals the stable whole-batch
/// sort and the single payload gather happens once, at the end.
fn sort_selected(
    s: &SelScan,
    gathered_keys: Vec<SortKeyCol>,
    keys: &[crate::physical::PhysOrderKey],
    take_k: Option<usize>,
    limit: Option<usize>,
    charges: &memory::ScopedCharges,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let n = s.survivors();
    let morsel_rows = ctx.morsel_rows;
    let morsels = num_morsels(n, morsel_rows);
    let runs: Vec<SortRun> = claim_indexed(morsels, ctx.threads, |i| {
        let start = i * morsel_rows;
        let end = (start + morsel_rows).min(n);
        charges.add("sort run", ((end - start) * (4 + 8 * keys.len())) as u64)?;
        let key_cols: Vec<SortKeyCol> = gathered_keys.iter().map(|k| k.slice(start, end)).collect();
        let order = sorted_order(&key_cols, keys, end - start, take_k);
        Ok(SortRun {
            start,
            order,
            keys: key_cols,
        })
    })
    .into_iter()
    // First error in morsel order wins — deterministic reporting.
    .collect::<Result<_, ExecError>>()?;
    let ids = s.ids();
    let idx: Vec<i64> = merge_runs(&runs, keys, limit)
        .into_iter()
        .map(|p| ids[p as usize])
        .collect();
    let len = idx.len();
    Ok(exact::select_batch(
        &s.batch,
        &Tensor::from_vec(idx, &[len]),
    ))
}

/// Resolve sort keys as plain column refs over a selection's full-width
/// batch and gather them to survivor width — the only evaluation the
/// selection-fed sort path needs. `None` when any key is a computed
/// expression (the caller gathers and takes the staged path).
fn gather_sort_keys(
    s: &SelScan,
    keys: &[crate::physical::PhysOrderKey],
) -> Result<Option<Vec<SortKeyCol>>, ExecError> {
    let mut srcs = Vec::with_capacity(keys.len());
    for k in keys {
        let CompiledExpr::Column(r) = &k.expr else {
            return Ok(None);
        };
        match resolve_col(&s.batch, r) {
            Some(c) => srcs.push(c),
            None => return Ok(None),
        }
    }
    let mask = s.sel.gather_mask(s.rows);
    let mut out = Vec::with_capacity(srcs.len());
    for c in srcs {
        out.push(SortKeyCol::of(&c.filter_rows(&mask))?);
    }
    Ok(Some(out))
}

/// Resolve a physical column ref against a batch exactly as the
/// expression evaluator does ([`crate::physical::ColumnRef::resolve`]).
fn resolve_col(batch: &Batch, r: &crate::physical::ColumnRef) -> Option<EncodedTensor> {
    r.resolve(batch).ok().map(|c| c.to_exact())
}

/// K-way merge of sorted runs into a global row-index order, stopping
/// after `limit` rows when given. A binary tournament heap keyed by the
/// same `(keys…, input position)` total order as the runs themselves,
/// so the merge is stable and the output equals the full stable sort.
fn merge_runs(
    runs: &[SortRun],
    keys: &[crate::physical::PhysOrderKey],
    limit: Option<usize>,
) -> Vec<i64> {
    // `less(a, b)`: does run-cursor `a` come strictly before `b`?
    let less = |a: &(usize, usize), b: &(usize, usize)| -> bool {
        let (ra, rb) = (&runs[a.0], &runs[b.0]);
        let (la, lb) = (ra.order[a.1] as usize, rb.order[b.1] as usize);
        for (j, k) in keys.iter().enumerate() {
            let ord = if k.desc {
                rb.keys[j].cmp_rows(lb, &ra.keys[j], la)
            } else {
                ra.keys[j].cmp_rows(la, &rb.keys[j], lb)
            };
            match ord {
                std::cmp::Ordering::Less => return true,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal => {}
            }
        }
        (ra.start + la) < (rb.start + lb)
    };

    // Min-heap of (run, position-within-run) cursors.
    let mut heap: Vec<(usize, usize)> = (0..runs.len())
        .filter(|&m| !runs[m].order.is_empty())
        .map(|m| (m, 0))
        .collect();
    let sift_down = |heap: &mut Vec<(usize, usize)>, mut i: usize| loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut best = i;
        if l < heap.len() && less(&heap[l], &heap[best]) {
            best = l;
        }
        if r < heap.len() && less(&heap[r], &heap[best]) {
            best = r;
        }
        if best == i {
            break;
        }
        heap.swap(i, best);
        i = best;
    };
    for i in (0..heap.len() / 2).rev() {
        sift_down(&mut heap, i);
    }

    let total: usize = runs.iter().map(|r| r.order.len()).sum();
    let cap = limit.map_or(total, |n| n.min(total));
    let mut out = Vec::with_capacity(cap);
    while out.len() < cap {
        let (m, pos) = heap[0];
        out.push((runs[m].start + runs[m].order[pos] as usize) as i64);
        if pos + 1 < runs[m].order.len() {
            heap[0] = (m, pos + 1);
        } else {
            let last = heap.len() - 1;
            heap.swap(0, last);
            heap.pop();
            if heap.is_empty() {
                break;
            }
        }
        sift_down(&mut heap, 0);
    }
    out
}

/// Parallel merge sort: per-morsel sorted runs, k-way merged under the
/// stable `(keys…, input position)` order. Byte-identical to
/// [`exact::sort_batch`], which remains the fallback and the oracle. A
/// selection-fed input whose keys are plain column refs gathers only
/// the key columns up front; the payload gather happens once, on the
/// merged order.
pub(crate) fn run_sort(
    input: BarrierInput,
    keys: &[crate::physical::PhysOrderKey],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    if !sort_decision(input.rows_out(), input.has_diff(), keys, ctx).0 {
        let input = input.into_gathered();
        // The sequential argsort holds the same key codes + permutation.
        let _charge = memory::charge(&ctx.memory, "sort", sort_bytes(input.rows(), keys.len()))?;
        return exact::sort_batch(&input, keys, ctx);
    }
    if let BarrierInput::Selected(s) = &input {
        // Held until the sorted batch is assembled: gathered key
        // columns plus every run's keys and permutation.
        let charges = memory::ScopedCharges::new(&ctx.memory);
        charges.add("sort key gather", (s.survivors() * 8 * keys.len()) as u64)?;
        if let Some(gathered) = gather_sort_keys(s, keys)? {
            return sort_selected(s, gathered, keys, None, None, &charges, ctx);
        }
        // Computed keys need per-morsel expression evaluation over
        // dense rows; gather once and take the staged path below.
    }
    let input = input.into_gathered();
    let charges = memory::ScopedCharges::new(&ctx.memory);
    let runs = sort_runs(&input, keys, None, &charges, ctx)?;
    let idx = merge_runs(&runs, keys, None);
    let n = idx.len();
    Ok(exact::select_batch(&input, &Tensor::from_vec(idx, &[n])))
}

/// Parallel top-k: per-morsel `top-k` runs (selection + short sort)
/// merged O(k·m) into the global k best. Byte-identical to
/// [`exact::topk_batch`] (= the first k rows of the full stable sort).
pub(crate) fn run_topk(
    input: BarrierInput,
    keys: &[crate::physical::PhysOrderKey],
    k: usize,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let k = k.min(input.rows_out());
    if k == 0 {
        return exact::topk_batch(&input.into_gathered(), keys, k, ctx);
    }
    if !sort_decision(input.rows_out(), input.has_diff(), keys, ctx).0 {
        let input = input.into_gathered();
        let _charge = memory::charge(&ctx.memory, "top-k", sort_bytes(input.rows(), keys.len()))?;
        return exact::topk_batch(&input, keys, k, ctx);
    }
    if let BarrierInput::Selected(s) = &input {
        let charges = memory::ScopedCharges::new(&ctx.memory);
        charges.add("sort key gather", (s.survivors() * 8 * keys.len()) as u64)?;
        if let Some(gathered) = gather_sort_keys(s, keys)? {
            return sort_selected(s, gathered, keys, Some(k), Some(k), &charges, ctx);
        }
    }
    let input = input.into_gathered();
    let charges = memory::ScopedCharges::new(&ctx.memory);
    let runs = sort_runs(&input, keys, Some(k), &charges, ctx)?;
    let idx = merge_runs(&runs, keys, Some(k));
    let n = idx.len();
    Ok(exact::select_batch(&input, &Tensor::from_vec(idx, &[n])))
}

/// Shared-nothing DISTINCT: exchange rows by composite grouping-code
/// hash, dedup each partition independently (a key lives in exactly one
/// partition, so a partition's first occurrence is the global one), then
/// re-sort the surviving row ids into input order — byte-identical to
/// [`exact::distinct_batch`]'s first-occurrence output.
pub(crate) fn run_distinct(input: BarrierInput, ctx: &ExecContext) -> Result<Batch, ExecError> {
    let rows = input.rows_out();
    let ncols = input.columns_len();
    if !distinct_decision(rows, ncols, input.has_diff(), ctx).0 {
        let input = input.into_gathered();
        // The sequential kernel holds the same key codes and one big
        // seen-set; charge the per-row estimate of the staged path so
        // enforcement is thread-count-invariant.
        let _charge = memory::charge(&ctx.memory, "distinct", (rows * (8 * ncols + 16)) as u64)?;
        return exact::distinct_batch(&input);
    }
    // Held until the surviving rows are selected out: key codes,
    // exchange buckets and the per-partition seen-sets. The codes are
    // survivor-width either way — a selection-fed input extracts them
    // through the selection and defers the payload gather to the final
    // representative select.
    let charges = memory::ScopedCharges::new(&ctx.memory);
    charges.add("distinct key codes", (rows * 8 * ncols) as u64)?;
    match input {
        BarrierInput::Gathered(b, _) => {
            let codes: Vec<Vec<i64>> = b
                .columns()
                .iter()
                .map(|(_, c)| exact::key_codes(&c.to_exact()).map(|t| t.to_vec()))
                .collect::<Result<_, _>>()?;
            let rep = distinct_reps(&codes, rows, ncols, &charges, ctx)?;
            let n = rep.len();
            Ok(exact::select_batch(&b, &Tensor::from_vec(rep, &[n])))
        }
        BarrierInput::Selected(s) => {
            let mask = s.sel.gather_mask(s.rows);
            let codes: Vec<Vec<i64>> = s
                .batch
                .columns()
                .iter()
                .map(|(_, c)| {
                    exact::key_codes(&c.to_exact().filter_rows(&mask)).map(|t| t.to_vec())
                })
                .collect::<Result<_, _>>()?;
            // Representatives come back as survivor positions; map them
            // to global ids for the one deferred gather.
            let ids = s.ids();
            let rep: Vec<i64> = distinct_reps(&codes, rows, ncols, &charges, ctx)?
                .into_iter()
                .map(|p| ids[p as usize])
                .collect();
            let n = rep.len();
            Ok(exact::select_batch(&s.batch, &Tensor::from_vec(rep, &[n])))
        }
    }
}

/// Exchange + shared-nothing dedup over precomputed grouping codes:
/// returns the first-occurrence row positions, ascending. Positions are
/// whatever space the codes live in (dense rows or selection space).
fn distinct_reps(
    codes: &[Vec<i64>],
    rows: usize,
    ncols: usize,
    charges: &memory::ScopedCharges,
    ctx: &ExecContext,
) -> Result<Vec<i64>, ExecError> {
    let partitions = ctx.partitions.max(1);
    charges.add("distinct exchange", rows as u64 * 8)?;
    let parts = exchange(rows, partitions, ctx.morsel_rows, ctx.threads, &|r| {
        exact::code_hash(codes, r)
    });

    // Per-partition dedup, keeping first occurrences (rows ascending).
    let survivors = claim_indexed(partitions, ctx.threads, |p| {
        // Worst case (all keys distinct) the seen-set holds every key.
        charges.add("distinct set", (parts[p].len() * (8 * ncols + 16)) as u64)?;
        let mut keep: Vec<i64> = Vec::new();
        if codes.len() == 1 {
            let col = &codes[0];
            let mut seen: std::collections::HashSet<i64> = std::collections::HashSet::new();
            for &r in &parts[p] {
                if seen.insert(col[r as usize]) {
                    keep.push(r);
                }
            }
        } else {
            let mut seen: std::collections::HashSet<Vec<i64>> = std::collections::HashSet::new();
            for &r in &parts[p] {
                let key: Vec<i64> = codes.iter().map(|c| c[r as usize]).collect();
                if seen.insert(key) {
                    keep.push(r);
                }
            }
        }
        Ok(keep)
    })
    .into_iter()
    // First error in partition order wins — deterministic reporting.
    .collect::<Result<Vec<Vec<i64>>, ExecError>>()?;

    let mut rep: Vec<i64> = survivors.into_iter().flatten().collect();
    rep.sort_unstable(); // first-occurrence input order, as sequential
    Ok(rep)
}

// ----------------------------------------------------------------------
// Barrier observability (EXPLAIN strategy notes + profiled reports)
// ----------------------------------------------------------------------

/// Compile-time-visible scheduling note for a barrier node: how the
/// staged scheduler will run it (`partitioned ×16`, `merge-sort ×runs`)
/// or why it must stay sequential. `None` for barriers the scheduler
/// never stages (window, TVFs, UNION ALL) — those are whole-batch by
/// nature. Input sizes are unknown before execution, so a barrier that
/// turns out to fit one morsel still runs sequentially at run time (the
/// profiled report carries the actual counts).
pub(crate) fn barrier_note(plan: &PhysicalPlan, ctx: &ExecContext) -> Option<String> {
    use crate::physical::PhysicalPlan as P;
    match plan {
        P::Join { .. } | P::Distinct { .. } if ctx.threads > 1 => {
            Some(format!("partitioned ×{}", ctx.partitions.max(1)))
        }
        P::Sort { keys, .. } | P::TopK { keys, .. } if ctx.threads > 1 => {
            match keys.iter().find_map(|k| expr_fallback(&k.expr, ctx)) {
                Some(reason) => Some(format!("sequential: {reason}")),
                None if matches!(plan, P::Sort { .. }) => Some("merge-sort".into()),
                None => Some("parallel top-k".into()),
            }
        }
        P::Join { .. } | P::Distinct { .. } | P::Sort { .. } | P::TopK { .. } => {
            Some("sequential: threads=1".into())
        }
        _ => None,
    }
}

/// What the profiler records about one barrier execution.
pub(crate) struct BarrierReport {
    /// Morsels the staged path schedules (1 when sequential).
    pub morsels: usize,
    /// Partitions the exchange uses (0 when the op has no exchange or
    /// runs sequentially).
    pub partitions: usize,
    /// Human-readable strategy (`partitioned ×16 (31 build + 31 probe
    /// morsels)`); `None` when the op ran sequentially.
    pub strategy: Option<String>,
    /// Capability reason the op stayed sequential, mirroring the chain
    /// fallback reasons; `None` when staged or merely too small.
    pub fallback: Option<String>,
    /// How the barrier received its input: `selection-fed (<density>)`
    /// when a compiled chain handed it a live selection vector,
    /// `gathered: <reason>` when the chain had to materialise first.
    /// `None` when the input came from a non-chain child.
    pub selection: Option<String>,
}

impl BarrierReport {
    fn sequential(fallback: Option<String>) -> BarrierReport {
        BarrierReport {
            morsels: 1,
            partitions: 0,
            strategy: None,
            fallback,
            selection: None,
        }
    }
}

/// The scheduling decision + counts for a barrier over its inputs —
/// computed with exactly the predicates the `run_*` entry points use,
/// so the profile reports what actually happened.
pub(crate) fn barrier_report(
    plan: &PhysicalPlan,
    inputs: &[&BarrierInput],
    ctx: &ExecContext,
) -> BarrierReport {
    let selection = inputs.iter().find_map(|i| i.note());
    let report = barrier_counts(plan, inputs, ctx);
    BarrierReport {
        selection,
        ..report
    }
}

fn barrier_counts(
    plan: &PhysicalPlan,
    inputs: &[&BarrierInput],
    ctx: &ExecContext,
) -> BarrierReport {
    use crate::physical::PhysicalPlan as P;
    match plan {
        P::Join { .. } => {
            let (left, right) = (inputs[0], inputs[1]);
            let diff = left.has_diff() || right.has_diff();
            let (staged, reason) = join_decision(left.rows_out(), right.rows_out(), diff, ctx);
            if !staged {
                return BarrierReport::sequential(reason);
            }
            let build = num_morsels(right.rows_out(), ctx.morsel_rows);
            let probe = num_morsels(left.rows_out(), ctx.morsel_rows);
            let partitions = ctx.partitions.max(1);
            BarrierReport {
                morsels: build + probe,
                partitions,
                strategy: Some(format!(
                    "partitioned ×{partitions} ({build} build + {probe} probe morsels)"
                )),
                fallback: None,
                selection: None,
            }
        }
        P::Sort { keys, .. } | P::TopK { keys, .. } => {
            // run_topk short-circuits k == 0 (and empty inputs) to the
            // sequential kernel; report that, not a phantom staged run.
            if let P::TopK { n, .. } = plan {
                let k = crate::expr::resolve_limit(n, ctx)
                    .map(|k| k.min(inputs[0].rows_out()))
                    .unwrap_or(usize::MAX);
                if k == 0 {
                    return BarrierReport::sequential(None);
                }
            }
            let (staged, reason) =
                sort_decision(inputs[0].rows_out(), inputs[0].has_diff(), keys, ctx);
            if !staged {
                return BarrierReport::sequential(reason);
            }
            let runs = num_morsels(inputs[0].rows_out(), ctx.morsel_rows);
            let what = if matches!(plan, P::Sort { .. }) {
                "merge-sort"
            } else {
                "parallel top-k"
            };
            BarrierReport {
                morsels: runs,
                partitions: 0,
                strategy: Some(format!("{what} ×{runs} runs")),
                fallback: None,
                selection: None,
            }
        }
        P::Distinct { .. } => {
            let input = inputs[0];
            let (staged, reason) =
                distinct_decision(input.rows_out(), input.columns_len(), input.has_diff(), ctx);
            if !staged {
                return BarrierReport::sequential(reason);
            }
            let morsels = num_morsels(input.rows_out(), ctx.morsel_rows);
            let partitions = ctx.partitions.max(1);
            BarrierReport {
                morsels,
                partitions,
                strategy: Some(format!("partitioned ×{partitions} ({morsels} morsels)")),
                fallback: None,
                selection: None,
            }
        }
        _ => BarrierReport {
            morsels: 0,
            partitions: 0,
            strategy: None,
            fallback: None,
            selection: None,
        },
    }
}

// ----------------------------------------------------------------------
// Parallel partial aggregation
// ----------------------------------------------------------------------

/// Cross-morsel group identity for one key column. Dictionary columns
/// merge on decoded strings (the order-preserving dictionary makes
/// string order = code order, so the combine's sorted output matches the
/// sequential kernel's); everything else merges on its grouping code.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum MergeKey {
    Int(i64),
    Str(String),
}

/// Per-aggregate partial state over one morsel's groups.
enum AccColumn {
    /// COUNT(*) / COUNT(expr): rows (or trues) per group.
    Count(Vec<i64>),
    /// SUM partials (f32, matching the sequential segment-sum kernel).
    Sum(Vec<f32>),
    /// AVG: sum partials; the divisor is the merged group size.
    Avg(Vec<f32>),
    Min(Vec<f32>),
    Max(Vec<f32>),
    /// VARIANCE / STDDEV: f64 power sums, as in the sequential kernel.
    Moments {
        sum: Vec<f64>,
        sumsq: Vec<f64>,
    },
}

/// Partial aggregation state of one morsel.
struct PartialAgg {
    /// Representative key rows (first in-morsel occurrence), encoding
    /// preserved; one `[groups]` column per GROUP BY key.
    key_reps: Vec<EncodedTensor>,
    /// Cross-morsel merge identity, `[num_keys][groups]`.
    merge_keys: Vec<Vec<MergeKey>>,
    /// Group sizes.
    counts: Vec<i64>,
    accs: Vec<AccColumn>,
    groups: usize,
}

/// First reason the aggregate sink cannot fold morsels in parallel.
fn aggregate_fallback(
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    ctx: &ExecContext,
) -> Option<String> {
    keys.iter()
        .find_map(|k| expr_fallback(&k.expr, ctx))
        .or_else(|| {
            aggregates.iter().find_map(|a| {
                // COUNT(DISTINCT …) needs a cross-morsel value set; it
                // stays on the sequential path.
                if a.func == AggFunc::CountDistinct {
                    return Some("count-distinct".into());
                }
                a.arg.as_ref().and_then(|e| expr_fallback(e, ctx))
            })
        })
}

/// Run a fused chain + grouped aggregation, morsel-parallel where safe:
/// each morsel folds into per-group partial states, merged by a combine
/// step that walks morsels in index order (deterministic at any thread
/// count).
pub(crate) fn run_aggregate(
    input: &Batch,
    ops: &[MorselOp<'_>],
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    skip: Option<&[bool]>,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let rows = input.rows();
    let (morsels, seq_reason) = planned_and_reason(input, ops, Some((keys, aggregates)), ctx);
    let kern = if seq_reason.is_none() {
        kernel::prepare(ops, ctx)
    } else {
        None
    };
    if morsels <= 1 {
        let whole = single_morsel_input(input, rows, skip, ctx);
        let inp = match kern.as_deref().and_then(|k| k.run(&whole)) {
            Some(b) => b,
            None => apply_ops(whole, ops, ctx)?,
        };
        return exact::aggregate_batch(&inp, keys, aggregates, ctx);
    }

    // Selection exit: when the chain compiled and is selection-capable,
    // fold the aggregation straight over its `SelVec` — no survivor
    // gather at all on the ungrouped fast path, one referenced-columns
    // gather on the grouped path. Partials chunk by *input* morsel
    // boundaries, so they are byte-identical to the gathered loop below
    // and `None` (a run-time bail or unresolvable shape) falls through
    // to it with nothing recorded.
    if let Some(k) = kern.as_deref() {
        if k.selection_capable().is_ok() {
            if let Some(out) =
                aggregate_selection(input, k, ops, keys, aggregates, skip, morsels, ctx)?
            {
                ctx.access.note_barrier_selection_fed();
                return Ok(out);
            }
        }
        ctx.access.note_barrier_gathered();
    }

    type PartialSlot = Option<Result<Option<PartialAgg>, ExecError>>;
    let cols = to_partition_cols(input);
    // Partial states are per-group (small); the decoded input columns
    // dominate, charged until the merged batch is built.
    let _charge = memory::charge(
        &ctx.memory,
        "aggregate materialization",
        memory::cols_bytes(&cols),
    )?;
    let morsel_rows = ctx.morsel_rows;
    let skip = skip.filter(|s| s.len() == morsels);
    let next = AtomicUsize::new(0);
    let pruned = AtomicUsize::new(0);
    let scanned = AtomicUsize::new(0);
    let slots: Mutex<Vec<PartialSlot>> = Mutex::new((0..morsels).map(|_| None).collect());

    let work = |wctx: &ExecContext| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= morsels {
            break;
        }
        let start = i * morsel_rows;
        // Pruned morsels contribute no groups; the empty partial keeps
        // the combine walk identical to the unpruned run.
        let end = if skip.is_some_and(|s| s[i]) {
            pruned.fetch_add(1, Ordering::Relaxed);
            start
        } else {
            if skip.is_some() {
                scanned.fetch_add(1, Ordering::Relaxed);
            }
            (start + morsel_rows).min(rows)
        };
        let out = apply_ops_k(slice_cols(&cols, start, end), ops, kern.as_deref(), wctx)
            .and_then(|b| partial_aggregate(&b, keys, aggregates, wctx));
        slots.lock().expect("agg state poisoned")[i] = Some(out);
    };

    let workers = ctx.threads.min(morsels).max(1);
    run_workers(workers, &WorkerCfg::of(ctx), &work);
    if skip.is_some() {
        ctx.access.note_morsels(
            pruned.load(Ordering::Relaxed) as u64,
            scanned.load(Ordering::Relaxed) as u64,
        );
    }

    let mut partials = Vec::with_capacity(morsels);
    for slot in slots.into_inner().expect("agg state poisoned") {
        match slot.expect("aggregate morsels are never skipped") {
            Err(e) => return Err(e),
            Ok(Some(p)) => partials.push(p),
            Ok(None) => {} // empty morsel after filtering
        }
    }
    merge_partials(partials, keys, aggregates, input, ops, ctx)
}

/// Fold one morsel into per-group partial states. Returns `None` for an
/// empty morsel (every row filtered out) — it contributes no groups.
fn partial_aggregate(
    batch: &Batch,
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    ctx: &ExecContext,
) -> Result<Option<PartialAgg>, ExecError> {
    use tdp_tensor::sort::group_ids;
    let n = batch.rows();
    if n == 0 {
        return Ok(None);
    }

    let mut key_cols: Vec<EncodedTensor> = Vec::with_capacity(keys.len());
    for k in keys {
        match eval_expr(&k.expr, batch, ctx)? {
            Value::Column(c) => key_cols.push(c),
            other => {
                return Err(ExecError::TypeMismatch(format!(
                    "GROUP BY expression must be a column, got {other:?}"
                )))
            }
        }
    }

    let (ids, groups, rep_rows) = if key_cols.is_empty() {
        (
            Tensor::from_vec(vec![0i64; n], &[n]),
            1usize,
            Tensor::from_vec(vec![0i64], &[1]),
        )
    } else {
        let codes: Vec<I64Tensor> = key_cols
            .iter()
            .map(exact::key_codes)
            .collect::<Result<_, _>>()?;
        let refs: Vec<&I64Tensor> = codes.iter().collect();
        let (ids, distinct) = group_ids(&refs);
        let groups = distinct.shape()[0];
        let mut rep = vec![-1i64; groups];
        for (row, &g) in ids.data().iter().enumerate() {
            if rep[g as usize] < 0 {
                rep[g as usize] = row as i64;
            }
        }
        (ids, groups, Tensor::from_vec(rep, &[groups]))
    };

    let key_reps: Vec<EncodedTensor> = key_cols.iter().map(|c| c.select_rows(&rep_rows)).collect();
    let merge_keys: Vec<Vec<MergeKey>> = key_cols
        .iter()
        .map(|c| {
            Ok(match c {
                EncodedTensor::Dict { codes, dict } => rep_rows
                    .data()
                    .iter()
                    .map(|&r| MergeKey::Str(dict.decode_one(codes.at(r as usize)).to_owned()))
                    .collect(),
                other => {
                    let codes = exact::key_codes(other)?;
                    rep_rows
                        .data()
                        .iter()
                        .map(|&r| MergeKey::Int(codes.at(r as usize)))
                        .collect()
                }
            })
        })
        .collect::<Result<_, ExecError>>()?;

    let counts: Vec<i64> = {
        let ones = F32Tensor::ones(&[n]);
        ones.segment_sum(&ids, groups)
            .data()
            .iter()
            .map(|&c| c as i64)
            .collect()
    };

    let mut accs = Vec::with_capacity(aggregates.len());
    for agg in aggregates {
        let acc = match (agg.func, &agg.arg) {
            (AggFunc::Count, None) => AccColumn::Count(counts.clone()),
            (AggFunc::Count, Some(e)) => match eval_expr(e, batch, ctx)? {
                Value::Column(EncodedTensor::Bool(m)) => AccColumn::Count(
                    m.to_f32_mask()
                        .segment_sum(&ids, groups)
                        .data()
                        .iter()
                        .map(|&v| v as i64)
                        .collect(),
                ),
                _ => AccColumn::Count(counts.clone()),
            },
            (AggFunc::Sum, Some(e)) => {
                let vals = eval_expr(e, batch, ctx)?.into_f32_column(n)?;
                AccColumn::Sum(vals.segment_sum(&ids, groups).to_vec())
            }
            (AggFunc::Avg, Some(e)) => {
                let vals = eval_expr(e, batch, ctx)?.into_f32_column(n)?;
                AccColumn::Avg(vals.segment_sum(&ids, groups).to_vec())
            }
            (AggFunc::Min, Some(e)) | (AggFunc::Max, Some(e)) => {
                let vals = eval_expr(e, batch, ctx)?.into_f32_column(n)?;
                let is_min = agg.func == AggFunc::Min;
                let init = if is_min {
                    f32::INFINITY
                } else {
                    f32::NEG_INFINITY
                };
                let mut acc = vec![init; groups];
                for (row, &g) in ids.data().iter().enumerate() {
                    let v = vals.at(row);
                    let slot = &mut acc[g as usize];
                    if (is_min && v < *slot) || (!is_min && v > *slot) {
                        *slot = v;
                    }
                }
                if is_min {
                    AccColumn::Min(acc)
                } else {
                    AccColumn::Max(acc)
                }
            }
            (AggFunc::Variance, Some(e)) | (AggFunc::Stddev, Some(e)) => {
                let vals = eval_expr(e, batch, ctx)?.into_f32_column(n)?;
                let mut sum = vec![0.0f64; groups];
                let mut sumsq = vec![0.0f64; groups];
                for (row, &g) in ids.data().iter().enumerate() {
                    let v = vals.at(row) as f64;
                    sum[g as usize] += v;
                    sumsq[g as usize] += v * v;
                }
                AccColumn::Moments { sum, sumsq }
            }
            (AggFunc::CountDistinct, _) => {
                unreachable!("COUNT(DISTINCT) is filtered by aggregate_fallback")
            }
            (f, None) => {
                return Err(ExecError::Unsupported(format!(
                    "{}(*) is not meaningful",
                    f.name()
                )))
            }
        };
        accs.push(acc);
    }

    Ok(Some(PartialAgg {
        key_reps,
        merge_keys,
        counts,
        accs,
        groups,
    }))
}

// ----------------------------------------------------------------------
// Selection-fed aggregation
// ----------------------------------------------------------------------

/// Fold the aggregation directly over a chain's selection exit.
/// Ungrouped aggregates over plain numeric columns accumulate through
/// the mask (dense) or the survivor index list (sparse) with **zero**
/// gathers; grouped or computed shapes gather only the referenced
/// columns once and feed per-morsel mini-batches through the ordinary
/// [`partial_aggregate`]. Both chunk partials by input morsel
/// boundaries, so every float partial is byte-identical to the gathered
/// loop's. `Ok(None)` = decline (run-time bail, unresolvable column
/// ref): the caller's gathered loop reproduces the identical result or
/// error, and all counter accounting is left to it.
#[allow(clippy::too_many_arguments)]
fn aggregate_selection(
    input: &Batch,
    kern: &kernel::ChainInstance,
    ops: &[MorselOp<'_>],
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    skip: Option<&[bool]>,
    morsels: usize,
    ctx: &ExecContext,
) -> Result<Option<Batch>, ExecError> {
    let rows = input.rows();
    let morsel_rows = ctx.morsel_rows;
    let skip = skip.filter(|s| s.len() == morsels);
    let Some(mut out) = kern.run_selection(input, skip_init(skip, rows, morsel_rows)) else {
        return Ok(None);
    };
    // Selective chains demote the mask to a survivor index list once so
    // every fold below visits survivors instead of full morsel width.
    // Identical numerics either way (the dense arms are branchless but
    // bit-preserving), so this is purely a cost choice.
    if matches!(out.sel, kernel::SelVec::Mask(..)) && out.sel.len() * HANDOFF_IDX_DIVISOR <= rows {
        out.sel = kernel::SelVec::Idx(out.sel.into_idx());
    }
    let raw: MorselCols = out.cols;
    // An unresolvable reference would decline on both paths below;
    // catching it here keeps the decode loop referenced-columns-only.
    let Some(used) = referenced_cols(keys, aggregates, &raw) else {
        return Ok(None);
    };
    // Decode integer-compressed layouts exactly as the gathered loop's
    // `to_partition_cols` does, so mini-batch bytes match its slices —
    // but only where a key or aggregate actually reads the column;
    // unreferenced columns are never touched by either path.
    let cols: MorselCols = raw
        .into_iter()
        .zip(&used)
        .map(|((n, c), &u)| {
            let c = match c {
                e @ (EncodedTensor::Rle(_)
                | EncodedTensor::BitPacked(_)
                | EncodedTensor::Delta(_))
                    if u =>
                {
                    EncodedTensor::I64(e.decode_i64())
                }
                other => other,
            };
            (n, c)
        })
        .collect();
    let _charge = memory::charge(
        &ctx.memory,
        "selection vector",
        (out.sel.len() as u64 + 1) * 8,
    )?;
    let offs = survivor_offsets(&out.sel, rows, morsel_rows, morsels);

    let partials = if let Some(fast) = fast_aggs(keys, aggregates, &cols) {
        masked_partials(&fast, &out.sel, &offs, rows, morsel_rows, ctx)?
    } else {
        match minibatch_partials(&cols, &out.sel, &offs, keys, aggregates, rows, ctx)? {
            Some(p) => p,
            None => return Ok(None),
        }
    };
    if let Some(s) = skip {
        let pruned = s.iter().filter(|&&b| b).count();
        ctx.access
            .note_morsels(pruned as u64, (morsels - pruned) as u64);
    }
    merge_partials(partials, keys, aggregates, input, ops, ctx).map(Some)
}

/// One ungrouped aggregate the masked fast path can fold with no
/// gather: the full-width argument data is decoded once up front.
enum FastAgg {
    /// COUNT(*) — and COUNT(col) of a non-boolean column, which the
    /// sequential kernel also counts as group size.
    CountStar,
    /// COUNT(bool_col): trues among survivors.
    CountMask(Vec<bool>),
    /// SUM/AVG/MIN/MAX/VARIANCE/STDDEV over a plain numeric column. The
    /// decoded argument is `Arc`-shared so several folds over the same
    /// column (`SUM(v), AVG(v), MIN(v)…`) decode it once.
    Fold {
        func: AggFunc,
        vals: std::sync::Arc<F32Tensor>,
    },
}

/// Compile the aggregate list for the masked fast path: ungrouped, and
/// every aggregate a plain column (or `*`) over a numeric/bool column.
/// `None` = take the mini-batch path instead.
fn fast_aggs(
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    cols: &[(String, EncodedTensor)],
) -> Option<Vec<FastAgg>> {
    if !keys.is_empty() {
        return None;
    }
    let mut decoded: std::collections::HashMap<usize, std::sync::Arc<F32Tensor>> =
        std::collections::HashMap::new();
    let mut out = Vec::with_capacity(aggregates.len());
    for a in aggregates {
        let fast = match (a.func, &a.arg) {
            (AggFunc::Count, None) => FastAgg::CountStar,
            (AggFunc::Count, Some(CompiledExpr::Column(r))) => {
                match cols[resolve_idx(cols, r)?].1 {
                    EncodedTensor::Bool(ref m) => FastAgg::CountMask(m.to_vec()),
                    _ => FastAgg::CountStar,
                }
            }
            (
                AggFunc::Sum
                | AggFunc::Avg
                | AggFunc::Min
                | AggFunc::Max
                | AggFunc::Variance
                | AggFunc::Stddev,
                Some(CompiledExpr::Column(r)),
            ) => {
                let idx = resolve_idx(cols, r)?;
                let col = &cols[idx].1;
                if !matches!(col, EncodedTensor::F32(_) | EncodedTensor::I64(_)) {
                    return None;
                }
                FastAgg::Fold {
                    func: a.func,
                    vals: decoded
                        .entry(idx)
                        .or_insert_with(|| std::sync::Arc::new(col.decode_f32()))
                        .clone(),
                }
            }
            _ => return None,
        };
        out.push(fast);
    }
    Some(out)
}

/// Resolve a column ref to its slot in a raw column list, mirroring
/// batch resolution (slot position / case-insensitive first name).
fn resolve_idx(cols: &[(String, EncodedTensor)], r: &crate::physical::ColumnRef) -> Option<usize> {
    use crate::physical::ColumnRef;
    match r {
        ColumnRef::Slot { slot, .. } => (*slot < cols.len()).then_some(*slot),
        ColumnRef::Name(name) => cols.iter().position(|(n, _)| n.eq_ignore_ascii_case(name)),
    }
}

/// One morsel's survivor view: the dense row range with its mask, the
/// sparse survivor id slice, or a survivor-space range over columns
/// already compacted by [`compact_fast`].
enum SurvView<'a> {
    Dense {
        mask: &'a [bool],
        start: usize,
        end: usize,
    },
    Sparse(&'a [u32]),
    Compact {
        start: usize,
        end: usize,
    },
}

impl SurvView<'_> {
    /// f32 running sum over survivors, in row order from `+0.0` — the
    /// dense arm adds a masked `0.0` for dropped rows (branchless
    /// select), which is bit-preserving: the running sum of a
    /// round-to-nearest f32 accumulation is never `-0.0`.
    fn sum_f32(&self, vals: &[f32]) -> f32 {
        let mut s = 0.0f32;
        match self {
            SurvView::Dense { mask, start, end } => {
                for r in *start..*end {
                    s += if mask[r] { vals[r] } else { 0.0 };
                }
            }
            SurvView::Sparse(ids) => {
                for &r in *ids {
                    s += vals[r as usize];
                }
            }
            SurvView::Compact { start, end } => {
                for &v in &vals[*start..*end] {
                    s += v;
                }
            }
        }
        s
    }

    /// Survivor count accumulated in f32, replicating the gathered
    /// path's ones-segment-sum numerics exactly.
    fn count_f32(&self) -> f32 {
        let mut c = 0.0f32;
        match self {
            SurvView::Dense { mask, start, end } => {
                for r in *start..*end {
                    c += if mask[r] { 1.0 } else { 0.0 };
                }
            }
            SurvView::Sparse(ids) => {
                for _ in *ids {
                    c += 1.0;
                }
            }
            SurvView::Compact { start, end } => {
                for _ in *start..*end {
                    c += 1.0;
                }
            }
        }
        c
    }

    /// Trues among survivors, in f32 like the gathered bool-mask
    /// segment sum.
    fn count_trues(&self, arg: &[bool]) -> f32 {
        let mut c = 0.0f32;
        match self {
            SurvView::Dense { mask, start, end } => {
                for r in *start..*end {
                    c += if mask[r] && arg[r] { 1.0 } else { 0.0 };
                }
            }
            SurvView::Sparse(ids) => {
                for &r in *ids {
                    c += if arg[r as usize] { 1.0 } else { 0.0 };
                }
            }
            SurvView::Compact { start, end } => {
                for &a in &arg[*start..*end] {
                    c += if a { 1.0 } else { 0.0 };
                }
            }
        }
        c
    }

    /// MIN/MAX with the sequential kernel's exact comparison (strict
    /// `<` / `>` against the running slot, NaN-insensitive).
    fn min_max(&self, vals: &[f32], is_min: bool) -> f32 {
        let mut slot = if is_min {
            f32::INFINITY
        } else {
            f32::NEG_INFINITY
        };
        let mut step = |v: f32| {
            if (is_min && v < slot) || (!is_min && v > slot) {
                slot = v;
            }
        };
        match self {
            SurvView::Dense { mask, start, end } => {
                for r in *start..*end {
                    if mask[r] {
                        step(vals[r]);
                    }
                }
            }
            SurvView::Sparse(ids) => {
                for &r in *ids {
                    step(vals[r as usize]);
                }
            }
            SurvView::Compact { start, end } => {
                for &v in &vals[*start..*end] {
                    step(v);
                }
            }
        }
        slot
    }

    /// f64 power sums for VARIANCE/STDDEV, both accumulators advanced
    /// per row as in the gathered loop.
    fn moments(&self, vals: &[f32]) -> (f64, f64) {
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        let mut step = |v: f64| {
            sum += v;
            sumsq += v * v;
        };
        match self {
            SurvView::Dense { mask, start, end } => {
                for r in *start..*end {
                    let v = if mask[r] { vals[r] as f64 } else { 0.0 };
                    sum += v;
                    sumsq += v * v;
                }
            }
            SurvView::Sparse(ids) => {
                for &r in *ids {
                    step(vals[r as usize] as f64);
                }
            }
            SurvView::Compact { start, end } => {
                for &v in &vals[*start..*end] {
                    step(v as f64);
                }
            }
        }
        (sum, sumsq)
    }
}

/// Compact a dense selection's fold columns (and boolean COUNT args) to
/// survivor width — one masked pass per distinct column, shared by
/// every fold over it through the same `Arc` slot. `None` = keep the
/// masked walk: the selection is already an index list, or no column is
/// folded more than once (one masked walk costs less than compacting).
fn compact_fast(
    fast: &[FastAgg],
    sel: &kernel::SelVec,
    ctx: &ExecContext,
) -> Result<Option<(Vec<FastAgg>, memory::ChargeGuard)>, ExecError> {
    use std::sync::Arc;
    let kernel::SelVec::Mask(mask, _) = sel else {
        return Ok(None);
    };
    let mut uses: std::collections::HashMap<*const F32Tensor, usize> =
        std::collections::HashMap::new();
    for f in fast {
        if let FastAgg::Fold { vals, .. } = f {
            *uses.entry(Arc::as_ptr(vals)).or_default() += 1;
        }
    }
    if !uses.values().any(|&c| c >= 2) {
        return Ok(None);
    }
    let n = sel.len();
    let charge = memory::charge(
        &ctx.memory,
        "aggregate fold compaction",
        (n * 4 * uses.len().max(1)) as u64,
    )?;
    let mut cache: std::collections::HashMap<*const F32Tensor, Arc<F32Tensor>> =
        std::collections::HashMap::new();
    let out = fast
        .iter()
        .map(|f| match f {
            FastAgg::CountStar => FastAgg::CountStar,
            FastAgg::CountMask(arg) => FastAgg::CountMask(
                arg.iter()
                    .zip(mask)
                    .filter_map(|(&a, &keep)| keep.then_some(a))
                    .collect(),
            ),
            FastAgg::Fold { func, vals } => FastAgg::Fold {
                func: *func,
                vals: cache
                    .entry(Arc::as_ptr(vals))
                    .or_insert_with(|| {
                        let d = vals.data();
                        let mut c = Vec::with_capacity(n);
                        for (r, &keep) in mask.iter().enumerate() {
                            if keep {
                                c.push(d[r]);
                            }
                        }
                        Arc::new(Tensor::from_vec(c, &[n]))
                    })
                    .clone(),
            },
        })
        .collect();
    Ok(Some((out, charge)))
}

/// The masked/indexed fast path: one ungrouped partial per input
/// morsel, accumulated straight off the selection — no gather, no
/// evaluation context, plain worker threads. A dense selection whose
/// columns are folded more than once compacts them first via
/// [`compact_fast`]: re-walking full morsel width per aggregate costs
/// more than one shared compaction pass. Survivor values, visit order
/// and accumulation ops are identical in all three views, so partials
/// stay byte-identical to the gathered loop's.
fn masked_partials(
    fast: &[FastAgg],
    sel: &kernel::SelVec,
    offs: &[usize],
    rows: usize,
    morsel_rows: usize,
    ctx: &ExecContext,
) -> Result<Vec<PartialAgg>, ExecError> {
    let compacted = compact_fast(fast, sel, ctx)?;
    let fast = compacted.as_ref().map_or(fast, |(f, _)| f.as_slice());
    let morsels = offs.len() - 1;
    Ok(
        claim_indexed(morsels, ctx.threads.min(morsels).max(1), |i| {
            if offs[i + 1] == offs[i] {
                return None; // empty morsel after filtering: no partial
            }
            let start = i * morsel_rows;
            let end = (start + morsel_rows).min(rows);
            let view = if compacted.is_some() {
                SurvView::Compact {
                    start: offs[i],
                    end: offs[i + 1],
                }
            } else {
                match sel {
                    kernel::SelVec::Mask(m, _) => SurvView::Dense {
                        mask: m,
                        start,
                        end,
                    },
                    kernel::SelVec::Idx(s) => SurvView::Sparse(&s[offs[i]..offs[i + 1]]),
                }
            };
            let count = view.count_f32() as i64;
            let accs = fast
                .iter()
                .map(|f| match f {
                    FastAgg::CountStar => AccColumn::Count(vec![count]),
                    FastAgg::CountMask(arg) => AccColumn::Count(vec![view.count_trues(arg) as i64]),
                    FastAgg::Fold { func, vals } => {
                        let vals = vals.data();
                        match func {
                            AggFunc::Sum => AccColumn::Sum(vec![view.sum_f32(vals)]),
                            AggFunc::Avg => AccColumn::Avg(vec![view.sum_f32(vals)]),
                            AggFunc::Min => AccColumn::Min(vec![view.min_max(vals, true)]),
                            AggFunc::Max => AccColumn::Max(vec![view.min_max(vals, false)]),
                            AggFunc::Variance | AggFunc::Stddev => {
                                let (sum, sumsq) = view.moments(vals);
                                AccColumn::Moments {
                                    sum: vec![sum],
                                    sumsq: vec![sumsq],
                                }
                            }
                            _ => unreachable!("fast_aggs admits folds only"),
                        }
                    }
                })
                .collect();
            Some(PartialAgg {
                key_reps: Vec::new(),
                merge_keys: Vec::new(),
                counts: vec![count],
                accs,
                groups: 1,
            })
        })
        .into_iter()
        .flatten()
        .collect(),
    )
}

/// The grouped/computed path: gather the referenced columns once
/// (survivor width), then feed each morsel's survivor slice — padded
/// with zero-width placeholders at unreferenced slots so slot indexing
/// is undisturbed — through the ordinary [`partial_aggregate`].
/// `Ok(None)` = an expression references a column this batch cannot
/// resolve; the gathered loop reproduces the identical error.
#[allow(clippy::too_many_arguments)]
fn minibatch_partials(
    cols: &MorselCols,
    sel: &kernel::SelVec,
    offs: &[usize],
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    rows: usize,
    ctx: &ExecContext,
) -> Result<Option<Vec<PartialAgg>>, ExecError> {
    let Some(used) = referenced_cols(keys, aggregates, cols) else {
        return Ok(None);
    };
    let n = sel.len();
    let mask = sel.gather_mask(rows);
    let gathered: Vec<Option<EncodedTensor>> = cols
        .iter()
        .zip(&used)
        .map(|((_, c), &u)| u.then(|| c.filter_rows(&mask)))
        .collect();
    let refs = used.iter().filter(|&&u| u).count().max(1);
    let _charge = memory::charge(&ctx.memory, "aggregate gather", (n * 8 * refs) as u64)?;

    let morsels = offs.len() - 1;
    type PartialSlot = Option<Result<Option<PartialAgg>, ExecError>>;
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<PartialSlot>> = Mutex::new((0..morsels).map(|_| None).collect());
    let work = |wctx: &ExecContext| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= morsels {
            break;
        }
        let (a, b) = (offs[i], offs[i + 1]);
        let mut mini = Batch::new();
        for ((name, _), g) in cols.iter().zip(&gathered) {
            let col = match g {
                Some(g) => g.slice_rows(a, b),
                // Placeholder: keeps slot positions and arity, never read.
                None => EncodedTensor::F32(Tensor::from_vec(vec![0.0; b - a], &[b - a])),
            };
            mini.push(name.clone(), ColumnData::Exact(col));
        }
        let out = partial_aggregate(&mini, keys, aggregates, wctx);
        slots.lock().expect("agg state poisoned")[i] = Some(out);
    };
    let workers = ctx.threads.min(morsels).max(1);
    run_workers(workers, &WorkerCfg::of(ctx), &work);

    let mut partials = Vec::with_capacity(morsels);
    for slot in slots.into_inner().expect("agg state poisoned") {
        match slot.expect("aggregate morsels are never skipped") {
            // First error in morsel order wins — deterministic reporting.
            Err(e) => return Err(e),
            Ok(Some(p)) => partials.push(p),
            Ok(None) => {}
        }
    }
    Ok(Some(partials))
}

/// Which column slots the key and aggregate expressions touch. `None`
/// when any reference fails to resolve (or a scalar subquery slips
/// through) — the mini-batch would silently feed it placeholder zeros.
fn referenced_cols(
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    cols: &[(String, EncodedTensor)],
) -> Option<Vec<bool>> {
    let mut used = vec![false; cols.len()];
    for k in keys {
        mark_refs(&k.expr, cols, &mut used)?;
    }
    for a in aggregates {
        if let Some(e) = &a.arg {
            mark_refs(e, cols, &mut used)?;
        }
    }
    Some(used)
}

fn mark_refs(e: &CompiledExpr, cols: &[(String, EncodedTensor)], used: &mut [bool]) -> Option<()> {
    match e {
        CompiledExpr::Column(r) => {
            used[resolve_idx(cols, r)?] = true;
            Some(())
        }
        CompiledExpr::Num(_)
        | CompiledExpr::Str(_)
        | CompiledExpr::Bool(_)
        | CompiledExpr::Param { .. } => Some(()),
        CompiledExpr::Binary { left, right, .. } => {
            mark_refs(left, cols, used)?;
            mark_refs(right, cols, used)
        }
        CompiledExpr::Unary { expr, .. } => mark_refs(expr, cols, used),
        CompiledExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand.as_deref() {
                mark_refs(o, cols, used)?;
            }
            for (w, t) in branches {
                mark_refs(w, cols, used)?;
                mark_refs(t, cols, used)?;
            }
            if let Some(e) = else_expr.as_deref() {
                mark_refs(e, cols, used)?;
            }
            Some(())
        }
        CompiledExpr::InList { expr, list, .. } => {
            mark_refs(expr, cols, used)?;
            for i in list {
                mark_refs(i, cols, used)?;
            }
            Some(())
        }
        CompiledExpr::Like { expr, .. } => mark_refs(expr, cols, used),
        CompiledExpr::Udf { args, .. } | CompiledExpr::Builtin { args, .. } => {
            for a in args {
                mark_refs(a, cols, used)?;
            }
            Some(())
        }
        // Conservative: nested plans see their own batches, but the
        // parallel-safety analysis already pins these to the session
        // thread, so the fast paths never meet one.
        CompiledExpr::ScalarSubquery(_) => None,
    }
}

/// Merged accumulator of one output group.
struct MergedGroup {
    /// `(partial index, group index)` of the first-seen representative.
    rep: (usize, usize),
    count: i64,
    accs: Vec<AccVal>,
}

#[derive(Clone, Copy)]
enum AccVal {
    Count(i64),
    Sum(f32),
    Avg(f32),
    Min(f32),
    Max(f32),
    Moments { sum: f64, sumsq: f64 },
}

/// Combine morsel partials into the final grouped batch. Walks partials
/// in morsel order (first occurrence picks the representative key rows,
/// matching the sequential kernel's first-occurrence rule) and emits
/// groups in merge-key order, which equals the sequential kernel's
/// code-sorted group order.
fn merge_partials(
    partials: Vec<PartialAgg>,
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    input: &Batch,
    ops: &[MorselOp<'_>],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    if partials.is_empty() {
        // Every morsel filtered to nothing: the sequential kernel's
        // zero-row behaviour (e.g. a global COUNT of 0) is authoritative.
        let empty = apply_ops(input.slice_rows(0, 0), ops, ctx)?;
        return exact::aggregate_batch(&empty, keys, aggregates, ctx);
    }

    let mut merged: BTreeMap<Vec<MergeKey>, MergedGroup> = BTreeMap::new();
    for (pi, p) in partials.iter().enumerate() {
        for g in 0..p.groups {
            let key: Vec<MergeKey> = p.merge_keys.iter().map(|col| col[g].clone()).collect();
            let entry = merged.entry(key).or_insert_with(|| MergedGroup {
                rep: (pi, g),
                count: 0,
                accs: p
                    .accs
                    .iter()
                    .map(|a| match a {
                        AccColumn::Count(_) => AccVal::Count(0),
                        AccColumn::Sum(_) => AccVal::Sum(0.0),
                        AccColumn::Avg(_) => AccVal::Avg(0.0),
                        AccColumn::Min(_) => AccVal::Min(f32::INFINITY),
                        AccColumn::Max(_) => AccVal::Max(f32::NEG_INFINITY),
                        AccColumn::Moments { .. } => AccVal::Moments {
                            sum: 0.0,
                            sumsq: 0.0,
                        },
                    })
                    .collect(),
            });
            entry.count += p.counts[g];
            for (acc, col) in entry.accs.iter_mut().zip(&p.accs) {
                match (acc, col) {
                    (AccVal::Count(t), AccColumn::Count(v)) => *t += v[g],
                    (AccVal::Sum(t), AccColumn::Sum(v)) => *t += v[g],
                    (AccVal::Avg(t), AccColumn::Avg(v)) => *t += v[g],
                    (AccVal::Min(t), AccColumn::Min(v)) => *t = t.min(v[g]),
                    (AccVal::Max(t), AccColumn::Max(v)) => *t = t.max(v[g]),
                    (AccVal::Moments { sum, sumsq }, AccColumn::Moments { sum: s, sumsq: q }) => {
                        *sum += s[g];
                        *sumsq += q[g];
                    }
                    _ => unreachable!("partial accumulator kinds are per-aggregate"),
                }
            }
        }
    }

    let groups: Vec<(&Vec<MergeKey>, &MergedGroup)> = merged.iter().collect();
    let num_groups = groups.len();

    let mut out = Batch::new();
    // Key columns: gather first-seen representatives out of the
    // concatenated per-morsel representative columns (encoding-preserving
    // concat + one gather per key).
    let mut offsets = Vec::with_capacity(partials.len());
    let mut total = 0usize;
    for p in &partials {
        offsets.push(total);
        total += p.groups;
    }
    for (ki, key) in keys.iter().enumerate() {
        let parts: Vec<&EncodedTensor> = partials.iter().map(|p| &p.key_reps[ki]).collect();
        let combined = EncodedTensor::concat(&parts);
        let idx: Vec<i64> = groups
            .iter()
            .map(|(_, m)| (offsets[m.rep.0] + m.rep.1) as i64)
            .collect();
        out.push(
            key.name.clone(),
            ColumnData::Exact(combined.select_rows(&Tensor::from_vec(idx, &[num_groups]))),
        );
    }

    for (ai, agg) in aggregates.iter().enumerate() {
        let col = match agg.func {
            AggFunc::Count => EncodedTensor::I64(Tensor::from_vec(
                groups
                    .iter()
                    .map(|(_, m)| match m.accs[ai] {
                        AccVal::Count(v) => v,
                        _ => unreachable!(),
                    })
                    .collect(),
                &[num_groups],
            )),
            AggFunc::Sum => f32_out(&groups, |m| match m.accs[ai] {
                AccVal::Sum(v) => v,
                _ => unreachable!(),
            }),
            AggFunc::Avg => f32_out(&groups, |m| match m.accs[ai] {
                AccVal::Avg(v) => v / m.count as f32,
                _ => unreachable!(),
            }),
            AggFunc::Min => f32_out(&groups, |m| match m.accs[ai] {
                AccVal::Min(v) => v,
                _ => unreachable!(),
            }),
            AggFunc::Max => f32_out(&groups, |m| match m.accs[ai] {
                AccVal::Max(v) => v,
                _ => unreachable!(),
            }),
            AggFunc::Variance | AggFunc::Stddev => {
                let is_stddev = agg.func == AggFunc::Stddev;
                f32_out(&groups, |m| match m.accs[ai] {
                    AccVal::Moments { sum, sumsq } => {
                        let c = m.count as f64;
                        if c <= 1.0 {
                            return 0.0;
                        }
                        let var = ((sumsq - sum * sum / c) / (c - 1.0)).max(0.0);
                        if is_stddev {
                            var.sqrt() as f32
                        } else {
                            var as f32
                        }
                    }
                    _ => unreachable!(),
                })
            }
            AggFunc::CountDistinct => unreachable!("filtered by aggregate_fallback"),
        };
        out.push(agg.output.clone(), ColumnData::Exact(col));
    }
    Ok(out)
}

fn f32_out(
    groups: &[(&Vec<MergeKey>, &MergedGroup)],
    f: impl Fn(&MergedGroup) -> f32,
) -> EncodedTensor {
    EncodedTensor::F32(Tensor::from_vec(
        groups.iter().map(|(_, m)| f(m)).collect(),
        &[groups.len()],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::lower;
    use tdp_sql::plan::{build_plan, PlannerContext};
    use tdp_sql::{optimizer, parse};
    use tdp_storage::TableBuilder;

    fn setup(n: usize) -> Catalog {
        let catalog = Catalog::new();
        let tags: Vec<String> = (0..n).map(|i| format!("t{}", i % 7)).collect();
        catalog.register(
            TableBuilder::new()
                .col_f32("v", (0..n).map(|i| (i as f32 * 0.37).sin()).collect())
                .col_i64("k", (0..n).map(|i| (i % 13) as i64).collect())
                .col_str("tag", &tags)
                .build("t"),
        );
        catalog
    }

    fn run_with(catalog: &Catalog, sql: &str, threads: usize, morsel_rows: usize) -> Batch {
        let udfs = UdfRegistry::new();
        let ctx = ExecContext::new(catalog, &udfs).with_scheduler(threads, morsel_rows);
        let plan = optimizer::optimize(
            build_plan(&parse(sql).unwrap(), &PlannerContext::default()).unwrap(),
        );
        let phys = lower(&plan, catalog, &udfs).unwrap();
        crate::pipeline::execute(&phys, &ctx).unwrap()
    }

    fn assert_batches_equal(a: &Batch, b: &Batch, sql: &str) {
        assert_eq!(a.rows(), b.rows(), "{sql}");
        assert_eq!(a.names(), b.names(), "{sql}");
        for (name, col) in a.columns() {
            assert_eq!(
                col.to_exact().decode_strings(),
                b.column(name).unwrap().to_exact().decode_strings(),
                "{sql} / {name}"
            );
        }
    }

    #[test]
    fn morselized_chains_match_whole_batch_execution() {
        let c = setup(500);
        for sql in [
            "SELECT v FROM t WHERE v > 0.0",
            "SELECT v * 2 AS d, k FROM t WHERE k < 9",
            "SELECT tag, v FROM t WHERE tag = 't3'",
            "SELECT v FROM t WHERE v > 0.2 LIMIT 37",
            "SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY k",
            "SELECT tag, AVG(v), VARIANCE(v) FROM t WHERE v > -0.5 GROUP BY tag",
            "SELECT COUNT(*), SUM(v) FROM t WHERE v > 0.1",
        ] {
            let whole = run_with(&c, sql, 1, usize::MAX >> 1);
            for (threads, morsel) in [(1, 64), (3, 64), (2, 7), (5, 499)] {
                let m = run_with(&c, sql, threads, morsel);
                // Aggregated floats may differ in the last bit between the
                // whole-batch and morselized paths, but across thread
                // counts with a fixed morsel size they must be identical;
                // compare against the single-thread morselized run.
                let base = run_with(&c, sql, 1, morsel);
                assert_batches_equal(&m, &base, sql);
                // Row-wise pipelines are exactly equal to the whole batch.
                if !sql.contains("SUM") && !sql.contains("AVG") && !sql.contains("VARIANCE") {
                    assert_batches_equal(&m, &whole, sql);
                }
            }
        }
    }

    #[test]
    fn grouped_aggregates_match_sequential_values() {
        // Integer-exact aggregates are identical under any morselization.
        let c = setup(1000);
        let whole = run_with(
            &c,
            "SELECT k, COUNT(*) FROM t GROUP BY k",
            1,
            usize::MAX >> 1,
        );
        let m = run_with(&c, "SELECT k, COUNT(*) FROM t GROUP BY k", 4, 33);
        assert_batches_equal(&whole, &m, "count");
        // Float sums agree to tolerance.
        let ws = run_with(&c, "SELECT SUM(v) FROM t", 1, usize::MAX >> 1);
        let ms = run_with(&c, "SELECT SUM(v) FROM t", 4, 100);
        let a = ws.column("SUM(v)").unwrap().to_exact().decode_f32().at(0);
        let b = ms.column("SUM(v)").unwrap().to_exact().decode_f32().at(0);
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn limit_early_exit_is_a_clean_prefix() {
        let c = setup(200);
        for limit in [0, 1, 6, 7, 8, 63, 64, 65, 199, 200, 500] {
            let sql = format!("SELECT k FROM t LIMIT {limit}");
            let out = run_with(&c, &sql, 3, 8);
            let expect: Vec<i64> = (0..200i64.min(limit)).map(|i| i % 13).collect();
            assert_eq!(
                out.column("k").unwrap().to_exact().decode_i64().to_vec(),
                expect,
                "{sql}"
            );
        }
    }

    #[test]
    fn unsafe_chains_fall_back_to_sequential() {
        use crate::udf::{ArgValue, ScalarUdf};
        use std::sync::Arc;
        struct PlusOne;
        impl ScalarUdf for PlusOne {
            fn name(&self) -> &str {
                "plus_one"
            }
            fn invoke(
                &self,
                args: &[ArgValue],
                _ctx: &ExecContext,
            ) -> Result<EncodedTensor, ExecError> {
                Ok(EncodedTensor::F32(
                    args[0].as_column()?.decode_f32().add_scalar(1.0),
                ))
            }
        }
        let c = setup(100);
        let mut udfs = UdfRegistry::new();
        udfs.register_scalar(Arc::new(PlusOne));
        let ctx = ExecContext::new(&c, &udfs).with_scheduler(4, 10);
        let plan = optimizer::optimize(
            build_plan(
                &parse("SELECT plus_one(v) AS w FROM t WHERE plus_one(v) > 1.0").unwrap(),
                &PlannerContext::default(),
            )
            .unwrap(),
        );
        let phys = lower(&plan, &c, &udfs).unwrap();
        let out = crate::pipeline::execute(&phys, &ctx).unwrap();
        assert!(out.rows() > 0);
        assert!(out
            .column("w")
            .unwrap()
            .to_exact()
            .decode_f32()
            .to_vec()
            .iter()
            .all(|&w| w > 1.0));
    }
}
