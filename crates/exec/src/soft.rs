//! Soft (differentiable) relational operator kernels.
//!
//! These implement the paper's §4: continuous relaxations of discrete
//! operators. `soft_count` over a probability-encoded column is a column
//! sum; grouped counting over several PE columns is an iterated Khatri-Rao
//! (row-wise Kronecker) product followed by a column sum — additions and
//! multiplications only, hence exactly differentiable. Relaxed predicates
//! are logistic functions of the score margin, producing row *weights*
//! threaded through downstream aggregates instead of discarding rows.

use tdp_autodiff::Var;
use tdp_tensor::{F32Tensor, Tensor};

/// Row-wise Kronecker (Khatri-Rao) product: `[N, A] ⊗ [N, B] -> [N, A*B]`,
/// with output column `a * B + b` holding `lhs[:, a] * rhs[:, b]`.
pub fn khatri_rao(lhs: &Var, rhs: &Var) -> Var {
    let (n, a) = (lhs.shape()[0], lhs.shape()[1]);
    let (n2, b) = (rhs.shape()[0], rhs.shape()[1]);
    assert_eq!(n, n2, "khatri_rao row mismatch: {n} vs {n2}");
    let l3 = lhs.reshape(&[n, a, 1]);
    let r3 = rhs.reshape(&[n, 1, b]);
    l3.mul(&r3).reshape(&[n, a * b])
}

/// Joint membership matrix of several PE columns: `[N, C1*C2*...*Ck]`,
/// groups ordered lexicographically by class index (first column most
/// significant). With one column this is the column itself.
pub fn joint_membership(pe_cols: &[&Var]) -> Var {
    assert!(!pe_cols.is_empty(), "joint membership of zero columns");
    let mut joint = pe_cols[0].clone();
    for col in &pe_cols[1..] {
        joint = khatri_rao(&joint, col);
    }
    joint
}

/// Expand class-value vectors into the cartesian key columns matching the
/// group order of [`joint_membership`]: returns one `[G]` tensor per input
/// column, `G = prod(len(values_i))`.
pub fn expand_group_keys(class_values: &[&F32Tensor]) -> Vec<F32Tensor> {
    assert!(!class_values.is_empty(), "no key columns");
    let sizes: Vec<usize> = class_values.iter().map(|v| v.numel()).collect();
    let groups: usize = sizes.iter().product();
    let mut out = Vec::with_capacity(class_values.len());
    for (k, vals) in class_values.iter().enumerate() {
        // Stride pattern: repeat each value `inner` times, tile `outer` times.
        let inner: usize = sizes[k + 1..].iter().product();
        let outer: usize = sizes[..k].iter().product();
        let mut col = Vec::with_capacity(groups);
        for _ in 0..outer {
            for v in vals.data() {
                for _ in 0..inner {
                    col.push(*v);
                }
            }
        }
        out.push(Tensor::from_vec(col, &[groups]));
    }
    out
}

/// Differentiable grouped COUNT(*): column sums of the (optionally
/// weighted) joint membership matrix. Returns a `[G]` Var.
pub fn soft_groupby_count(joint: &Var, weights: Option<&Var>) -> Var {
    let weighted = apply_weights(joint, weights);
    weighted.sum_dim(0, false)
}

/// Differentiable grouped SUM(values): `jointᵀ · (w ⊙ values)`.
pub fn soft_groupby_sum(joint: &Var, values: &Var, weights: Option<&Var>) -> Var {
    let n = joint.shape()[0];
    assert_eq!(values.shape(), vec![n], "one value per row");
    let weighted_vals = match weights {
        Some(w) => values.mul(w),
        None => values.clone(),
    };
    joint
        .transpose()
        .matmul(&weighted_vals.reshape(&[n, 1]))
        .reshape(&[joint.shape()[1]])
}

/// Differentiable grouped AVG: soft sum / soft count, with an epsilon so
/// empty groups yield ~0 instead of NaN.
pub fn soft_groupby_avg(joint: &Var, values: &Var, weights: Option<&Var>) -> Var {
    let sums = soft_groupby_sum(joint, values, weights);
    let counts = soft_groupby_count(joint, weights).add_scalar(1e-9);
    sums.div(&counts)
}

/// Differentiable global COUNT(*) under soft weights: the weight sum.
pub fn soft_global_count(weights: &Var) -> Var {
    weights.sum()
}

/// Relaxed threshold predicate: `σ((score − θ) / τ)`. As τ → 0 this
/// approaches the exact step function; at inference the executor swaps in
/// the exact comparison (paper §4).
pub fn soft_gt(score: &Var, threshold: f32, temperature: f32) -> Var {
    assert!(temperature > 0.0, "temperature must be positive");
    score
        .sub_scalar(threshold)
        .div_scalar(temperature)
        .sigmoid()
}

/// Relaxed `<`: complement of [`soft_gt`].
pub fn soft_lt(score: &Var, threshold: f32, temperature: f32) -> Var {
    soft_gt(score, threshold, temperature).neg().add_scalar(1.0)
}

/// NeuralSort relaxation of the sort permutation (Grover et al. 2019; one
/// of the continuous relaxations the paper's §4 points to). For scores `s`
/// `[N]`, row `i` of the returned `[N, N]` matrix is a softmax that peaks
/// at the index of the i-th largest (or smallest) score:
///
/// `P[i, j] = softmax_j(((N + 1 − 2(i+1))·s_j − Σ_k |s_j − s_k|) / τ)`.
///
/// As τ → 0 the matrix approaches the exact permutation matrix of the
/// sort; at any τ > 0 it is differentiable in `s`.
pub fn soft_sort_matrix(scores: &Var, descending: bool, temperature: f32) -> Var {
    assert!(temperature > 0.0, "temperature must be positive");
    let n = scores.shape()[0];
    let s = if descending {
        scores.clone()
    } else {
        scores.neg()
    };
    // Pairwise |s_j − s_k| column sums: [N].
    let col = s.reshape(&[n, 1]);
    let row = s.reshape(&[1, n]);
    let abs_sum = col.sub(&row).abs().sum_dim(0, false); // Σ_k |s_j − s_k|
                                                         // Rank coefficients (N+1−2(i+1)) as a constant column.
    let coef: Vec<f32> = (1..=n).map(|i| (n as f32) + 1.0 - 2.0 * i as f32).collect();
    let coef = Var::constant(Tensor::from_vec(coef, &[n, 1]));
    let logits = coef
        .mul(&s.reshape(&[1, n]))
        .sub(&abs_sum.reshape(&[1, n]))
        .div_scalar(temperature);
    logits.softmax(1)
}

/// Relaxed top-k membership weights: the column sums of the first `k` rows
/// of the [`soft_sort_matrix`]. Row weights approach 1 for the exact top-k
/// rows and 0 elsewhere as τ → 0; the trainable executor threads them
/// through downstream soft aggregates instead of cutting rows — the
/// differentiable twin of `ORDER BY … LIMIT k`.
pub fn soft_topk_weights(scores: &Var, k: usize, descending: bool, temperature: f32) -> Var {
    let n = scores.shape()[0];
    let k = k.min(n);
    if k == 0 {
        return Var::constant(F32Tensor::zeros(&[n]));
    }
    let p = soft_sort_matrix(scores, descending, temperature);
    p.narrow(0, 0, k).sum_dim(0, false)
}

fn apply_weights(joint: &Var, weights: Option<&Var>) -> Var {
    match weights {
        Some(w) => {
            let n = joint.shape()[0];
            assert_eq!(w.shape(), vec![n], "one weight per row");
            joint.mul(&w.reshape(&[n, 1]))
        }
        None => joint.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_autodiff::gradcheck::check_gradients;

    fn onehot_var(ids: &[usize], classes: usize) -> Var {
        let mut data = vec![0.0f32; ids.len() * classes];
        for (i, &c) in ids.iter().enumerate() {
            data[i * classes + c] = 1.0;
        }
        Var::constant(Tensor::from_vec(data, &[ids.len(), classes]))
    }

    #[test]
    fn khatri_rao_small_case() {
        let a = Var::constant(Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], &[2, 2]));
        let b = Var::constant(Tensor::from_vec(vec![5.0f32, 6.0, 7.0, 8.0], &[2, 2]));
        let k = khatri_rao(&a, &b);
        assert_eq!(k.shape(), vec![2, 4]);
        assert_eq!(
            k.value().to_vec(),
            vec![5.0, 6.0, 10.0, 12.0, 21.0, 24.0, 28.0, 32.0]
        );
    }

    #[test]
    fn soft_count_on_onehot_equals_exact_contingency() {
        // digits: [2, 0, 2, 1], sizes: [1, 0, 1, 1]
        let digit = onehot_var(&[2, 0, 2, 1], 3);
        let size = onehot_var(&[1, 0, 1, 1], 2);
        let joint = joint_membership(&[&digit, &size]);
        let counts = soft_groupby_count(&joint, None).value();
        // Group order: (d0,s0),(d0,s1),(d1,s0),(d1,s1),(d2,s0),(d2,s1)
        assert_eq!(counts.to_vec(), vec![1.0, 0.0, 0.0, 1.0, 0.0, 2.0]);
        assert_eq!(counts.sum(), 4.0, "total mass equals row count");
    }

    #[test]
    fn expand_group_keys_lexicographic() {
        let d = Tensor::from_vec(vec![0.0f32, 1.0, 2.0], &[3]);
        let s = Tensor::from_vec(vec![10.0f32, 20.0], &[2]);
        let keys = expand_group_keys(&[&d, &s]);
        assert_eq!(keys[0].to_vec(), vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        assert_eq!(keys[1].to_vec(), vec![10.0, 20.0, 10.0, 20.0, 10.0, 20.0]);
    }

    #[test]
    fn weighted_counts_scale_rows() {
        let digit = onehot_var(&[0, 1], 2);
        let w = Var::constant(Tensor::from_vec(vec![0.25f32, 0.75], &[2]));
        let counts = soft_groupby_count(&digit, Some(&w)).value();
        assert_eq!(counts.to_vec(), vec![0.25, 0.75]);
    }

    #[test]
    fn soft_sum_and_avg() {
        let groups = onehot_var(&[0, 1, 0], 2);
        let vals = Var::constant(Tensor::from_vec(vec![10.0f32, 100.0, 30.0], &[3]));
        let sums = soft_groupby_sum(&groups, &vals, None).value();
        assert_eq!(sums.to_vec(), vec![40.0, 100.0]);
        let avgs = soft_groupby_avg(&groups, &vals, None).value();
        assert!((avgs.at(0) - 20.0).abs() < 1e-4);
        assert!((avgs.at(1) - 100.0).abs() < 1e-4);
    }

    #[test]
    fn soft_gt_approaches_step() {
        let s = Var::constant(Tensor::from_vec(vec![0.0f32, 0.79, 0.81, 2.0], &[4]));
        let sharp = soft_gt(&s, 0.8, 0.001).value();
        assert!(sharp.at(0) < 1e-3 && sharp.at(1) < 0.01);
        assert!(sharp.at(2) > 0.99 && sharp.at(3) > 0.999);
        let smooth = soft_gt(&s, 0.8, 1.0).value();
        assert!(smooth.at(1) > 0.4 && smooth.at(2) < 0.6, "high τ is soft");
        let lt = soft_lt(&s, 0.8, 0.001).value();
        assert!(lt.at(0) > 0.999 && lt.at(3) < 1e-3);
    }

    #[test]
    fn gradients_flow_through_soft_groupby() {
        // d(count)/d(prob) checked against finite differences.
        let probs = vec![0.6f32, 0.4, 0.3, 0.7, 0.5, 0.5];
        check_gradients(
            &[probs],
            &[vec![3, 2]],
            |vars| {
                // Weighted "loss" over soft counts to give non-trivial grads.
                let w = Var::constant(Tensor::from_vec(vec![1.0f32, 3.0], &[2]));
                soft_groupby_count(&vars[0], None).mul(&w).sum()
            },
            1e-2,
        );
    }

    #[test]
    fn gradients_flow_through_khatri_rao_and_weights() {
        let a = vec![0.7f32, 0.3, 0.2, 0.8];
        let b = vec![0.1f32, 0.9, 0.5, 0.5];
        let w = vec![0.9f32, 0.4];
        check_gradients(
            &[a, b, w],
            &[vec![2, 2], vec![2, 2], vec![2]],
            |vars| {
                let joint = khatri_rao(&vars[0], &vars[1]);
                let target = Var::constant(Tensor::from_vec(vec![0.5f32, 0.0, 0.0, 0.5], &[4]));
                soft_groupby_count(&joint, Some(&vars[2]))
                    .sub(&target)
                    .square()
                    .sum()
            },
            2e-2,
        );
    }

    #[test]
    fn soft_sort_matrix_recovers_permutation_at_low_temperature() {
        let s = Var::constant(Tensor::from_vec(vec![0.3f32, 0.9, 0.1, 0.5], &[4]));
        let p = soft_sort_matrix(&s, true, 0.01).value();
        // Descending order of scores: rows should peak at 1, 3, 0, 2.
        let expected = [1usize, 3, 0, 2];
        for (i, &j) in expected.iter().enumerate() {
            assert!(
                p.get(&[i, j]) > 0.99,
                "row {i} should peak at column {j}: {:?}",
                p.to_vec()
            );
        }
        // Rows are stochastic.
        let row_sums = p.sum_dim(1, false);
        assert!(row_sums.data().iter().all(|&r| (r - 1.0).abs() < 1e-4));
    }

    #[test]
    fn soft_topk_weights_select_topk_rows() {
        let s = Var::constant(Tensor::from_vec(vec![0.3f32, 0.9, 0.1, 0.5], &[4]));
        let w = soft_topk_weights(&s, 2, true, 0.01).value();
        assert!(w.at(1) > 0.99 && w.at(3) > 0.99, "{:?}", w.to_vec());
        assert!(w.at(0) < 0.01 && w.at(2) < 0.01, "{:?}", w.to_vec());
        // Ascending selects the smallest instead.
        let w_asc = soft_topk_weights(&s, 2, false, 0.01).value();
        assert!(
            w_asc.at(2) > 0.99 && w_asc.at(0) > 0.99,
            "{:?}",
            w_asc.to_vec()
        );
        // Total mass is k regardless of temperature.
        let w_soft = soft_topk_weights(&s, 2, true, 1.0).value();
        assert!((w_soft.sum() - 2.0).abs() < 1e-4);
        // k = 0 and k > n degenerate sensibly.
        assert_eq!(soft_topk_weights(&s, 0, true, 0.1).value().sum(), 0.0);
        assert!((soft_topk_weights(&s, 9, true, 0.01).value().sum() - 4.0).abs() < 1e-3);
    }

    #[test]
    fn gradients_flow_through_soft_topk() {
        let scores = vec![0.2f32, 0.8, 0.5];
        check_gradients(
            &[scores],
            &[vec![3]],
            |vars| {
                // Loss: weighted sum of fixed values under top-2 weights.
                let vals = Var::constant(Tensor::from_vec(vec![1.0f32, 2.0, 3.0], &[3]));
                soft_topk_weights(&vars[0], 2, true, 0.5).mul(&vals).sum()
            },
            2e-2,
        );
    }

    #[test]
    fn soft_equals_exact_under_onehot_and_binary_weights() {
        // Property at the heart of the inference-time swap: one-hot PE plus
        // 0/1 weights make every soft operator exact.
        let digit = onehot_var(&[1, 0, 1, 1, 0], 2);
        let w = Var::constant(Tensor::from_vec(vec![1.0f32, 0.0, 1.0, 1.0, 1.0], &[5]));
        let counts = soft_groupby_count(&digit, Some(&w)).value();
        // Rows kept: 0(d1), 2(d1), 3(d1), 4(d0) -> d0:1, d1:3
        assert_eq!(counts.to_vec(), vec![1.0, 3.0]);
    }
}
