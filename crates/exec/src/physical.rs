//! The physical plan: a logical plan lowered once, executed many times.
//!
//! This is the compile step the paper's "query as a PyTorch model" story
//! implies (and that TQP makes explicit): [`lower`] walks the
//! [`LogicalPlan`] a single time, propagating output schemas through the
//! operator tree, resolving every column reference to a **slot index**,
//! resolving functions (session UDF vs. built-in) and lowering scalar
//! subqueries into nested physical plans. The exact and differentiable
//! executors both consume the result, so per-run work is pure kernel
//! dispatch — no name lookups, no AST re-walking, no function-registry
//! probing on the per-batch path.
//!
//! Schemas are not always statically known: table-valued functions emit
//! whatever relation their implementation builds, so expressions above a
//! TVF fall back to [`ColumnRef::Name`], resolved per batch through the
//! O(1) name→slot map on [`crate::Batch`]. Tables missing from the
//! catalog at compile time likewise lower to schema-less scans and keep
//! their "unknown table" error at run time, which preserves the
//! re-registration workflow of paper Listing 5.

use std::sync::Arc;

use tdp_index::Metric;
use tdp_sql::ast::{
    AggFunc, BinOp, Expr, JoinKind, LimitCount, Literal, OrderItem, SelectItem, UnOp, WindowFunc,
};
use tdp_sql::plan::{AggregateExpr, LogicalPlan, WindowExpr};
use tdp_storage::Catalog;

use crate::access::{AnnPath, ChunkPruner};
use crate::error::ExecError;
use crate::udf::{ArgType, UdfRegistry};

// ----------------------------------------------------------------------
// Schemas
// ----------------------------------------------------------------------

/// Ordered output column names of a plan node, as propagated at compile
/// time. Lookup is case-insensitive, first match wins — the same
/// resolution rule the batches apply at run time.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    names: Vec<String>,
}

impl Schema {
    pub fn new(names: Vec<String>) -> Schema {
        Schema { names }
    }

    pub fn names(&self) -> &[String] {
        &self.names
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// First slot whose name matches, case-insensitively.
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n.eq_ignore_ascii_case(name))
    }
}

// ----------------------------------------------------------------------
// Compiled expressions
// ----------------------------------------------------------------------

/// A column reference after compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnRef {
    /// Resolved to a slot index at compile time; the name is kept for
    /// diagnostics and EXPLAIN output.
    Slot { slot: usize, name: String },
    /// Schema was unknown at compile time (downstream of a TVF); resolved
    /// per batch through the O(1) name index.
    Name(String),
}

impl ColumnRef {
    pub fn name(&self) -> &str {
        match self {
            ColumnRef::Slot { name, .. } | ColumnRef::Name(name) => name,
        }
    }

    /// Resolve against a batch.
    pub fn resolve<'a>(&self, batch: &'a crate::Batch) -> Result<&'a crate::ColumnData, ExecError> {
        match self {
            ColumnRef::Slot { slot, name } => batch.column_at(*slot).ok_or_else(|| {
                ExecError::TypeMismatch(format!(
                    "slot {slot} ('{name}') out of range — plan and batch schema diverged"
                ))
            }),
            ColumnRef::Name(name) => batch.column(name),
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnRef::Slot { slot, name } => write!(f, "{name}@{slot}"),
            ColumnRef::Name(name) => write!(f, "{name}"),
        }
    }
}

/// A built-in scalar math kernel, resolved at compile time.
#[derive(Debug, Clone, Copy)]
pub enum ScalarFn {
    Unary(fn(f32) -> f32),
    Binary(fn(f32, f32) -> f32),
    /// Vector-similarity kernel: `f(embedding_col, query)` scores every
    /// row of an `[n, d]` embedding column against one query vector
    /// (`distance`, `inner_product`, `cosine_sim`). The score math is
    /// [`Metric::scores`] — the same kernel the vector indexes use, so a
    /// sequential scan computing this expression is bit-identical to the
    /// flat index path.
    Vector(Metric),
}

impl PartialEq for ScalarFn {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ScalarFn::Unary(a), ScalarFn::Unary(b)) => std::ptr::fn_addr_eq(*a, *b),
            (ScalarFn::Binary(a), ScalarFn::Binary(b)) => std::ptr::fn_addr_eq(*a, *b),
            (ScalarFn::Vector(a), ScalarFn::Vector(b)) => a == b,
            _ => false,
        }
    }
}

impl ScalarFn {
    pub fn arity(self) -> usize {
        match self {
            ScalarFn::Unary(_) => 1,
            ScalarFn::Binary(_) | ScalarFn::Vector(_) => 2,
        }
    }
}

/// An expression program with columns resolved to slots. Shared by the
/// exact and differentiable evaluators; they differ only in the kernels
/// they dispatch to.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    Column(ColumnRef),
    Num(f64),
    Str(String),
    Bool(bool),
    Binary {
        op: BinOp,
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
    },
    Unary {
        op: UnOp,
        expr: Box<CompiledExpr>,
    },
    /// Session scalar UDF, re-resolved from the registry per run so UDF
    /// re-registration keeps working.
    Udf {
        name: String,
        args: Vec<CompiledExpr>,
    },
    /// Built-in math function with its kernel resolved at compile time
    /// (the name is kept for the differentiable lowering and EXPLAIN).
    Builtin {
        name: String,
        func: ScalarFn,
        args: Vec<CompiledExpr>,
    },
    Case {
        operand: Option<Box<CompiledExpr>>,
        branches: Vec<(CompiledExpr, CompiledExpr)>,
        else_expr: Option<Box<CompiledExpr>>,
    },
    InList {
        expr: Box<CompiledExpr>,
        list: Vec<CompiledExpr>,
        negated: bool,
    },
    Like {
        expr: Box<CompiledExpr>,
        pattern: String,
        negated: bool,
    },
    /// Uncorrelated scalar subquery, lowered into its own physical plan at
    /// compile time.
    ScalarSubquery(Arc<PhysicalPlan>),
    /// Statement parameter slot (`$1`-style). Plans carry no value for it;
    /// the executors resolve it against [`crate::ExecContext::params`],
    /// which is what makes a compiled plan reusable across bindings.
    Param {
        idx: usize,
    },
}

impl CompiledExpr {
    /// Visit this expression and every sub-expression, pre-order. Scalar
    /// subqueries are visited as single nodes — their nested plans are
    /// not entered; match on [`CompiledExpr::ScalarSubquery`] in the
    /// callback to descend explicitly. The one traversal behind
    /// [`CompiledExpr::visit_subplans`], [`CompiledExpr::collect_params`]
    /// and signature validation.
    pub fn for_each(&self, f: &mut impl FnMut(&CompiledExpr)) {
        f(self);
        match self {
            CompiledExpr::Binary { left, right, .. } => {
                left.for_each(f);
                right.for_each(f);
            }
            CompiledExpr::Unary { expr, .. } | CompiledExpr::Like { expr, .. } => expr.for_each(f),
            CompiledExpr::Udf { args, .. } | CompiledExpr::Builtin { args, .. } => {
                args.iter().for_each(|a| a.for_each(f));
            }
            CompiledExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.for_each(f);
                }
                for (w, t) in branches {
                    w.for_each(f);
                    t.for_each(f);
                }
                if let Some(e) = else_expr {
                    e.for_each(f);
                }
            }
            CompiledExpr::InList { expr, list, .. } => {
                expr.for_each(f);
                list.iter().for_each(|i| i.for_each(f));
            }
            CompiledExpr::Column(_)
            | CompiledExpr::Num(_)
            | CompiledExpr::Str(_)
            | CompiledExpr::Bool(_)
            | CompiledExpr::Param { .. }
            | CompiledExpr::ScalarSubquery(_) => {}
        }
    }

    /// Call `f` on every lowered scalar-subquery plan reachable from this
    /// expression (including subqueries nested inside subquery arguments).
    pub fn visit_subplans(&self, f: &mut impl FnMut(&PhysicalPlan)) {
        self.for_each(&mut |e| {
            if let CompiledExpr::ScalarSubquery(p) = e {
                f(p);
            }
        });
    }

    /// Collect every parameter slot referenced by this expression,
    /// including slots inside lowered scalar subqueries.
    pub fn collect_params(&self, out: &mut Vec<usize>) {
        self.for_each(&mut |e| match e {
            CompiledExpr::Param { idx } => out.push(*idx),
            CompiledExpr::ScalarSubquery(p) => p.collect_params_into(out),
            _ => {}
        });
    }
}

impl std::fmt::Display for CompiledExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompiledExpr::Column(c) => write!(f, "{c}"),
            CompiledExpr::Num(n) => write!(f, "{n}"),
            CompiledExpr::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            CompiledExpr::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            CompiledExpr::Binary { op, left, right } => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                    BinOp::Eq => "=",
                    BinOp::NotEq => "<>",
                    BinOp::Lt => "<",
                    BinOp::LtEq => "<=",
                    BinOp::Gt => ">",
                    BinOp::GtEq => ">=",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                };
                write!(f, "({left} {sym} {right})")
            }
            CompiledExpr::Unary {
                op: UnOp::Neg,
                expr,
            } => write!(f, "(-{expr})"),
            CompiledExpr::Unary {
                op: UnOp::Not,
                expr,
            } => write!(f, "(NOT {expr})"),
            CompiledExpr::Udf { name, args } | CompiledExpr::Builtin { name, args, .. } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            CompiledExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            CompiledExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "))")
            }
            CompiledExpr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE '{}')",
                if *negated { "NOT " } else { "" },
                pattern.replace('\'', "''")
            ),
            // The nested tree would wreck single-line rendering; its
            // fingerprint keeps the parent's explain (and therefore the
            // parent's fingerprint) sensitive to the subquery's content.
            CompiledExpr::ScalarSubquery(p) => {
                write!(f, "(<subquery fp:{:016x}>)", p.fingerprint())
            }
            CompiledExpr::Param { idx } => write!(f, "${}", idx + 1),
        }
    }
}

// ----------------------------------------------------------------------
// Physical operator tree
// ----------------------------------------------------------------------

/// One compiled projection item.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysProjectItem {
    pub name: String,
    pub expr: CompiledExpr,
}

/// One compiled GROUP BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysKey {
    pub name: String,
    pub expr: CompiledExpr,
}

/// One compiled aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysAggregate {
    pub func: AggFunc,
    /// `None` encodes `COUNT(*)`.
    pub arg: Option<CompiledExpr>,
    pub output: String,
}

/// One compiled sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysOrderKey {
    pub expr: CompiledExpr,
    pub desc: bool,
}

impl std::fmt::Display for PhysOrderKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.expr, if self.desc { " DESC" } else { "" })
    }
}

/// Window function with its argument compiled.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysWindowFunc {
    RowNumber,
    Rank,
    DenseRank,
    Agg {
        func: AggFunc,
        arg: Option<CompiledExpr>,
    },
}

/// One compiled window computation.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysWindow {
    pub func: PhysWindowFunc,
    pub partition_by: Vec<CompiledExpr>,
    pub order_by: Vec<PhysOrderKey>,
    pub output: String,
}

/// Join keys after compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinOn {
    /// Key sides resolved at compile time: `(left column, right column)`.
    Resolved(Vec<(ColumnRef, ColumnRef)>),
    /// An input schema was unknown at compile time; each `(a, b)` equality
    /// is side-probed against the actual batches per run.
    Deferred(Vec<(String, String)>),
}

/// How a base-table scan reads its morsels, decided once at lower time.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanAccess {
    /// No leading filter above this scan: every morsel is read.
    Full,
    /// Eligible conjuncts of the leading filter compiled into a
    /// [`ChunkPruner`]; the morsel scheduler consults per-chunk zone maps
    /// and skips whole morsels before any chain kernel runs.
    Pruned(ChunkPruner),
    /// A leading filter exists but no conjunct was eligible for pruning;
    /// the named reason surfaces in EXPLAIN as `[full scan: <reason>]`.
    Unpruned(&'static str),
}

/// The slot-resolved operator tree both executors run.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    Scan {
        table: String,
        /// Column names observed at compile time; `None` when the table
        /// was not in the catalog yet. Validated against the live table on
        /// every run so stale slots fail loudly instead of silently
        /// reading the wrong column.
        schema: Option<Vec<String>>,
        /// Zone-map access path chosen when a filter sits directly above.
        access: ScanAccess,
    },
    TvfScan {
        name: String,
        /// Output columns the TVF declared at compile time
        /// ([`crate::udf::OutputSchema`]); `None` keeps the dynamic
        /// by-name behaviour. When present, downstream expressions are
        /// slot-resolved through it and the executor checks the actual
        /// output against it.
        schema: Option<Vec<String>>,
        input: Box<PhysicalPlan>,
    },
    TvfProject {
        name: String,
        args: Vec<CompiledExpr>,
        /// Declared output columns (same contract as the `schema` field
        /// of [`PhysicalPlan::TvfScan`]).
        schema: Option<Vec<String>>,
        input: Box<PhysicalPlan>,
    },
    Filter {
        predicate: CompiledExpr,
        input: Box<PhysicalPlan>,
    },
    Project {
        items: Vec<PhysProjectItem>,
        input: Box<PhysicalPlan>,
    },
    Aggregate {
        keys: Vec<PhysKey>,
        aggregates: Vec<PhysAggregate>,
        input: Box<PhysicalPlan>,
    },
    Join {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        kind: JoinKind,
        on: JoinOn,
    },
    Sort {
        keys: Vec<PhysOrderKey>,
        input: Box<PhysicalPlan>,
    },
    Limit {
        n: LimitCount,
        input: Box<PhysicalPlan>,
    },
    TopK {
        keys: Vec<PhysOrderKey>,
        n: LimitCount,
        input: Box<PhysicalPlan>,
    },
    Window {
        windows: Vec<PhysWindow>,
        input: Box<PhysicalPlan>,
    },
    Distinct {
        input: Box<PhysicalPlan>,
    },
    UnionAll {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
    },
    /// Index-accelerated vector top-k: `ORDER BY distance(col, $q) LIMIT k`
    /// (and the similarity variants) recognized over a bare base-table
    /// scan. A leaf — it reads the table directly through
    /// [`crate::access::AnnPath`], either exact (flat) or via a registered
    /// IVF index with a declared recall trade-off.
    AnnTopK {
        table: String,
        /// Compile-time schema of the base table (recognition requires it).
        schema: Vec<String>,
        /// The embedding column, slot-resolved.
        column: ColumnRef,
        /// Row-constant query vector: a `$n` parameter slot or a literal.
        query: CompiledExpr,
        metric: Metric,
        n: LimitCount,
        path: AnnPath,
    },
}

impl PhysicalPlan {
    /// Children of this node (0, 1 or 2).
    pub fn inputs(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::Scan { .. } | PhysicalPlan::AnnTopK { .. } => vec![],
            PhysicalPlan::TvfScan { input, .. }
            | PhysicalPlan::TvfProject { input, .. }
            | PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Aggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::TopK { input, .. }
            | PhysicalPlan::Window { input, .. }
            | PhysicalPlan::Distinct { input } => vec![input],
            PhysicalPlan::Join { left, right, .. } | PhysicalPlan::UnionAll { left, right } => {
                vec![left, right]
            }
        }
    }

    /// EXPLAIN-style rendering with resolved slots
    /// (`Filter: (price@0 > 2.5)`).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            PhysicalPlan::Scan {
                table,
                schema,
                access,
            } => {
                let note = match access {
                    ScanAccess::Full => String::new(),
                    ScanAccess::Pruned(p) => format!(
                        " [zone-maps: {} predicate{}]",
                        p.len(),
                        if p.len() == 1 { "" } else { "s" }
                    ),
                    ScanAccess::Unpruned(reason) => format!(" [full scan: {reason}]"),
                };
                match schema {
                    Some(names) => {
                        let cols: Vec<String> = names
                            .iter()
                            .enumerate()
                            .map(|(i, n)| format!("{n}@{i}"))
                            .collect();
                        out.push_str(&format!("Scan: {table} [{}]{note}\n", cols.join(", ")));
                    }
                    None => out.push_str(&format!("Scan: {table} [schema unresolved]{note}\n")),
                }
            }
            PhysicalPlan::TvfScan { name, schema, .. } => {
                out.push_str(&format!("TvfScan: {name}{}\n", render_tvf_schema(schema)))
            }
            PhysicalPlan::TvfProject {
                name, args, schema, ..
            } => {
                let rendered: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                out.push_str(&format!(
                    "TvfProject: {name}({}){}\n",
                    rendered.join(", "),
                    render_tvf_schema(schema)
                ));
            }
            PhysicalPlan::Filter { predicate, .. } => {
                out.push_str(&format!("Filter: {predicate}\n"))
            }
            PhysicalPlan::Project { items, .. } => {
                let rendered: Vec<String> = items
                    .iter()
                    .map(|i| format!("{} AS {}", i.expr, i.name))
                    .collect();
                out.push_str(&format!("Project: {}\n", rendered.join(", ")));
            }
            PhysicalPlan::Aggregate {
                keys, aggregates, ..
            } => {
                let key_txt: Vec<String> = keys.iter().map(|k| k.expr.to_string()).collect();
                let agg_txt: Vec<String> = aggregates
                    .iter()
                    .map(|a| match &a.arg {
                        Some(e) => format!("{}({e})", a.func.name()),
                        None => format!("{}(*)", a.func.name()),
                    })
                    .collect();
                out.push_str(&format!(
                    "Aggregate: keys=[{}] aggs=[{}]\n",
                    key_txt.join(", "),
                    agg_txt.join(", ")
                ));
            }
            PhysicalPlan::Join { kind, on, .. } => {
                let on_txt = match on {
                    JoinOn::Resolved(pairs) => pairs
                        .iter()
                        .map(|(l, r)| format!("{l} = {r}"))
                        .collect::<Vec<_>>()
                        .join(" AND "),
                    JoinOn::Deferred(pairs) => pairs
                        .iter()
                        .map(|(l, r)| format!("{l} = {r} [deferred]"))
                        .collect::<Vec<_>>()
                        .join(" AND "),
                };
                out.push_str(&format!("Join: {kind:?} ON {on_txt}\n"));
            }
            PhysicalPlan::Sort { keys, .. } => {
                let rendered: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
                out.push_str(&format!("Sort: {}\n", rendered.join(", ")));
            }
            PhysicalPlan::Limit { n, .. } => out.push_str(&format!("Limit: {n}\n")),
            PhysicalPlan::TopK { keys, n, input } => {
                let rendered: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
                let note = match ann_fallback_reason(keys, input) {
                    Some(reason) => format!(" [full scan: {reason}]"),
                    None => String::new(),
                };
                out.push_str(&format!("TopK: {} LIMIT {n}{note}\n", rendered.join(", ")));
            }
            PhysicalPlan::Window { windows, .. } => {
                let rendered: Vec<String> = windows.iter().map(|w| w.output.clone()).collect();
                out.push_str(&format!("Window: {}\n", rendered.join(", ")));
            }
            PhysicalPlan::Distinct { .. } => out.push_str("Distinct\n"),
            PhysicalPlan::UnionAll { .. } => out.push_str("UnionAll\n"),
            PhysicalPlan::AnnTopK {
                table,
                column,
                query,
                metric,
                n,
                path,
                ..
            } => {
                out.push_str(&format!(
                    "AnnTopK: {table} ORDER BY {}({column}, {query}) LIMIT {n} [{path}]\n",
                    metric_fn_name(*metric)
                ));
            }
        }
        for child in self.inputs() {
            child.explain_into(out, depth + 1);
        }
    }

    /// Stable fingerprint of the compiled plan (FNV-1a over the explain
    /// rendering, which captures operators, slots and literals). Two
    /// compilations of the same SQL against the same catalog/registry
    /// state produce identical fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.explain().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Sorted, deduplicated parameter slots referenced anywhere in the
    /// plan (including scalar subqueries) — what EXPLAIN reports and what
    /// a binding must cover.
    pub fn param_indices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_params_into(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_params_into(&self, out: &mut Vec<usize>) {
        self.visit_exprs(&mut |e| e.collect_params(out));
        // LIMIT slots are node-level, not expression-level.
        if let PhysicalPlan::Limit {
            n: LimitCount::Param { idx },
            ..
        }
        | PhysicalPlan::TopK {
            n: LimitCount::Param { idx },
            ..
        }
        | PhysicalPlan::AnnTopK {
            n: LimitCount::Param { idx },
            ..
        } = self
        {
            out.push(*idx);
        }
        for child in self.inputs() {
            child.collect_params_into(out);
        }
    }

    /// Every base-table scan in the tree with the schema it was compiled
    /// against — the validity condition a plan cache checks against the
    /// live catalog. Includes scans inside lowered scalar subqueries.
    pub fn scans(&self) -> Vec<(String, Option<Vec<String>>)> {
        let mut out = Vec::new();
        self.collect_scans(&mut out);
        out
    }

    fn collect_scans(&self, out: &mut Vec<(String, Option<Vec<String>>)>) {
        match self {
            PhysicalPlan::Scan { table, schema, .. } => out.push((table.clone(), schema.clone())),
            // AnnTopK reads its base table directly; its compiled schema
            // pins cache validity exactly like a Scan's.
            PhysicalPlan::AnnTopK { table, schema, .. } => {
                out.push((table.clone(), Some(schema.clone())));
            }
            _ => {}
        }
        // Scalar subqueries carry whole nested plans inside expressions;
        // their scans pin cache validity just like top-level ones.
        self.visit_exprs(&mut |e| {
            e.visit_subplans(&mut |p| p.collect_scans(out));
        });
        for child in self.inputs() {
            child.collect_scans(out);
        }
    }

    /// Lowercased, sorted, deduplicated names of every function call
    /// anywhere in the plan — UDFs, TVFs and built-ins alike, including
    /// calls inside lowered scalar subqueries. These are the plan's
    /// name-resolution dependencies: a cache sharing compiled plans
    /// across sessions must reject a hit for any session whose local
    /// registrations could resolve one of these names differently.
    pub fn function_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_function_names(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_function_names(&self, out: &mut Vec<String>) {
        if let PhysicalPlan::TvfScan { name, .. } | PhysicalPlan::TvfProject { name, .. } = self {
            out.push(name.to_ascii_lowercase());
        }
        self.visit_exprs(&mut |expr| {
            expr.for_each(&mut |e| match e {
                CompiledExpr::Udf { name, .. } | CompiledExpr::Builtin { name, .. } => {
                    out.push(name.to_ascii_lowercase());
                }
                CompiledExpr::ScalarSubquery(p) => p.collect_function_names(out),
                _ => {}
            });
        });
        for child in self.inputs() {
            child.collect_function_names(out);
        }
    }

    /// Call `f` on every expression held directly by this node (children
    /// are not visited — pair with a tree walk for whole-plan traversal).
    fn visit_exprs(&self, f: &mut impl FnMut(&CompiledExpr)) {
        match self {
            PhysicalPlan::TvfProject { args, .. } => args.iter().for_each(&mut *f),
            PhysicalPlan::Filter { predicate, .. } => f(predicate),
            PhysicalPlan::Project { items, .. } => {
                items.iter().for_each(|i| f(&i.expr));
            }
            PhysicalPlan::Aggregate {
                keys, aggregates, ..
            } => {
                keys.iter().for_each(|k| f(&k.expr));
                aggregates
                    .iter()
                    .filter_map(|a| a.arg.as_ref())
                    .for_each(&mut *f);
            }
            PhysicalPlan::Sort { keys, .. } | PhysicalPlan::TopK { keys, .. } => {
                keys.iter().for_each(|k| f(&k.expr));
            }
            PhysicalPlan::AnnTopK { query, .. } => f(query),
            PhysicalPlan::Window { windows, .. } => {
                for w in windows {
                    if let PhysWindowFunc::Agg { arg: Some(a), .. } = &w.func {
                        f(a);
                    }
                    w.partition_by.iter().for_each(&mut *f);
                    w.order_by.iter().for_each(|k| f(&k.expr));
                }
            }
            PhysicalPlan::Scan { .. }
            | PhysicalPlan::TvfScan { .. }
            | PhysicalPlan::Join { .. }
            | PhysicalPlan::Limit { .. }
            | PhysicalPlan::Distinct { .. }
            | PhysicalPlan::UnionAll { .. } => {}
        }
    }
}

/// ` -> [col@0, col@1]` for a declared TVF schema, empty when dynamic.
fn render_tvf_schema(schema: &Option<Vec<String>>) -> String {
    match schema {
        Some(names) => {
            let cols: Vec<String> = names
                .iter()
                .enumerate()
                .map(|(i, n)| format!("{n}@{i}"))
                .collect();
            format!(" -> [{}]", cols.join(", "))
        }
        None => String::new(),
    }
}

impl std::fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.explain())
    }
}

// ----------------------------------------------------------------------
// Lowering
// ----------------------------------------------------------------------

/// Lower a logical plan into a slot-resolved physical plan. This is the
/// single compile step shared by the exact and differentiable executors:
/// schema propagation, column→slot resolution, function resolution and
/// scalar-subquery lowering all happen here, once.
pub fn lower(
    plan: &LogicalPlan,
    catalog: &Catalog,
    udfs: &UdfRegistry,
) -> Result<PhysicalPlan, ExecError> {
    Ok(lower_node(plan, catalog, udfs)?.0)
}

fn lower_node(
    plan: &LogicalPlan,
    catalog: &Catalog,
    udfs: &UdfRegistry,
) -> Result<(PhysicalPlan, Option<Schema>), ExecError> {
    match plan {
        LogicalPlan::Scan { table } => match catalog.get(table) {
            Some(t) => {
                let names: Vec<String> = t.columns().iter().map(|c| c.name.clone()).collect();
                Ok((
                    PhysicalPlan::Scan {
                        table: table.clone(),
                        schema: Some(names.clone()),
                        access: ScanAccess::Full,
                    },
                    Some(Schema::new(names)),
                ))
            }
            // Unknown at compile time: keep the run-time error (and the
            // register-later workflow) by emitting a schema-less scan.
            None => Ok((
                PhysicalPlan::Scan {
                    table: table.clone(),
                    schema: None,
                    access: ScanAccess::Full,
                },
                None,
            )),
        },
        LogicalPlan::TvfScan { name, input } => {
            let spec = udfs
                .table_fn_spec(name)
                .ok_or_else(|| ExecError::UnknownFunction(name.clone()))?;
            if !spec.from_position {
                return Err(ExecError::Signature(format!(
                    "table function '{name}' cannot be used in FROM position; it is declared \
                     for projection position (SELECT {name}(...) FROM ...)"
                )));
            }
            let (inp, in_schema) = lower_node(input, catalog, udfs)?;
            // A declared output relation lets downstream refs slot-resolve;
            // dynamic TVFs keep the by-name fallback.
            let out_schema = spec.output_schema(in_schema.as_ref().map(|s| s.names()));
            Ok((
                PhysicalPlan::TvfScan {
                    name: name.clone(),
                    schema: out_schema.clone(),
                    input: Box::new(inp),
                },
                out_schema.map(Schema::new),
            ))
        }
        LogicalPlan::TvfProject { name, args, input } => {
            let spec = udfs
                .table_fn_spec(name)
                .ok_or_else(|| ExecError::UnknownFunction(name.clone()))?;
            if !spec.projection_position {
                return Err(ExecError::Signature(format!(
                    "table function '{name}' cannot be used in projection position; it is \
                     declared for FROM position (FROM {name}(...))"
                )));
            }
            if let Some(declared) = &spec.args {
                if args.len() != declared.len() {
                    return Err(ExecError::Signature(format!(
                        "table function '{name}' expects {} argument(s), got {}",
                        declared.len(),
                        args.len()
                    )));
                }
            }
            let (inp, in_schema) = lower_node(input, catalog, udfs)?;
            let args = args
                .iter()
                .map(|a| lower_expr(a, in_schema.as_ref(), catalog, udfs))
                .collect::<Result<_, _>>()?;
            let out_schema = spec.output_schema(in_schema.as_ref().map(|s| s.names()));
            Ok((
                PhysicalPlan::TvfProject {
                    name: name.clone(),
                    args,
                    schema: out_schema.clone(),
                    input: Box::new(inp),
                },
                out_schema.map(Schema::new),
            ))
        }
        LogicalPlan::Filter { predicate, input } => {
            let (mut inp, schema) = lower_node(input, catalog, udfs)?;
            let predicate = lower_expr(predicate, schema.as_ref(), catalog, udfs)?;
            // A filter directly over a base-table scan is the zone-map
            // access-path decision point: compile the eligible conjuncts
            // into a pruner (or record why none were eligible).
            if let PhysicalPlan::Scan {
                schema: scan_schema,
                access: access @ ScanAccess::Full,
                ..
            } = &mut inp
            {
                *access = if scan_schema.is_none() {
                    ScanAccess::Unpruned("schema-unresolved")
                } else {
                    match ChunkPruner::compile(&predicate) {
                        Ok(pruner) => ScanAccess::Pruned(pruner),
                        Err(reason) => ScanAccess::Unpruned(reason),
                    }
                };
            }
            Ok((
                PhysicalPlan::Filter {
                    predicate,
                    input: Box::new(inp),
                },
                schema,
            ))
        }
        LogicalPlan::Project { items, input } => {
            let (inp, schema) = lower_node(input, catalog, udfs)?;
            let compiled = lower_select_items(items, schema.as_ref(), catalog, udfs)?;
            let out_schema = Schema::new(compiled.iter().map(|i| i.name.clone()).collect());
            Ok((
                PhysicalPlan::Project {
                    items: compiled,
                    input: Box::new(inp),
                },
                Some(out_schema),
            ))
        }
        LogicalPlan::Aggregate {
            group_by,
            aggregates,
            input,
        } => {
            let (inp, schema) = lower_node(input, catalog, udfs)?;
            let keys = group_by
                .iter()
                .map(|g| {
                    Ok(PhysKey {
                        name: g.display_name(),
                        expr: lower_expr(g, schema.as_ref(), catalog, udfs)?,
                    })
                })
                .collect::<Result<Vec<_>, ExecError>>()?;
            let aggs = aggregates
                .iter()
                .map(|a| lower_aggregate(a, schema.as_ref(), catalog, udfs))
                .collect::<Result<Vec<_>, _>>()?;
            let mut names: Vec<String> = keys.iter().map(|k| k.name.clone()).collect();
            names.extend(aggs.iter().map(|a| a.output.clone()));
            Ok((
                PhysicalPlan::Aggregate {
                    keys,
                    aggregates: aggs,
                    input: Box::new(inp),
                },
                Some(Schema::new(names)),
            ))
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => {
            let (l, ls) = lower_node(left, catalog, udfs)?;
            let (r, rs) = lower_node(right, catalog, udfs)?;
            let on_expr = on
                .as_ref()
                .ok_or_else(|| ExecError::Unsupported("joins require an ON clause".into()))?;
            let mut pairs = Vec::new();
            collect_equi_pairs(on_expr, &mut pairs)?;
            let on = match (&ls, &rs) {
                (Some(ls), Some(rs)) => {
                    let mut resolved = Vec::with_capacity(pairs.len());
                    for (a, b) in &pairs {
                        let pick = |ln: &str, rn: &str| -> Option<(ColumnRef, ColumnRef)> {
                            let lslot = ls.slot(ln)?;
                            let rslot = rs.slot(rn)?;
                            Some((
                                ColumnRef::Slot {
                                    slot: lslot,
                                    name: ln.to_owned(),
                                },
                                ColumnRef::Slot {
                                    slot: rslot,
                                    name: rn.to_owned(),
                                },
                            ))
                        };
                        let pair = pick(a, b).or_else(|| pick(b, a)).ok_or_else(|| {
                            ExecError::UnknownColumn(format!("{a} / {b} in join"))
                        })?;
                        resolved.push(pair);
                    }
                    JoinOn::Resolved(resolved)
                }
                _ => JoinOn::Deferred(pairs),
            };
            let schema = match (ls, rs) {
                (Some(ls), Some(rs)) => {
                    // Replicate the executor's collision renaming: right
                    // columns that clash with anything already emitted get
                    // a `right_` prefix.
                    let mut names: Vec<String> = ls.names().to_vec();
                    for n in rs.names() {
                        let clash = names.iter().any(|m| m.eq_ignore_ascii_case(n));
                        names.push(if clash {
                            format!("right_{n}")
                        } else {
                            n.clone()
                        });
                    }
                    Some(Schema::new(names))
                }
                _ => None,
            };
            Ok((
                PhysicalPlan::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    kind: *kind,
                    on,
                },
                schema,
            ))
        }
        LogicalPlan::Sort { keys, input } => {
            let (inp, schema) = lower_node(input, catalog, udfs)?;
            let keys = lower_order_keys(keys, schema.as_ref(), catalog, udfs)?;
            Ok((
                PhysicalPlan::Sort {
                    keys,
                    input: Box::new(inp),
                },
                schema,
            ))
        }
        LogicalPlan::Limit { n, input } => {
            let (inp, schema) = lower_node(input, catalog, udfs)?;
            Ok((
                PhysicalPlan::Limit {
                    n: *n,
                    input: Box::new(inp),
                },
                schema,
            ))
        }
        LogicalPlan::TopK { keys, n, input } => {
            let (inp, schema) = lower_node(input, catalog, udfs)?;
            let keys = lower_order_keys(keys, schema.as_ref(), catalog, udfs)?;
            if let Some(ann) = try_lower_ann_topk(&keys, *n, &inp, catalog) {
                return Ok((ann, schema));
            }
            Ok((
                PhysicalPlan::TopK {
                    keys,
                    n: *n,
                    input: Box::new(inp),
                },
                schema,
            ))
        }
        LogicalPlan::Window { windows, input } => {
            let (inp, schema) = lower_node(input, catalog, udfs)?;
            let compiled = windows
                .iter()
                .map(|w| lower_window(w, schema.as_ref(), catalog, udfs))
                .collect::<Result<Vec<_>, _>>()?;
            let schema = schema.map(|s| {
                let mut names = s.names().to_vec();
                names.extend(compiled.iter().map(|w| w.output.clone()));
                Schema::new(names)
            });
            Ok((
                PhysicalPlan::Window {
                    windows: compiled,
                    input: Box::new(inp),
                },
                schema,
            ))
        }
        LogicalPlan::Distinct { input } => {
            let (inp, schema) = lower_node(input, catalog, udfs)?;
            Ok((
                PhysicalPlan::Distinct {
                    input: Box::new(inp),
                },
                schema,
            ))
        }
        LogicalPlan::UnionAll { left, right } => {
            let (l, ls) = lower_node(left, catalog, udfs)?;
            let (r, rs) = lower_node(right, catalog, udfs)?;
            if let (Some(ls), Some(rs)) = (&ls, &rs) {
                if ls.len() != rs.len() {
                    return Err(ExecError::TypeMismatch(format!(
                        "UNION ALL arity mismatch: {} vs {} columns",
                        ls.len(),
                        rs.len()
                    )));
                }
            }
            // SQL semantics: column names come from the left side.
            Ok((
                PhysicalPlan::UnionAll {
                    left: Box::new(l),
                    right: Box::new(r),
                },
                ls,
            ))
        }
    }
}

fn lower_select_items(
    items: &[SelectItem],
    schema: Option<&Schema>,
    catalog: &Catalog,
    udfs: &UdfRegistry,
) -> Result<Vec<PhysProjectItem>, ExecError> {
    items
        .iter()
        .map(|item| {
            Ok(PhysProjectItem {
                name: item.output_name(),
                expr: lower_expr(&item.expr, schema, catalog, udfs)?,
            })
        })
        .collect()
}

fn lower_aggregate(
    agg: &AggregateExpr,
    schema: Option<&Schema>,
    catalog: &Catalog,
    udfs: &UdfRegistry,
) -> Result<PhysAggregate, ExecError> {
    if agg.arg.is_none() && agg.func != AggFunc::Count {
        return Err(ExecError::Unsupported(format!(
            "{}(*) is not meaningful",
            agg.func.name()
        )));
    }
    Ok(PhysAggregate {
        func: agg.func,
        arg: agg
            .arg
            .as_ref()
            .map(|e| lower_expr(e, schema, catalog, udfs))
            .transpose()?,
        output: agg.output.clone(),
    })
}

fn lower_order_keys(
    keys: &[OrderItem],
    schema: Option<&Schema>,
    catalog: &Catalog,
    udfs: &UdfRegistry,
) -> Result<Vec<PhysOrderKey>, ExecError> {
    keys.iter()
        .map(|k| {
            Ok(PhysOrderKey {
                expr: lower_expr(&k.expr, schema, catalog, udfs)?,
                desc: k.desc,
            })
        })
        .collect()
}

fn lower_window(
    w: &WindowExpr,
    schema: Option<&Schema>,
    catalog: &Catalog,
    udfs: &UdfRegistry,
) -> Result<PhysWindow, ExecError> {
    let func = match &w.func {
        WindowFunc::RowNumber => PhysWindowFunc::RowNumber,
        WindowFunc::Rank => PhysWindowFunc::Rank,
        WindowFunc::DenseRank => PhysWindowFunc::DenseRank,
        WindowFunc::Agg { func, arg } => PhysWindowFunc::Agg {
            func: *func,
            arg: arg
                .as_ref()
                .map(|e| lower_expr(e, schema, catalog, udfs))
                .transpose()?,
        },
    };
    Ok(PhysWindow {
        func,
        partition_by: w
            .partition_by
            .iter()
            .map(|e| lower_expr(e, schema, catalog, udfs))
            .collect::<Result<_, _>>()?,
        order_by: lower_order_keys(&w.order_by, schema, catalog, udfs)?,
        output: w.output.clone(),
    })
}

/// Extract the `(a, b)` column pairs of a conjunction of equality
/// predicates — the only join condition shape the executor supports.
fn collect_equi_pairs(on: &Expr, out: &mut Vec<(String, String)>) -> Result<(), ExecError> {
    match on {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            collect_equi_pairs(left, out)?;
            collect_equi_pairs(right, out)
        }
        Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } => {
            let (Expr::Column { name: a, .. }, Expr::Column { name: b, .. }) = (&**left, &**right)
            else {
                return Err(ExecError::Unsupported(
                    "join conditions must be column equalities".into(),
                ));
            };
            out.push((a.clone(), b.clone()));
            Ok(())
        }
        other => Err(ExecError::Unsupported(format!(
            "join condition '{other}' (only conjunctions of equalities)"
        ))),
    }
}

/// Lower one scalar expression against a (possibly unknown) input schema.
/// Public so tests and tools can compile stand-alone expressions.
pub fn lower_expr(
    expr: &Expr,
    schema: Option<&Schema>,
    catalog: &Catalog,
    udfs: &UdfRegistry,
) -> Result<CompiledExpr, ExecError> {
    match expr {
        Expr::Column { name, .. } => match schema {
            Some(s) => match s.slot(name) {
                Some(slot) => Ok(CompiledExpr::Column(ColumnRef::Slot {
                    slot,
                    name: name.clone(),
                })),
                None => Err(ExecError::UnknownColumn(name.clone())),
            },
            None => Ok(CompiledExpr::Column(ColumnRef::Name(name.clone()))),
        },
        Expr::Literal(Literal::Number(n)) => Ok(CompiledExpr::Num(*n)),
        Expr::Literal(Literal::String(s)) => Ok(CompiledExpr::Str(s.clone())),
        Expr::Literal(Literal::Bool(b)) => Ok(CompiledExpr::Bool(*b)),
        Expr::Literal(Literal::Null) => Err(ExecError::Unsupported(
            "NULL literals are not supported".into(),
        )),
        Expr::Param { idx } => Ok(CompiledExpr::Param { idx: *idx }),
        Expr::Binary { op, left, right } => Ok(CompiledExpr::Binary {
            op: *op,
            left: Box::new(lower_expr(left, schema, catalog, udfs)?),
            right: Box::new(lower_expr(right, schema, catalog, udfs)?),
        }),
        Expr::Unary { op, expr } => Ok(CompiledExpr::Unary {
            op: *op,
            expr: Box::new(lower_expr(expr, schema, catalog, udfs)?),
        }),
        Expr::Func { name, args } => {
            let args: Vec<CompiledExpr> = args
                .iter()
                .map(|a| lower_expr(a, schema, catalog, udfs))
                .collect::<Result<_, _>>()?;
            // Session UDFs take precedence over built-ins, matching the
            // pre-compilation resolution order.
            if udfs.is_scalar(name) {
                // Declared arity is checked here, at compile time; argument
                // *types* are checked by `validate_function_args` once the
                // (auto-extracted) parameter values are known.
                if let Some(declared) = udfs.scalar_spec(name).and_then(|s| s.args.as_ref()) {
                    if args.len() != declared.len() {
                        return Err(ExecError::Signature(format!(
                            "function '{name}' expects {} argument(s), got {}",
                            declared.len(),
                            args.len()
                        )));
                    }
                }
                return Ok(CompiledExpr::Udf {
                    name: name.clone(),
                    args,
                });
            }
            if let Some(func) = builtin_scalar(name) {
                if args.len() != func.arity() {
                    return Err(ExecError::TypeMismatch(format!(
                        "{name} expects {} argument(s), got {}",
                        func.arity(),
                        args.len()
                    )));
                }
                return Ok(CompiledExpr::Builtin {
                    name: name.clone(),
                    func,
                    args,
                });
            }
            Err(ExecError::UnknownFunction(name.clone()))
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Ok(CompiledExpr::Case {
            operand: operand
                .as_deref()
                .map(|o| lower_expr(o, schema, catalog, udfs).map(Box::new))
                .transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((
                        lower_expr(w, schema, catalog, udfs)?,
                        lower_expr(t, schema, catalog, udfs)?,
                    ))
                })
                .collect::<Result<_, ExecError>>()?,
            else_expr: else_expr
                .as_deref()
                .map(|e| lower_expr(e, schema, catalog, udfs).map(Box::new))
                .transpose()?,
        }),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            if list.is_empty() {
                return Err(ExecError::TypeMismatch(
                    "IN requires a non-empty list".into(),
                ));
            }
            Ok(CompiledExpr::InList {
                expr: Box::new(lower_expr(expr, schema, catalog, udfs)?),
                list: list
                    .iter()
                    .map(|i| lower_expr(i, schema, catalog, udfs))
                    .collect::<Result<_, _>>()?,
                negated: *negated,
            })
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Ok(CompiledExpr::Like {
            expr: Box::new(lower_expr(expr, schema, catalog, udfs)?),
            pattern: pattern.clone(),
            negated: *negated,
        }),
        Expr::ScalarSubquery(q) => {
            let plan = tdp_sql::plan::build_plan(
                q,
                &tdp_sql::plan::PlannerContext {
                    is_tvf: &|n| udfs.is_table_fn(n),
                },
            )
            .map_err(|e| ExecError::Unsupported(format!("scalar subquery: {e}")))?;
            let plan = tdp_sql::optimizer::optimize(plan);
            Ok(CompiledExpr::ScalarSubquery(Arc::new(lower(
                &plan, catalog, udfs,
            )?)))
        }
        Expr::Aggregate { .. } => Err(ExecError::Unsupported(
            "aggregate outside of an Aggregate plan node".into(),
        )),
        Expr::Window { .. } => Err(ExecError::Unsupported(
            "window function outside of a Window plan node".into(),
        )),
        Expr::Star => Err(ExecError::Unsupported("'*' outside of COUNT(*)".into())),
    }
}

// ----------------------------------------------------------------------
// Prepare-time argument-type validation
// ----------------------------------------------------------------------

/// What a compiled expression is statically known to evaluate to, for
/// checking against a declared [`ArgType`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticKind {
    Column,
    Number,
    Str,
    Bool,
    /// Not statically determinable (composite expression, unbound slot).
    Unknown,
}

fn static_kind(e: &CompiledExpr, param_kind: &dyn Fn(usize) -> StaticKind) -> StaticKind {
    match e {
        CompiledExpr::Num(_) => StaticKind::Number,
        CompiledExpr::Str(_) => StaticKind::Str,
        CompiledExpr::Bool(_) => StaticKind::Bool,
        CompiledExpr::Param { idx } => param_kind(*idx),
        // Column refs and UDF calls always evaluate to columns; string
        // predicates evaluate to boolean mask columns.
        CompiledExpr::Column(_)
        | CompiledExpr::Udf { .. }
        | CompiledExpr::InList { .. }
        | CompiledExpr::Like { .. } => StaticKind::Column,
        // Arithmetic, CASE, built-ins and subqueries may produce scalars
        // or columns depending on their operands — unchecked.
        CompiledExpr::Binary { .. }
        | CompiledExpr::Unary { .. }
        | CompiledExpr::Builtin { .. }
        | CompiledExpr::Case { .. }
        | CompiledExpr::ScalarSubquery(_) => StaticKind::Unknown,
    }
}

fn kind_compatible(declared: ArgType, actual: StaticKind) -> bool {
    matches!(
        (declared, actual),
        (ArgType::Any, _)
            | (_, StaticKind::Unknown)
            | (ArgType::Column, StaticKind::Column)
            | (ArgType::Number, StaticKind::Number)
            | (ArgType::Str, StaticKind::Str)
            | (ArgType::Bool, StaticKind::Bool)
    )
}

/// Check every UDF/TVF call in a lowered plan against its declared
/// argument types. `param_kind` resolves a parameter slot to the type of
/// its bound value (auto-extracted literals are known at prepare time;
/// return [`StaticKind::Unknown`] for slots not yet bound). Violations
/// are [`ExecError::Signature`] — this is the compile-time gate that
/// replaces the historical run-time `TypeMismatch`.
pub fn validate_function_args(
    plan: &PhysicalPlan,
    udfs: &UdfRegistry,
    param_kind: &dyn Fn(usize) -> StaticKind,
) -> Result<(), ExecError> {
    if let PhysicalPlan::TvfProject { name, args, .. } = plan {
        if let Some(declared) = udfs.table_fn_spec(name).and_then(|s| s.args.as_deref()) {
            check_call(name, declared, args, param_kind)?;
        }
    }
    let mut err = None;
    plan.visit_exprs(&mut |e| {
        if err.is_none() {
            err = validate_expr(e, udfs, param_kind).err();
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    for child in plan.inputs() {
        validate_function_args(child, udfs, param_kind)?;
    }
    Ok(())
}

fn validate_expr(
    e: &CompiledExpr,
    udfs: &UdfRegistry,
    param_kind: &dyn Fn(usize) -> StaticKind,
) -> Result<(), ExecError> {
    let mut err = None;
    e.for_each(&mut |node| {
        if err.is_some() {
            return;
        }
        match node {
            CompiledExpr::Udf { name, args } => {
                if let Some(declared) = udfs.scalar_spec(name).and_then(|s| s.args.as_deref()) {
                    err = check_call(name, declared, args, param_kind).err();
                }
            }
            // Subquery slots share the statement's parameter space, so
            // the same resolver applies inside the nested plan.
            CompiledExpr::ScalarSubquery(p) => {
                err = validate_function_args(p, udfs, param_kind).err();
            }
            _ => {}
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn kind_describe(k: StaticKind) -> &'static str {
    match k {
        StaticKind::Column => "column",
        StaticKind::Number => "number",
        StaticKind::Str => "string",
        StaticKind::Bool => "boolean",
        StaticKind::Unknown => "unknown",
    }
}

fn check_call(
    name: &str,
    declared: &[ArgType],
    args: &[CompiledExpr],
    param_kind: &dyn Fn(usize) -> StaticKind,
) -> Result<(), ExecError> {
    if args.len() != declared.len() {
        return Err(ExecError::Signature(format!(
            "function '{name}' expects {} argument(s), got {}",
            declared.len(),
            args.len()
        )));
    }
    for (i, (want, arg)) in declared.iter().zip(args).enumerate() {
        let got = static_kind(arg, param_kind);
        if !kind_compatible(*want, got) {
            return Err(ExecError::Signature(format!(
                "argument {} of '{name}' must be a {}, got {} ({arg})",
                i + 1,
                want.describe(),
                kind_describe(got),
            )));
        }
    }
    Ok(())
}

/// One binding-dependent type obligation of a compiled plan: parameter
/// slot `slot` feeds argument `arg_index` of `function`, which declares
/// `declared`. Everything else a declared signature constrains is
/// plan-structural — checked once when the plan is compiled — so a plan
/// cache (or a re-bind) only needs to recheck these against the current
/// values instead of re-walking the whole plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamConstraint {
    pub slot: usize,
    pub declared: ArgType,
    pub function: String,
    /// 0-based argument position (rendered 1-based in errors).
    pub arg_index: usize,
}

/// Collect every [`ParamConstraint`] of a plan: arguments of
/// declared-signature UDF/TVF calls that are bare parameter slots
/// (including inside scalar subqueries, which share the statement's
/// parameter space).
pub fn param_arg_constraints(plan: &PhysicalPlan, udfs: &UdfRegistry) -> Vec<ParamConstraint> {
    let mut out = Vec::new();
    collect_constraints(plan, udfs, &mut out);
    out
}

fn collect_constraints(plan: &PhysicalPlan, udfs: &UdfRegistry, out: &mut Vec<ParamConstraint>) {
    if let PhysicalPlan::TvfProject { name, args, .. } = plan {
        if let Some(declared) = udfs.table_fn_spec(name).and_then(|s| s.args.as_deref()) {
            push_param_constraints(name, declared, args, out);
        }
    }
    plan.visit_exprs(&mut |root| {
        root.for_each(&mut |e| match e {
            CompiledExpr::Udf { name, args } => {
                if let Some(declared) = udfs.scalar_spec(name).and_then(|s| s.args.as_deref()) {
                    push_param_constraints(name, declared, args, out);
                }
            }
            CompiledExpr::ScalarSubquery(p) => collect_constraints(p, udfs, out),
            _ => {}
        });
    });
    for child in plan.inputs() {
        collect_constraints(child, udfs, out);
    }
}

fn push_param_constraints(
    name: &str,
    declared: &[ArgType],
    args: &[CompiledExpr],
    out: &mut Vec<ParamConstraint>,
) {
    for (i, (want, arg)) in declared.iter().zip(args).enumerate() {
        if let CompiledExpr::Param { idx } = arg {
            out.push(ParamConstraint {
                slot: *idx,
                declared: *want,
                function: name.to_owned(),
                arg_index: i,
            });
        }
    }
}

/// Check precomputed [`ParamConstraint`]s against a binding — the
/// O(constraints) fast path used on plan-cache hits and re-binds, in
/// place of the full plan walk of [`validate_function_args`].
pub fn validate_param_constraints(
    constraints: &[ParamConstraint],
    param_kind: &dyn Fn(usize) -> StaticKind,
) -> Result<(), ExecError> {
    for c in constraints {
        let got = param_kind(c.slot);
        if !kind_compatible(c.declared, got) {
            return Err(ExecError::Signature(format!(
                "argument {} of '{}' must be a {}, got {} (${})",
                c.arg_index + 1,
                c.function,
                c.declared.describe(),
                kind_describe(got),
                c.slot + 1,
            )));
        }
    }
    Ok(())
}

/// Built-in scalar math functions (resolved after session UDFs).
pub(crate) fn builtin_scalar(name: &str) -> Option<ScalarFn> {
    let lower = name.to_ascii_lowercase();
    Some(match lower.as_str() {
        "abs" => ScalarFn::Unary(f32::abs),
        "round" => ScalarFn::Unary(f32::round),
        "floor" => ScalarFn::Unary(f32::floor),
        "ceil" | "ceiling" => ScalarFn::Unary(f32::ceil),
        "sqrt" => ScalarFn::Unary(f32::sqrt),
        "exp" => ScalarFn::Unary(f32::exp),
        "ln" => ScalarFn::Unary(f32::ln),
        "log10" => ScalarFn::Unary(f32::log10),
        "sign" => ScalarFn::Unary(sql_sign),
        "power" | "pow" => ScalarFn::Binary(f32::powf),
        // Vector similarity over an embedding column. `distance` is
        // ascending-better (squared L2); the other two descending-better.
        "distance" => ScalarFn::Vector(Metric::L2),
        "inner_product" => ScalarFn::Vector(Metric::InnerProduct),
        "cosine_sim" => ScalarFn::Vector(Metric::Cosine),
        _ => return None,
    })
}

/// The SQL surface name of a vector-similarity metric — what
/// [`builtin_scalar`] resolves and EXPLAIN renders.
pub(crate) fn metric_fn_name(metric: Metric) -> &'static str {
    match metric {
        Metric::L2 => "distance",
        Metric::InnerProduct => "inner_product",
        Metric::Cosine => "cosine_sim",
    }
}

/// Recognize `ORDER BY <vector-fn>(col, q) LIMIT k` over a bare base-table
/// scan and lower it to [`PhysicalPlan::AnnTopK`]. The path is chosen here
/// at compile time: a registered index on `(table, column)` with a matching
/// metric selects IVF; otherwise flat exact. Returns `None` when any
/// eligibility condition fails (the plain TopK barrier remains).
fn try_lower_ann_topk(
    keys: &[PhysOrderKey],
    n: LimitCount,
    inp: &PhysicalPlan,
    catalog: &Catalog,
) -> Option<PhysicalPlan> {
    if keys.len() != 1 {
        return None;
    }
    let key = &keys[0];
    let CompiledExpr::Builtin {
        func: ScalarFn::Vector(metric),
        args,
        ..
    } = &key.expr
    else {
        return None;
    };
    let [CompiledExpr::Column(column @ ColumnRef::Slot { .. }), query] = args.as_slice() else {
        return None;
    };
    if !matches!(query, CompiledExpr::Param { .. } | CompiledExpr::Num(_)) {
        return None;
    }
    // `distance` selects nearest rows when ascending; the similarity
    // scores select best rows when descending. Any other direction is a
    // bottom-k query the index cannot serve.
    if key.desc != vector_fn_descends(*metric) {
        return None;
    }
    // The sort key may sit directly over the base scan, or over a pure
    // projection of it (the planner places Sort above Project whenever
    // the key's columns survive projection). Projection is per-row and
    // pure, so it commutes with top-k row selection: lower the latter
    // shape as Project(AnnTopK) with the key column mapped back through
    // the projected item — which must be a bare base column.
    let (table, schema, column, reproject) = match inp {
        PhysicalPlan::Scan {
            table,
            schema: Some(schema),
            ..
        } => (table, schema, column.clone(), None),
        PhysicalPlan::Project { items, input } => {
            let PhysicalPlan::Scan {
                table,
                schema: Some(schema),
                ..
            } = input.as_ref()
            else {
                return None;
            };
            let ColumnRef::Slot { slot, .. } = column else {
                return None;
            };
            let CompiledExpr::Column(inner @ ColumnRef::Slot { .. }) = &items.get(*slot)?.expr
            else {
                return None;
            };
            (table, schema, inner.clone(), Some(items.clone()))
        }
        _ => return None,
    };
    let path = match catalog.vector_index(table, column.name()) {
        Some(entry) if entry.metric == *metric => match &entry.index {
            tdp_storage::VectorIndex::Flat(_) => AnnPath::Flat,
            tdp_storage::VectorIndex::Ivf { nlist, nprobe, .. } => AnnPath::Ivf {
                nlist: *nlist,
                nprobe: *nprobe,
            },
        },
        _ => AnnPath::Flat,
    };
    let ann = PhysicalPlan::AnnTopK {
        table: table.clone(),
        schema: schema.clone(),
        column,
        query: query.clone(),
        metric: *metric,
        n,
        path,
    };
    Some(match reproject {
        None => ann,
        Some(items) => PhysicalPlan::Project {
            items,
            input: Box::new(ann),
        },
    })
}

/// Whether best-first order for this metric's SQL function is DESC.
fn vector_fn_descends(metric: Metric) -> bool {
    !matches!(metric, Metric::L2)
}

/// Why a TopK whose keys involve a vector-similarity function did *not*
/// lower to [`PhysicalPlan::AnnTopK`] — the named-reason taxonomy EXPLAIN
/// renders on the TopK line. `None` when no vector function is involved
/// (an ordinary TopK) or the node would have been eligible.
fn ann_fallback_reason(keys: &[PhysOrderKey], input: &PhysicalPlan) -> Option<&'static str> {
    let mut has_vector = false;
    for k in keys {
        k.expr.for_each(&mut |e| {
            if let CompiledExpr::Builtin {
                func: ScalarFn::Vector(_),
                ..
            } = e
            {
                has_vector = true;
            }
        });
    }
    if !has_vector {
        return None;
    }
    if keys.len() != 1 {
        return Some("multiple-sort-keys");
    }
    let CompiledExpr::Builtin {
        func: ScalarFn::Vector(metric),
        args,
        ..
    } = &keys[0].expr
    else {
        return Some("distance-not-topmost");
    };
    let key_slot = match args.as_slice() {
        [CompiledExpr::Column(ColumnRef::Slot { slot, .. }), q] => {
            if !matches!(q, CompiledExpr::Param { .. } | CompiledExpr::Num(_)) {
                return Some("query-not-param-or-literal");
            }
            *slot
        }
        _ => return Some("column-arg-unresolved"),
    };
    if keys[0].desc != vector_fn_descends(*metric) {
        return Some("wrong-direction");
    }
    match input {
        PhysicalPlan::Scan {
            schema: Some(_), ..
        } => None,
        PhysicalPlan::Scan { schema: None, .. } => Some("schema-unresolved"),
        PhysicalPlan::Project { items, input } => match input.as_ref() {
            PhysicalPlan::Scan {
                schema: Some(_), ..
            } => match items.get(key_slot).map(|i| &i.expr) {
                Some(CompiledExpr::Column(ColumnRef::Slot { .. })) => None,
                _ => Some("projected-key-not-base-column"),
            },
            PhysicalPlan::Scan { schema: None, .. } => Some("schema-unresolved"),
            _ => Some("input-not-base-scan"),
        },
        _ => Some("input-not-base-scan"),
    }
}

/// SQL SIGN: −1, 0 or 1 (unlike `f32::signum`, zero maps to zero).
fn sql_sign(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_sql::plan::{build_plan, PlannerContext};
    use tdp_sql::{optimizer, parse};
    use tdp_storage::TableBuilder;

    fn setup() -> Catalog {
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("price", vec![3.0, 1.0, 2.0])
                .col_str("item", &["b", "a", "a"])
                .col_i64("qty", vec![10, 20, 30])
                .build("orders"),
        );
        catalog
    }

    fn lowered(catalog: &Catalog, sql: &str) -> PhysicalPlan {
        let udfs = UdfRegistry::new();
        let plan = optimizer::optimize(
            build_plan(&parse(sql).unwrap(), &PlannerContext::default()).unwrap(),
        );
        lower(&plan, catalog, &udfs).unwrap()
    }

    #[test]
    fn columns_resolve_to_slots() {
        let c = setup();
        let p = lowered(
            &c,
            "SELECT price * qty AS total FROM orders WHERE item = 'a'",
        );
        let text = p.explain();
        assert!(text.contains("price@0"), "{text}");
        assert!(text.contains("qty@2"), "{text}");
        assert!(text.contains("item@1"), "{text}");
    }

    #[test]
    fn unknown_column_fails_at_compile_time() {
        let c = setup();
        let udfs = UdfRegistry::new();
        let plan = build_plan(
            &parse("SELECT nope FROM orders").unwrap(),
            &PlannerContext::default(),
        )
        .unwrap();
        assert!(matches!(
            lower(&plan, &c, &udfs),
            Err(ExecError::UnknownColumn(_))
        ));
    }

    #[test]
    fn unknown_table_defers_to_run_time() {
        let c = setup();
        let udfs = UdfRegistry::new();
        let plan = build_plan(
            &parse("SELECT x FROM missing").unwrap(),
            &PlannerContext::default(),
        )
        .unwrap();
        // Compiles (schema-less scan, name-resolved refs)…
        let p = lower(&plan, &c, &udfs).unwrap();
        assert!(p.explain().contains("schema unresolved"), "{}", p.explain());
        // …and the unknown-table error surfaces when executed.
        assert!(matches!(
            crate::exact::execute(&p, &crate::udf::ExecContext::new(&c, &udfs)),
            Err(ExecError::UnknownTable(_))
        ));
    }

    #[test]
    fn unknown_function_fails_at_compile_time() {
        let c = setup();
        let udfs = UdfRegistry::new();
        let plan = build_plan(
            &parse("SELECT nope(price) FROM orders").unwrap(),
            &PlannerContext::default(),
        )
        .unwrap();
        assert!(matches!(
            lower(&plan, &c, &udfs),
            Err(ExecError::UnknownFunction(_))
        ));
    }

    #[test]
    fn join_keys_resolve_sides() {
        let c = setup();
        c.register(
            TableBuilder::new()
                .col_str("item", &["a", "b"])
                .col_f32("w", vec![1.0, 2.0])
                .build("items"),
        );
        let p = lowered(
            &c,
            "SELECT price, w FROM orders JOIN items ON items.item = orders.item",
        );
        fn find_join(p: &PhysicalPlan) -> Option<&JoinOn> {
            if let PhysicalPlan::Join { on, .. } = p {
                return Some(on);
            }
            p.inputs().iter().find_map(|c| find_join(c))
        }
        match find_join(&p).expect("join node") {
            JoinOn::Resolved(pairs) => {
                assert_eq!(pairs.len(), 1);
                // Sides swapped so the left ref targets the left input.
                assert!(matches!(&pairs[0].0, ColumnRef::Slot { slot: 1, .. }));
                assert!(matches!(&pairs[0].1, ColumnRef::Slot { slot: 0, .. }));
            }
            other => panic!("expected resolved keys, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_stable_across_compilations() {
        let c = setup();
        let sql = "SELECT item, COUNT(*) FROM orders GROUP BY item ORDER BY item LIMIT 2";
        let a = lowered(&c, sql).fingerprint();
        let b = lowered(&c, sql).fingerprint();
        assert_eq!(a, b);
        let other = lowered(&c, "SELECT item FROM orders").fingerprint();
        assert_ne!(a, other);
    }

    #[test]
    fn params_lower_to_slots_and_are_collected() {
        let c = setup();
        let p = lowered(
            &c,
            "SELECT price FROM orders WHERE price > ? AND qty < (SELECT MAX(qty) FROM orders WHERE qty < ?)",
        );
        let text = p.explain();
        assert!(text.contains("$1"), "{text}");
        assert_eq!(p.param_indices(), vec![0, 1], "subquery slot included");
        // The fingerprint is literal-free but parameter-sensitive.
        let q = lowered(&c, "SELECT price FROM orders WHERE price > ?");
        assert_ne!(p.fingerprint(), q.fingerprint());
        assert_eq!(
            q.fingerprint(),
            lowered(&c, "SELECT price FROM orders WHERE price > ?").fingerprint()
        );
    }

    #[test]
    fn scans_report_compiled_schemas() {
        let c = setup();
        let p = lowered(&c, "SELECT price FROM orders");
        let scans = p.scans();
        assert_eq!(scans.len(), 1);
        assert_eq!(scans[0].0, "orders");
        assert_eq!(scans[0].1.as_deref().unwrap(), ["price", "item", "qty"]);
    }

    #[test]
    fn union_arity_checked_at_compile_time() {
        let c = setup();
        let udfs = UdfRegistry::new();
        let plan = build_plan(
            &parse("SELECT price FROM orders UNION ALL SELECT price, qty FROM orders").unwrap(),
            &PlannerContext::default(),
        )
        .unwrap();
        assert!(matches!(
            lower(&plan, &c, &udfs),
            Err(ExecError::TypeMismatch(_))
        ));
    }

    #[test]
    fn aggregate_star_only_for_count() {
        let c = setup();
        let udfs = UdfRegistry::new();
        // Hand-built: SUM(*) is representable in the plan but must not lower.
        let plan = LogicalPlan::Aggregate {
            group_by: vec![],
            aggregates: vec![AggregateExpr {
                func: AggFunc::Sum,
                arg: None,
                output: "SUM(*)".into(),
            }],
            input: Box::new(LogicalPlan::Scan {
                table: "orders".into(),
            }),
        };
        assert!(matches!(
            lower(&plan, &c, &udfs),
            Err(ExecError::Unsupported(_))
        ));
    }
}
