//! Per-operator query profiling.
//!
//! The paper's §2 notes a compiled TDP query can be "profiled using
//! TensorBoard" because it *is* a tensor program. Our equivalent: a
//! profiled execution mode that drives the same exact operator kernels as
//! [`crate::exact::execute`] — over the same compiled [`PhysicalPlan`] —
//! while recording wall-clock time and output cardinality per plan node.
//!
//! Streamable operators (filter, project, aggregate) run through the
//! morsel scheduler, so a node's wall-clock aggregates the work of all
//! of its morsels across the worker pool; the report carries the thread
//! count and the total number of morsels scheduled. Because profiling
//! materialises a batch per operator, a profiled aggregate may partition
//! its input at a different boundary than the fused pipeline of a plain
//! `run()` — float aggregates can differ in the last bit between the two
//! modes (never between thread counts).

use std::time::Instant;

use crate::batch::Batch;
use crate::error::ExecError;
use crate::exact;
use crate::expr::{eval_expr, resolve_limit};
use crate::morsel;
use crate::physical::PhysicalPlan;
use crate::pipeline::MorselOp;
use crate::udf::ExecContext;

/// One profiled plan node.
#[derive(Debug, Clone)]
pub struct OpTrace {
    /// First line of the node's EXPLAIN rendering (e.g. `Filter: (x@0 > 1)`).
    pub label: String,
    /// Depth in the plan tree (root = 0).
    pub depth: usize,
    /// Rows the node produced.
    pub rows_out: usize,
    /// Wall-clock seconds including children.
    pub total_seconds: f64,
    /// Wall-clock seconds excluding children (the node's own kernels).
    pub self_seconds: f64,
    /// Why an operator ran on the sequential whole-batch path instead
    /// of the morsel pool (`udf-not-parallel-safe(name)`,
    /// `scalar-subquery`, `tensor-param($n)`, `count-distinct`,
    /// `differentiable-input`); `None` when it was morsel-parallel.
    /// Staged barriers (join, sort, TopK, DISTINCT) report here too.
    pub fallback: Option<String>,
    /// How a staged barrier actually ran (`partitioned ×16 (31 build +
    /// 31 probe morsels)`, `merge-sort ×8 runs`); `None` for streamable
    /// operators and barriers that ran sequentially.
    pub strategy: Option<String>,
    /// Late-materialization note. On a fused chain feeding a barrier:
    /// its selection density (`selection: 3% dense→sparse`). On the
    /// barrier itself: how its input arrived (`barrier: selection-fed
    /// (3% dense→sparse)` or `barrier: gathered: <reason>`). `None`
    /// when no compiled chain was in play.
    pub selection: Option<String>,
    /// Bytes this operator charged against the query's memory ledger
    /// (materialised columns, exchange buckets, build tables, sort runs,
    /// DISTINCT sets); 0 for operators that charge nothing.
    pub charged_bytes: u64,
}

/// Execution profile of one query run, in pre-order plan order.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    pub ops: Vec<OpTrace>,
    /// Worker threads the morsel scheduler ran with.
    pub threads: usize,
    /// Total morsels scheduled across all operators (streamable chains
    /// plus staged barrier stages — a partitioned join counts its build
    /// and probe morsels).
    pub morsels: usize,
    /// Total exchange partitions scheduled across staged barrier
    /// operators (0 when no barrier was partitioned).
    pub partitions: usize,
    /// Morsels skipped outright by zone-map pruning during this run.
    pub morsels_pruned: u64,
    /// Morsels actually executed by pruning-eligible chains (pruned +
    /// scanned = total morsels of those chains).
    pub morsels_scanned: u64,
    /// ANN top-k operator executions during this run.
    pub ann_queries: u64,
    /// ANN queries that found their IVF index stale and fell back to
    /// the flat exact path during this run.
    pub ivf_stale_fallbacks: u64,
    /// Stale IVF indexes rebuilt in-query by the auto-rebuild policy
    /// (`TDP_IVF_REBUILD_AFTER`) during this run.
    pub ivf_rebuilds: u64,
    /// Barrier inputs handed over as live selection vectors (late
    /// materialization) during this run.
    pub barriers_selection_fed: u64,
    /// Barrier inputs a compiled chain had to gather densely before the
    /// barrier could consume them during this run.
    pub barriers_gathered: u64,
    /// Peak bytes the query's memory ledger reached during this run.
    pub peak_memory_bytes: u64,
}

impl QueryProfile {
    /// Total wall-clock of the root node.
    pub fn total_seconds(&self) -> f64 {
        self.ops.first().map(|o| o.total_seconds).unwrap_or(0.0)
    }

    /// The trace with the largest self-time — where the query spent its
    /// kernels.
    pub fn hottest(&self) -> Option<&OpTrace> {
        self.ops
            .iter()
            .max_by(|a, b| a.self_seconds.total_cmp(&b.self_seconds))
    }

    /// Every sequential-fallback reason observed during the run, in plan
    /// order — the profiled-run view of the EXPLAIN `[sequential: …]`
    /// annotations. Empty when every streamable operator was
    /// morsel-parallel.
    pub fn fallback_reasons(&self) -> Vec<&str> {
        self.ops
            .iter()
            .filter_map(|o| o.fallback.as_deref())
            .collect()
    }

    /// Fixed-width table rendering, one row per operator, headed by the
    /// scheduler configuration.
    pub fn pretty(&self) -> String {
        let mut access = String::new();
        if self.morsels_pruned + self.morsels_scanned > 0 {
            access.push_str(&format!(
                " [zone-maps: {} pruned / {} scanned]",
                self.morsels_pruned, self.morsels_scanned
            ));
        }
        if self.ann_queries > 0 {
            access.push_str(&format!(" [ann queries: {}]", self.ann_queries));
        }
        if self.ivf_stale_fallbacks > 0 {
            access.push_str(&format!(
                " [ivf stale fallbacks: {}]",
                self.ivf_stale_fallbacks
            ));
        }
        if self.ivf_rebuilds > 0 {
            access.push_str(" [ivf rebuilt]");
        }
        if self.barriers_selection_fed + self.barriers_gathered > 0 {
            access.push_str(&format!(
                " [barriers: {} selection-fed / {} gathered]",
                self.barriers_selection_fed, self.barriers_gathered
            ));
        }
        if self.peak_memory_bytes > 0 {
            access.push_str(&format!(" [mem peak: {} B]", self.peak_memory_bytes));
        }
        let mut out = format!(
            "threads={} morsels={} partitions={}{access}\n\
             operator                                          rows    self ms   total ms\n",
            self.threads, self.morsels, self.partitions
        );
        for op in &self.ops {
            let indent = "  ".repeat(op.depth);
            let label = format!("{indent}{}", op.label);
            let mut note = match (&op.fallback, &op.strategy) {
                (Some(reason), _) => format!("  [sequential: {reason}]"),
                (None, Some(strategy)) => format!("  [{strategy}]"),
                (None, None) => String::new(),
            };
            if let Some(sel) = &op.selection {
                note.push_str(&format!("  [{sel}]"));
            }
            if op.charged_bytes > 0 {
                note.push_str(&format!("  [charged: {} B]", op.charged_bytes));
            }
            out.push_str(&format!(
                "{label:<48} {rows:>7} {self_ms:>10.3} {total_ms:>10.3}{note}\n",
                rows = op.rows_out,
                self_ms = op.self_seconds * 1e3,
                total_ms = op.total_seconds * 1e3,
            ));
        }
        out
    }
}

/// Execute a physical plan exactly while recording a per-operator profile.
pub fn execute_profiled(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
) -> Result<(Batch, QueryProfile), ExecError> {
    let mut profile = QueryProfile {
        threads: ctx.threads,
        ..QueryProfile::default()
    };
    let before = ctx.access.snapshot();
    let batch = run_node(plan, ctx, 0, &mut profile)?;
    let after = ctx.access.snapshot();
    profile.morsels_pruned = after.morsels_pruned - before.morsels_pruned;
    profile.morsels_scanned = after.morsels_scanned - before.morsels_scanned;
    profile.ann_queries = after.ann_queries - before.ann_queries;
    profile.ivf_stale_fallbacks = after.ivf_stale_fallbacks - before.ivf_stale_fallbacks;
    profile.ivf_rebuilds = after.ivf_rebuilds - before.ivf_rebuilds;
    profile.barriers_selection_fed = after.barriers_selection_fed - before.barriers_selection_fed;
    profile.barriers_gathered = after.barriers_gathered - before.barriers_gathered;
    profile.peak_memory_bytes = ctx.memory.peak();
    Ok((batch, profile))
}

/// Zone-map skip mask when the profiled operator's direct input plan is
/// a pruned base-table scan; mirrors the pipeline scheduler's
/// [`crate::pipeline::scan_skip_mask`] so profiled runs prune the same
/// morsels as plain runs.
fn plan_skip_mask(input: &PhysicalPlan, rows: usize, ctx: &ExecContext) -> Option<Vec<bool>> {
    if !ctx.zone_maps {
        return None;
    }
    let PhysicalPlan::Scan {
        table,
        access: crate::physical::ScanAccess::Pruned(pruner),
        ..
    } = input
    else {
        return None;
    };
    let zm = ctx.catalog.zone_map(table)?;
    Some(pruner.skip_mask(&zm, rows, ctx.morsel_rows, &ctx.params))
}

/// Record a staged barrier's scheduling decision (strategy or fallback
/// reason, selection note, plus morsel/partition counts) on its
/// reserved trace slot.
fn record_barrier(
    plan: &PhysicalPlan,
    inputs: &[&morsel::BarrierInput],
    ctx: &ExecContext,
    slot: usize,
    profile: &mut QueryProfile,
) {
    let report = morsel::barrier_report(plan, inputs, ctx);
    profile.morsels += report.morsels;
    profile.partitions += report.partitions;
    profile.ops[slot].strategy = report.strategy;
    profile.ops[slot].fallback = report.fallback;
    profile.ops[slot].selection = report.selection.map(|n| format!("barrier: {n}"));
}

/// Chain-kernel verdict for a streamable operator's trace:
/// `"compiled"` when the chain runs a compiled kernel, otherwise
/// `"interpreted: <reason>"`. Sequential-path chains report their
/// pinning reason (already carried by `fallback`) as the interpretation
/// reason, matching the ISSUE's `interpreted: udf-not-parallel-safe(f)`
/// shape; but `pretty()` keeps rendering those as `[sequential: …]`.
fn chain_strategy_note(
    ops: &[MorselOp<'_>],
    seq_reason: &Option<String>,
    ctx: &ExecContext,
) -> Option<String> {
    if let Some(reason) = seq_reason {
        return Some(format!("interpreted: {reason}"));
    }
    match crate::kernel::chain_strategy(ops, ctx)? {
        crate::kernel::ChainStrategy::Compiled(_) => Some("compiled".into()),
        crate::kernel::ChainStrategy::Interpreted(reason) => Some(format!("interpreted: {reason}")),
    }
}

/// First line of a node's EXPLAIN rendering.
fn node_label(plan: &PhysicalPlan) -> String {
    plan.explain()
        .lines()
        .next()
        .unwrap_or("?")
        .trim()
        .to_owned()
}

/// Wall-clock and ledger bytes attributed to a node's children, so the
/// parent's self-time and self-charges can be derived.
#[derive(Default)]
struct ChildTotals {
    seconds: f64,
    charged: u64,
}

/// Run one child node, accumulating its time and charges into `totals`.
fn run_child(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    depth: usize,
    profile: &mut QueryProfile,
    totals: &mut ChildTotals,
) -> Result<Batch, ExecError> {
    let t0 = Instant::now();
    let c0 = ctx.memory.charged_total();
    let out = run_node(plan, ctx, depth, profile)?;
    totals.seconds += t0.elapsed().as_secs_f64();
    totals.charged += ctx.memory.charged_total() - c0;
    Ok(out)
}

/// Run one barrier child. A leading Filter/Project chain is fused and
/// offered the selection exit — exactly what the plain scheduler does —
/// with one trace slot per fused node. Fused execution has no
/// intermediate cardinalities, so every chain slot reports the chain's
/// combined output count; the top slot carries the chain's time,
/// charges, kernel strategy and selection density.
fn barrier_child(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    depth: usize,
    profile: &mut QueryProfile,
    totals: &mut ChildTotals,
) -> Result<morsel::BarrierInput, ExecError> {
    let mut chain: Vec<&PhysicalPlan> = Vec::new();
    let mut source = plan;
    while let PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } = source {
        chain.push(source);
        source = input;
    }
    if chain.is_empty() {
        let batch = run_child(plan, ctx, depth, profile, totals)?;
        return Ok(morsel::BarrierInput::Gathered(batch, None));
    }

    // Reserve the chain's slots top-down so the profile stays pre-order.
    let first_slot = profile.ops.len();
    for (i, node) in chain.iter().enumerate() {
        profile.ops.push(OpTrace {
            label: node_label(node),
            depth: depth + i,
            rows_out: 0,
            total_seconds: 0.0,
            self_seconds: 0.0,
            fallback: None,
            strategy: None,
            selection: None,
            charged_bytes: 0,
        });
    }
    let ops: Vec<MorselOp<'_>> = chain
        .iter()
        .rev()
        .map(|n| match n {
            PhysicalPlan::Filter { predicate, .. } => MorselOp::Filter(predicate),
            PhysicalPlan::Project { items, .. } => MorselOp::Project(items),
            _ => unreachable!("chain peel admits filters and projects only"),
        })
        .collect();

    let mut src = ChildTotals::default();
    let input = run_child(source, ctx, depth + chain.len(), profile, &mut src)?;
    let skip = plan_skip_mask(source, input.rows(), ctx);

    let t0 = Instant::now();
    let c0 = ctx.memory.charged_total();
    let (planned, seq_reason) = morsel::planned_and_reason(&input, &ops, None, ctx);
    profile.morsels += planned;
    let out = morsel::chain_barrier_input(&input, &ops, skip.as_deref(), ctx)?;
    let chain_seconds = t0.elapsed().as_secs_f64();
    let chain_charged = ctx.memory.charged_total() - c0;

    let strategy = chain_strategy_note(&ops, &seq_reason, ctx);
    for (i, slot) in (first_slot..first_slot + chain.len()).enumerate() {
        let op = &mut profile.ops[slot];
        op.rows_out = out.rows_out();
        op.total_seconds = src.seconds + if i == 0 { chain_seconds } else { 0.0 };
        if i == 0 {
            op.self_seconds = chain_seconds;
            op.charged_bytes = chain_charged;
            op.fallback = seq_reason.clone();
            op.strategy = strategy.clone();
            op.selection = out.density().map(|d| format!("selection: {d}"));
        }
    }
    totals.seconds += src.seconds + chain_seconds;
    totals.charged += src.charged + chain_charged;
    Ok(out)
}

fn run_node(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    depth: usize,
    profile: &mut QueryProfile,
) -> Result<Batch, ExecError> {
    // Reserve this node's slot so the profile reads in pre-order.
    let slot = profile.ops.len();
    profile.ops.push(OpTrace {
        label: node_label(plan),
        depth,
        rows_out: 0,
        total_seconds: 0.0,
        self_seconds: 0.0,
        fallback: None,
        strategy: None,
        selection: None,
        charged_bytes: 0,
    });

    let start = Instant::now();
    let start_charged = ctx.memory.charged_total();
    let mut totals = ChildTotals::default();

    let batch = match plan {
        PhysicalPlan::Scan { table, schema, .. } => {
            exact::scan_table(table, schema.as_deref(), ctx)?
        }
        PhysicalPlan::AnnTopK {
            table,
            schema,
            column,
            query,
            metric,
            n,
            path,
        } => exact::ann_topk(table, schema, column, query, *metric, n, path, ctx)?,
        PhysicalPlan::TvfScan {
            name,
            schema,
            input,
        } => {
            let inp = run_child(input, ctx, depth + 1, profile, &mut totals)?;
            let tvf = ctx.udfs.table_fn(name)?.clone();
            let out = tvf.invoke_table(&inp, ctx)?;
            crate::udf::check_tvf_output(name, schema.as_deref(), &out)?;
            out
        }
        PhysicalPlan::TvfProject {
            name,
            args,
            schema,
            input,
        } => {
            let inp = run_child(input, ctx, depth + 1, profile, &mut totals)?;
            let tvf = ctx.udfs.table_fn(name)?.clone();
            let mut arg_values = Vec::with_capacity(args.len());
            for a in args {
                arg_values.push(eval_expr(a, &inp, ctx)?.into_arg());
            }
            let out = tvf.invoke_cols(&arg_values, ctx)?;
            crate::udf::check_tvf_output(name, schema.as_deref(), &out)?;
            out
        }
        PhysicalPlan::Filter { predicate, input } => {
            let inp = run_child(input, ctx, depth + 1, profile, &mut totals)?;
            let skip = plan_skip_mask(input, inp.rows(), ctx);
            let ops = [MorselOp::Filter(predicate)];
            let (planned, reason) = morsel::planned_and_reason(&inp, &ops, None, ctx);
            profile.morsels += planned;
            profile.ops[slot].strategy = chain_strategy_note(&ops, &reason, ctx);
            profile.ops[slot].fallback = reason;
            morsel::run_ops(&inp, &ops, None, skip.as_deref(), ctx)?
        }
        PhysicalPlan::Project { items, input } => {
            let inp = run_child(input, ctx, depth + 1, profile, &mut totals)?;
            let ops = [MorselOp::Project(items)];
            let (planned, reason) = morsel::planned_and_reason(&inp, &ops, None, ctx);
            profile.morsels += planned;
            profile.ops[slot].strategy = chain_strategy_note(&ops, &reason, ctx);
            profile.ops[slot].fallback = reason;
            morsel::run_ops(&inp, &ops, None, None, ctx)?
        }
        PhysicalPlan::Aggregate {
            keys,
            aggregates,
            input,
        } => {
            let inp = run_child(input, ctx, depth + 1, profile, &mut totals)?;
            let (planned, reason) =
                morsel::planned_and_reason(&inp, &[], Some((keys, aggregates)), ctx);
            profile.morsels += planned;
            profile.ops[slot].fallback = reason;
            morsel::run_aggregate(&inp, &[], keys, aggregates, None, ctx)?
        }
        PhysicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => {
            let l = barrier_child(left, ctx, depth + 1, profile, &mut totals)?;
            let r = barrier_child(right, ctx, depth + 1, profile, &mut totals)?;
            record_barrier(plan, &[&l, &r], ctx, slot, profile);
            morsel::run_join(l, r, *kind, on, ctx)?
        }
        PhysicalPlan::Sort { keys, input } => {
            let inp = barrier_child(input, ctx, depth + 1, profile, &mut totals)?;
            record_barrier(plan, &[&inp], ctx, slot, profile);
            morsel::run_sort(inp, keys, ctx)?
        }
        PhysicalPlan::Limit { n, input } => {
            let inp = run_child(input, ctx, depth + 1, profile, &mut totals)?;
            inp.head(resolve_limit(n, ctx)?)
        }
        PhysicalPlan::TopK { keys, n, input } => {
            let inp = barrier_child(input, ctx, depth + 1, profile, &mut totals)?;
            record_barrier(plan, &[&inp], ctx, slot, profile);
            morsel::run_topk(inp, keys, resolve_limit(n, ctx)?, ctx)?
        }
        PhysicalPlan::Window { windows, input } => {
            let inp = run_child(input, ctx, depth + 1, profile, &mut totals)?;
            exact::window_batch(&inp, windows, ctx)?
        }
        PhysicalPlan::Distinct { input } => {
            let inp = barrier_child(input, ctx, depth + 1, profile, &mut totals)?;
            record_barrier(plan, &[&inp], ctx, slot, profile);
            morsel::run_distinct(inp, ctx)?
        }
        PhysicalPlan::UnionAll { left, right } => {
            let l = run_child(left, ctx, depth + 1, profile, &mut totals)?;
            let r = run_child(right, ctx, depth + 1, profile, &mut totals)?;
            exact::union_all_batches(&l, &r)?
        }
    };

    let total = start.elapsed().as_secs_f64();
    let op = &mut profile.ops[slot];
    op.rows_out = batch.rows();
    op.total_seconds = total;
    op.self_seconds = (total - totals.seconds).max(0.0);
    op.charged_bytes = (ctx.memory.charged_total() - start_charged).saturating_sub(totals.charged);
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::lower;
    use crate::udf::UdfRegistry;
    use tdp_sql::plan::{build_plan, PlannerContext};
    use tdp_sql::{optimizer, parse};
    use tdp_storage::{Catalog, TableBuilder};

    fn setup() -> Catalog {
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("x", (0..100).map(|v| v as f32).collect())
                .col_str(
                    "tag",
                    &(0..100).map(|v| format!("t{}", v % 3)).collect::<Vec<_>>(),
                )
                .build("t"),
        );
        catalog
    }

    fn profiled(catalog: &Catalog, sql: &str) -> (Batch, QueryProfile) {
        let udfs = UdfRegistry::new();
        let ctx = ExecContext::new(catalog, &udfs);
        let plan = optimizer::optimize(
            build_plan(&parse(sql).unwrap(), &PlannerContext::default()).unwrap(),
        );
        let phys = lower(&plan, catalog, &udfs).unwrap();
        execute_profiled(&phys, &ctx).unwrap()
    }

    #[test]
    fn profile_matches_plan_shape_and_result() {
        let c = setup();
        let (batch, prof) = profiled(&c, "SELECT tag, COUNT(*) FROM t WHERE x >= 10 GROUP BY tag");
        assert_eq!(batch.rows(), 3);
        let labels: Vec<&str> = prof.ops.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(labels.len(), 3, "{labels:?}");
        assert!(labels[0].starts_with("Aggregate"), "{labels:?}");
        assert!(labels[1].starts_with("Filter"), "{labels:?}");
        assert!(labels[2].starts_with("Scan"), "{labels:?}");
        // Labels carry resolved slots.
        assert!(labels[1].contains("x@0"), "{labels:?}");
        // Depths follow the tree.
        assert_eq!(
            prof.ops.iter().map(|o| o.depth).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Cardinalities recorded per node.
        assert_eq!(prof.ops[2].rows_out, 100);
        assert_eq!(prof.ops[1].rows_out, 90);
        assert_eq!(prof.ops[0].rows_out, 3);
    }

    #[test]
    fn self_time_sums_to_total() {
        let c = setup();
        let (_, prof) = profiled(&c, "SELECT x FROM t WHERE x > 50 ORDER BY x DESC LIMIT 5");
        let self_sum: f64 = prof.ops.iter().map(|o| o.self_seconds).sum();
        let total = prof.total_seconds();
        assert!(
            (self_sum - total).abs() <= total * 0.5 + 1e-6,
            "self {self_sum} vs total {total}"
        );
        assert!(prof.hottest().is_some());
    }

    #[test]
    fn profile_result_equals_unprofiled_result() {
        let c = setup();
        let sql = "SELECT tag, COUNT(*) FROM t GROUP BY tag ORDER BY tag";
        let (batch, _) = profiled(&c, sql);
        let udfs = UdfRegistry::new();
        let ctx = ExecContext::new(&c, &udfs);
        let plan = optimizer::optimize(
            build_plan(&parse(sql).unwrap(), &PlannerContext::default()).unwrap(),
        );
        let phys = lower(&plan, &c, &udfs).unwrap();
        let plain = crate::exact::execute(&phys, &ctx).unwrap();
        assert_eq!(
            batch
                .column("COUNT(*)")
                .unwrap()
                .to_exact()
                .decode_i64()
                .to_vec(),
            plain
                .column("COUNT(*)")
                .unwrap()
                .to_exact()
                .decode_i64()
                .to_vec()
        );
    }

    #[test]
    fn pretty_renders_one_line_per_op() {
        let c = setup();
        let (_, prof) = profiled(&c, "SELECT DISTINCT tag FROM t");
        let text = prof.pretty();
        assert_eq!(text.lines().count(), 2 + prof.ops.len());
        assert!(text.starts_with("threads="), "{text}");
        assert!(text.contains("Distinct"));
        assert!(text.contains("Scan: t"));
    }

    #[test]
    fn join_profile_has_two_children() {
        let c = setup();
        c.register(
            TableBuilder::new()
                .col_str("tag", &["t0", "t1", "t2"])
                .col_f32("w", vec![1.0, 2.0, 3.0])
                .build("weights"),
        );
        let (_, prof) = profiled(
            &c,
            "SELECT t.x, weights.w FROM t JOIN weights ON t.tag = weights.tag LIMIT 3",
        );
        let join_idx = prof
            .ops
            .iter()
            .position(|o| o.label.starts_with("Join"))
            .expect("join node");
        let children: Vec<_> = prof
            .ops
            .iter()
            .filter(|o| o.depth == prof.ops[join_idx].depth + 1)
            .collect();
        assert_eq!(children.len(), 2);
    }
}
