//! Executor-side charging helpers over the query's [`tdp_mem`] ledger.
//!
//! The morsel scheduler and the staged barrier operators charge their
//! input-proportional materializations here: decoded partition columns,
//! exchange buckets, join build tables, sort runs and DISTINCT sets.
//! Charges are estimates of the dominant allocation (payload bytes for
//! columns, ids + entry overhead for hash structures), taken *before*
//! the allocation where practical so a breach aborts cheaply. Both
//! guards release on drop — the "release on operator drop" half of the
//! ledger contract — and a refused charge becomes
//! [`ExecError::MemoryBudget`] naming the operator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tdp_encoding::EncodedTensor;
use tdp_mem::MemoryReservation;

use crate::error::ExecError;

/// One-shot RAII charge: grows the ledger now, shrinks on drop.
#[derive(Debug)]
pub(crate) struct ChargeGuard {
    memory: Arc<MemoryReservation>,
    bytes: u64,
}

impl Drop for ChargeGuard {
    fn drop(&mut self) {
        self.memory.shrink(self.bytes);
    }
}

/// Charge `bytes` against `memory` for `operator`, or fail with the
/// typed budget error that aborts this query (and only this query).
pub(crate) fn charge(
    memory: &Arc<MemoryReservation>,
    operator: &str,
    bytes: u64,
) -> Result<ChargeGuard, ExecError> {
    if !memory.try_grow(bytes) {
        return Err(ExecError::MemoryBudget {
            operator: operator.to_string(),
            requested: bytes,
        });
    }
    Ok(ChargeGuard {
        memory: Arc::clone(memory),
        bytes,
    })
}

/// Accumulating charge shared across a worker pool: every `add` grows
/// the ledger, the running total is released in one shrink on drop.
/// Atomic, so morsel/partition claim loops charge concurrently.
pub(crate) struct ScopedCharges {
    memory: Arc<MemoryReservation>,
    total: AtomicU64,
}

impl ScopedCharges {
    pub(crate) fn new(memory: &Arc<MemoryReservation>) -> ScopedCharges {
        ScopedCharges {
            memory: Arc::clone(memory),
            total: AtomicU64::new(0),
        }
    }

    /// Charge `bytes` more for `operator`.
    pub(crate) fn add(&self, operator: &str, bytes: u64) -> Result<(), ExecError> {
        if !self.memory.try_grow(bytes) {
            return Err(ExecError::MemoryBudget {
                operator: operator.to_string(),
                requested: bytes,
            });
        }
        self.total.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for ScopedCharges {
    fn drop(&mut self) {
        self.memory.shrink(self.total.load(Ordering::Relaxed));
    }
}

/// Payload bytes of a materialised column set.
pub(crate) fn cols_bytes(cols: &[(String, EncodedTensor)]) -> u64 {
    cols.iter().map(|(_, c)| c.memory_bytes() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_mem::MemoryPool;

    fn tight(budget: u64) -> Arc<MemoryReservation> {
        Arc::new(Arc::new(MemoryPool::with_budget(budget)).reserve())
    }

    #[test]
    fn charge_guard_releases_on_drop() {
        let mem = tight(100);
        {
            let _g = charge(&mem, "test", 80).unwrap();
            assert_eq!(mem.size(), 80);
            assert!(charge(&mem, "test", 40).is_err());
        }
        assert_eq!(mem.size(), 0);
        assert!(charge(&mem, "test", 40).is_ok());
    }

    #[test]
    fn refused_charge_names_the_operator() {
        let mem = tight(10);
        let err = charge(&mem, "join build", 100).unwrap_err();
        assert!(err.to_string().contains("out of memory budget"));
        assert!(err.to_string().contains("join build"));
    }

    #[test]
    fn scoped_charges_accumulate_and_release_once() {
        let mem = tight(100);
        {
            let s = ScopedCharges::new(&mem);
            s.add("a", 30).unwrap();
            s.add("b", 30).unwrap();
            assert_eq!(mem.size(), 60);
            assert!(s.add("c", 50).is_err());
            assert_eq!(mem.size(), 60, "failed add leaves the total alone");
        }
        assert_eq!(mem.size(), 0);
    }
}
