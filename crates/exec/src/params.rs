//! Parameter bindings for prepared statements.
//!
//! A compiled [`crate::PhysicalPlan`] may contain
//! [`crate::CompiledExpr::Param`] slots — from explicit `?`/`$n`
//! placeholders or from literals auto-parameterised for plan-cache
//! sharing. The executors resolve each slot against the
//! [`ParamValues`] carried on the [`crate::ExecContext`]; the plan itself
//! stays value-free, which is what lets one compiled plan serve many
//! bindings.

use tdp_sql::ast::Literal;
use tdp_tensor::F32Tensor;

/// One bound parameter value.
#[derive(Debug, Clone)]
pub enum ParamValue {
    Number(f64),
    String(String),
    Bool(bool),
    /// Representable so callers can bind it, but this dialect is NULL-free:
    /// evaluating a NULL parameter reports a targeted runtime error.
    Null,
    /// A whole tensor column (rows must match the batch the expression
    /// evaluates against — scalars broadcast, tensors do not).
    Tensor(F32Tensor),
}

impl From<&Literal> for ParamValue {
    fn from(lit: &Literal) -> ParamValue {
        match lit {
            Literal::Number(n) => ParamValue::Number(*n),
            Literal::String(s) => ParamValue::String(s.clone()),
            Literal::Bool(b) => ParamValue::Bool(*b),
            Literal::Null => ParamValue::Null,
        }
    }
}

/// An ordered parameter binding: slot `i` (rendered `$(i+1)` in EXPLAIN
/// output) resolves to `values[i]`. Built fluently:
///
/// ```
/// use tdp_exec::ParamValues;
/// let params = ParamValues::new().number(0.5).string("receipt").bool(true);
/// assert_eq!(params.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParamValues {
    values: Vec<ParamValue>,
}

impl ParamValues {
    pub fn new() -> ParamValues {
        ParamValues::default()
    }

    /// Bind the next slot to a number.
    pub fn number(mut self, v: f64) -> ParamValues {
        self.values.push(ParamValue::Number(v));
        self
    }

    /// Bind the next slot to a string.
    pub fn string(mut self, s: impl Into<String>) -> ParamValues {
        self.values.push(ParamValue::String(s.into()));
        self
    }

    /// Bind the next slot to a boolean.
    pub fn bool(mut self, b: bool) -> ParamValues {
        self.values.push(ParamValue::Bool(b));
        self
    }

    /// Bind the next slot to NULL (rejected at evaluation time — see
    /// [`ParamValue::Null`]).
    pub fn null(mut self) -> ParamValues {
        self.values.push(ParamValue::Null);
        self
    }

    /// Bind the next slot to a tensor column.
    pub fn tensor(mut self, t: F32Tensor) -> ParamValues {
        self.values.push(ParamValue::Tensor(t));
        self
    }

    /// Append an already-constructed value.
    pub fn push(&mut self, v: ParamValue) {
        self.values.push(v);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, idx: usize) -> Option<&ParamValue> {
        self.values.get(idx)
    }

    pub fn values(&self) -> &[ParamValue] {
        &self.values
    }
}

impl From<Vec<ParamValue>> for ParamValues {
    fn from(values: Vec<ParamValue>) -> ParamValues {
        ParamValues { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_tensor::Tensor;

    #[test]
    fn builder_orders_slots() {
        let p = ParamValues::new()
            .number(1.0)
            .string("x")
            .bool(false)
            .null()
            .tensor(Tensor::<f32>::zeros(&[2]));
        assert_eq!(p.len(), 5);
        assert!(matches!(p.get(0), Some(ParamValue::Number(n)) if *n == 1.0));
        assert!(matches!(p.get(1), Some(ParamValue::String(s)) if s == "x"));
        assert!(matches!(p.get(2), Some(ParamValue::Bool(false))));
        assert!(matches!(p.get(3), Some(ParamValue::Null)));
        assert!(matches!(p.get(4), Some(ParamValue::Tensor(_))));
        assert!(p.get(5).is_none());
    }

    #[test]
    fn from_literals() {
        use tdp_sql::ast::Literal;
        assert!(matches!(
            ParamValue::from(&Literal::Number(2.5)),
            ParamValue::Number(n) if n == 2.5
        ));
        assert!(matches!(ParamValue::from(&Literal::Null), ParamValue::Null));
    }
}
