//! Compiled vectorized chain kernels: selection-vector execution for the
//! fused filter→project chains that form the hot inner loop of every
//! morsel on every worker thread.
//!
//! ## Selection-vector model
//!
//! The interpreter ([`crate::expr::eval_expr`] + [`crate::exact::filter_batch`])
//! materializes a fully gathered batch after *each* filter op: every
//! predicate allocates a boolean mask, then every column is gathered.
//! A chain kernel instead evaluates predicates into a **selection
//! vector** (`SelVec`) — a boolean mask while the selection is dense,
//! demoted to a sorted index list once few enough rows survive
//! (`DENSE_DIVISOR`). Consecutive filters refine the same selection
//! (sparse selections evaluate later predicates on surviving rows
//! only; dense ones evaluate full-width and intersect branchlessly,
//! which beats index gathers until selectivity bites), and the single
//! gather happens once at chain exit or is pushed into the projection
//! loop. Top-level `AND` conjuncts inside one predicate refine the
//! selection the same way. Index compaction is branch-free
//! (`compact`): on the random masks real predicates produce,
//! mispredicted branches would otherwise dominate the refinement loop.
//!
//! Expression loops are monomorphised over the concrete column
//! encodings at the leaves — i64 values, f32 values, dictionary codes —
//! so the autovectorizer sees tight `Vec<f32>`/`Vec<bool>` loops instead
//! of enum dispatch per value. The arithmetic replicates the
//! interpreter's kernel dispatch *exactly* (same f32 widening, same
//! operand order, same CASE blend expression), which is what keeps the
//! interpreter the byte-identity oracle at every thread count.
//!
//! ## Exit modes
//!
//! A compiled chain leaves the kernel in one of two ways, chosen per
//! pipeline by [`crate::pipeline`]:
//!
//! * **Gather exit** (`ChainInstance::run`) — the deferred selection
//!   is collapsed into one `filter_rows` gather per column and a dense
//!   [`Batch`] streams onward. Used when the consumer needs dense rows
//!   (streaming sinks, LIMIT, unsupported barrier shapes).
//! * **Selection exit** (`ChainInstance::run_selection` →
//!   `SelOutput`) — the chain returns its output columns still at
//!   input width plus the final `SelVec`; the consuming barrier stage
//!   (aggregate, join, sort, top-k, DISTINCT) folds, probes or extracts
//!   keys over survivors directly and defers the single payload gather
//!   to its own assembly step — or never gathers at all (masked
//!   aggregation). Only chains whose projections are pure column remaps
//!   qualify (`ChainInstance::selection_capable`); a computed item
//!   would materialize new storage in selection space and reset the
//!   row space. `selection_verdict` is the pure per-chain verdict
//!   surfaced by EXPLAIN as `[barrier: selection-fed]` versus
//!   `[barrier: gathered: <reason>]`.
//!
//! ## Fallback taxonomy
//!
//! Compilation is conservative: anything the kernel cannot reproduce
//! bit-for-bit falls back to the interpreter with a named reason
//! (surfaced through EXPLAIN and [`crate::profile::OpTrace::strategy`]):
//!
//! * **compile-time** (cached negatively): `udf(name)` — session UDFs,
//!   including built-ins shadowed by a later registration;
//!   `scalar-subquery`; `empty-in-list`; `builtin-arity(name)`.
//! * **bind-time** (per execution): `tensor-param($n)` /
//!   `null-param($n)` / `unbound-param($n)` — parameter slots whose
//!   bound value has no scalar kernel form.
//! * **run-time** (per morsel, silent): batches carrying differentiable
//!   columns, payload (rank > 1) columns used in computed expressions,
//!   evaluation type errors (the interpreter re-runs the morsel and
//!   raises the identical error), and multi-filter runs over
//!   re-compressing integer layouts (bit-packed / delta columns pick a
//!   fresh smallest encoding per gather, so a collapsed single gather
//!   could not reproduce the interpreter's intermediate choices).
//!
//! ## Cache keying
//!
//! Compiled programs are cached in a bounded, session-shared
//! [`KernelCache`] keyed by the chain's **literal-invariant
//! fingerprint**: an FNV-1a hash over the op shapes and the
//! [`CompiledExpr`] renderings, in which literals lifted to `$n` slots
//! by auto-parameterisation hash identically across bindings. Entries
//! are stamped with the cache **epoch**, bumped on catalog changes and
//! UDF (re-)registration — a stale entry is a miss, so a UDF registered
//! after compilation correctly shadows a built-in on the next run.
//! Fallback verdicts are cached negatively so unsupported chains pay
//! the compile probe once. Eviction is LRU with a fixed cap
//! ([`KERNEL_CACHE_CAP`]); [`ChainKernelStats`] exposes
//! hits/misses/evictions/fallbacks.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tdp_encoding::{EncodedTensor, StringDict};
use tdp_sql::ast::{BinOp, UnOp};
use tdp_tensor::{BoolTensor, Tensor};

use crate::batch::{Batch, ColumnData};
use crate::expr::like_match;
use crate::params::{ParamValue, ParamValues};
use crate::physical::{ColumnRef, CompiledExpr, ScalarFn};
use crate::pipeline::MorselOp;
use crate::udf::ExecContext;

/// LRU capacity of the session kernel cache (entries, not bytes).
pub const KERNEL_CACHE_CAP: usize = 256;

// ----------------------------------------------------------------------
// Compiled form
// ----------------------------------------------------------------------

/// A vetted, owned mirror of [`CompiledExpr`] containing only node kinds
/// the kernel evaluator reproduces bit-for-bit. Construction *is* the
/// support check: anything else fails [`compile`] with a named reason.
#[derive(Clone, Debug)]
enum KExpr {
    Col(ColumnRef),
    Num(f64),
    Str(String),
    Bool(bool),
    Binary {
        op: BinOp,
        left: Box<KExpr>,
        right: Box<KExpr>,
    },
    Neg(Box<KExpr>),
    Not(Box<KExpr>),
    Builtin {
        func: ScalarFn,
        args: Vec<KExpr>,
    },
    Case {
        operand: Option<Box<KExpr>>,
        branches: Vec<(KExpr, KExpr)>,
        else_expr: Option<Box<KExpr>>,
    },
    InList {
        expr: Box<KExpr>,
        list: Vec<KExpr>,
        negated: bool,
    },
    Like {
        expr: Box<KExpr>,
        pattern: String,
        negated: bool,
    },
    /// Present only in the cached (literal-invariant) program; replaced
    /// by a literal at instantiation, or the instantiation falls back.
    Param(usize),
}

/// One chain segment: a predicate refining the selection, or a
/// projection materializing a new column set (which resets it).
#[derive(Clone, Debug)]
enum Seg {
    Filter(KExpr),
    Project(Vec<(String, KExpr)>),
}

/// A compiled, literal-invariant chain program — the cache value.
/// Binding-specific literals still appear as [`KExpr::Param`] slots.
#[derive(Debug)]
pub(crate) struct ChainProgram {
    segs: Vec<Seg>,
    /// Longest run of consecutive filter segments (no projection
    /// between them) — gates the re-compressing-layout fallback.
    max_filter_run: usize,
}

impl ChainProgram {
    /// See `ChainInstance::selection_capable`.
    pub(crate) fn selection_capable(&self) -> Result<(), &'static str> {
        segs_selection_capable(&self.segs)
    }
}

/// A program bound to one parameter set, ready to run on morsels from
/// any worker thread.
pub(crate) struct ChainInstance {
    segs: Vec<Seg>,
    max_filter_run: usize,
    cache: Arc<KernelCache>,
    /// Run-time fallbacks are counted once per execution, not per morsel.
    fallback_noted: AtomicBool,
}

/// Why (or that) a chain runs compiled — the EXPLAIN / profile verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ChainStrategy {
    /// Kernel-compiled; payload is the number of fused ops.
    Compiled(usize),
    /// Interpreted, with the named reason.
    Interpreted(String),
}

// ----------------------------------------------------------------------
// Compilation
// ----------------------------------------------------------------------

fn compile_expr(e: &CompiledExpr, ctx: &ExecContext) -> Result<KExpr, String> {
    Ok(match e {
        CompiledExpr::Column(c) => KExpr::Col(c.clone()),
        CompiledExpr::Num(n) => KExpr::Num(*n),
        CompiledExpr::Str(s) => KExpr::Str(s.clone()),
        CompiledExpr::Bool(b) => KExpr::Bool(*b),
        CompiledExpr::Binary { op, left, right } => KExpr::Binary {
            op: *op,
            left: Box::new(compile_expr(left, ctx)?),
            right: Box::new(compile_expr(right, ctx)?),
        },
        CompiledExpr::Unary {
            op: UnOp::Neg,
            expr,
        } => KExpr::Neg(Box::new(compile_expr(expr, ctx)?)),
        CompiledExpr::Unary {
            op: UnOp::Not,
            expr,
        } => KExpr::Not(Box::new(compile_expr(expr, ctx)?)),
        CompiledExpr::Udf { name, .. } => return Err(format!("udf({name})")),
        CompiledExpr::Builtin { name, func, args } => {
            // A session UDF registered after compilation shadows the
            // built-in; registration bumps the cache epoch, so checking
            // here is stable for the cached program's lifetime.
            if ctx.udfs.is_scalar(name) {
                return Err(format!("udf({name})"));
            }
            if args.len() != func.arity() {
                return Err(format!("builtin-arity({name})"));
            }
            // Vector-similarity builtins consume a whole [n, d] embedding
            // column; selection-vector programs are strictly scalar-per-row.
            if matches!(func, crate::physical::ScalarFn::Vector(_)) {
                return Err(format!("vector-builtin({name})"));
            }
            KExpr::Builtin {
                func: *func,
                args: args
                    .iter()
                    .map(|a| compile_expr(a, ctx))
                    .collect::<Result<_, _>>()?,
            }
        }
        CompiledExpr::Case {
            operand,
            branches,
            else_expr,
        } => KExpr::Case {
            operand: operand
                .as_deref()
                .map(|o| compile_expr(o, ctx).map(Box::new))
                .transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| Ok((compile_expr(w, ctx)?, compile_expr(t, ctx)?)))
                .collect::<Result<_, String>>()?,
            else_expr: else_expr
                .as_deref()
                .map(|e| compile_expr(e, ctx).map(Box::new))
                .transpose()?,
        },
        CompiledExpr::InList {
            expr,
            list,
            negated,
        } => {
            if list.is_empty() {
                return Err("empty-in-list".into());
            }
            KExpr::InList {
                expr: Box::new(compile_expr(expr, ctx)?),
                list: list
                    .iter()
                    .map(|i| compile_expr(i, ctx))
                    .collect::<Result<_, _>>()?,
                negated: *negated,
            }
        }
        CompiledExpr::Like {
            expr,
            pattern,
            negated,
        } => KExpr::Like {
            expr: Box::new(compile_expr(expr, ctx)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        CompiledExpr::ScalarSubquery(_) => return Err("scalar-subquery".into()),
        CompiledExpr::Param { idx } => KExpr::Param(*idx),
    })
}

/// Compile a fused chain into a literal-invariant program, or name the
/// first reason it must stay interpreted.
pub(crate) fn compile(ops: &[MorselOp<'_>], ctx: &ExecContext) -> Result<ChainProgram, String> {
    let mut segs = Vec::with_capacity(ops.len());
    let (mut run, mut max_filter_run) = (0usize, 0usize);
    for op in ops {
        match op {
            MorselOp::Filter(pred) => {
                segs.push(Seg::Filter(compile_expr(pred, ctx)?));
                run += 1;
                max_filter_run = max_filter_run.max(run);
            }
            MorselOp::Project(items) => {
                segs.push(Seg::Project(
                    items
                        .iter()
                        .map(|it| Ok((it.name.clone(), compile_expr(&it.expr, ctx)?)))
                        .collect::<Result<_, String>>()?,
                ));
                run = 0;
            }
        }
    }
    Ok(ChainProgram {
        segs,
        max_filter_run,
    })
}

fn subst_params(e: &KExpr, params: &ParamValues) -> Result<KExpr, String> {
    Ok(match e {
        KExpr::Param(idx) => match params.get(*idx) {
            Some(ParamValue::Number(n)) => KExpr::Num(*n),
            Some(ParamValue::String(s)) => KExpr::Str(s.clone()),
            Some(ParamValue::Bool(b)) => KExpr::Bool(*b),
            Some(ParamValue::Tensor(_)) => return Err(format!("tensor-param(${})", idx + 1)),
            Some(ParamValue::Null) => return Err(format!("null-param(${})", idx + 1)),
            None => return Err(format!("unbound-param(${})", idx + 1)),
        },
        KExpr::Col(_) | KExpr::Num(_) | KExpr::Str(_) | KExpr::Bool(_) => e.clone(),
        KExpr::Binary { op, left, right } => KExpr::Binary {
            op: *op,
            left: Box::new(subst_params(left, params)?),
            right: Box::new(subst_params(right, params)?),
        },
        KExpr::Neg(x) => KExpr::Neg(Box::new(subst_params(x, params)?)),
        KExpr::Not(x) => KExpr::Not(Box::new(subst_params(x, params)?)),
        KExpr::Builtin { func, args } => KExpr::Builtin {
            func: *func,
            args: args
                .iter()
                .map(|a| subst_params(a, params))
                .collect::<Result<_, _>>()?,
        },
        KExpr::Case {
            operand,
            branches,
            else_expr,
        } => KExpr::Case {
            operand: operand
                .as_deref()
                .map(|o| subst_params(o, params).map(Box::new))
                .transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| Ok((subst_params(w, params)?, subst_params(t, params)?)))
                .collect::<Result<_, String>>()?,
            else_expr: else_expr
                .as_deref()
                .map(|x| subst_params(x, params).map(Box::new))
                .transpose()?,
        },
        KExpr::InList {
            expr,
            list,
            negated,
        } => KExpr::InList {
            expr: Box::new(subst_params(expr, params)?),
            list: list
                .iter()
                .map(|i| subst_params(i, params))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        KExpr::Like {
            expr,
            pattern,
            negated,
        } => KExpr::Like {
            expr: Box::new(subst_params(expr, params)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
    })
}

impl ChainProgram {
    /// Bind one parameter set, producing a thread-shareable instance.
    fn instantiate(
        &self,
        params: &ParamValues,
        cache: Arc<KernelCache>,
    ) -> Result<ChainInstance, String> {
        let segs = self
            .segs
            .iter()
            .map(|seg| {
                Ok(match seg {
                    Seg::Filter(p) => Seg::Filter(subst_params(p, params)?),
                    Seg::Project(items) => Seg::Project(
                        items
                            .iter()
                            .map(|(n, e)| Ok((n.clone(), subst_params(e, params)?)))
                            .collect::<Result<_, String>>()?,
                    ),
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(ChainInstance {
            segs,
            max_filter_run: self.max_filter_run,
            cache,
            fallback_noted: AtomicBool::new(false),
        })
    }
}

// ----------------------------------------------------------------------
// Fingerprint
// ----------------------------------------------------------------------

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Literal-invariant fingerprint of a fused chain: FNV-1a over the op
/// tags and the [`CompiledExpr`] renderings (auto-parameterised
/// literals render as `$n`, so bindings share one entry).
pub(crate) fn chain_fingerprint(ops: &[MorselOp<'_>]) -> u64 {
    let mut h = Fnv::new();
    for op in ops {
        match op {
            MorselOp::Filter(pred) => {
                h.eat(b"F\x1f");
                h.eat(pred.to_string().as_bytes());
            }
            MorselOp::Project(items) => {
                h.eat(b"P\x1f");
                for it in *items {
                    h.eat(it.name.as_bytes());
                    h.eat(b"\x1f");
                    h.eat(it.expr.to_string().as_bytes());
                    h.eat(b"\x1e");
                }
            }
        }
        h.eat(b"\x1d");
    }
    h.0
}

// ----------------------------------------------------------------------
// Cache
// ----------------------------------------------------------------------

/// Cached verdict for one fingerprint: a compiled program, or the named
/// reason compilation refused (negative caching). The reason string is
/// carried for diagnostics (EXPLAIN re-derives it without the cache, so
/// execution never reads it back).
#[derive(Clone)]
enum Compiled {
    Ok(Arc<ChainProgram>),
    Fallback(#[allow(dead_code)] String),
}

struct CacheEntry {
    compiled: Compiled,
    epoch: u64,
    last_used: u64,
}

struct CacheInner {
    entries: HashMap<u64, CacheEntry>,
    tick: u64,
}

/// Session-shared, bounded cache of compiled chain programs, keyed by
/// `chain_fingerprint`. Epoch-stamped entries invalidate on catalog
/// changes and UDF registration; eviction is LRU at
/// [`KERNEL_CACHE_CAP`] entries. See the module docs for the model.
pub struct KernelCache {
    inner: Mutex<CacheInner>,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    fallbacks: AtomicU64,
}

/// Counters for [`KernelCache`], mirroring the plan-cache stats shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainKernelStats {
    /// Lookups served by a current-epoch entry.
    pub hits: u64,
    /// Lookups that (re-)compiled — cold, evicted, or stale-epoch.
    pub misses: u64,
    /// Entries displaced by the LRU cap.
    pub evictions: u64,
    /// Executions that ran interpreted while kernels were enabled
    /// (compile refusals, bind-time refusals, run-time bail-outs).
    pub fallbacks: u64,
    /// Entries currently resident (compiled + negative).
    pub entries: usize,
}

impl Default for KernelCache {
    fn default() -> KernelCache {
        KernelCache::new()
    }
}

impl KernelCache {
    pub fn new() -> KernelCache {
        KernelCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                tick: 0,
            }),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// Invalidate every cached program: catalog content or function
    /// resolution changed, so compiled assumptions no longer hold.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    pub fn stats(&self) -> ChainKernelStats {
        let entries = self
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len();
        ChainKernelStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            entries,
        }
    }

    fn note_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    fn get_or_compile(&self, ops: &[MorselOp<'_>], ctx: &ExecContext) -> Compiled {
        let epoch = self.epoch.load(Ordering::Relaxed);
        let fp = chain_fingerprint(ops);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.entries.get_mut(&fp) {
            if e.epoch == epoch {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return e.compiled.clone();
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = match compile(ops, ctx) {
            Ok(p) => Compiled::Ok(Arc::new(p)),
            Err(reason) => Compiled::Fallback(reason),
        };
        if inner.entries.len() >= KERNEL_CACHE_CAP && !inner.entries.contains_key(&fp) {
            if let Some(&lru) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.entries.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.entries.insert(
            fp,
            CacheEntry {
                compiled: compiled.clone(),
                epoch,
                last_used: tick,
            },
        );
        compiled
    }
}

/// Look up (or compile) the kernel for a fused chain and bind it to the
/// context's parameters. `None` means the interpreter runs this chain —
/// kernels disabled, an empty chain, or a named fallback (counted).
pub(crate) fn prepare(ops: &[MorselOp<'_>], ctx: &ExecContext) -> Option<Arc<ChainInstance>> {
    let cache = ctx.chain_kernels.as_ref()?;
    if ops.is_empty() {
        return None;
    }
    match cache.get_or_compile(ops, ctx) {
        Compiled::Ok(prog) => match prog.instantiate(&ctx.params, Arc::clone(cache)) {
            Ok(inst) => Some(Arc::new(inst)),
            Err(_) => {
                cache.note_fallback();
                None
            }
        },
        Compiled::Fallback(_) => {
            cache.note_fallback();
            None
        }
    }
}

/// Classify how a chain would execute under this context — the pure
/// (counter-free) verdict used by EXPLAIN and `run_profiled`. `None`
/// for an empty chain (nothing to compile). Sequential-path reasons
/// ([`crate::morsel::chain_fallback_reason`]) take precedence so a UDF
/// chain reports `udf-not-parallel-safe(f)` rather than the generic
/// compile refusal.
pub(crate) fn chain_strategy(ops: &[MorselOp<'_>], ctx: &ExecContext) -> Option<ChainStrategy> {
    if ops.is_empty() {
        return None;
    }
    if ctx.chain_kernels.is_none() {
        return Some(ChainStrategy::Interpreted("chain-kernels-disabled".into()));
    }
    if let Some(reason) = crate::morsel::chain_fallback_reason(ops, None, ctx) {
        return Some(ChainStrategy::Interpreted(reason));
    }
    Some(match compile(ops, ctx) {
        Ok(_) => ChainStrategy::Compiled(ops.len()),
        Err(reason) => ChainStrategy::Interpreted(reason),
    })
}

/// Would this chain hand its selection straight to a barrier stage? The
/// pure (counter-free) verdict used by EXPLAIN and the run-time gathered
/// fallback reason: `Ok(())` = selection-fed, `Err(reason)` = the barrier
/// consumes a gathered batch. A chain must exist, compile to a kernel
/// and keep the row space intact (no computed projections) to qualify.
pub(crate) fn selection_verdict(ops: &[MorselOp<'_>], ctx: &ExecContext) -> Result<(), String> {
    if ops.is_empty() {
        return Err("no-chain".into());
    }
    if ctx.chain_kernels.is_none() {
        return Err("chain-kernels-disabled".into());
    }
    if let Some(reason) = crate::morsel::chain_fallback_reason(ops, None, ctx) {
        return Err(reason);
    }
    let prog = compile(ops, ctx)?;
    prog.selection_capable().map_err(String::from)
}

// ----------------------------------------------------------------------
// Execution
// ----------------------------------------------------------------------

/// Internal bail-out: the kernel cannot reproduce the interpreter for
/// this batch — the caller re-runs the morsel interpreted.
struct Bail;

type KResult<T> = Result<T, Bail>;

/// A packed evaluation value: the monomorphised mirror of
/// [`crate::expr::Value`]. Vectors are in selection space (one element
/// per *surviving* row). Full-width f32 and dictionary-code leaves
/// *borrow* the column data (the interpreter's `decode_f32` on an
/// `F32` column is an Arc bump, so copying here would be pure
/// overhead); everything computed is owned.
#[derive(Clone, Debug)]
enum PVal<'c> {
    F32(Cow<'c, [f32]>),
    Bool(Vec<bool>),
    /// Dictionary codes plus their dictionary — kept packed so string
    /// comparisons run on codes, as the interpreter does.
    Codes(Cow<'c, [i64]>, Arc<StringDict>),
    Num(f64),
    Str(String),
    BoolS(bool),
}

fn f32_vec(v: PVal<'_>, n: usize) -> KResult<Vec<f32>> {
    Ok(match v {
        PVal::F32(v) => v.into_owned(),
        // Same widenings as `Value::into_f32_column` / `decode_f32`.
        PVal::Bool(m) => m.into_iter().map(|b| if b { 1.0 } else { 0.0 }).collect(),
        PVal::Codes(c, _) => c.iter().map(|&c| c as f32).collect(),
        PVal::Num(x) => vec![x as f32; n],
        PVal::BoolS(b) => vec![if b { 1.0 } else { 0.0 }; n],
        PVal::Str(_) => return Err(Bail), // interpreter: type error
    })
}

fn mask_vec(v: PVal<'_>, n: usize) -> KResult<Vec<bool>> {
    match v {
        PVal::Bool(m) => Ok(m),
        PVal::BoolS(b) => Ok(vec![b; n]),
        _ => Err(Bail), // interpreter: "not a boolean mask"
    }
}

fn resolve<'c>(cols: &'c [(String, EncodedTensor)], r: &ColumnRef) -> KResult<&'c EncodedTensor> {
    match r {
        ColumnRef::Slot { slot, .. } => cols.get(*slot).map(|(_, c)| c).ok_or(Bail),
        // Case-insensitive first occurrence — the `Batch` index contract.
        ColumnRef::Name(name) => cols
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, c)| c)
            .ok_or(Bail),
    }
}

/// Gather a column leaf into selection space, monomorphised per
/// encoding. `sel == None` means all rows — plain f32 and dictionary
/// leaves then *borrow* the column storage instead of copying it.
fn leaf_pval<'c>(col: &'c EncodedTensor, sel: Option<&[u32]>) -> KResult<PVal<'c>> {
    fn gather<T: Copy>(data: &[T], sel: Option<&[u32]>) -> Vec<T> {
        match sel {
            Some(s) => s.iter().map(|&i| data[i as usize]).collect(),
            None => data.to_vec(),
        }
    }
    fn view<'d, T: Copy>(data: &'d [T], sel: Option<&[u32]>) -> Cow<'d, [T]> {
        match sel {
            Some(s) => Cow::Owned(s.iter().map(|&i| data[i as usize]).collect()),
            None => Cow::Borrowed(data),
        }
    }
    Ok(match col {
        EncodedTensor::F32(t) => {
            if t.ndim() != 1 {
                // Payload columns only pass through projections whole;
                // arithmetic on them takes the interpreter's
                // broadcasting path.
                return Err(Bail);
            }
            PVal::F32(view(t.data(), sel))
        }
        EncodedTensor::I64(t) => PVal::F32(Cow::Owned(
            gather(t.data(), sel)
                .into_iter()
                .map(|v| v as f32)
                .collect(),
        )),
        EncodedTensor::Bool(t) => PVal::Bool(gather(t.data(), sel)),
        EncodedTensor::Dict { codes, dict } => {
            PVal::Codes(view(codes.data(), sel), Arc::clone(dict))
        }
        EncodedTensor::Rle(r) => {
            let d = r.decode();
            PVal::F32(Cow::Owned(
                gather(d.data(), sel)
                    .into_iter()
                    .map(|v| v as f32)
                    .collect(),
            ))
        }
        EncodedTensor::BitPacked(b) => {
            let d = b.decode();
            PVal::F32(Cow::Owned(
                gather(d.data(), sel)
                    .into_iter()
                    .map(|v| v as f32)
                    .collect(),
            ))
        }
        EncodedTensor::Delta(d) => {
            let d = d.decode();
            PVal::F32(Cow::Owned(
                gather(d.data(), sel)
                    .into_iter()
                    .map(|v| v as f32)
                    .collect(),
            ))
        }
        EncodedTensor::Pe(p) => {
            let d = p.decode_values();
            PVal::F32(Cow::Owned(gather(d.data(), sel)))
        }
    })
}

/// Mirror of `compare_dict`, on packed codes.
fn compare_codes(
    op: BinOp,
    codes: &[i64],
    dict: &StringDict,
    s: &str,
    flipped: bool,
) -> KResult<Vec<bool>> {
    let op = if flipped {
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => other,
        }
    } else {
        op
    };
    Ok(match op {
        BinOp::Eq => match dict.code_of(s) {
            Some(c) => codes.iter().map(|&x| x == c).collect(),
            None => vec![false; codes.len()],
        },
        BinOp::NotEq => match dict.code_of(s) {
            Some(c) => codes.iter().map(|&x| x != c).collect(),
            None => vec![true; codes.len()],
        },
        BinOp::Lt => {
            let b = dict.lower_bound(s);
            codes.iter().map(|&x| x < b).collect()
        }
        BinOp::GtEq => {
            let b = dict.lower_bound(s);
            codes.iter().map(|&x| x >= b).collect()
        }
        BinOp::LtEq => match dict.code_of(s) {
            Some(c) => codes.iter().map(|&x| x <= c).collect(),
            None => {
                let b = dict.lower_bound(s);
                codes.iter().map(|&x| x < b).collect()
            }
        },
        BinOp::Gt => match dict.code_of(s) {
            Some(c) => codes.iter().map(|&x| x > c).collect(),
            None => {
                let b = dict.lower_bound(s);
                codes.iter().map(|&x| x >= b).collect()
            }
        },
        _ => return Err(Bail), // interpreter: type error
    })
}

/// Mirror of `eval_binary`: same dispatch order, same f32 kernels.
fn kbinary<'c>(op: BinOp, l: PVal<'c>, r: PVal<'c>, n: usize) -> KResult<PVal<'c>> {
    use BinOp::*;

    if op.is_logical() {
        let lm = mask_vec(l, n)?;
        let rm = mask_vec(r, n)?;
        let out = match op {
            And => lm.iter().zip(&rm).map(|(&a, &b)| a && b).collect(),
            Or => lm.iter().zip(&rm).map(|(&a, &b)| a || b).collect(),
            _ => unreachable!(),
        };
        return Ok(PVal::Bool(out));
    }

    match (&l, &r) {
        (PVal::Codes(c, d), PVal::Str(s)) => {
            return compare_codes(op, c, d, s, false).map(PVal::Bool)
        }
        (PVal::Str(s), PVal::Codes(c, d)) => {
            return compare_codes(op, c, d, s, true).map(PVal::Bool)
        }
        _ => {}
    }

    if let (PVal::Num(a), PVal::Num(b)) = (&l, &r) {
        let (a, b) = (*a, *b);
        return Ok(match op {
            Add => PVal::Num(a + b),
            Sub => PVal::Num(a - b),
            Mul => PVal::Num(a * b),
            Div => PVal::Num(a / b),
            Mod => PVal::Num(a % b),
            Eq => PVal::BoolS(a == b),
            NotEq => PVal::BoolS(a != b),
            Lt => PVal::BoolS(a < b),
            LtEq => PVal::BoolS(a <= b),
            Gt => PVal::BoolS(a > b),
            GtEq => PVal::BoolS(a >= b),
            And | Or => unreachable!(),
        });
    }
    if let (PVal::Str(a), PVal::Str(b)) = (&l, &r) {
        return Ok(PVal::BoolS(match op {
            Eq => a == b,
            NotEq => a != b,
            Lt => a < b,
            LtEq => a <= b,
            Gt => a > b,
            GtEq => a >= b,
            _ => return Err(Bail), // interpreter: type error
        }));
    }

    let lc = f32_vec(l, n)?;
    let rc = f32_vec(r, n)?;
    macro_rules! zip_f32 {
        ($f:expr) => {
            PVal::F32(Cow::Owned(
                lc.iter().zip(&rc).map(|(&a, &b)| $f(a, b)).collect(),
            ))
        };
    }
    macro_rules! zip_bool {
        ($f:expr) => {
            PVal::Bool(lc.iter().zip(&rc).map(|(&a, &b)| $f(a, b)).collect())
        };
    }
    Ok(match op {
        Add => zip_f32!(|a: f32, b: f32| a + b),
        Sub => zip_f32!(|a: f32, b: f32| a - b),
        Mul => zip_f32!(|a: f32, b: f32| a * b),
        Div => zip_f32!(|a: f32, b: f32| a / b),
        Mod => zip_f32!(|a: f32, b: f32| a % b),
        Eq => zip_bool!(|a, b| a == b),
        NotEq => zip_bool!(|a, b| a != b),
        Lt => zip_bool!(|a, b| a < b),
        LtEq => zip_bool!(|a, b| a <= b),
        Gt => zip_bool!(|a, b| a > b),
        GtEq => zip_bool!(|a, b| a >= b),
        And | Or => unreachable!(),
    })
}

/// Evaluate one expression in selection space. `n` is the selection
/// length (`sel.len()` or the full row count).
fn eval<'c>(
    e: &KExpr,
    cols: &'c [(String, EncodedTensor)],
    rows: usize,
    sel: Option<&[u32]>,
) -> KResult<PVal<'c>> {
    let n = sel.map_or(rows, <[u32]>::len);
    Ok(match e {
        KExpr::Col(r) => leaf_pval(resolve(cols, r)?, sel)?,
        KExpr::Num(v) => PVal::Num(*v),
        KExpr::Str(s) => PVal::Str(s.clone()),
        KExpr::Bool(b) => PVal::BoolS(*b),
        KExpr::Binary { op, left, right } => {
            let l = eval(left, cols, rows, sel)?;
            let r = eval(right, cols, rows, sel)?;
            kbinary(*op, l, r, n)?
        }
        KExpr::Neg(x) => match eval(x, cols, rows, sel)? {
            PVal::Num(v) => PVal::Num(-v),
            // `decode_f32().neg()` over each encoding's f32 widening.
            PVal::F32(v) => PVal::F32(Cow::Owned(v.iter().map(|&x| -x).collect())),
            PVal::Bool(m) => PVal::F32(Cow::Owned(
                m.into_iter()
                    .map(|b| -(if b { 1.0f32 } else { 0.0 }))
                    .collect(),
            )),
            PVal::Codes(c, _) => PVal::F32(Cow::Owned(c.iter().map(|&x| -(x as f32)).collect())),
            PVal::Str(_) | PVal::BoolS(_) => return Err(Bail), // interpreter: type error
        },
        KExpr::Not(x) => match eval(x, cols, rows, sel)? {
            PVal::BoolS(b) => PVal::BoolS(!b),
            PVal::Bool(m) => PVal::Bool(m.into_iter().map(|b| !b).collect()),
            _ => return Err(Bail), // interpreter: type error
        },
        KExpr::Builtin { func, args } => {
            let vals: Vec<PVal> = args
                .iter()
                .map(|a| eval(a, cols, rows, sel))
                .collect::<KResult<_>>()?;
            let all_scalar = vals.iter().all(|v| matches!(v, PVal::Num(_)));
            match func {
                ScalarFn::Unary(f) => {
                    if all_scalar {
                        let PVal::Num(x) = vals[0] else {
                            unreachable!()
                        };
                        PVal::Num(f(x as f32) as f64)
                    } else {
                        let c = f32_vec(vals.into_iter().next().unwrap(), n)?;
                        PVal::F32(Cow::Owned(c.into_iter().map(f).collect()))
                    }
                }
                ScalarFn::Binary(f) => {
                    if all_scalar {
                        let (PVal::Num(a), PVal::Num(b)) = (&vals[0], &vals[1]) else {
                            unreachable!()
                        };
                        PVal::Num(f(*a as f32, *b as f32) as f64)
                    } else {
                        let mut it = vals.into_iter();
                        let a = f32_vec(it.next().unwrap(), n)?;
                        let b = f32_vec(it.next().unwrap(), n)?;
                        PVal::F32(Cow::Owned(
                            a.iter().zip(&b).map(|(&x, &y)| f(x, y)).collect(),
                        ))
                    }
                }
                // Rejected at compile time (`vector-builtin` reason).
                ScalarFn::Vector(_) => return Err(Bail),
            }
        }
        KExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let operand_val = operand
                .as_deref()
                .map(|o| eval(o, cols, rows, sel))
                .transpose()?;
            let mut out = match else_expr {
                Some(e) => f32_vec(eval(e, cols, rows, sel)?, n)?,
                None => vec![0.0f32; n],
            };
            // Backwards so the first matching WHEN wins, with the
            // interpreter's literal mask blend (NaN-propagating).
            for (when, then) in branches.iter().rev() {
                let cond = match &operand_val {
                    Some(ov) => {
                        let rhs = eval(when, cols, rows, sel)?;
                        mask_vec(kbinary(BinOp::Eq, ov.clone(), rhs, n)?, n)?
                    }
                    None => mask_vec(eval(when, cols, rows, sel)?, n)?,
                };
                let then_col = f32_vec(eval(then, cols, rows, sel)?, n)?;
                for i in 0..n {
                    let cf = if cond[i] { 1.0f32 } else { 0.0 };
                    out[i] = cf * then_col[i] + ((-cf) + 1.0) * out[i];
                }
            }
            PVal::F32(Cow::Owned(out))
        }
        KExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, cols, rows, sel)?;
            let mut acc: Option<Vec<bool>> = None;
            for item in list {
                let rhs = eval(item, cols, rows, sel)?;
                let eq = mask_vec(kbinary(BinOp::Eq, v.clone(), rhs, n)?, n)?;
                acc = Some(match acc {
                    Some(m) => m.iter().zip(&eq).map(|(&a, &b)| a || b).collect(),
                    None => eq,
                });
            }
            let m = acc.expect("compile rejects empty IN lists");
            PVal::Bool(if *negated {
                m.into_iter().map(|b| !b).collect()
            } else {
                m
            })
        }
        KExpr::Like {
            expr,
            pattern,
            negated,
        } => match eval(expr, cols, rows, sel)? {
            PVal::Codes(codes, dict) => {
                // Pattern per dictionary entry, broadcast through codes.
                let verdicts: Vec<bool> = dict
                    .values()
                    .iter()
                    .map(|v| like_match(pattern, v))
                    .collect();
                PVal::Bool(
                    codes
                        .iter()
                        .map(|&c| verdicts[c as usize] != *negated)
                        .collect(),
                )
            }
            PVal::Str(s) => PVal::Bool(vec![like_match(pattern, &s) != *negated; n]),
            _ => return Err(Bail), // interpreter: type error
        },
        KExpr::Param(_) => return Err(Bail), // substituted at instantiation
    })
}

/// Survivor-density divisor: a selection keeping more than
/// `rows / DENSE_DIVISOR` rows is *dense* and stays a boolean mask —
/// the next conjunct is evaluated over all rows (contiguous loops,
/// branchless mask intersection) because per-element index gathers
/// only pay off once few rows survive. Every kernel op is elementwise,
/// so surviving rows compute identical values either way — this is a
/// cost choice, not a semantic one.
const DENSE_DIVISOR: usize = 2;

/// Branch-free index compaction: keep `i` where its flag is set. The
/// unconditional write + conditional cursor advance avoids the
/// per-element branch a `filter` would cost — on random masks (the
/// common case for real predicates) mispredicted branches dominate the
/// compaction loop otherwise.
fn compact(it: impl Iterator<Item = (u32, bool)>, cap: usize) -> Vec<u32> {
    let mut out = vec![0u32; cap + 1];
    let mut j = 0usize;
    for (i, keep) in it {
        out[j] = i;
        j += keep as usize;
    }
    out.truncate(j);
    out
}

/// Hybrid selection vector. Dense selections are boolean masks
/// (intersected branchlessly, gathered directly); sparse ones are
/// sorted index vectors so later predicates and projections touch only
/// survivors. [`filter_sel`] demotes a mask to indices the first time
/// its survivor count drops below `rows / DENSE_DIVISOR`.
///
/// Since PR 10 this is also the inter-operator currency of the
/// selection exit mode (`SelOutput`): the morsel scheduler hands a
/// `(columns, SelVec)` pair straight to a barrier stage instead of
/// gathering through [`SelVec::into_gather_mask`].
pub(crate) enum SelVec {
    /// Mask over all `rows` rows, plus its survivor count.
    Mask(Vec<bool>, usize),
    /// Sorted surviving row indices.
    Idx(Vec<u32>),
}

impl SelVec {
    pub(crate) fn len(&self) -> usize {
        match self {
            SelVec::Mask(_, n) => *n,
            SelVec::Idx(s) => s.len(),
        }
    }

    pub(crate) fn is_sparse(&self, rows: usize) -> bool {
        self.len() * DENSE_DIVISOR <= rows
    }

    /// Counts survivors but keeps the mask representation: conversion
    /// to indices is deferred to the first consumer that profits from
    /// it (a later sparse conjunct, or a computed projection) — a
    /// single-filter chain gathers straight through the mask.
    pub(crate) fn from_mask(m: Vec<bool>) -> SelVec {
        let n = m.iter().map(|&b| b as usize).sum();
        SelVec::Mask(m, n)
    }

    pub(crate) fn into_idx(self) -> Vec<u32> {
        match self {
            SelVec::Idx(s) => s,
            SelVec::Mask(m, _) => compact((0u32..).zip(m.iter().copied()), m.len()),
        }
    }

    /// The boolean gather mask `filter_rows` consumes.
    pub(crate) fn gather_mask(&self, rows: usize) -> BoolTensor {
        match self {
            SelVec::Mask(m, _) => Tensor::from_vec(m.clone(), &[rows]),
            SelVec::Idx(s) => sel_mask(s, rows),
        }
    }

    /// Consuming variant for the chain-exit gather: a dense mask moves
    /// into the tensor instead of being copied.
    fn into_gather_mask(self, rows: usize) -> BoolTensor {
        match self {
            SelVec::Mask(m, _) => Tensor::from_vec(m, &[rows]),
            SelVec::Idx(s) => sel_mask(&s, rows),
        }
    }
}

/// Refine a selection through one predicate. Top-level ANDs evaluate
/// the right conjunct only on rows surviving the left; dense
/// selections evaluate full-width and intersect masks (see
/// [`DENSE_DIVISOR`]), sparse ones evaluate in selection space.
fn filter_sel(
    pred: &KExpr,
    cols: &[(String, EncodedTensor)],
    rows: usize,
    sel: Option<SelVec>,
) -> KResult<SelVec> {
    if let KExpr::Binary {
        op: BinOp::And,
        left,
        right,
    } = pred
    {
        let s = filter_sel(left, cols, rows, sel)?;
        return filter_sel(right, cols, rows, Some(s));
    }
    // Sparse: gather leaves under the selection, evaluate survivors only.
    if let Some(sv) = &sel {
        if sv.is_sparse(rows) {
            let s = sel.unwrap().into_idx();
            let v = eval(pred, cols, rows, Some(&s))?;
            return Ok(SelVec::Idx(match v {
                PVal::Bool(m) => compact(s.iter().copied().zip(m.iter().copied()), s.len()),
                PVal::BoolS(true) => s,
                PVal::BoolS(false) => Vec::new(),
                _ => return Err(Bail), // interpreter: "not a boolean mask"
            }));
        }
    }
    // Dense or unfiltered: full-width evaluation, branchless intersect.
    let v = eval(pred, cols, rows, None)?;
    Ok(match (v, sel) {
        (PVal::Bool(m), None) => SelVec::from_mask(m),
        (PVal::Bool(m2), Some(SelVec::Mask(mut m, _))) => {
            m.iter_mut().zip(&m2).for_each(|(a, &b)| *a &= b);
            SelVec::from_mask(m)
        }
        (PVal::Bool(m2), Some(SelVec::Idx(s))) => {
            SelVec::Idx(compact(s.iter().map(|&i| (i, m2[i as usize])), s.len()))
        }
        (PVal::BoolS(true), None) => SelVec::Mask(vec![true; rows], rows),
        (PVal::BoolS(true), Some(sv)) => sv,
        (PVal::BoolS(false), _) => SelVec::Idx(Vec::new()),
        _ => return Err(Bail), // interpreter: "not a boolean mask"
    })
}

/// Selection vector → boolean gather mask over `rows` rows.
fn sel_mask(sel: &[u32], rows: usize) -> BoolTensor {
    let mut m = vec![false; rows];
    for &i in sel {
        m[i as usize] = true;
    }
    Tensor::from_vec(m, &[rows])
}

impl ChainInstance {
    /// Run the compiled chain over one morsel. `None` means a run-time
    /// bail-out: the caller must re-run the morsel on the interpreter
    /// (which reproduces the exact result — or the exact error).
    pub(crate) fn run(&self, batch: &Batch) -> Option<Batch> {
        match self.try_run(batch) {
            Ok(out) => Some(out),
            Err(Bail) => {
                // One count per execution, however many morsels bail.
                if !self.fallback_noted.swap(true, Ordering::Relaxed) {
                    self.cache.note_fallback();
                }
                None
            }
        }
    }

    fn try_run(&self, batch: &Batch) -> KResult<Batch> {
        if batch.has_diff() {
            return Err(Bail);
        }
        let rows = batch.rows();
        if rows > u32::MAX as usize {
            return Err(Bail);
        }
        // Tensor clones are Arc bumps — this materializes nothing.
        let mut cols: Vec<(String, EncodedTensor)> = batch
            .columns()
            .iter()
            .map(|(n, c)| match c {
                ColumnData::Exact(e) => (n.clone(), e.clone()),
                ColumnData::Diff(_) => unreachable!("has_diff checked above"),
            })
            .collect();
        // Collapsing consecutive gathers is only encoding-faithful when
        // `filter_rows` composes; bit-packed/delta columns re-pick the
        // smallest layout per gather, so their intermediate encodings
        // depend on gather order. (The parallel path never sees them —
        // the exchange decodes to plain i64 — so this only bails the
        // single-morsel path.)
        if self.max_filter_run >= 2
            && cols
                .iter()
                .any(|(_, c)| matches!(c, EncodedTensor::BitPacked(_) | EncodedTensor::Delta(_)))
        {
            return Err(Bail);
        }

        let mut cur_rows = rows;
        let mut sel: Option<SelVec> = None; // None = unfiltered
        for seg in &self.segs {
            match seg {
                Seg::Filter(pred) => {
                    sel = Some(filter_sel(pred, &cols, cur_rows, sel)?);
                }
                Seg::Project(items) => {
                    cols = materialize(items, &cols, cur_rows, sel.as_ref())?;
                    cur_rows = sel.as_ref().map_or(cur_rows, SelVec::len);
                    sel = None;
                }
            }
        }
        // The single gather the selection vector deferred.
        if let Some(sv) = sel {
            let mask = sv.into_gather_mask(cur_rows);
            for (_, c) in &mut cols {
                *c = c.filter_rows(&mask);
            }
        }
        let mut out = Batch::new();
        for (name, c) in cols {
            out.push(name, ColumnData::Exact(c));
        }
        Ok(out)
    }

    /// Whether this chain supports the selection exit mode: the chain
    /// must never change the row space, i.e. every projection is a pure
    /// column remap (`SELECT b AS x, a …`). A computed or literal item
    /// materializes new storage in selection space, which resets the
    /// selection — those chains keep the gather exit.
    pub(crate) fn selection_capable(&self) -> Result<(), &'static str> {
        segs_selection_capable(&self.segs)
    }

    /// Run the compiled chain in **selection exit mode**: instead of
    /// gathering survivors into a dense batch, return the (remapped,
    /// still full-width) output columns plus the final `SelVec` so the
    /// consuming barrier stage can work on survivors directly and defer
    /// the single gather to its own assembly step. `init` seeds the
    /// selection (zone-map pruning). `None` = run-time bail-out; the
    /// caller re-runs the gathered path.
    pub(crate) fn run_selection(&self, batch: &Batch, init: Option<SelVec>) -> Option<SelOutput> {
        match self.try_run_selection(batch, init) {
            Ok(out) => Some(out),
            Err(Bail) => {
                // One count per execution, however many calls bail.
                if !self.fallback_noted.swap(true, Ordering::Relaxed) {
                    self.cache.note_fallback();
                }
                None
            }
        }
    }

    fn try_run_selection(&self, batch: &Batch, init: Option<SelVec>) -> KResult<SelOutput> {
        if batch.has_diff() {
            return Err(Bail);
        }
        let rows = batch.rows();
        if rows > u32::MAX as usize {
            return Err(Bail);
        }
        // Tensor clones are Arc bumps — this materializes nothing. No
        // re-compressing-layout bail is needed on this path: nothing is
        // ever gathered mid-chain, so encodings never re-pick a layout.
        let mut cols: Vec<(String, EncodedTensor)> = batch
            .columns()
            .iter()
            .map(|(n, c)| match c {
                ColumnData::Exact(e) => (n.clone(), e.clone()),
                ColumnData::Diff(_) => unreachable!("has_diff checked above"),
            })
            .collect();
        let mut sel: Option<SelVec> = init;
        for seg in &self.segs {
            match seg {
                Seg::Filter(pred) => {
                    sel = Some(filter_sel(pred, &cols, rows, sel)?);
                }
                Seg::Project(items) => {
                    // Selection-capable chains only remap columns here
                    // (checked by `selection_capable`); the row space —
                    // and with it the selection — carries through.
                    let mut next = Vec::with_capacity(items.len());
                    for (name, expr) in items {
                        match expr {
                            KExpr::Col(r) => next.push((name.clone(), resolve(&cols, r)?.clone())),
                            _ => return Err(Bail),
                        }
                    }
                    cols = next;
                }
            }
        }
        let sel = sel.unwrap_or_else(|| SelVec::Mask(vec![true; rows], rows));
        Ok(SelOutput { cols, sel })
    }
}

/// The selection exit mode's hand-off value: the chain's output columns
/// still at input width (projections in a selection-capable chain are
/// pure remaps) plus the selection over them. The consumer gathers once,
/// at its own assembly point — or never (masked aggregation).
pub(crate) struct SelOutput {
    pub(crate) cols: Vec<(String, EncodedTensor)>,
    pub(crate) sel: SelVec,
}

fn segs_selection_capable(segs: &[Seg]) -> Result<(), &'static str> {
    for seg in segs {
        if let Seg::Project(items) = seg {
            if items.iter().any(|(_, e)| !matches!(e, KExpr::Col(_))) {
                return Err("computed-projection");
            }
        }
    }
    Ok(())
}

/// Materialize one projection under the current selection, mirroring
/// `exact::project_batch` over the gathered batch: passthrough columns
/// gather encoding-preserving, scalars broadcast, computed expressions
/// pack into plain columns.
fn materialize(
    items: &[(String, KExpr)],
    cols: &[(String, EncodedTensor)],
    rows: usize,
    sel: Option<&SelVec>,
) -> KResult<Vec<(String, EncodedTensor)>> {
    let n = sel.map_or(rows, SelVec::len);
    // Passthrough columns gather through the boolean mask; computed
    // expressions evaluate in index space. Build each view only if an
    // item needs it (a dense mask→index conversion is a real pass).
    let mask = items
        .iter()
        .any(|(_, e)| matches!(e, KExpr::Col(_)))
        .then(|| sel.map(|sv| sv.gather_mask(rows)))
        .flatten();
    let idx: Option<Cow<'_, [u32]>> = if items.iter().any(|(_, e)| {
        !matches!(
            e,
            KExpr::Col(_) | KExpr::Num(_) | KExpr::Bool(_) | KExpr::Str(_)
        )
    }) {
        sel.map(|sv| match sv {
            SelVec::Idx(s) => Cow::Borrowed(s.as_slice()),
            SelVec::Mask(m, _) => Cow::Owned(compact((0u32..).zip(m.iter().copied()), m.len())),
        })
    } else {
        None
    };
    let mut out = Vec::with_capacity(items.len());
    for (name, expr) in items {
        let col = match expr {
            KExpr::Col(r) => {
                let c = resolve(cols, r)?;
                match &mask {
                    Some(m) => c.filter_rows(m),
                    None => c.clone(),
                }
            }
            KExpr::Num(v) => EncodedTensor::F32(Tensor::full(&[n], *v as f32)),
            KExpr::Bool(b) => EncodedTensor::Bool(Tensor::full(&[n], *b)),
            KExpr::Str(s) => EncodedTensor::from_strings(&vec![s.clone(); n]),
            computed => match eval(computed, cols, rows, idx.as_deref())? {
                PVal::F32(v) => EncodedTensor::F32(Tensor::from_vec(v.into_owned(), &[n])),
                PVal::Bool(v) => EncodedTensor::Bool(Tensor::from_vec(v, &[n])),
                PVal::Codes(c, dict) => EncodedTensor::Dict {
                    codes: Tensor::from_vec(c.into_owned(), &[n]),
                    dict,
                },
                PVal::Num(v) => EncodedTensor::F32(Tensor::full(&[n], v as f32)),
                PVal::BoolS(b) => EncodedTensor::Bool(Tensor::full(&[n], b)),
                PVal::Str(s) => EncodedTensor::from_strings(&vec![s; n]),
            },
        };
        out.push((name.clone(), col));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::PhysProjectItem;
    use crate::udf::UdfRegistry;
    use tdp_storage::Catalog;

    fn col(slot: usize, name: &str) -> CompiledExpr {
        CompiledExpr::Column(ColumnRef::Slot {
            slot,
            name: name.into(),
        })
    }

    fn gt(left: CompiledExpr, right: CompiledExpr) -> CompiledExpr {
        CompiledExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    #[test]
    fn fingerprint_is_shape_sensitive_and_binding_stable() {
        let p1 = gt(col(0, "v"), CompiledExpr::Param { idx: 0 });
        let p2 = gt(col(0, "v"), CompiledExpr::Param { idx: 0 });
        let fp1 = chain_fingerprint(&[MorselOp::Filter(&p1)]);
        assert_eq!(
            fp1,
            chain_fingerprint(&[MorselOp::Filter(&p2)]),
            "identical chains share a fingerprint across plan instances"
        );
        let other = gt(col(1, "k"), CompiledExpr::Param { idx: 0 });
        assert_ne!(fp1, chain_fingerprint(&[MorselOp::Filter(&other)]));
        // A projection of the same expression is a different chain.
        let items = [PhysProjectItem {
            name: "x".into(),
            expr: p1.clone(),
        }];
        assert_ne!(fp1, chain_fingerprint(&[MorselOp::Project(&items)]));
    }

    #[test]
    fn cache_hits_misses_and_epoch_invalidation() {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let cache = Arc::new(KernelCache::new());
        let ctx = ExecContext::new(&catalog, &udfs)
            .with_params(ParamValues::new().number(1.5))
            .with_chain_kernels(Some(Arc::clone(&cache)));
        let pred = gt(col(0, "v"), CompiledExpr::Param { idx: 0 });
        let ops = [MorselOp::Filter(&pred)];

        assert!(prepare(&ops, &ctx).is_some());
        assert!(prepare(&ops, &ctx).is_some());
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.entries), (1, 1, 1));

        // Epoch bump (catalog / registry change) makes the entry stale.
        cache.bump_epoch();
        assert!(prepare(&ops, &ctx).is_some());
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.entries), (2, 1, 1));
    }

    #[test]
    fn cache_evicts_lru_at_capacity() {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let cache = Arc::new(KernelCache::new());
        let ctx = ExecContext::new(&catalog, &udfs).with_chain_kernels(Some(Arc::clone(&cache)));
        // Distinct literals fingerprint distinctly (only *parameterised*
        // literals are binding-invariant).
        let preds: Vec<CompiledExpr> = (0..=KERNEL_CACHE_CAP)
            .map(|i| gt(col(0, "v"), CompiledExpr::Num(i as f64)))
            .collect();
        for p in &preds {
            assert!(prepare(&[MorselOp::Filter(p)], &ctx).is_some());
        }
        let s = cache.stats();
        assert_eq!(s.entries, KERNEL_CACHE_CAP);
        assert_eq!(s.evictions, 1);
        // The evicted entry is the least recently used: the first chain.
        assert!(prepare(&[MorselOp::Filter(&preds[0])], &ctx).is_some());
        assert_eq!(cache.stats().misses as usize, KERNEL_CACHE_CAP + 2);
    }

    #[test]
    fn compile_names_its_refusals() {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let ctx = ExecContext::new(&catalog, &udfs);

        let udf_pred = CompiledExpr::Udf {
            name: "f".into(),
            args: vec![col(0, "v")],
        };
        assert_eq!(
            compile(&[MorselOp::Filter(&udf_pred)], &ctx).unwrap_err(),
            "udf(f)"
        );

        let empty_in = CompiledExpr::InList {
            expr: Box::new(col(0, "v")),
            list: vec![],
            negated: false,
        };
        assert_eq!(
            compile(&[MorselOp::Filter(&empty_in)], &ctx).unwrap_err(),
            "empty-in-list"
        );

        let bad_arity = CompiledExpr::Builtin {
            name: "sqrt".into(),
            func: ScalarFn::Unary(f32::sqrt),
            args: vec![col(0, "v"), col(0, "v")],
        };
        assert_eq!(
            compile(&[MorselOp::Filter(&bad_arity)], &ctx).unwrap_err(),
            "builtin-arity(sqrt)"
        );
    }

    #[test]
    fn instantiation_refuses_non_scalar_bindings() {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let ctx = ExecContext::new(&catalog, &udfs);
        let pred = gt(col(0, "v"), CompiledExpr::Param { idx: 0 });
        let prog = compile(&[MorselOp::Filter(&pred)], &ctx).unwrap();
        let cache = Arc::new(KernelCache::new());

        let check = |params: ParamValues, want: &str| {
            assert_eq!(
                prog.instantiate(&params, Arc::clone(&cache)).err().unwrap(),
                want
            );
        };
        check(ParamValues::new(), "unbound-param($1)");
        check(ParamValues::new().null(), "null-param($1)");
        check(
            ParamValues::new().tensor(Tensor::<f32>::zeros(&[1])),
            "tensor-param($1)",
        );
        assert!(prog
            .instantiate(&ParamValues::new().number(2.0), cache)
            .is_ok());
    }

    #[test]
    fn selection_vector_run_gathers_once_and_counts_runtime_bails() {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let cache = Arc::new(KernelCache::new());
        let ctx = ExecContext::new(&catalog, &udfs).with_chain_kernels(Some(Arc::clone(&cache)));
        let p1 = gt(col(0, "v"), CompiledExpr::Num(1.0));
        let p2 = gt(col(1, "k"), CompiledExpr::Num(0.0));
        let ops = [MorselOp::Filter(&p1), MorselOp::Filter(&p2)];
        let inst = prepare(&ops, &ctx).expect("compiles");

        let mut batch = Batch::new();
        batch.push(
            "v",
            ColumnData::Exact(EncodedTensor::F32(Tensor::from_vec(
                vec![0.5, 1.5, 2.5, 3.5],
                &[4],
            ))),
        );
        batch.push(
            "k",
            ColumnData::Exact(EncodedTensor::I64(Tensor::from_vec(vec![1, 0, 1, 1], &[4]))),
        );
        let out = inst.run(&batch).expect("no bail");
        assert_eq!(out.rows(), 2);
        assert_eq!(
            out.column("v").unwrap().to_exact().decode_f32().to_vec(),
            vec![2.5, 3.5]
        );
        assert_eq!(cache.stats().fallbacks, 0);

        // Consecutive filters over a re-compressing layout bail (the
        // interpreter's per-filter gathers would re-pick encodings), and
        // the bail is counted once per instance however often it recurs.
        let packed = tdp_encoding::BitPackedColumn::encode(&Tensor::from_vec(vec![1i64; 4], &[4]));
        let mut bp = Batch::new();
        bp.push(
            "v",
            ColumnData::Exact(EncodedTensor::F32(Tensor::from_vec(
                vec![0.5, 1.5, 2.5, 3.5],
                &[4],
            ))),
        );
        bp.push("k", ColumnData::Exact(EncodedTensor::BitPacked(packed)));
        assert!(inst.run(&bp).is_none());
        assert!(inst.run(&bp).is_none());
        assert_eq!(cache.stats().fallbacks, 1);
    }

    #[test]
    fn negative_cache_remembers_refusals() {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let cache = Arc::new(KernelCache::new());
        let ctx = ExecContext::new(&catalog, &udfs).with_chain_kernels(Some(Arc::clone(&cache)));
        let pred = CompiledExpr::Udf {
            name: "f".into(),
            args: vec![col(0, "v")],
        };
        let ops = [MorselOp::Filter(&pred)];
        assert!(prepare(&ops, &ctx).is_none());
        assert!(prepare(&ops, &ctx).is_none());
        let s = cache.stats();
        // One compile probe; the second refusal is a cache hit — but both
        // executions count as fallbacks.
        assert_eq!((s.misses, s.hits, s.fallbacks), (1, 1, 2));
    }

    #[test]
    fn strategy_is_pure_and_prioritises_scheduler_reasons() {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let cache = Arc::new(KernelCache::new());
        let ctx = ExecContext::new(&catalog, &udfs).with_chain_kernels(Some(Arc::clone(&cache)));
        let pred = gt(col(0, "v"), CompiledExpr::Num(1.0));
        let ops = [MorselOp::Filter(&pred)];
        assert_eq!(chain_strategy(&ops, &ctx), Some(ChainStrategy::Compiled(1)));
        assert_eq!(cache.stats(), ChainKernelStats::default());

        let off = ExecContext::new(&catalog, &udfs);
        assert_eq!(
            chain_strategy(&ops, &off),
            Some(ChainStrategy::Interpreted("chain-kernels-disabled".into()))
        );
        assert_eq!(chain_strategy(&[], &ctx), None);
    }
}
