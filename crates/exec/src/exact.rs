//! Exact (inference-time) operator kernels over slot-indexed batches.
//!
//! All name resolution, schema propagation and function lookup happened at
//! lowering time ([`crate::physical::lower`]); this module is pure kernel
//! dispatch over slot-indexed batches. Since the morsel refactor this is
//! the **single-morsel kernel library**: [`execute`] routes through the
//! pipeline scheduler ([`crate::pipeline`]), which invokes the kernels
//! here per morsel (filters, projections, partial aggregation) or per
//! barrier (sorts, joins, windows). `execute_seq` is the historical
//! whole-batch operator-at-a-time walk, kept for scalar subqueries —
//! which must evaluate identically no matter how the outer query is
//! scheduled — and as the fallback for chains that cannot leave the
//! session thread.

use tdp_encoding::EncodedTensor;
use tdp_sql::ast::{AggFunc, JoinKind};
use tdp_tensor::sort::group_ids;
use tdp_tensor::{F32Tensor, I64Tensor, Tensor};

use crate::batch::{Batch, ColumnData};
use crate::error::ExecError;
use crate::expr::{eval_expr, resolve_limit, Value};
use crate::physical::{
    JoinOn, PhysAggregate, PhysKey, PhysOrderKey, PhysProjectItem, PhysWindow, PhysWindowFunc,
    PhysicalPlan,
};
use crate::udf::ExecContext;

/// Execute a physical plan exactly, producing a batch. Routes through
/// the morsel scheduler: the plan is decomposed into fused pipelines
/// broken at barriers and run across `ctx.threads` workers. Results are
/// identical at every thread count.
pub fn execute(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Batch, ExecError> {
    crate::pipeline::execute(plan, ctx)
}

/// Whole-batch, single-threaded operator-at-a-time execution — one
/// materialised [`Batch`] per operator. Scalar subqueries always take
/// this path (their result must not depend on the outer query's
/// scheduling), and the scheduler falls back to it for operator chains
/// that cannot leave the session thread.
pub(crate) fn execute_seq(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Batch, ExecError> {
    match plan {
        PhysicalPlan::Scan { table, schema, .. } => scan_table(table, schema.as_deref(), ctx),
        PhysicalPlan::AnnTopK {
            table,
            schema,
            column,
            query,
            metric,
            n,
            path,
        } => ann_topk(table, schema, column, query, *metric, n, path, ctx),
        PhysicalPlan::TvfScan {
            name,
            schema,
            input,
        } => {
            let inp = execute_seq(input, ctx)?;
            let tvf = ctx.udfs.table_fn(name)?.clone();
            let out = tvf.invoke_table(&inp, ctx)?;
            crate::udf::check_tvf_output(name, schema.as_deref(), &out)?;
            Ok(out)
        }
        PhysicalPlan::TvfProject {
            name,
            args,
            schema,
            input,
        } => {
            let inp = execute_seq(input, ctx)?;
            let tvf = ctx.udfs.table_fn(name)?.clone();
            let mut arg_values = Vec::with_capacity(args.len());
            for a in args {
                arg_values.push(eval_expr(a, &inp, ctx)?.into_arg());
            }
            let out = tvf.invoke_cols(&arg_values, ctx)?;
            crate::udf::check_tvf_output(name, schema.as_deref(), &out)?;
            Ok(out)
        }
        PhysicalPlan::Filter { .. } => {
            // Collapse a run of stacked filters into one selection-vector
            // kernel pass: predicates refine a single selection
            // (innermost first) and every column is gathered once at the
            // end, instead of a full-batch materialisation per predicate.
            let mut preds: Vec<&crate::physical::CompiledExpr> = Vec::new();
            let mut node = plan;
            while let PhysicalPlan::Filter { predicate, input } = node {
                preds.push(predicate);
                node = input;
            }
            preds.reverse();
            let inp = execute_seq(node, ctx)?;
            let ops: Vec<crate::pipeline::MorselOp<'_>> = preds
                .iter()
                .map(|p| crate::pipeline::MorselOp::Filter(p))
                .collect();
            if let Some(out) = crate::kernel::prepare(&ops, ctx).and_then(|k| k.run(&inp)) {
                return Ok(out);
            }
            // Interpreter fallback: the historical mask-per-predicate walk.
            let mut cur = inp;
            for p in &preds {
                let mask = eval_expr(p, &cur, ctx)?.into_mask(cur.rows())?;
                cur = filter_batch(&cur, &mask);
            }
            Ok(cur)
        }
        PhysicalPlan::Project { items, input } => {
            let inp = execute_seq(input, ctx)?;
            project_batch(&inp, items, ctx)
        }
        PhysicalPlan::Aggregate {
            keys,
            aggregates,
            input,
        } => {
            let inp = execute_seq(input, ctx)?;
            aggregate_batch(&inp, keys, aggregates, ctx)
        }
        PhysicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => {
            let l = execute_seq(left, ctx)?;
            let r = execute_seq(right, ctx)?;
            join_batches(&l, &r, *kind, on)
        }
        PhysicalPlan::Sort { keys, input } => {
            let inp = execute_seq(input, ctx)?;
            sort_batch(&inp, keys, ctx)
        }
        // LIMIT is a contiguous prefix slice — no index tensor, no gather.
        PhysicalPlan::Limit { n, input } => {
            let inp = execute_seq(input, ctx)?;
            Ok(inp.head(resolve_limit(n, ctx)?))
        }
        PhysicalPlan::TopK { keys, n, input } => {
            let inp = execute_seq(input, ctx)?;
            topk_batch(&inp, keys, resolve_limit(n, ctx)?, ctx)
        }
        PhysicalPlan::Window { windows, input } => {
            let inp = execute_seq(input, ctx)?;
            window_batch(&inp, windows, ctx)
        }
        PhysicalPlan::Distinct { input } => {
            let inp = execute_seq(input, ctx)?;
            distinct_batch(&inp)
        }
        PhysicalPlan::UnionAll { left, right } => {
            let l = execute_seq(left, ctx)?;
            let r = execute_seq(right, ctx)?;
            union_all_batches(&l, &r)
        }
    }
}

/// Resolve a base table, checking a compile-time schema (when present)
/// against the live catalog so stale slot assignments fail loudly.
pub(crate) fn scan_table(
    table: &str,
    schema: Option<&[String]>,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let t = ctx
        .catalog
        .get(table)
        .ok_or_else(|| ExecError::UnknownTable(table.to_owned()))?;
    if let Some(expected) = schema {
        let live = t.columns();
        let matches = live.len() == expected.len()
            && live
                .iter()
                .zip(expected)
                .all(|(c, e)| c.name.eq_ignore_ascii_case(e));
        if !matches {
            return Err(ExecError::TypeMismatch(format!(
                "schema of table '{table}' changed since the query was compiled; recompile"
            )));
        }
    }
    Ok(Batch::from_table(&t.to_device(ctx.device)))
}

/// Execute an [`PhysicalPlan::AnnTopK`] leaf: top-k rows of a base table
/// by vector score against a query vector, in the exact order the
/// scan+sort plan would produce (score desc, ties by row id asc — the
/// same order [`tdp_index::top_k`] emits).
///
/// The IVF path consults the catalog's index registry at execution time
/// and silently degrades to the exact flat scan when the registered
/// entry is stale (metric mismatch or the table's row count changed
/// since build) — correctness never depends on index freshness.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ann_topk(
    table: &str,
    schema: &[String],
    column: &crate::physical::ColumnRef,
    query: &crate::physical::CompiledExpr,
    metric: tdp_index::Metric,
    n: &tdp_sql::ast::LimitCount,
    path: &crate::access::AnnPath,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let t = ctx
        .catalog
        .get(table)
        .ok_or_else(|| ExecError::UnknownTable(table.to_owned()))?;
    let live = t.columns();
    let fresh = live.len() == schema.len()
        && live
            .iter()
            .zip(schema)
            .all(|(c, e)| c.name.eq_ignore_ascii_case(e));
    if !fresh {
        return Err(ExecError::TypeMismatch(format!(
            "schema of table '{table}' changed since the query was compiled; recompile"
        )));
    }
    let k = resolve_limit(n, ctx)?;
    let fn_name = crate::physical::metric_fn_name(metric);
    let q = crate::expr::vector_query(fn_name, query, ctx)?;

    let decode_data = || -> Result<F32Tensor, ExecError> {
        let col = t
            .column(column.name())
            .ok_or_else(|| ExecError::UnknownColumn(column.name().to_owned()))?;
        let data = col.data.decode_f32();
        if data.ndim() != 2 {
            return Err(ExecError::TypeMismatch(format!(
                "{fn_name}() needs a [n, d] embedding column; '{}' rows have shape {:?}",
                column.name(),
                &data.shape()[1..]
            )));
        }
        if data.shape()[1] != q.numel() {
            return Err(ExecError::TypeMismatch(format!(
                "{fn_name}() dimensionality mismatch: column '{}' is d={}, query is d={}",
                column.name(),
                data.shape()[1],
                q.numel()
            )));
        }
        Ok(data)
    };

    let hits = match path {
        crate::access::AnnPath::Flat => {
            tdp_index::FlatIndex::build(decode_data()?, metric).search(&q, k)
        }
        crate::access::AnnPath::Ivf { .. } => {
            match ctx.catalog.vector_index(table, column.name()) {
                Some(entry) if entry.metric == metric && entry.rows == t.rows() => {
                    entry.search(&q, k)
                }
                // Stale or vanished index: exact flat fallback — counted
                // so silently-exact ANN after a table write is observable.
                // With `TDP_IVF_REBUILD_AFTER` set, enough fallbacks on
                // one index trigger an in-place retrain instead.
                _ => {
                    ctx.access.note_ivf_stale_fallback();
                    let stale = ctx.catalog.note_stale_ann(table, column.name());
                    let rebuilt = if ctx.ivf_rebuild_after > 0 && stale >= ctx.ivf_rebuild_after {
                        rebuild_stale_ivf(table, column, metric, t.rows(), &decode_data, ctx)?
                    } else {
                        None
                    };
                    match rebuilt {
                        Some(entry) => entry.search(&q, k),
                        None => tdp_index::FlatIndex::build(decode_data()?, metric).search(&q, k),
                    }
                }
            }
        }
    };
    ctx.access.note_ann_query();

    let ids: Vec<i64> = hits.iter().map(|h| h.id as i64).collect();
    let len = ids.len();
    let sel = t.select_rows(&I64Tensor::from_vec(ids, &[len]));
    Ok(Batch::from_table(&sel.to_device(ctx.device)))
}

/// Retrain a stale IVF index over the table's current contents and
/// re-register it under its old name, nlist and nprobe. Returns `None`
/// — leaving the caller on the exact fallback — when the registered
/// entry vanished (a full-table rewrite dropped it, so its parameters
/// are gone), is not IVF, or covers a different metric than the query;
/// auto-rebuild only restores an index the user explicitly built for
/// this shape. Training is deterministic (fixed seed), mirroring the
/// session's `create_vector_index` contract. On success the catalog's
/// stale tally for the key resets (registration clears it) and the
/// rebuild is counted for STATS / profiled runs.
fn rebuild_stale_ivf(
    table: &str,
    column: &crate::physical::ColumnRef,
    metric: tdp_index::Metric,
    rows: usize,
    decode_data: &impl Fn() -> Result<F32Tensor, ExecError>,
    ctx: &ExecContext,
) -> Result<Option<std::sync::Arc<tdp_storage::VectorIndexEntry>>, ExecError> {
    let Some(old) = ctx.catalog.vector_index(table, column.name()) else {
        return Ok(None);
    };
    let tdp_storage::VectorIndex::Ivf { nlist, nprobe, .. } = &old.index else {
        return Ok(None);
    };
    if old.metric != metric {
        return Ok(None);
    }
    let (nlist, nprobe) = (*nlist, *nprobe);
    let mut rng = tdp_tensor::Rng64::new(0x5eed);
    let index = tdp_index::IvfFlatIndex::train(
        decode_data()?,
        metric,
        tdp_index::IvfParams::new(nlist),
        &mut rng,
    );
    let entry = ctx
        .catalog
        .register_vector_index(tdp_storage::VectorIndexEntry {
            name: old.name.clone(),
            table: old.table.clone(),
            column: old.column.clone(),
            metric,
            rows,
            index: tdp_storage::VectorIndex::Ivf {
                index,
                nlist,
                nprobe,
            },
        });
    ctx.access.note_ivf_rebuild();
    Ok(Some(entry))
}

/// Deduplicate rows, keeping first occurrences in input order
/// (`SELECT DISTINCT`). Uses the same per-encoding grouping codes as
/// GROUP BY, so strings, bools, floats and PE columns all participate.
pub fn distinct_batch(batch: &Batch) -> Result<Batch, ExecError> {
    let n = batch.rows();
    if n == 0 || batch.columns().is_empty() {
        return Ok(batch.clone());
    }
    let cols: Vec<EncodedTensor> = batch.columns().iter().map(|(_, c)| c.to_exact()).collect();
    let codes: Vec<I64Tensor> = cols.iter().map(key_codes).collect::<Result<_, _>>()?;
    let refs: Vec<&I64Tensor> = codes.iter().collect();
    let (ids, distinct) = group_ids(&refs);
    let groups = distinct.shape()[0];
    let mut rep = vec![i64::MAX; groups];
    for (row, &g) in ids.data().iter().enumerate() {
        let slot = &mut rep[g as usize];
        if (row as i64) < *slot {
            *slot = row as i64;
        }
    }
    rep.sort_unstable(); // first-occurrence order, not group order
    Ok(select_batch(batch, &Tensor::from_vec(rep, &[groups])))
}

/// Bag union of two batches with positionally-compatible schemas
/// (`UNION ALL`). Column names come from the left side, as in SQL.
pub fn union_all_batches(left: &Batch, right: &Batch) -> Result<Batch, ExecError> {
    if left.columns().len() != right.columns().len() {
        return Err(ExecError::TypeMismatch(format!(
            "UNION ALL arity mismatch: {} vs {} columns",
            left.columns().len(),
            right.columns().len()
        )));
    }
    Ok(Batch::concat(&[left.clone(), right.clone()]))
}

/// Apply a row mask to every column of a batch.
pub fn filter_batch(batch: &Batch, mask: &tdp_tensor::BoolTensor) -> Batch {
    let mut out = Batch::new();
    for (name, col) in batch.columns() {
        out.push(
            name.clone(),
            ColumnData::Exact(col.to_exact().filter_rows(mask)),
        );
    }
    out
}

/// Gather rows of every column of a batch.
pub fn select_batch(batch: &Batch, idx: &I64Tensor) -> Batch {
    let mut out = Batch::new();
    for (name, col) in batch.columns() {
        out.push(
            name.clone(),
            ColumnData::Exact(col.to_exact().select_rows(idx)),
        );
    }
    out
}

pub fn project_batch(
    batch: &Batch,
    items: &[PhysProjectItem],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let n = batch.rows();
    let mut out = Batch::new();
    for item in items {
        let col = match eval_expr(&item.expr, batch, ctx)? {
            Value::Column(c) => c,
            Value::Num(v) => EncodedTensor::F32(Tensor::full(&[n], v as f32)),
            Value::Bool(b) => EncodedTensor::Bool(Tensor::full(&[n], b)),
            Value::Str(s) => EncodedTensor::from_strings(&vec![s; n]),
        };
        out.push(item.name.clone(), ColumnData::Exact(col));
    }
    Ok(out)
}

/// Order-preserving map from f32 to i64 (total order including sign).
fn f32_order_key(v: f32) -> i64 {
    let b = v.to_bits();
    let u = if b & 0x8000_0000 != 0 {
        !b
    } else {
        b | 0x8000_0000
    };
    u as i64
}

/// Integer grouping codes for a key column, chosen by encoding.
pub(crate) fn key_codes(col: &EncodedTensor) -> Result<I64Tensor, ExecError> {
    Ok(match col {
        EncodedTensor::I64(t) => t.clone(),
        EncodedTensor::Bool(t) => t.to_i64_mask(),
        EncodedTensor::Dict { codes, .. } => codes.clone(),
        EncodedTensor::Rle(r) => r.decode(),
        EncodedTensor::Pe(p) => p.decode_ids(),
        EncodedTensor::BitPacked(b) => b.decode(),
        EncodedTensor::Delta(d) => d.decode(),
        EncodedTensor::F32(t) => {
            if t.ndim() != 1 {
                return Err(ExecError::TypeMismatch(
                    "cannot group by a multi-dimensional payload column".into(),
                ));
            }
            t.map(f32_order_key)
        }
    })
}

pub fn aggregate_batch(
    batch: &Batch,
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let n = batch.rows();

    // Evaluate key expressions once.
    let mut key_cols: Vec<(&str, EncodedTensor)> = Vec::with_capacity(keys.len());
    for k in keys {
        match eval_expr(&k.expr, batch, ctx)? {
            Value::Column(c) => key_cols.push((&k.name, c)),
            other => {
                return Err(ExecError::TypeMismatch(format!(
                    "GROUP BY expression must be a column, got {other:?}"
                )))
            }
        }
    }

    // Group resolution.
    let (ids, num_groups, rep_rows) = if key_cols.is_empty() {
        // Global aggregate: one group holding every row.
        (
            Tensor::from_vec(vec![0i64; n], &[n]),
            1usize,
            Tensor::from_vec(vec![0i64], &[1]),
        )
    } else {
        let codes: Vec<I64Tensor> = key_cols
            .iter()
            .map(|(_, c)| key_codes(c))
            .collect::<Result<_, _>>()?;
        let refs: Vec<&I64Tensor> = codes.iter().collect();
        let (ids, distinct) = group_ids(&refs);
        let groups = distinct.shape()[0];
        // First-occurrence representative row per group (for key output).
        let mut rep = vec![-1i64; groups];
        for (row, &g) in ids.data().iter().enumerate() {
            if rep[g as usize] < 0 {
                rep[g as usize] = row as i64;
            }
        }
        (ids, groups, Tensor::from_vec(rep, &[groups]))
    };

    let mut out = Batch::new();
    // Key columns keep their original encoding via representative rows.
    for (name, col) in &key_cols {
        out.push(
            name.to_string(),
            ColumnData::Exact(col.select_rows(&rep_rows)),
        );
    }

    // Per-group aggregate columns.
    let counts: Vec<i64> = {
        let ones = F32Tensor::ones(&[n]);
        ones.segment_sum(&ids, num_groups)
            .data()
            .iter()
            .map(|&c| c as i64)
            .collect()
    };
    for agg in aggregates {
        let col = match (agg.func, &agg.arg) {
            (AggFunc::Count, None) => {
                EncodedTensor::I64(Tensor::from_vec(counts.clone(), &[num_groups]))
            }
            (AggFunc::Count, Some(e)) => {
                // COUNT(expr): rows where expr is defined; without NULLs this
                // is the group size unless the expression is boolean, where
                // we count trues (a pragmatic dialect choice).
                match eval_expr(e, batch, ctx)? {
                    Value::Column(EncodedTensor::Bool(m)) => EncodedTensor::I64(
                        m.to_f32_mask()
                            .segment_sum(&ids, num_groups)
                            .map(|v| v as i64),
                    ),
                    _ => EncodedTensor::I64(Tensor::from_vec(counts.clone(), &[num_groups])),
                }
            }
            (AggFunc::Sum, Some(e)) => {
                let vals = eval_expr(e, batch, ctx)?.into_f32_column(n)?;
                EncodedTensor::F32(vals.segment_sum(&ids, num_groups))
            }
            (AggFunc::Avg, Some(e)) => {
                let vals = eval_expr(e, batch, ctx)?.into_f32_column(n)?;
                let sums = vals.segment_sum(&ids, num_groups);
                let denoms =
                    Tensor::from_vec(counts.iter().map(|&c| c as f32).collect(), &[num_groups]);
                EncodedTensor::F32(sums.div(&denoms))
            }
            (AggFunc::CountDistinct, Some(e)) => {
                // Distinct codes per group: reuse the grouping-code map so
                // strings, bools, floats and PE columns all work.
                let col = match eval_expr(e, batch, ctx)? {
                    Value::Column(c) => c,
                    other => {
                        return Err(ExecError::TypeMismatch(format!(
                            "COUNT(DISTINCT …) needs a column, got {other:?}"
                        )))
                    }
                };
                let codes = key_codes(&col)?;
                let mut seen: Vec<std::collections::HashSet<i64>> =
                    vec![std::collections::HashSet::new(); num_groups];
                for (row, &g) in ids.data().iter().enumerate() {
                    seen[g as usize].insert(codes.at(row));
                }
                EncodedTensor::I64(Tensor::from_vec(
                    seen.iter().map(|s| s.len() as i64).collect(),
                    &[num_groups],
                ))
            }
            (AggFunc::Variance, Some(e)) | (AggFunc::Stddev, Some(e)) => {
                // Sample variance via the sum-of-squares identity, in f64
                // for numeric robustness; singleton groups yield 0 in this
                // NULL-free dialect.
                let vals = eval_expr(e, batch, ctx)?.into_f32_column(n)?;
                let mut sum = vec![0.0f64; num_groups];
                let mut sumsq = vec![0.0f64; num_groups];
                for (row, &g) in ids.data().iter().enumerate() {
                    let v = vals.at(row) as f64;
                    sum[g as usize] += v;
                    sumsq[g as usize] += v * v;
                }
                let out: Vec<f32> = (0..num_groups)
                    .map(|g| {
                        let c = counts[g] as f64;
                        if c <= 1.0 {
                            return 0.0;
                        }
                        let var = ((sumsq[g] - sum[g] * sum[g] / c) / (c - 1.0)).max(0.0);
                        if agg.func == AggFunc::Stddev {
                            var.sqrt() as f32
                        } else {
                            var as f32
                        }
                    })
                    .collect();
                EncodedTensor::F32(Tensor::from_vec(out, &[num_groups]))
            }
            (AggFunc::Min, Some(e)) | (AggFunc::Max, Some(e)) => {
                let vals = eval_expr(e, batch, ctx)?.into_f32_column(n)?;
                let is_min = agg.func == AggFunc::Min;
                let init = if is_min {
                    f32::INFINITY
                } else {
                    f32::NEG_INFINITY
                };
                let mut acc = vec![init; num_groups];
                for (row, &g) in ids.data().iter().enumerate() {
                    let v = vals.at(row);
                    let slot = &mut acc[g as usize];
                    if (is_min && v < *slot) || (!is_min && v > *slot) {
                        *slot = v;
                    }
                }
                EncodedTensor::F32(Tensor::from_vec(acc, &[num_groups]))
            }
            (f, None) => {
                return Err(ExecError::Unsupported(format!(
                    "{}(*) is not meaningful",
                    f.name()
                )))
            }
        };
        out.push(agg.output.clone(), ColumnData::Exact(col));
    }
    Ok(out)
}

/// Resolve compiled join keys into `(left, right)` exact key columns.
pub(crate) fn resolve_join_keys<'a>(
    on: &JoinOn,
    left: &'a Batch,
    right: &'a Batch,
) -> Result<(Vec<&'a EncodedTensor>, Vec<&'a EncodedTensor>), ExecError> {
    let as_exact = |c: &'a ColumnData| match c {
        ColumnData::Exact(e) => e,
        ColumnData::Diff(_) => unreachable!("exact executor sees exact columns"),
    };
    match on {
        JoinOn::Resolved(pairs) => {
            let mut l = Vec::with_capacity(pairs.len());
            let mut r = Vec::with_capacity(pairs.len());
            for (lk, rk) in pairs {
                l.push(as_exact(lk.resolve(left)?));
                r.push(as_exact(rk.resolve(right)?));
            }
            Ok((l, r))
        }
        JoinOn::Deferred(pairs) => {
            // Input schema was unknown at compile time: probe which side
            // carries which column, per run.
            let mut l = Vec::with_capacity(pairs.len());
            let mut r = Vec::with_capacity(pairs.len());
            for (a, b) in pairs {
                if left.column(a).is_ok() && right.column(b).is_ok() {
                    l.push(as_exact(left.column(a)?));
                    r.push(as_exact(right.column(b)?));
                } else if left.column(b).is_ok() && right.column(a).is_ok() {
                    l.push(as_exact(left.column(b)?));
                    r.push(as_exact(right.column(a)?));
                } else {
                    return Err(ExecError::UnknownColumn(format!("{a} / {b} in join")));
                }
            }
            Ok((l, r))
        }
    }
}

/// Row key used for hash joins between *mixed-encoding* key pairs:
/// exact per-encoding string renderings (the historical textual join
/// semantics). Same-class pairs take the cheaper [`KeyAtom`] path.
fn join_key(col: &EncodedTensor, row: usize) -> String {
    match col {
        EncodedTensor::Dict { codes, dict } => dict.decode_one(codes.at(row)).to_owned(),
        EncodedTensor::I64(t) => t.at(row).to_string(),
        EncodedTensor::Bool(t) => t.at(row).to_string(),
        EncodedTensor::F32(t) => f32_order_key(t.at(row)).to_string(),
        EncodedTensor::Rle(r) => r.get(row).to_string(),
        EncodedTensor::Pe(p) => p.decode_ids().at(row).to_string(),
        EncodedTensor::BitPacked(b) => b.get(row).to_string(),
        // Delta columns have sequential access; joins decode them once per
        // row, which only matters for pathological join keys.
        EncodedTensor::Delta(d) => d.get(row).to_string(),
    }
}

/// One component of a composite join / exchange key: the exact,
/// encoding-independent identity of a row's key value. Dictionary
/// columns compare as decoded strings (codes are not comparable across
/// batches, and the order-preserving dictionary makes string order =
/// code order, so atoms also sort like the grouping codes); everything
/// else compares as its integer grouping code.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum KeyAtom {
    Int(i64),
    Str(String),
}

/// Encoding class of a join key column: two columns produce directly
/// comparable integer codes iff they share a class.
fn key_class(col: &EncodedTensor) -> u8 {
    match col {
        EncodedTensor::Dict { .. } => 0,
        EncodedTensor::Bool(_) => 1,
        EncodedTensor::I64(_)
        | EncodedTensor::Rle(_)
        | EncodedTensor::BitPacked(_)
        | EncodedTensor::Delta(_) => 2,
        EncodedTensor::F32(_) => 3,
        EncodedTensor::Pe(_) => 4,
    }
}

/// Key atoms of one column: decoded strings for dictionary columns,
/// grouping codes for everything else. Total order matches the
/// sequential kernels' code order (order-preserving dictionaries).
pub(crate) fn key_atoms(col: &EncodedTensor) -> Result<Vec<KeyAtom>, ExecError> {
    Ok(match col {
        EncodedTensor::Dict { codes, dict } => codes
            .data()
            .iter()
            .map(|&c| KeyAtom::Str(dict.decode_one(c).to_owned()))
            .collect(),
        other => key_codes(other)?
            .data()
            .iter()
            .map(|&v| KeyAtom::Int(v))
            .collect(),
    })
}

/// Textual atoms for mixed-encoding key pairs (per-row [`join_key`]
/// renderings). Sequential-access layouts decode to plain i64 first so
/// the per-row rendering stays O(1); PE columns decode to their class
/// *ids* — exactly what `join_key` renders (`decode_ids`), not the
/// class values `decode_i64` would give.
fn string_atoms(col: &EncodedTensor) -> Vec<KeyAtom> {
    let decoded;
    let norm: &EncodedTensor = match col {
        EncodedTensor::Rle(_) | EncodedTensor::BitPacked(_) | EncodedTensor::Delta(_) => {
            decoded = EncodedTensor::I64(col.decode_i64());
            &decoded
        }
        EncodedTensor::Pe(p) => {
            decoded = EncodedTensor::I64(p.decode_ids());
            &decoded
        }
        other => other,
    };
    (0..norm.rows())
        .map(|r| KeyAtom::Str(join_key(norm, r)))
        .collect()
}

/// Comparable atom vectors for one join key pair. Same-class columns
/// compare by grouping code (dictionaries by decoded string); a
/// cross-encoding pair (e.g. a string column against an integer) keeps
/// the historical textual equality via [`join_key`] renderings.
pub(crate) fn join_pair_atoms(
    left: &EncodedTensor,
    right: &EncodedTensor,
) -> Result<(Vec<KeyAtom>, Vec<KeyAtom>), ExecError> {
    if key_class(left) == key_class(right) {
        Ok((key_atoms(left)?, key_atoms(right)?))
    } else {
        Ok((string_atoms(left), string_atoms(right)))
    }
}

/// Whether [`key_atoms_at`] can atomize this layout by indexed row
/// reads. Plain layouts only — compressed and PE columns have no O(1)
/// row access and go through `filter_rows` instead.
fn random_access(col: &EncodedTensor) -> bool {
    matches!(
        col,
        EncodedTensor::I64(_)
            | EncodedTensor::Bool(_)
            | EncodedTensor::F32(_)
            | EncodedTensor::Dict { .. }
    )
}

/// Key atoms of one plain-layout column restricted to the ascending row
/// list `rows`: exactly `key_atoms(&col.filter_rows(m))` for the mask
/// keeping those rows, computed by indexed reads instead of
/// materializing the filtered column. Callers gate on [`random_access`].
fn key_atoms_at(col: &EncodedTensor, rows: &[i64]) -> Result<Vec<KeyAtom>, ExecError> {
    Ok(match col {
        EncodedTensor::I64(t) => {
            let d = t.data();
            rows.iter().map(|&r| KeyAtom::Int(d[r as usize])).collect()
        }
        EncodedTensor::Bool(t) => {
            let d = t.data();
            rows.iter()
                .map(|&r| KeyAtom::Int(i64::from(d[r as usize])))
                .collect()
        }
        EncodedTensor::Dict { codes, dict } => {
            let d = codes.data();
            rows.iter()
                .map(|&r| KeyAtom::Str(dict.decode_one(d[r as usize]).to_owned()))
                .collect()
        }
        EncodedTensor::F32(t) => {
            // Same shape guard `key_codes` applies to the filtered
            // column (filtering preserves dimensionality).
            if t.ndim() != 1 {
                return Err(ExecError::TypeMismatch(
                    "cannot group by a multi-dimensional payload column".into(),
                ));
            }
            let d = t.data();
            rows.iter()
                .map(|&r| KeyAtom::Int(f32_order_key(d[r as usize])))
                .collect()
        }
        _ => unreachable!("key_atoms_at requires a random-access layout"),
    })
}

/// [`join_pair_atoms`] where either side may be restricted to an
/// ascending survivor row list (`None` = all rows): returns exactly the
/// atoms of the *filtered* pair. The class decision is taken on the
/// full-width columns — `filter_rows` preserves every layout's key
/// class (plain and PE layouts filter in place, compressed integer
/// layouts re-compress within the integer class) — and same-class plain
/// layouts atomize survivors by indexed reads, so a selective side
/// never pays a full-width filtering pass over its key columns.
pub(crate) fn join_pair_atoms_at(
    left: &EncodedTensor,
    lrows: Option<&[i64]>,
    right: &EncodedTensor,
    rrows: Option<&[i64]>,
) -> Result<(Vec<KeyAtom>, Vec<KeyAtom>), ExecError> {
    fn filtered<'a>(
        col: &'a EncodedTensor,
        rows: Option<&[i64]>,
    ) -> std::borrow::Cow<'a, EncodedTensor> {
        match rows {
            None => std::borrow::Cow::Borrowed(col),
            Some(rows) => {
                let mut keep = vec![false; col.rows()];
                for &r in rows {
                    keep[r as usize] = true;
                }
                let n = keep.len();
                std::borrow::Cow::Owned(col.filter_rows(&Tensor::from_vec(keep, &[n])))
            }
        }
    }
    fn side_atoms(col: &EncodedTensor, rows: Option<&[i64]>) -> Result<Vec<KeyAtom>, ExecError> {
        match rows {
            Some(rows) if random_access(col) => key_atoms_at(col, rows),
            _ => key_atoms(&filtered(col, rows)),
        }
    }
    if key_class(left) == key_class(right) {
        Ok((side_atoms(left, lrows)?, side_atoms(right, rrows)?))
    } else {
        Ok((
            string_atoms(&filtered(left, lrows)),
            string_atoms(&filtered(right, rrows)),
        ))
    }
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Deterministic FNV-1a hash of row `row`'s composite key, given
/// column-major atom vectors. Partition assignment must agree across
/// threads, morsels and runs — std's `HashMap` hasher is seeded per
/// instance, so the exchange cannot use it.
pub(crate) fn row_hash(cols: &[Vec<KeyAtom>], row: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for col in cols {
        match &col[row] {
            KeyAtom::Int(v) => {
                fnv1a(&mut h, &[0]);
                fnv1a(&mut h, &v.to_le_bytes());
            }
            KeyAtom::Str(s) => {
                fnv1a(&mut h, &[1]);
                fnv1a(&mut h, s.as_bytes());
            }
        }
    }
    h
}

/// Deterministic FNV-1a hash of row `row`'s composite grouping code
/// (the DISTINCT exchange key — one batch, so dictionary codes are
/// directly comparable and no decode is needed).
pub(crate) fn code_hash(cols: &[Vec<i64>], row: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for col in cols {
        fnv1a(&mut h, &col[row].to_le_bytes());
    }
    h
}

/// A build-side hash table over composite-key atoms, with a
/// single-key fast path that avoids the per-row key allocation.
pub(crate) enum JoinTable {
    Single(std::collections::HashMap<KeyAtom, Vec<i64>>),
    Multi(std::collections::HashMap<Vec<KeyAtom>, Vec<i64>>),
}

impl JoinTable {
    /// Build a table over the given build-side rows. Match lists keep
    /// the insertion order of `rows` — callers feed rows in ascending
    /// order so probe output matches the sequential kernel exactly.
    pub(crate) fn build(atoms: &[Vec<KeyAtom>], rows: impl Iterator<Item = i64>) -> JoinTable {
        if atoms.len() == 1 {
            let col = &atoms[0];
            let mut t: std::collections::HashMap<KeyAtom, Vec<i64>> =
                std::collections::HashMap::new();
            for r in rows {
                t.entry(col[r as usize].clone()).or_default().push(r);
            }
            JoinTable::Single(t)
        } else {
            let mut t: std::collections::HashMap<Vec<KeyAtom>, Vec<i64>> =
                std::collections::HashMap::new();
            for r in rows {
                let key: Vec<KeyAtom> = atoms.iter().map(|c| c[r as usize].clone()).collect();
                t.entry(key).or_default().push(r);
            }
            JoinTable::Multi(t)
        }
    }

    /// Match list for probe row `row` (atoms column-major, probe side).
    pub(crate) fn get(&self, atoms: &[Vec<KeyAtom>], row: usize) -> Option<&Vec<i64>> {
        match self {
            JoinTable::Single(t) => t.get(&atoms[0][row]),
            JoinTable::Multi(t) => {
                let key: Vec<KeyAtom> = atoms.iter().map(|c| c[row].clone()).collect();
                t.get(&key)
            }
        }
    }
}

/// Column-major key atoms of one join side: `[key][row]`.
pub(crate) type SideAtoms = Vec<Vec<KeyAtom>>;

/// Resolve the comparable key-atom vectors for every join key pair:
/// `(left atoms, right atoms)`, column-major.
pub(crate) fn join_atoms(
    on: &JoinOn,
    left: &Batch,
    right: &Batch,
) -> Result<(SideAtoms, SideAtoms), ExecError> {
    let (left_cols, right_cols) = resolve_join_keys(on, left, right)?;
    let mut latoms = Vec::with_capacity(left_cols.len());
    let mut ratoms = Vec::with_capacity(right_cols.len());
    for (l, r) in left_cols.iter().zip(&right_cols) {
        let (a, b) = join_pair_atoms(l, r)?;
        latoms.push(a);
        ratoms.push(b);
    }
    Ok((latoms, ratoms))
}

/// Assemble the join output from matched index pairs plus (for LEFT
/// joins) the unmatched left rows — shared by the sequential kernel and
/// the partitioned parallel path, which produce identical index sets.
pub(crate) fn join_assemble(
    left: &Batch,
    right: &Batch,
    kind: JoinKind,
    left_idx: Vec<i64>,
    right_idx: Vec<i64>,
    left_unmatched: Vec<i64>,
) -> Batch {
    let matched = left_idx.len();
    let li = Tensor::from_vec(left_idx, &[matched]);
    let ri = Tensor::from_vec(right_idx, &[matched]);
    let mut out = select_batch(left, &li);

    // Right columns, renamed on collision (mirrored by the compile-time
    // schema propagation in `physical::lower`).
    let right_matched = select_batch(right, &ri);
    for (name, col) in right_matched.columns() {
        let out_name = if out.column(name).is_ok() {
            format!("right_{name}")
        } else {
            name.clone()
        };
        out.push(out_name, col.clone());
    }

    if kind == JoinKind::Left && !left_unmatched.is_empty() {
        // Documented limitation: without NULLs, unmatched left rows pad
        // right-side numeric columns with NaN and other encodings with
        // their first value; prefer INNER JOIN unless pads are acceptable.
        let un = left_unmatched.len();
        let ui = Tensor::from_vec(left_unmatched, &[un]);
        let left_pad = select_batch(left, &ui);
        return Batch::concat(&[out, pad_right(&left_pad, right, un)]);
    }
    out
}

/// Sequential hash join — the whole-batch oracle the partitioned
/// parallel path ([`crate::morsel`]) must match byte for byte. Builds
/// one table over all right rows, probes left rows in input order.
pub fn join_batches(
    left: &Batch,
    right: &Batch,
    kind: JoinKind,
    on: &JoinOn,
) -> Result<Batch, ExecError> {
    let (latoms, ratoms) = join_atoms(on, left, right)?;

    // Build side: hash right rows by composite key, ascending.
    let table = JoinTable::build(&ratoms, 0..right.rows() as i64);

    // Probe side, in input order.
    let mut left_idx: Vec<i64> = Vec::new();
    let mut right_idx: Vec<i64> = Vec::new();
    let mut left_unmatched: Vec<i64> = Vec::new();
    for row in 0..left.rows() {
        match table.get(&latoms, row) {
            Some(matches) => {
                for &m in matches {
                    left_idx.push(row as i64);
                    right_idx.push(m);
                }
            }
            None if kind == JoinKind::Left => left_unmatched.push(row as i64),
            None => {}
        }
    }
    Ok(join_assemble(
        left,
        right,
        kind,
        left_idx,
        right_idx,
        left_unmatched,
    ))
}

fn pad_right(left_pad: &Batch, right: &Batch, n: usize) -> Batch {
    let mut out = left_pad.clone();
    for (name, col) in right.columns() {
        let exact = col.to_exact();
        let padded = match exact {
            EncodedTensor::F32(ref t) => {
                let mut shape = t.shape().to_vec();
                shape[0] = n;
                EncodedTensor::F32(Tensor::full(&shape, f32::NAN))
            }
            other => {
                let idx = Tensor::from_vec(vec![0i64; n], &[n]);
                other.select_rows(&idx)
            }
        };
        let out_name = if out.column(name).is_ok() {
            format!("right_{name}")
        } else {
            name.clone()
        };
        out.push(out_name, ColumnData::Exact(padded));
    }
    out
}

/// Running accumulator for windowed aggregates.
struct WindowAcc {
    sum: f64,
    sumsq: f64,
    count: i64,
    lo: f32,
    hi: f32,
    distinct: std::collections::HashSet<i64>,
}

impl WindowAcc {
    fn new() -> WindowAcc {
        WindowAcc {
            sum: 0.0,
            sumsq: 0.0,
            count: 0,
            lo: f32::INFINITY,
            hi: f32::NEG_INFINITY,
            distinct: std::collections::HashSet::new(),
        }
    }

    fn absorb(
        &mut self,
        r: usize,
        vals: &Option<Vec<f32>>,
        mask: &Option<Vec<bool>>,
        func: AggFunc,
    ) {
        match (vals, mask) {
            (Some(vals), _) => {
                let v = vals[r];
                self.sum += v as f64;
                self.sumsq += (v as f64) * (v as f64);
                self.count += 1;
                self.lo = self.lo.min(v);
                self.hi = self.hi.max(v);
                if func == AggFunc::CountDistinct {
                    self.distinct.insert(f32_order_key(v));
                }
            }
            // COUNT over a boolean expression counts trues, matching
            // grouped aggregation.
            (_, Some(mask)) => self.count += mask[r] as i64,
            (None, None) => self.count += 1, // COUNT(*)
        }
    }

    /// `(i64 output, f32 output)`; the caller knows which one the
    /// function produces.
    fn emit(&self, func: AggFunc) -> (i64, f32) {
        match func {
            AggFunc::Count => (self.count, 0.0),
            AggFunc::CountDistinct => (self.distinct.len() as i64, 0.0),
            AggFunc::Sum => (0, self.sum as f32),
            AggFunc::Avg => (0, (self.sum / self.count.max(1) as f64) as f32),
            AggFunc::Min => (0, self.lo),
            AggFunc::Max => (0, self.hi),
            AggFunc::Variance | AggFunc::Stddev => {
                let c = self.count as f64;
                let var = if c <= 1.0 {
                    0.0
                } else {
                    ((self.sumsq - self.sum * self.sum / c) / (c - 1.0)).max(0.0)
                };
                let v = if func == AggFunc::Stddev {
                    var.sqrt()
                } else {
                    var
                };
                (0, v as f32)
            }
        }
    }
}

/// Evaluate window expressions, appending one output column per window
/// while preserving the input columns and row order.
///
/// Semantics (the common SQL defaults): rows are grouped by the PARTITION
/// BY keys; within a partition the ORDER BY keys define the window order
/// (ties = peers). Ranking functions number rows in that order; aggregate
/// windows are *running* peers-inclusive when an ORDER BY is present
/// (`RANGE UNBOUNDED PRECEDING`, SQL's default frame) and whole-partition
/// otherwise.
pub fn window_batch(
    batch: &Batch,
    windows: &[PhysWindow],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let n = batch.rows();
    let mut out = batch.clone();
    for w in windows {
        // --- resolve partitions -----------------------------------------
        let part_ids: Vec<i64> = if w.partition_by.is_empty() {
            vec![0; n]
        } else {
            let codes: Vec<I64Tensor> = w
                .partition_by
                .iter()
                .map(|e| match eval_expr(e, batch, ctx)? {
                    Value::Column(c) => key_codes(&c),
                    other => Err(ExecError::TypeMismatch(format!(
                        "PARTITION BY expression must be a column, got {other:?}"
                    ))),
                })
                .collect::<Result<_, _>>()?;
            let refs: Vec<&I64Tensor> = codes.iter().collect();
            group_ids(&refs).0.to_vec()
        };

        // --- resolve window order ----------------------------------------
        let mut order_vecs: Vec<(Vec<i64>, bool)> = Vec::with_capacity(w.order_by.len());
        for k in &w.order_by {
            let codes = match eval_expr(&k.expr, batch, ctx)? {
                Value::Column(c) => key_codes(&c)?,
                other => {
                    return Err(ExecError::TypeMismatch(format!(
                        "window ORDER BY expression must be a column, got {other:?}"
                    )))
                }
            };
            order_vecs.push((codes.to_vec(), k.desc));
        }
        let order_cmp = |a: usize, b: usize| {
            for (vals, desc) in &order_vecs {
                let ord = if *desc {
                    vals[b].cmp(&vals[a])
                } else {
                    vals[a].cmp(&vals[b])
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        };
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            part_ids[a]
                .cmp(&part_ids[b])
                .then(order_cmp(a, b))
                .then(a.cmp(&b))
        });
        let peers = |a: usize, b: usize| order_cmp(a, b) == std::cmp::Ordering::Equal;

        // --- aggregate argument, when the window has one -----------------
        let (agg_vals, agg_bool): (Option<Vec<f32>>, Option<Vec<bool>>) = match &w.func {
            PhysWindowFunc::Agg { arg: Some(e), .. } => match eval_expr(e, batch, ctx)? {
                Value::Column(EncodedTensor::Bool(m)) => (None, Some(m.to_vec())),
                v => (Some(v.into_f32_column(n)?.to_vec()), None),
            },
            _ => (None, None),
        };

        // --- walk partitions in window order ------------------------------
        let mut out_f32 = vec![0.0f32; n];
        let mut out_i64 = vec![0i64; n];
        let is_int_output = matches!(
            w.func,
            PhysWindowFunc::RowNumber
                | PhysWindowFunc::Rank
                | PhysWindowFunc::DenseRank
                | PhysWindowFunc::Agg {
                    func: AggFunc::Count | AggFunc::CountDistinct,
                    ..
                }
        );

        let mut start = 0usize;
        while start < n {
            let mut end = start;
            while end < n && part_ids[idx[end]] == part_ids[idx[start]] {
                end += 1;
            }
            let rows = &idx[start..end];
            let running = !w.order_by.is_empty();

            match &w.func {
                PhysWindowFunc::RowNumber => {
                    for (pos, &r) in rows.iter().enumerate() {
                        out_i64[r] = pos as i64 + 1;
                    }
                }
                PhysWindowFunc::Rank | PhysWindowFunc::DenseRank => {
                    let dense = w.func == PhysWindowFunc::DenseRank;
                    let mut rank = 0i64;
                    let mut dense_rank = 0i64;
                    for (pos, &r) in rows.iter().enumerate() {
                        if pos == 0 || !peers(rows[pos - 1], r) {
                            rank = pos as i64 + 1;
                            dense_rank += 1;
                        }
                        out_i64[r] = if dense { dense_rank } else { rank };
                    }
                }
                PhysWindowFunc::Agg { func, arg: _ } => {
                    let mut acc = WindowAcc::new();
                    if running {
                        // Peer groups share the frame end (RANGE default).
                        let mut pos = 0usize;
                        while pos < rows.len() {
                            let mut peer_end = pos;
                            while peer_end < rows.len() && peers(rows[pos], rows[peer_end]) {
                                acc.absorb(rows[peer_end], &agg_vals, &agg_bool, *func);
                                peer_end += 1;
                            }
                            let (iv, fv) = acc.emit(*func);
                            for &r in &rows[pos..peer_end] {
                                out_i64[r] = iv;
                                out_f32[r] = fv;
                            }
                            pos = peer_end;
                        }
                    } else {
                        for &r in rows {
                            acc.absorb(r, &agg_vals, &agg_bool, *func);
                        }
                        let (iv, fv) = acc.emit(*func);
                        for &r in rows {
                            out_i64[r] = iv;
                            out_f32[r] = fv;
                        }
                    }
                }
            }
            start = end;
        }

        let col = if is_int_output {
            EncodedTensor::I64(Tensor::from_vec(out_i64, &[n]))
        } else {
            EncodedTensor::F32(Tensor::from_vec(out_f32, &[n]))
        };
        out.push(w.output.clone(), ColumnData::Exact(col));
    }
    Ok(out)
}

/// Partial top-k selection (`ORDER BY … LIMIT k` fused): O(n) average
/// selection of the k best rows plus an O(k log k) sort, instead of the
/// full O(n log n) sort. Output matches the stable full sort exactly
/// (ties resolved by input position).
pub fn topk_batch(
    batch: &Batch,
    keys: &[PhysOrderKey],
    k: usize,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let n = batch.rows();
    let k = k.min(n);
    if k == 0 {
        return Ok(select_batch(batch, &Tensor::from_vec(vec![], &[0])));
    }
    let key_vecs = order_key_codes(batch, keys, ctx)?;
    let cmp = |a: &i64, b: &i64| {
        for (vals, desc) in &key_vecs {
            let (va, vb) = (vals[*a as usize], vals[*b as usize]);
            let ord = if *desc { vb.cmp(&va) } else { va.cmp(&vb) };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.cmp(b) // input position breaks ties, matching the stable sort
    };
    let mut idx: Vec<i64> = (0..n as i64).collect();
    if k < n {
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
    }
    idx.sort_unstable_by(cmp);
    Ok(select_batch(batch, &Tensor::from_vec(idx, &[k])))
}

/// Resolve each sort key to an order-preserving i64 vector.
fn order_key_codes(
    batch: &Batch,
    keys: &[PhysOrderKey],
    ctx: &ExecContext,
) -> Result<Vec<(Vec<i64>, bool)>, ExecError> {
    let mut key_vecs = Vec::with_capacity(keys.len());
    for k in keys {
        let codes = match eval_expr(&k.expr, batch, ctx)? {
            Value::Column(c) => key_codes(&c)?,
            other => {
                return Err(ExecError::TypeMismatch(format!(
                    "ORDER BY expression must be a column, got {other:?}"
                )))
            }
        };
        key_vecs.push((codes.to_vec(), k.desc));
    }
    Ok(key_vecs)
}

pub fn sort_batch(
    batch: &Batch,
    keys: &[PhysOrderKey],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let n = batch.rows();
    let key_vecs = order_key_codes(batch, keys, ctx)?;
    let mut idx: Vec<i64> = (0..n as i64).collect();
    idx.sort_by(|&a, &b| {
        for (vals, desc) in &key_vecs {
            let (va, vb) = (vals[a as usize], vals[b as usize]);
            let ord = if *desc { vb.cmp(&va) } else { va.cmp(&vb) };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(select_batch(batch, &Tensor::from_vec(idx, &[n])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::lower;
    use crate::udf::UdfRegistry;
    use tdp_sql::plan::{build_plan, PlannerContext};
    use tdp_sql::{optimizer, parse};
    use tdp_storage::{Catalog, TableBuilder};

    fn setup() -> Catalog {
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("price", vec![3.0, 1.0, 2.0, 5.0, 4.0])
                .col_str("item", &["b", "a", "a", "c", "b"])
                .col_i64("qty", vec![10, 20, 30, 40, 50])
                .build("orders"),
        );
        catalog.register(
            TableBuilder::new()
                .col_str("item", &["a", "b", "c"])
                .col_f32("weight", vec![0.5, 1.5, 2.5])
                .build("items"),
        );
        catalog
    }

    fn compile(catalog: &Catalog, udfs: &UdfRegistry, sql: &str) -> PhysicalPlan {
        let q = parse(sql).unwrap();
        let plan = optimizer::optimize(
            build_plan(
                &q,
                &PlannerContext {
                    is_tvf: &|n| udfs.is_table_fn(n),
                },
            )
            .unwrap(),
        );
        lower(&plan, catalog, udfs).unwrap()
    }

    fn run(catalog: &Catalog, sql: &str) -> Batch {
        let udfs = UdfRegistry::new();
        let ctx = ExecContext::new(catalog, &udfs);
        let plan = compile(catalog, &udfs, sql);
        execute(&plan, &ctx).unwrap()
    }

    fn f32_col(b: &Batch, name: &str) -> Vec<f32> {
        b.column(name).unwrap().to_exact().decode_f32().to_vec()
    }

    #[test]
    fn scan_and_filter() {
        let c = setup();
        let b = run(&c, "SELECT * FROM orders WHERE price > 2.5");
        assert_eq!(b.rows(), 3);
        assert_eq!(f32_col(&b, "price"), vec![3.0, 5.0, 4.0]);
    }

    #[test]
    fn string_filter_on_dictionary() {
        let c = setup();
        let b = run(&c, "SELECT qty FROM orders WHERE item = 'a'");
        assert_eq!(f32_col(&b, "qty"), vec![20.0, 30.0]);
    }

    #[test]
    fn projection_expressions_and_aliases() {
        let c = setup();
        let b = run(
            &c,
            "SELECT price * qty AS total FROM orders WHERE qty <= 20",
        );
        assert_eq!(b.names(), vec!["total"]);
        assert_eq!(f32_col(&b, "total"), vec![30.0, 20.0]);
    }

    #[test]
    fn group_by_count_matches_hand_count() {
        let c = setup();
        let b = run(&c, "SELECT item, COUNT(*) FROM orders GROUP BY item");
        // Groups in lexicographic order: a=2, b=2, c=1.
        assert_eq!(
            b.column("item").unwrap().to_exact().decode_strings(),
            vec!["a", "b", "c"]
        );
        assert_eq!(
            b.column("COUNT(*)")
                .unwrap()
                .to_exact()
                .decode_i64()
                .to_vec(),
            vec![2, 2, 1]
        );
    }

    #[test]
    fn grouped_sum_avg_min_max() {
        let c = setup();
        let b = run(
            &c,
            "SELECT item, SUM(price), AVG(qty), MIN(price), MAX(price) FROM orders GROUP BY item",
        );
        assert_eq!(f32_col(&b, "SUM(price)"), vec![3.0, 7.0, 5.0]);
        assert_eq!(f32_col(&b, "AVG(qty)"), vec![25.0, 30.0, 40.0]);
        assert_eq!(f32_col(&b, "MIN(price)"), vec![1.0, 3.0, 5.0]);
        assert_eq!(f32_col(&b, "MAX(price)"), vec![2.0, 4.0, 5.0]);
    }

    #[test]
    fn global_aggregate_single_row() {
        let c = setup();
        let b = run(&c, "SELECT COUNT(*), SUM(qty), AVG(price) FROM orders");
        assert_eq!(b.rows(), 1);
        assert_eq!(
            b.column("COUNT(*)")
                .unwrap()
                .to_exact()
                .decode_i64()
                .to_vec(),
            vec![5]
        );
        assert_eq!(f32_col(&b, "SUM(qty)"), vec![150.0]);
        assert_eq!(f32_col(&b, "AVG(price)"), vec![3.0]);
    }

    #[test]
    fn having_filters_groups() {
        let c = setup();
        let b = run(
            &c,
            "SELECT item, COUNT(*) FROM orders GROUP BY item HAVING COUNT(*) > 1",
        );
        assert_eq!(b.rows(), 2);
        assert_eq!(
            b.column("item").unwrap().to_exact().decode_strings(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn order_by_asc_desc_and_strings() {
        let c = setup();
        let b = run(&c, "SELECT price FROM orders ORDER BY price DESC");
        assert_eq!(f32_col(&b, "price"), vec![5.0, 4.0, 3.0, 2.0, 1.0]);
        let b2 = run(
            &c,
            "SELECT item, price FROM orders ORDER BY item ASC, price DESC",
        );
        assert_eq!(
            b2.column("item").unwrap().to_exact().decode_strings(),
            vec!["a", "a", "b", "b", "c"]
        );
        assert_eq!(f32_col(&b2, "price"), vec![2.0, 1.0, 4.0, 3.0, 5.0]);
    }

    #[test]
    fn order_by_negative_floats() {
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("v", vec![0.5, -1.5, -0.25, 2.0, 0.0])
                .build("t"),
        );
        let b = run(&catalog, "SELECT v FROM t ORDER BY v");
        assert_eq!(f32_col(&b, "v"), vec![-1.5, -0.25, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn limit_and_topk() {
        let c = setup();
        let b = run(
            &c,
            "SELECT item, price FROM orders ORDER BY price DESC LIMIT 2",
        );
        assert_eq!(b.rows(), 2);
        assert_eq!(f32_col(&b, "price"), vec![5.0, 4.0]);
        let empty = run(&c, "SELECT * FROM orders LIMIT 0");
        assert_eq!(empty.rows(), 0);
        // Plain LIMIT without a sort slices the scan prefix.
        let head = run(&c, "SELECT price FROM orders LIMIT 3");
        assert_eq!(f32_col(&head, "price"), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn inner_join_matches_pairs() {
        let c = setup();
        let b = run(
            &c,
            "SELECT item, price, weight FROM orders JOIN items ON orders.item = items.item ORDER BY price",
        );
        assert_eq!(b.rows(), 5);
        // price 1.0 & 2.0 are item 'a' (weight .5); 3,4 'b'(1.5); 5 'c'(2.5)
        assert_eq!(f32_col(&b, "weight"), vec![0.5, 0.5, 1.5, 1.5, 2.5]);
    }

    #[test]
    fn join_then_aggregate() {
        let c = setup();
        let b = run(
            &c,
            "SELECT item, SUM(weight * qty) AS load FROM orders JOIN items ON orders.item = items.item GROUP BY item",
        );
        assert_eq!(f32_col(&b, "load"), vec![25.0, 90.0, 100.0]);
    }

    #[test]
    fn subquery_pipeline() {
        let c = setup();
        let b = run(
            &c,
            "SELECT AVG(total) FROM (SELECT price * qty AS total FROM orders WHERE item = 'a')",
        );
        assert_eq!(f32_col(&b, "AVG(total)"), vec![40.0]);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let c = setup();
        let udfs = UdfRegistry::new();
        let ctx = ExecContext::new(&c, &udfs);
        // Unknown table: compiles to a schema-less scan, fails at run time
        // (preserving the register-after-compile workflow).
        let q = parse("SELECT * FROM missing").unwrap();
        let plan = build_plan(&q, &PlannerContext::default()).unwrap();
        let phys = lower(&plan, &c, &udfs).unwrap();
        assert!(matches!(
            execute(&phys, &ctx),
            Err(ExecError::UnknownTable(_))
        ));
        // Unknown column over a known table: caught at compile time.
        let q2 = parse("SELECT nope FROM orders").unwrap();
        let plan2 = build_plan(&q2, &PlannerContext::default()).unwrap();
        assert!(matches!(
            lower(&plan2, &c, &udfs),
            Err(ExecError::UnknownColumn(_))
        ));
    }

    #[test]
    fn stale_schema_detected_at_run_time() {
        let c = setup();
        let udfs = UdfRegistry::new();
        let plan = compile(&c, &udfs, "SELECT price FROM orders");
        // Re-register 'orders' with a different shape: slots are stale.
        c.register(
            TableBuilder::new()
                .col_f32("other", vec![1.0])
                .build("orders"),
        );
        let ctx = ExecContext::new(&c, &udfs);
        match execute(&plan, &ctx) {
            Err(ExecError::TypeMismatch(msg)) => assert!(msg.contains("recompile"), "{msg}"),
            other => panic!("expected stale-schema error, got {other:?}"),
        }
    }

    #[test]
    fn count_of_boolean_expression() {
        let c = setup();
        let b = run(
            &c,
            "SELECT item, COUNT(price > 1.5) FROM orders GROUP BY item",
        );
        assert_eq!(
            b.column("COUNT((price > 1.5))")
                .unwrap()
                .to_exact()
                .decode_i64()
                .to_vec(),
            vec![1, 2, 1]
        );
    }

    #[test]
    fn select_distinct_dedupes_preserving_order() {
        let c = setup();
        let b = run(&c, "SELECT DISTINCT item FROM orders");
        assert_eq!(
            b.column("item").unwrap().to_exact().decode_strings(),
            vec!["b", "a", "c"] // first-occurrence order
        );
        let b2 = run(&c, "SELECT DISTINCT item, price FROM orders");
        assert_eq!(b2.rows(), 5, "no duplicate (item, price) pairs here");
    }

    #[test]
    fn union_all_concatenates() {
        let c = setup();
        let b = run(
            &c,
            "SELECT price FROM orders WHERE price > 4 UNION ALL SELECT price FROM orders WHERE price < 2",
        );
        assert_eq!(f32_col(&b, "price"), vec![5.0, 1.0]);
        // Arity mismatch is now a compile-time error.
        let udfs = UdfRegistry::new();
        let q = parse("SELECT price FROM orders UNION ALL SELECT price, qty FROM orders").unwrap();
        let plan = build_plan(&q, &PlannerContext::default()).unwrap();
        assert!(matches!(
            lower(&plan, &c, &udfs),
            Err(ExecError::TypeMismatch(_))
        ));
    }

    #[test]
    fn in_list_and_like_filters() {
        let c = setup();
        let b = run(&c, "SELECT qty FROM orders WHERE item IN ('a', 'c')");
        assert_eq!(f32_col(&b, "qty"), vec![20.0, 30.0, 40.0]);
        let b2 = run(&c, "SELECT qty FROM orders WHERE item NOT IN ('a', 'c')");
        assert_eq!(f32_col(&b2, "qty"), vec![10.0, 50.0]);
        let b3 = run(&c, "SELECT qty FROM orders WHERE price IN (1, 5)");
        assert_eq!(f32_col(&b3, "qty"), vec![20.0, 40.0]);
    }

    #[test]
    fn like_patterns_on_dictionary() {
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_str("name", &["receipt_jan", "receipt_feb", "logo", "photo_cat"])
                .col_i64("id", vec![1, 2, 3, 4])
                .build("files"),
        );
        let b = run(&catalog, "SELECT id FROM files WHERE name LIKE 'receipt%'");
        assert_eq!(f32_col(&b, "id"), vec![1.0, 2.0]);
        let b2 = run(&catalog, "SELECT id FROM files WHERE name LIKE '%cat'");
        assert_eq!(f32_col(&b2, "id"), vec![4.0]);
        let b3 = run(&catalog, "SELECT id FROM files WHERE name LIKE 'l_go'");
        assert_eq!(f32_col(&b3, "id"), vec![3.0]);
        let b4 = run(&catalog, "SELECT id FROM files WHERE name NOT LIKE '%o%'");
        assert_eq!(f32_col(&b4, "id"), vec![1.0, 2.0]);
    }

    #[test]
    fn case_expression_projection() {
        let c = setup();
        let b = run(
            &c,
            "SELECT CASE WHEN price > 3 THEN 1 ELSE 0 END AS expensive FROM orders ORDER BY price",
        );
        assert_eq!(f32_col(&b, "expensive"), vec![0.0, 0.0, 0.0, 1.0, 1.0]);
        // Operand form with strings; first matching WHEN wins.
        let b2 = run(
            &c,
            "SELECT CASE item WHEN 'a' THEN 10 WHEN 'b' THEN 20 END AS code FROM orders ORDER BY qty",
        );
        assert_eq!(f32_col(&b2, "code"), vec![20.0, 10.0, 10.0, 0.0, 20.0]);
    }

    #[test]
    fn count_distinct_variance_stddev() {
        let c = setup();
        let b = run(
            &c,
            "SELECT COUNT(DISTINCT item), VARIANCE(price), STDDEV(price) FROM orders",
        );
        assert_eq!(
            b.column("COUNT(DISTINCT item)")
                .unwrap()
                .to_exact()
                .decode_i64()
                .to_vec(),
            vec![3]
        );
        // prices 1..5: sample variance 2.5, stddev sqrt(2.5).
        let var = f32_col(&b, "VARIANCE(price)")[0];
        let sd = f32_col(&b, "STDDEV(price)")[0];
        assert!((var - 2.5).abs() < 1e-5, "{var}");
        assert!((sd - 2.5f32.sqrt()).abs() < 1e-5, "{sd}");
        // Grouped + singleton group yields 0 variance.
        let b2 = run(&c, "SELECT item, VARIANCE(price) FROM orders GROUP BY item");
        assert_eq!(f32_col(&b2, "VARIANCE(price)"), vec![0.5, 0.5, 0.0]);
        // COUNT(DISTINCT) per group.
        let b3 = run(
            &c,
            "SELECT item, COUNT(DISTINCT qty) FROM orders GROUP BY item",
        );
        assert_eq!(
            b3.column("COUNT(DISTINCT qty)")
                .unwrap()
                .to_exact()
                .decode_i64()
                .to_vec(),
            vec![2, 2, 1]
        );
    }

    #[test]
    fn builtin_scalar_functions() {
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("v", vec![-2.25, 0.0, 2.25])
                .build("t"),
        );
        let b = run(
            &catalog,
            "SELECT ABS(v) AS a, ROUND(v) AS r, FLOOR(v) AS fl, CEIL(v) AS ce, SIGN(v) AS s FROM t",
        );
        assert_eq!(f32_col(&b, "a"), vec![2.25, 0.0, 2.25]);
        assert_eq!(f32_col(&b, "r"), vec![-2.0, 0.0, 2.0]);
        assert_eq!(f32_col(&b, "fl"), vec![-3.0, 0.0, 2.0]);
        assert_eq!(f32_col(&b, "ce"), vec![-2.0, 0.0, 3.0]);
        assert_eq!(f32_col(&b, "s"), vec![-1.0, 0.0, 1.0]);
        let b2 = run(
            &catalog,
            "SELECT POWER(v, 2) AS p, SQRT(ABS(v)) AS q FROM t",
        );
        assert_eq!(f32_col(&b2, "p"), vec![5.0625, 0.0, 5.0625]);
        assert!((f32_col(&b2, "q")[0] - 1.5).abs() < 1e-6);
        // Scalars fold: EXP(0) is a literal 1 broadcast to every row.
        let b3 = run(&catalog, "SELECT EXP(0) AS e FROM t");
        assert_eq!(f32_col(&b3, "e"), vec![1.0, 1.0, 1.0]);
        // Unknown functions error at compile time.
        let udfs = UdfRegistry::new();
        let q = parse("SELECT nope(v) FROM t").unwrap();
        let plan = build_plan(&q, &PlannerContext::default()).unwrap();
        assert!(matches!(
            lower(&plan, &catalog, &udfs),
            Err(ExecError::UnknownFunction(_))
        ));
    }

    #[test]
    fn window_row_number_and_ranks() {
        let c = setup();
        // orders: price [3,1,2,5,4], item [b,a,a,c,b], qty [10,20,30,40,50]
        let b = run(
            &c,
            "SELECT item, price, \
             ROW_NUMBER() OVER (PARTITION BY item ORDER BY price) AS rn \
             FROM orders ORDER BY item, price",
        );
        assert_eq!(
            b.column("rn").unwrap().to_exact().decode_i64().to_vec(),
            vec![1, 2, 1, 2, 1] // a: 1,2 | b: 3,4 -> 1,2 | c: 1
        );
        // RANK vs DENSE_RANK with ties.
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("v", vec![10.0, 20.0, 20.0, 30.0])
                .build("t"),
        );
        let b2 = run(
            &catalog,
            "SELECT v, RANK() OVER (ORDER BY v) AS r, DENSE_RANK() OVER (ORDER BY v) AS d \
             FROM t ORDER BY v",
        );
        assert_eq!(
            b2.column("r").unwrap().to_exact().decode_i64().to_vec(),
            vec![1, 2, 2, 4]
        );
        assert_eq!(
            b2.column("d").unwrap().to_exact().decode_i64().to_vec(),
            vec![1, 2, 2, 3]
        );
    }

    #[test]
    fn window_running_and_partition_aggregates() {
        let c = setup();
        // Running revenue per item, ordered by qty.
        let b = run(
            &c,
            "SELECT item, qty, \
             SUM(price) OVER (PARTITION BY item ORDER BY qty) AS run_sum, \
             SUM(price) OVER (PARTITION BY item) AS total \
             FROM orders ORDER BY item, qty",
        );
        // item a: prices by qty: (20,1),(30,2) -> run 1,3; total 3
        // item b: (10,3),(50,4) -> run 3,7; total 7 ; item c: (40,5) -> 5,5
        assert_eq!(f32_col(&b, "run_sum"), vec![1.0, 3.0, 3.0, 7.0, 5.0]);
        assert_eq!(f32_col(&b, "total"), vec![3.0, 3.0, 7.0, 7.0, 5.0]);
        // Running COUNT and AVG, global window.
        let b2 = run(
            &c,
            "SELECT qty, COUNT(*) OVER (ORDER BY qty) AS n, \
             AVG(price) OVER (ORDER BY qty) AS m FROM orders ORDER BY qty",
        );
        assert_eq!(
            b2.column("n").unwrap().to_exact().decode_i64().to_vec(),
            vec![1, 2, 3, 4, 5]
        );
        // prices in qty order: 3,1,2,5,4 -> running means
        let m = f32_col(&b2, "m");
        assert!((m[0] - 3.0).abs() < 1e-6);
        assert!((m[2] - 2.0).abs() < 1e-6);
        assert!((m[4] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn window_peers_share_frame_end() {
        // SQL's default RANGE frame: tied order keys see the same running
        // total (peers-inclusive).
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("k", vec![1.0, 1.0, 2.0])
                .col_f32("v", vec![10.0, 20.0, 5.0])
                .build("t"),
        );
        let b = run(
            &catalog,
            "SELECT SUM(v) OVER (ORDER BY k) AS s FROM t ORDER BY k, v",
        );
        assert_eq!(f32_col(&b, "s"), vec![30.0, 30.0, 35.0]);
    }

    #[test]
    fn window_in_expression_and_errors() {
        let c = setup();
        // Window output used inside an arithmetic expression.
        let b = run(
            &c,
            "SELECT price, price - AVG(price) OVER () AS centered FROM orders ORDER BY price",
        );
        let centered = f32_col(&b, "centered");
        assert!((centered.iter().sum::<f32>()).abs() < 1e-5);
        assert_eq!(centered[0], 1.0 - 3.0);
        // Windows in WHERE and mixed with GROUP BY are planner errors.
        assert!(parse("SELECT 1 FROM t WHERE RANK() OVER () > 1")
            .map(|q| build_plan(&q, &PlannerContext::default()))
            .unwrap()
            .is_err());
        assert!(
            parse("SELECT item, COUNT(*), RANK() OVER () FROM t GROUP BY item")
                .map(|q| build_plan(&q, &PlannerContext::default()))
                .unwrap()
                .is_err()
        );
    }

    #[test]
    fn scalar_subqueries_in_predicates_and_projections() {
        let c = setup();
        // Rows above the average price (avg = 3.0).
        let b = run(
            &c,
            "SELECT price FROM orders WHERE price > (SELECT AVG(price) FROM orders)",
        );
        assert_eq!(f32_col(&b, "price"), vec![5.0, 4.0]);
        // Scalar subquery inside a projection expression.
        let b2 = run(
            &c,
            "SELECT price - (SELECT MIN(price) FROM orders) AS above_min FROM orders ORDER BY price",
        );
        assert_eq!(f32_col(&b2, "above_min"), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        // Nested: subquery inside a subquery.
        let b3 = run(
            &c,
            "SELECT COUNT(*) FROM orders WHERE qty > (SELECT AVG(qty) FROM orders WHERE price > (SELECT MIN(price) FROM orders))",
        );
        assert_eq!(
            b3.column("COUNT(*)")
                .unwrap()
                .to_exact()
                .decode_i64()
                .to_vec(),
            vec![2] // avg qty of non-min-price rows = 32.5 -> qty 40, 50
        );
        // String-valued scalar subquery compares against dict columns.
        let b4 = run(
            &c,
            "SELECT COUNT(*) FROM orders WHERE item = (SELECT item FROM orders ORDER BY price DESC LIMIT 1)",
        );
        assert_eq!(
            b4.column("COUNT(*)")
                .unwrap()
                .to_exact()
                .decode_i64()
                .to_vec(),
            vec![1] // the most expensive item is 'c'
        );
        // Multi-row subqueries are rejected at run time.
        let udfs = UdfRegistry::new();
        let ctx = ExecContext::new(&c, &udfs);
        let q = parse("SELECT 1 FROM orders WHERE price > (SELECT price FROM orders)").unwrap();
        let plan = build_plan(&q, &PlannerContext::default()).unwrap();
        let phys = lower(&plan, &c, &udfs).unwrap();
        assert!(matches!(
            execute(&phys, &ctx),
            Err(ExecError::TypeMismatch(_))
        ));
    }

    #[test]
    fn compressed_columns_execute_identically() {
        // GROUP BY / filter / join over bit-packed and delta columns must
        // match plain-i64 execution exactly.
        let ts: Vec<i64> = (0..200).map(|i| 1_000_000 + i * 3).collect();
        let cat: Vec<i64> = (0..200).map(|i| i % 5).collect();
        let plain = TableBuilder::new()
            .col_i64("ts", ts.clone())
            .col_i64("cat", cat.clone())
            .build("log");
        let compressed = plain.compress();
        assert_ne!(
            compressed.column("cat").unwrap().data.kind(),
            tdp_encoding::EncodingKind::PlainI64,
            "expected cat to compress"
        );
        for sql in [
            "SELECT cat, COUNT(*) FROM log GROUP BY cat",
            "SELECT COUNT(*) FROM log WHERE ts > 1000300",
            "SELECT cat FROM log ORDER BY ts DESC LIMIT 7",
            "SELECT cat FROM log LIMIT 5",
            "SELECT DISTINCT cat FROM log",
            // Window partition/order keys over compressed columns.
            "SELECT ROW_NUMBER() OVER (PARTITION BY cat ORDER BY ts DESC) AS rn FROM log ORDER BY ts LIMIT 9",
        ] {
            let c1 = Catalog::new();
            c1.register(plain.clone());
            let c2 = Catalog::new();
            c2.register(compressed.clone());
            let a = run(&c1, sql);
            let b = run(&c2, sql);
            assert_eq!(a.rows(), b.rows(), "{sql}");
            for (name, col) in a.columns() {
                assert_eq!(
                    col.to_exact().decode_i64().to_vec(),
                    b.column(name).unwrap().to_exact().decode_i64().to_vec(),
                    "{sql} / {name}"
                );
            }
        }
    }

    #[test]
    fn group_by_float_column() {
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("v", vec![1.5, -2.0, 1.5, -2.0, 1.5])
                .build("t"),
        );
        let b = run(&catalog, "SELECT v, COUNT(*) FROM t GROUP BY v");
        assert_eq!(f32_col(&b, "v"), vec![-2.0, 1.5]);
        assert_eq!(
            b.column("COUNT(*)")
                .unwrap()
                .to_exact()
                .decode_i64()
                .to_vec(),
            vec![2, 3]
        );
    }
}
