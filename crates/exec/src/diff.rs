//! Differentiable (trainable-query) execution of compiled physical plans.
//!
//! This is the lowering selected by the `TRAINABLE` compilation flag
//! (paper Listing 6). It consumes the *same* [`PhysicalPlan`] as
//! [`crate::exact::execute`] — one compile step, two kernel families:
//!
//! * TVFs run their differentiable implementations, emitting
//!   [`DiffColumn`]s whose `Var`s carry the tape;
//! * predicates over differentiable scores become soft row weights
//!   ([`crate::soft::soft_gt`]) instead of hard masks — exact predicates
//!   over exact columns still filter hard (gradients flow through the
//!   surviving rows via differentiable row gather);
//! * GROUP BY + COUNT/SUM/AVG over probability-encoded columns lower to
//!   the soft kernels of [`crate::soft`];
//! * operators that cannot be relaxed (ORDER BY, LIMIT, JOIN) execute
//!   exactly when no differentiable column is involved, and report
//!   [`ExecError::NotDifferentiable`] otherwise.

use tdp_autodiff::Var;
use tdp_encoding::EncodedTensor;
use tdp_sql::ast::{AggFunc, BinOp, UnOp};
use tdp_tensor::{F32Tensor, Tensor};

use crate::batch::{Batch, ColumnData, DiffColumn};
use crate::error::ExecError;
use crate::exact;
use crate::expr::eval_expr;
use crate::physical::{CompiledExpr, PhysAggregate, PhysKey, PhysProjectItem, PhysicalPlan};
use crate::pipeline::{MorselOp, PipeNode};
use crate::soft;
use crate::udf::{ArgValue, ExecContext};

/// Execute a physical plan differentiably.
///
/// Consumes the *same* pipeline decomposition as the scheduled exact
/// executor ([`crate::pipeline::decompose`]) — the plan is decomposed
/// once into fused chains and barriers — but walks it single-threaded:
/// soft kernels ride the `Rc`-based autodiff tape, which cannot cross
/// threads.
pub fn execute_diff(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Batch, ExecError> {
    exec_diff_node(&crate::pipeline::decompose(plan), ctx)
}

/// Apply a fused chain with the differentiable operator kernels.
fn apply_ops_diff(
    mut batch: Batch,
    ops: &[MorselOp<'_>],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    for op in ops {
        batch = match op {
            MorselOp::Filter(pred) => filter_diff(&batch, pred, ctx)?,
            MorselOp::Project(items) => project_diff(&batch, items, ctx)?,
        };
    }
    Ok(batch)
}

fn exec_diff_node(node: &PipeNode<'_>, ctx: &ExecContext) -> Result<Batch, ExecError> {
    match node {
        PipeNode::Scan { table, schema, .. } => exact::scan_table(table, *schema, ctx),
        PipeNode::Stream(pipe) => {
            let inp = exec_diff_node(&pipe.input, ctx)?;
            apply_ops_diff(inp, &pipe.ops, ctx)
        }
        PipeNode::Aggregate {
            keys,
            aggregates,
            pipe,
        } => {
            let inp = apply_ops_diff(exec_diff_node(&pipe.input, ctx)?, &pipe.ops, ctx)?;
            aggregate_diff(&inp, keys, aggregates, ctx)
        }
        PipeNode::Limit { n, pipe } => {
            // `ORDER BY score DESC LIMIT k` over a differentiable score
            // relaxes to NeuralSort top-k weights: every row survives,
            // carrying a soft membership weight that downstream soft
            // aggregates consume (the §4 operator-relaxation story applied
            // to top-k, as in the paper's multimodal search queries).
            if pipe.ops.is_empty() {
                if let PipeNode::Barrier {
                    plan: PhysicalPlan::Sort { keys, .. },
                    inputs,
                } = &*pipe.input
                {
                    let inp = exec_diff_node(&inputs[0], ctx)?;
                    let k = crate::expr::resolve_limit(n, ctx)?;
                    if keys.len() == 1 && on_tape(&keys[0].expr, &inp, ctx) {
                        let scores = eval_diff(&keys[0].expr, &inp, ctx)?.into_var(inp.rows())?;
                        let w = soft::soft_topk_weights(&scores, k, keys[0].desc, ctx.temperature);
                        let mut out = inp;
                        out.weights = Some(match out.weights.take() {
                            Some(prev) => prev.mul(&w),
                            None => w,
                        });
                        return Ok(out);
                    }
                    if inp.has_diff() {
                        return Err(ExecError::NotDifferentiable(
                            "ORDER BY over differentiable columns".into(),
                        ));
                    }
                    let sorted = exact::sort_batch(&inp, keys, ctx)?;
                    return Ok(sorted.head(k));
                }
            }
            let inp = apply_ops_diff(exec_diff_node(&pipe.input, ctx)?, &pipe.ops, ctx)?;
            if inp.has_diff() {
                return Err(ExecError::NotDifferentiable(
                    "LIMIT over differentiable columns".into(),
                ));
            }
            Ok(inp.head(crate::expr::resolve_limit(n, ctx)?))
        }
        PipeNode::Barrier { plan, inputs } => exec_diff_barrier(plan, inputs, ctx),
    }
}

fn exec_diff_barrier(
    plan: &PhysicalPlan,
    inputs: &[PipeNode<'_>],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    match plan {
        PhysicalPlan::TvfScan { name, schema, .. } => {
            let inp = exec_diff_node(&inputs[0], ctx)?;
            let tvf = ctx.udfs.table_fn(name)?.clone();
            let mut out = tvf.invoke_table_diff(&inp, ctx)?;
            crate::udf::check_tvf_output(name, schema.as_deref(), &out)?;
            // Input weights survive a row-preserving TVF.
            if out.weights.is_none() {
                out.weights = inp.weights;
            }
            Ok(out)
        }
        PhysicalPlan::TvfProject {
            name, args, schema, ..
        } => {
            let inp = exec_diff_node(&inputs[0], ctx)?;
            let tvf = ctx.udfs.table_fn(name)?.clone();
            let mut arg_values = Vec::with_capacity(args.len());
            for a in args {
                arg_values.push(eval_diff(a, &inp, ctx)?.into_arg());
            }
            let out = tvf.invoke_cols(&arg_values, ctx)?;
            crate::udf::check_tvf_output(name, schema.as_deref(), &out)?;
            Ok(out)
        }
        PhysicalPlan::Join { kind, on, .. } => {
            let l = exec_diff_node(&inputs[0], ctx)?;
            let r = exec_diff_node(&inputs[1], ctx)?;
            if l.has_diff() || r.has_diff() {
                return Err(ExecError::NotDifferentiable(
                    "JOIN over differentiable columns".into(),
                ));
            }
            exact::join_batches(&l, &r, *kind, on)
        }
        PhysicalPlan::Sort { keys, .. } => {
            let inp = exec_diff_node(&inputs[0], ctx)?;
            if inp.has_diff() {
                return Err(ExecError::NotDifferentiable(
                    "ORDER BY over differentiable columns".into(),
                ));
            }
            exact::sort_batch(&inp, keys, ctx)
        }
        PhysicalPlan::TopK { keys, n, .. } => {
            // The fused form of ORDER BY + LIMIT: same soft relaxation as
            // the unfused pattern when the (single) key is on the tape.
            let inp = exec_diff_node(&inputs[0], ctx)?;
            let k = crate::expr::resolve_limit(n, ctx)?;
            if keys.len() == 1 && on_tape(&keys[0].expr, &inp, ctx) {
                let scores = eval_diff(&keys[0].expr, &inp, ctx)?.into_var(inp.rows())?;
                let w = soft::soft_topk_weights(&scores, k, keys[0].desc, ctx.temperature);
                let mut out = inp;
                out.weights = Some(match out.weights.take() {
                    Some(prev) => prev.mul(&w),
                    None => w,
                });
                return Ok(out);
            }
            if inp.has_diff() {
                return Err(ExecError::NotDifferentiable(
                    "ORDER BY over differentiable columns".into(),
                ));
            }
            exact::topk_batch(&inp, keys, k, ctx)
        }
        PhysicalPlan::Window { windows, .. } => {
            let inp = exec_diff_node(&inputs[0], ctx)?;
            if inp.has_diff() {
                return Err(ExecError::NotDifferentiable(
                    "window functions over differentiable columns".into(),
                ));
            }
            exact::window_batch(&inp, windows, ctx)
        }
        PhysicalPlan::Distinct { .. } => {
            let inp = exec_diff_node(&inputs[0], ctx)?;
            if inp.has_diff() {
                return Err(ExecError::NotDifferentiable(
                    "DISTINCT over differentiable columns".into(),
                ));
            }
            exact::distinct_batch(&inp)
        }
        PhysicalPlan::UnionAll { .. } => {
            let l = exec_diff_node(&inputs[0], ctx)?;
            let r = exec_diff_node(&inputs[1], ctx)?;
            if l.has_diff() || r.has_diff() {
                return Err(ExecError::NotDifferentiable(
                    "UNION ALL over differentiable columns".into(),
                ));
            }
            exact::union_all_batches(&l, &r)
        }
        // ANN top-k is a leaf over exact base-table data: nothing on the
        // tape can flow through it, so it executes exactly.
        PhysicalPlan::AnnTopK {
            table,
            schema,
            column,
            query,
            metric,
            n,
            path,
        } => exact::ann_topk(table, schema, column, query, *metric, n, path, ctx),
        PhysicalPlan::Scan { .. }
        | PhysicalPlan::Filter { .. }
        | PhysicalPlan::Project { .. }
        | PhysicalPlan::Aggregate { .. }
        | PhysicalPlan::Limit { .. } => {
            unreachable!("streamable operator reached the barrier executor")
        }
    }
}

// ----------------------------------------------------------------------
// Differentiable expression values
// ----------------------------------------------------------------------

/// Value of an expression in the differentiable domain.
pub enum DiffVal {
    /// Plain differentiable `[N]` column.
    Var(Var),
    /// Probability-encoded differentiable column.
    Pe(DiffColumn),
    /// Exact column (no gradient flows through it).
    Exact(EncodedTensor),
    Num(f64),
    Str(String),
}

impl DiffVal {
    fn into_arg(self) -> ArgValue {
        match self {
            DiffVal::Var(v) => ArgValue::DiffColumn(DiffColumn::plain(v)),
            DiffVal::Pe(p) => ArgValue::DiffColumn(p),
            DiffVal::Exact(e) => ArgValue::Column(e),
            DiffVal::Num(n) => ArgValue::Number(n),
            DiffVal::Str(s) => ArgValue::Str(s),
        }
    }

    /// Coerce to a `[n]` Var (PE decodes softly to expected values; exact
    /// columns become constants).
    fn into_var(self, n: usize) -> Result<Var, ExecError> {
        match self {
            DiffVal::Var(v) => Ok(v),
            DiffVal::Pe(p) => {
                // E[value] = probs · class_values, kept on the tape.
                let cv = p.class_values.clone().expect("Pe always has classes");
                let c = cv.numel();
                Ok(p.var
                    .matmul(&Var::constant(cv.reshape(&[c, 1])))
                    .reshape(&[n]))
            }
            DiffVal::Exact(e) => Ok(Var::constant(e.decode_f32())),
            DiffVal::Num(v) => Ok(Var::constant(Tensor::full(&[n], v as f32))),
            DiffVal::Str(s) => Err(ExecError::TypeMismatch(format!(
                "string '{s}' in numeric context"
            ))),
        }
    }

    /// Whether gradient can flow through this value.
    #[allow(dead_code)] // part of the DiffVal API surface, used by tests
    pub fn is_diff(&self) -> bool {
        matches!(self, DiffVal::Var(_) | DiffVal::Pe(_))
    }
}

/// Whether an expression touches any differentiable column or
/// differentiable UDF output.
fn references_diff(expr: &CompiledExpr, batch: &Batch) -> bool {
    match expr {
        CompiledExpr::Column(c) => c.resolve(batch).map(|d| d.is_diff()).unwrap_or(false),
        CompiledExpr::Binary { left, right, .. } => {
            references_diff(left, batch) || references_diff(right, batch)
        }
        CompiledExpr::Unary { expr, .. } => references_diff(expr, batch),
        CompiledExpr::Udf { args, .. } | CompiledExpr::Builtin { args, .. } => {
            args.iter().any(|a| references_diff(a, batch))
        }
        CompiledExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            operand
                .as_deref()
                .is_some_and(|o| references_diff(o, batch))
                || branches
                    .iter()
                    .any(|(w, t)| references_diff(w, batch) || references_diff(t, batch))
                || else_expr
                    .as_deref()
                    .is_some_and(|e| references_diff(e, batch))
        }
        CompiledExpr::InList { expr, list, .. } => {
            references_diff(expr, batch) || list.iter().any(|i| references_diff(i, batch))
        }
        CompiledExpr::Like { expr, .. } => references_diff(expr, batch),
        _ => false,
    }
}

/// Whether the expression calls a scalar UDF that carries trainable
/// parameters — such calls must take the differentiable path even when no
/// input column is differentiable (e.g. a learnable filter threshold).
fn has_trainable_udf(expr: &CompiledExpr, ctx: &ExecContext) -> bool {
    match expr {
        // Builtin included: a trainable session UDF registered after
        // compilation shadows the built-in at evaluation time.
        CompiledExpr::Udf { name, args } | CompiledExpr::Builtin { name, args, .. } => {
            ctx.udfs
                .scalar(name)
                .map(|u| !u.parameters().is_empty())
                .unwrap_or(false)
                || args.iter().any(|a| has_trainable_udf(a, ctx))
        }
        CompiledExpr::Binary { left, right, .. } => {
            has_trainable_udf(left, ctx) || has_trainable_udf(right, ctx)
        }
        CompiledExpr::Unary { expr, .. } => has_trainable_udf(expr, ctx),
        CompiledExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            operand
                .as_deref()
                .is_some_and(|o| has_trainable_udf(o, ctx))
                || branches
                    .iter()
                    .any(|(w, t)| has_trainable_udf(w, ctx) || has_trainable_udf(t, ctx))
                || else_expr
                    .as_deref()
                    .is_some_and(|e| has_trainable_udf(e, ctx))
        }
        CompiledExpr::InList { expr, list, .. } => {
            has_trainable_udf(expr, ctx) || list.iter().any(|i| has_trainable_udf(i, ctx))
        }
        CompiledExpr::Like { expr, .. } => has_trainable_udf(expr, ctx),
        _ => false,
    }
}

/// An expression is "on the tape" when it touches a differentiable column
/// or calls a parameterized UDF.
fn on_tape(expr: &CompiledExpr, batch: &Batch, ctx: &ExecContext) -> bool {
    references_diff(expr, batch) || has_trainable_udf(expr, ctx)
}

/// Evaluate a compiled expression in the differentiable domain.
pub fn eval_diff(
    expr: &CompiledExpr,
    batch: &Batch,
    ctx: &ExecContext,
) -> Result<DiffVal, ExecError> {
    match expr {
        CompiledExpr::Column(c) => match c.resolve(batch)? {
            ColumnData::Diff(d) if d.is_pe() => Ok(DiffVal::Pe(d.clone())),
            ColumnData::Diff(d) => Ok(DiffVal::Var(d.var.clone())),
            ColumnData::Exact(e) => Ok(DiffVal::Exact(e.clone())),
        },
        CompiledExpr::Num(n) => Ok(DiffVal::Num(*n)),
        CompiledExpr::Str(s) => Ok(DiffVal::Str(s.clone())),
        CompiledExpr::Bool(b) => Ok(DiffVal::Num(if *b { 1.0 } else { 0.0 })),
        CompiledExpr::Unary {
            op: UnOp::Neg,
            expr,
        } => {
            let n = batch.rows();
            Ok(DiffVal::Var(
                eval_diff(expr, batch, ctx)?.into_var(n)?.neg(),
            ))
        }
        CompiledExpr::Unary { op: UnOp::Not, .. } => Err(ExecError::NotDifferentiable(
            "NOT outside a predicate".into(),
        )),
        CompiledExpr::Binary { op, left, right } => {
            // Pure-exact subtrees evaluate exactly (keeps dictionary
            // predicates etc. available inside trainable queries).
            if !on_tape(expr, batch, ctx) {
                return exact_as_diff(expr, batch, ctx);
            }
            let n = batch.rows();
            let l = eval_diff(left, batch, ctx)?;
            let r = eval_diff(right, batch, ctx)?;
            let (lv, rv) = (l.into_var(n)?, r.into_var(n)?);
            let out = match op {
                BinOp::Add => lv.add(&rv),
                BinOp::Sub => lv.sub(&rv),
                BinOp::Mul => lv.mul(&rv),
                BinOp::Div => lv.div(&rv),
                other => {
                    return Err(ExecError::NotDifferentiable(format!(
                        "operator {other:?} over differentiable columns outside WHERE"
                    )))
                }
            };
            Ok(DiffVal::Var(out))
        }
        CompiledExpr::Builtin { name, args, .. } => {
            // A session UDF registered *after* compilation shadows the
            // built-in (pre-compilation resolution order).
            if ctx.udfs.is_scalar(name) {
                return invoke_udf_diff(name, args, batch, ctx);
            }
            // Built-in math functions: exact off the tape, Var ops on it
            // (only the ones autodiff provides).
            if !args.iter().any(|a| references_diff(a, batch))
                && !args.iter().any(|a| has_trainable_udf(a, ctx))
            {
                return exact_as_diff(expr, batch, ctx);
            }
            let n = batch.rows();
            if args.len() == 1 {
                let x = eval_diff(&args[0], batch, ctx)?.into_var(n)?;
                let out = match name.to_ascii_lowercase().as_str() {
                    "abs" => x.abs(),
                    "sqrt" => x.sqrt(),
                    "exp" => x.exp(),
                    "ln" => x.ln(),
                    other => {
                        return Err(ExecError::NotDifferentiable(format!(
                            "built-in {other} over differentiable columns"
                        )))
                    }
                };
                return Ok(DiffVal::Var(out));
            }
            Err(ExecError::NotDifferentiable(format!(
                "built-in {name} over differentiable columns"
            )))
        }
        CompiledExpr::Udf { name, args } => invoke_udf_diff(name, args, batch, ctx),
        e @ (CompiledExpr::Case { .. }
        | CompiledExpr::InList { .. }
        | CompiledExpr::Like { .. }) => {
            // CASE/IN/LIKE run exactly when they do not touch the tape;
            // relaxing them is future work (the paper only relaxes
            // comparisons and aggregates).
            if on_tape(e, batch, ctx) {
                return Err(ExecError::NotDifferentiable(format!(
                    "'{e}' over differentiable columns"
                )));
            }
            exact_as_diff(e, batch, ctx)
        }
        // Scalar subqueries evaluate exactly — no gradient crosses the
        // subquery boundary (its tables are catalog constants).
        CompiledExpr::ScalarSubquery(plan) => match crate::expr::eval_scalar_subquery(plan, ctx)? {
            crate::expr::Value::Num(v) => Ok(DiffVal::Num(v)),
            crate::expr::Value::Str(s) => Ok(DiffVal::Str(s)),
            crate::expr::Value::Bool(b) => Ok(DiffVal::Num(if b { 1.0 } else { 0.0 })),
            crate::expr::Value::Column(c) => Ok(DiffVal::Exact(c)),
        },
        // Parameters are constants of the differentiable domain: gradients
        // never flow into a binding.
        CompiledExpr::Param { idx } => match crate::expr::eval_param(*idx, batch.rows(), ctx)? {
            crate::expr::Value::Num(v) => Ok(DiffVal::Num(v)),
            crate::expr::Value::Str(s) => Ok(DiffVal::Str(s)),
            crate::expr::Value::Bool(b) => Ok(DiffVal::Num(if b { 1.0 } else { 0.0 })),
            crate::expr::Value::Column(c) => Ok(DiffVal::Exact(c)),
        },
    }
}

/// Invoke a session scalar UDF in the differentiable domain: the diff
/// implementation when gradients may flow, the exact one otherwise.
fn invoke_udf_diff(
    name: &str,
    args: &[CompiledExpr],
    batch: &Batch,
    ctx: &ExecContext,
) -> Result<DiffVal, ExecError> {
    let any_diff = args.iter().any(|a| references_diff(a, batch));
    let udf = ctx.udfs.scalar(name)?.clone();
    let mut arg_values = Vec::with_capacity(args.len());
    for a in args {
        arg_values.push(eval_diff(a, batch, ctx)?.into_arg());
    }
    if any_diff || !udf.parameters().is_empty() {
        let out = udf.invoke_diff(&arg_values, ctx)?;
        Ok(if out.is_pe() {
            DiffVal::Pe(out)
        } else {
            DiffVal::Var(out.var)
        })
    } else {
        Ok(DiffVal::Exact(udf.invoke(&arg_values, ctx)?))
    }
}

/// Evaluate an off-tape expression with the exact evaluator and wrap the
/// result as a constant in the differentiable domain.
fn exact_as_diff(
    expr: &CompiledExpr,
    batch: &Batch,
    ctx: &ExecContext,
) -> Result<DiffVal, ExecError> {
    Ok(match eval_expr(expr, batch, ctx)? {
        crate::expr::Value::Column(c) => DiffVal::Exact(c),
        crate::expr::Value::Num(n) => DiffVal::Num(n),
        crate::expr::Value::Str(s) => DiffVal::Str(s),
        crate::expr::Value::Bool(b) => DiffVal::Num(if b { 1.0 } else { 0.0 }),
    })
}

// ----------------------------------------------------------------------
// Operators
// ----------------------------------------------------------------------

/// Soft weights for a predicate over differentiable values.
fn soft_predicate(expr: &CompiledExpr, batch: &Batch, ctx: &ExecContext) -> Result<Var, ExecError> {
    let n = batch.rows();
    match expr {
        CompiledExpr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let lw = soft_predicate(left, batch, ctx)?;
            let rw = soft_predicate(right, batch, ctx)?;
            Ok(lw.mul(&rw))
        }
        CompiledExpr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => {
            // Probabilistic OR: w1 + w2 − w1·w2.
            let lw = soft_predicate(left, batch, ctx)?;
            let rw = soft_predicate(right, batch, ctx)?;
            Ok(lw.add(&rw).sub(&lw.mul(&rw)))
        }
        CompiledExpr::Unary {
            op: UnOp::Not,
            expr,
        } => {
            let w = soft_predicate(expr, batch, ctx)?;
            Ok(w.neg().add_scalar(1.0))
        }
        CompiledExpr::Binary { op, left, right } if op.is_comparison() => {
            if !on_tape(expr, batch, ctx) {
                // Exact sub-predicate: 0/1 weights, constants on the tape.
                let mask = eval_expr(expr, batch, ctx)?.into_mask(n)?;
                return Ok(Var::constant(mask.to_f32_mask()));
            }
            let l = eval_diff(left, batch, ctx)?.into_var(n)?;
            let r = eval_diff(right, batch, ctx)?.into_var(n)?;
            let score = l.sub(&r);
            Ok(match op {
                BinOp::Gt | BinOp::GtEq => soft::soft_gt(&score, 0.0, ctx.temperature),
                BinOp::Lt | BinOp::LtEq => soft::soft_lt(&score, 0.0, ctx.temperature),
                // Relaxed equality: Gaussian kernel of the margin.
                BinOp::Eq => {
                    let z = score.div_scalar(ctx.temperature);
                    z.square().neg().exp()
                }
                BinOp::NotEq => {
                    let z = score.div_scalar(ctx.temperature);
                    z.square().neg().exp().neg().add_scalar(1.0)
                }
                _ => unreachable!("guarded by is_comparison"),
            })
        }
        // Any remaining predicate shape (IN, LIKE, CASE…) participates with
        // hard 0/1 weights as long as it stays off the tape.
        other if !on_tape(other, batch, ctx) => {
            let mask = eval_expr(other, batch, ctx)?.into_mask(n)?;
            Ok(Var::constant(mask.to_f32_mask()))
        }
        other => Err(ExecError::NotDifferentiable(format!(
            "predicate '{other}' cannot be relaxed"
        ))),
    }
}

fn filter_diff(
    batch: &Batch,
    predicate: &CompiledExpr,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let n = batch.rows();
    if !on_tape(predicate, batch, ctx) {
        // Hard filter; differentiable columns are gathered on-tape so
        // gradients still flow into surviving rows.
        let mask = eval_expr(predicate, batch, ctx)?.into_mask(n)?;
        let kept: Vec<i64> = mask
            .data()
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as i64))
            .collect();
        let k = kept.len();
        let idx = Tensor::from_vec(kept, &[k]);
        let mut out = Batch::new();
        for (name, col) in batch.columns() {
            let new_col = match col {
                ColumnData::Exact(e) => ColumnData::Exact(e.select_rows(&idx)),
                ColumnData::Diff(d) => ColumnData::Diff(DiffColumn {
                    var: d.var.select_rows(&idx),
                    class_values: d.class_values.clone(),
                }),
            };
            out.push(name.clone(), new_col);
        }
        out.weights = batch.weights.as_ref().map(|w| w.select_rows(&idx));
        return Ok(out);
    }

    // Soft filter: multiply the relaxed predicate into the row weights.
    let w = soft_predicate(predicate, batch, ctx)?;
    let mut out = batch.clone();
    out.weights = Some(match &batch.weights {
        Some(prev) => prev.mul(&w),
        None => w,
    });
    Ok(out)
}

fn project_diff(
    batch: &Batch,
    items: &[PhysProjectItem],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let mut out = Batch::new();
    out.weights = batch.weights.clone();
    let n = batch.rows();
    for item in items {
        let name = item.name.clone();
        match eval_diff(&item.expr, batch, ctx)? {
            DiffVal::Var(v) => out.push(name, ColumnData::Diff(DiffColumn::plain(v))),
            DiffVal::Pe(p) => out.push(name, ColumnData::Diff(p)),
            DiffVal::Exact(e) => out.push(name, ColumnData::Exact(e)),
            DiffVal::Num(v) => out.push(
                name,
                ColumnData::Exact(EncodedTensor::F32(Tensor::full(&[n], v as f32))),
            ),
            DiffVal::Str(s) => out.push(
                name,
                ColumnData::Exact(EncodedTensor::from_strings(&vec![s; n])),
            ),
        }
    }
    Ok(out)
}

/// One-hot (constant) PE view of an exact key column, allowing exact keys
/// to participate in soft GROUP BY next to PE keys.
fn exact_key_as_pe(col: &EncodedTensor) -> Result<(Var, F32Tensor), ExecError> {
    let codes = match col {
        EncodedTensor::Pe(p) => {
            // Exact PE column (already detached): one-hot by argmax.
            return Ok((
                Var::constant(tdp_tensor::index::one_hot(&p.decode_ids(), p.num_classes())),
                p.class_values().clone(),
            ));
        }
        EncodedTensor::I64(t) => t.clone(),
        EncodedTensor::Bool(t) => t.to_i64_mask(),
        EncodedTensor::Dict { codes, .. } => codes.clone(),
        EncodedTensor::Rle(r) => r.decode(),
        EncodedTensor::BitPacked(b) => b.decode(),
        EncodedTensor::Delta(d) => d.decode(),
        EncodedTensor::F32(t) if t.ndim() == 1 => t.to_i64(),
        EncodedTensor::F32(_) => {
            return Err(ExecError::TypeMismatch(
                "cannot group by a multi-dimensional payload column".into(),
            ))
        }
    };
    let u = tdp_tensor::sort::unique_i64(&codes);
    let onehot = tdp_tensor::index::one_hot(&u.inverse, u.values.numel());
    Ok((Var::constant(onehot), u.values.to_f32()))
}

fn aggregate_diff(
    batch: &Batch,
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let n = batch.rows();
    let weights = batch.weights.clone();

    // Global aggregation (no keys): scalar soft aggregates.
    if keys.is_empty() {
        let mut out = Batch::new();
        let w = weights.unwrap_or_else(|| Var::constant(F32Tensor::ones(&[n])));
        for agg in aggregates {
            let var = match (agg.func, &agg.arg) {
                (AggFunc::Count, _) => soft::soft_global_count(&w).reshape(&[1]),
                (AggFunc::Sum, Some(e)) => {
                    let vals = eval_diff(e, batch, ctx)?.into_var(n)?;
                    vals.mul(&w).sum().reshape(&[1])
                }
                (AggFunc::Avg, Some(e)) => {
                    let vals = eval_diff(e, batch, ctx)?.into_var(n)?;
                    let num = vals.mul(&w).sum();
                    let den = w.sum().add_scalar(1e-9);
                    num.div(&den).reshape(&[1])
                }
                (f, _) => {
                    return Err(ExecError::NotDifferentiable(format!(
                        "soft {} is not implemented",
                        f.name()
                    )))
                }
            };
            out.push(agg.output.clone(), ColumnData::Diff(DiffColumn::plain(var)));
        }
        return Ok(out);
    }

    // Keyed aggregation: every key must be (or become) probability-encoded.
    let mut membership: Vec<Var> = Vec::with_capacity(keys.len());
    let mut class_values: Vec<F32Tensor> = Vec::with_capacity(keys.len());
    let mut key_names: Vec<String> = Vec::with_capacity(keys.len());
    for k in keys {
        let CompiledExpr::Column(col_ref) = &k.expr else {
            return Err(ExecError::NotDifferentiable(format!(
                "soft GROUP BY key '{}' must be a plain column",
                k.name
            )));
        };
        key_names.push(k.name.clone());
        match col_ref.resolve(batch)? {
            ColumnData::Diff(d) if d.is_pe() => {
                membership.push(d.var.clone());
                class_values.push(d.class_values.clone().expect("pe column"));
            }
            ColumnData::Diff(_) => {
                return Err(ExecError::NotDifferentiable(format!(
                    "cannot group by continuous differentiable column '{}' \
                     (probability-encode it first)",
                    col_ref.name()
                )))
            }
            ColumnData::Exact(e) => {
                let (onehot, values) = exact_key_as_pe(e)?;
                membership.push(onehot);
                class_values.push(values);
            }
        }
    }

    let member_refs: Vec<&Var> = membership.iter().collect();
    let joint = soft::joint_membership(&member_refs);
    let cv_refs: Vec<&F32Tensor> = class_values.iter().collect();
    let key_cols = soft::expand_group_keys(&cv_refs);

    let mut out = Batch::new();
    for (name, col) in key_names.into_iter().zip(key_cols) {
        out.push(name, ColumnData::Exact(EncodedTensor::F32(col)));
    }
    for agg in aggregates {
        let var = match (agg.func, &agg.arg) {
            (AggFunc::Count, _) => soft::soft_groupby_count(&joint, weights.as_ref()),
            (AggFunc::Sum, Some(e)) => {
                let vals = eval_diff(e, batch, ctx)?.into_var(n)?;
                soft::soft_groupby_sum(&joint, &vals, weights.as_ref())
            }
            (AggFunc::Avg, Some(e)) => {
                let vals = eval_diff(e, batch, ctx)?.into_var(n)?;
                soft::soft_groupby_avg(&joint, &vals, weights.as_ref())
            }
            (f, _) => {
                return Err(ExecError::NotDifferentiable(format!(
                    "soft {} is not implemented",
                    f.name()
                )))
            }
        };
        out.push(agg.output.clone(), ColumnData::Diff(DiffColumn::plain(var)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::lower;
    use crate::udf::{ScalarUdf, TableFunction, UdfRegistry};
    use std::sync::Arc;
    use tdp_sql::plan::{build_plan, PlannerContext};
    use tdp_sql::{optimizer, parse};
    use tdp_storage::{Catalog, TableBuilder};

    /// TVF producing a PE column from a logits parameter — a stand-in for
    /// a classifier over the input rows.
    struct PeEmitter {
        logits: Var,
    }

    impl TableFunction for PeEmitter {
        fn name(&self) -> &str {
            "classify"
        }
        fn invoke_table(&self, input: &Batch, ctx: &ExecContext) -> Result<Batch, ExecError> {
            // Exact path: decode PE by argmax.
            let diff = self.invoke_table_diff(input, ctx)?;
            let mut out = Batch::new();
            for (name, col) in diff.columns() {
                out.push(name.clone(), ColumnData::Exact(col.to_exact()));
            }
            Ok(out)
        }
        fn invoke_table_diff(
            &self,
            _input: &Batch,
            _ctx: &ExecContext,
        ) -> Result<Batch, ExecError> {
            let mut out = Batch::new();
            let probs = self.logits.softmax(1);
            out.push(
                "Label",
                ColumnData::Diff(DiffColumn::pe(probs, Tensor::arange(2))),
            );
            Ok(out)
        }
        fn parameters(&self) -> Vec<Var> {
            vec![self.logits.clone()]
        }
    }

    fn setup(logits: Var) -> (Catalog, UdfRegistry) {
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("x", vec![1.0, 2.0, 3.0, 4.0])
                .build("rows"),
        );
        let mut udfs = UdfRegistry::new();
        udfs.register_table_fn(Arc::new(PeEmitter { logits }));
        (catalog, udfs)
    }

    fn fresh_logits() -> Var {
        Var::param(Tensor::from_vec(
            vec![2.0f32, -2.0, 2.0, -2.0, -2.0, 2.0, 2.0, -2.0],
            &[4, 2],
        ))
    }

    fn compile(catalog: &Catalog, udfs: &UdfRegistry, sql: &str) -> PhysicalPlan {
        let q = parse(sql).unwrap();
        let plan = optimizer::optimize(
            build_plan(
                &q,
                &PlannerContext {
                    is_tvf: &|n| udfs.is_table_fn(n),
                },
            )
            .unwrap(),
        );
        lower(&plan, catalog, udfs).unwrap()
    }

    fn run_diff(catalog: &Catalog, udfs: &UdfRegistry, sql: &str) -> Batch {
        let ctx = ExecContext::new(catalog, udfs).with_trainable(true);
        let plan = compile(catalog, udfs, sql);
        execute_diff(&plan, &ctx).unwrap()
    }

    fn counts_of(batch: &Batch) -> (Var, Vec<f32>) {
        match batch.column("COUNT(*)").unwrap() {
            ColumnData::Diff(d) => (d.var.clone(), d.var.value().to_vec()),
            other => panic!("expected diff counts, got {other:?}"),
        }
    }

    #[test]
    fn trainable_groupby_count_produces_soft_counts() {
        let logits = fresh_logits();
        let (catalog, udfs) = setup(logits.clone());
        let b = run_diff(
            &catalog,
            &udfs,
            "SELECT Label, COUNT(*) FROM classify(rows) GROUP BY Label",
        );
        let (_, counts) = counts_of(&b);
        // logits favour classes [0, 0, 1, 0] -> about 3 vs 1, softly.
        assert_eq!(counts.len(), 2);
        assert!((counts[0] + counts[1] - 4.0).abs() < 1e-4);
        assert!(counts[0] > 2.5 && counts[1] < 1.5);
        // Key column materialised as class values.
        assert_eq!(
            b.column("Label").unwrap().to_exact().decode_f32().to_vec(),
            vec![0.0, 1.0]
        );
    }

    #[test]
    fn gradients_reach_tvf_parameters_through_group_by() {
        let logits = fresh_logits();
        let (catalog, udfs) = setup(logits.clone());
        let b = run_diff(
            &catalog,
            &udfs,
            "SELECT Label, COUNT(*) FROM classify(rows) GROUP BY Label",
        );
        let (counts_var, _) = counts_of(&b);
        let target = Tensor::from_vec(vec![2.0f32, 2.0], &[2]);
        let loss = counts_var.mse_loss(&target);
        loss.backward();
        let g = logits
            .grad()
            .expect("gradient must reach the TVF parameter");
        assert!(g.norm() > 0.0);
    }

    #[test]
    fn training_counts_to_target_converges() {
        // End-to-end trainable query: adjust logits so that the grouped
        // counts match a target — the minimal LLP setting.
        let logits = Var::param(Tensor::from_vec(vec![0.0f32; 8], &[4, 2]));
        let (catalog, udfs) = setup(logits.clone());
        let target = Tensor::from_vec(vec![1.0f32, 3.0], &[2]);
        let mut loss_v = f32::MAX;
        for _ in 0..200 {
            logits.zero_grad();
            let b = run_diff(
                &catalog,
                &udfs,
                "SELECT Label, COUNT(*) FROM classify(rows) GROUP BY Label",
            );
            let (counts_var, _) = counts_of(&b);
            let loss = counts_var.mse_loss(&target);
            loss.backward();
            loss_v = loss.value().item();
            let g = logits.grad().unwrap();
            logits.set_value(logits.value().sub(&g.mul_scalar(5.0)));
        }
        assert!(
            loss_v < 1e-3,
            "count-supervised training must converge: {loss_v}"
        );
    }

    /// Scalar UDF emitting a differentiable score column from a parameter.
    struct ScoreUdf {
        scores: Var,
    }

    impl ScalarUdf for ScoreUdf {
        fn name(&self) -> &str {
            "score"
        }
        fn invoke(
            &self,
            _args: &[ArgValue],
            _ctx: &ExecContext,
        ) -> Result<EncodedTensor, ExecError> {
            Ok(EncodedTensor::F32(self.scores.value()))
        }
        fn invoke_diff(
            &self,
            _args: &[ArgValue],
            _ctx: &ExecContext,
        ) -> Result<DiffColumn, ExecError> {
            Ok(DiffColumn::plain(self.scores.clone()))
        }
        fn parameters(&self) -> Vec<Var> {
            vec![self.scores.clone()]
        }
    }

    #[test]
    fn trainable_order_by_limit_relaxes_to_soft_topk_weights() {
        let scores = Var::param(Tensor::from_vec(vec![0.3f32, 0.9, 0.1, 0.5], &[4]));
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("x", vec![10.0, 20.0, 30.0, 40.0])
                .build("rows"),
        );
        let mut udfs = UdfRegistry::new();
        udfs.register_scalar(Arc::new(ScoreUdf {
            scores: scores.clone(),
        }));

        let mut ctx = ExecContext::new(&catalog, &udfs).with_trainable(true);
        ctx.temperature = 0.01;
        let plan = compile(
            &catalog,
            &udfs,
            "SELECT x, score(x) AS s FROM rows ORDER BY s DESC LIMIT 2",
        );
        let out = execute_diff(&plan, &ctx).unwrap();

        // All rows survive; soft membership lives in the batch weights.
        assert_eq!(out.rows(), 4);
        let w = out.weights.as_ref().expect("soft top-k weights");
        let wv = w.value();
        assert!(wv.at(1) > 0.99 && wv.at(3) > 0.99, "{:?}", wv.to_vec());
        assert!(wv.at(0) < 0.01 && wv.at(2) < 0.01, "{:?}", wv.to_vec());

        // Gradients flow from a weighted loss back into the score parameter.
        let vals = Var::constant(Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], &[4]));
        w.mul(&vals).sum().backward();
        assert!(scores.grad().expect("grad on scores").norm() > 0.0);
    }

    #[test]
    fn trainable_order_by_limit_without_diff_key_cuts_exactly() {
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("x", vec![3.0, 1.0, 2.0])
                .build("rows"),
        );
        let udfs = UdfRegistry::new();
        let ctx = ExecContext::new(&catalog, &udfs).with_trainable(true);
        // Unoptimised Limit(Sort(…)) shape: exercised via the raw lowering.
        let q = parse("SELECT x FROM rows ORDER BY x DESC LIMIT 2").unwrap();
        let plan = build_plan(&q, &PlannerContext { is_tvf: &|_| false }).unwrap();
        let phys = lower(&plan, &catalog, &udfs).unwrap();
        let out = execute_diff(&phys, &ctx).unwrap();
        assert_eq!(out.rows(), 2);
        assert!(out.weights.is_none());
        assert_eq!(
            out.column("x").unwrap().to_exact().decode_f32().to_vec(),
            vec![3.0, 2.0]
        );
    }

    #[test]
    fn global_count_uses_weights() {
        struct Score;
        impl ScalarUdf for Score {
            fn name(&self) -> &str {
                "score"
            }
            fn invoke(
                &self,
                args: &[ArgValue],
                _: &ExecContext,
            ) -> Result<EncodedTensor, ExecError> {
                Ok(args[0].as_column()?.clone())
            }
            fn invoke_diff(
                &self,
                args: &[ArgValue],
                _: &ExecContext,
            ) -> Result<DiffColumn, ExecError> {
                match &args[0] {
                    ArgValue::Column(c) => Ok(DiffColumn::plain(Var::constant(c.decode_f32()))),
                    ArgValue::DiffColumn(d) => Ok(d.clone()),
                    other => Err(ExecError::TypeMismatch(format!("{other:?}"))),
                }
            }
            fn parameters(&self) -> Vec<Var> {
                // Pretend-trainable so the diff path is taken.
                vec![Var::param(Tensor::from_vec(vec![0.0f32], &[1]))]
            }
        }
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("x", vec![0.0, 0.5, 1.0, 1.5])
                .build("t"),
        );
        let mut udfs = UdfRegistry::new();
        udfs.register_scalar(Arc::new(Score));
        let b = run_diff(
            &catalog,
            &udfs,
            "SELECT COUNT(*) FROM t WHERE score(x) > 0.75",
        );
        let (_, counts) = counts_of(&b);
        // Soft count: rows 1.0, 1.5 nearly in; 0.5 partially; 0.0 nearly out.
        assert_eq!(counts.len(), 1);
        assert!(
            counts[0] > 1.5 && counts[0] < 2.5,
            "soft count = {}",
            counts[0]
        );
    }

    #[test]
    fn exact_predicate_filters_hard_in_diff_mode() {
        let logits = fresh_logits();
        let (catalog, udfs) = setup(logits);
        // x > 2.5 keeps rows 2 and 3 (exact filter before the aggregate).
        let b = run_diff(&catalog, &udfs, "SELECT COUNT(*) FROM rows WHERE x > 2.5");
        let (_, counts) = counts_of(&b);
        assert!((counts[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn group_by_exact_key_in_diff_mode() {
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_i64("k", vec![7, 8, 7, 7])
                .col_f32("v", vec![1.0, 2.0, 3.0, 4.0])
                .build("t"),
        );
        let udfs = UdfRegistry::new();
        let b = run_diff(
            &catalog,
            &udfs,
            "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k",
        );
        assert_eq!(
            b.column("k").unwrap().to_exact().decode_f32().to_vec(),
            vec![7.0, 8.0]
        );
        let (_, counts) = counts_of(&b);
        assert_eq!(counts, vec![3.0, 1.0]);
        match b.column("SUM(v)").unwrap() {
            ColumnData::Diff(d) => assert_eq!(d.var.value().to_vec(), vec![8.0, 2.0]),
            other => panic!("expected diff sum, got {other:?}"),
        }
    }

    #[test]
    fn sort_and_limit_pass_through_when_exact() {
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("v", vec![3.0, 1.0, 2.0])
                .build("t"),
        );
        let udfs = UdfRegistry::new();
        let b = run_diff(&catalog, &udfs, "SELECT v FROM t ORDER BY v DESC LIMIT 2");
        assert_eq!(
            b.column("v").unwrap().to_exact().decode_f32().to_vec(),
            vec![3.0, 2.0]
        );
    }

    #[test]
    fn not_differentiable_reported_for_diff_sort() {
        let logits = fresh_logits();
        let (catalog, udfs) = setup(logits);
        let ctx = ExecContext::new(&catalog, &udfs).with_trainable(true);
        let q = parse("SELECT Label FROM classify(rows) ORDER BY Label").unwrap();
        let plan = build_plan(
            &q,
            &PlannerContext {
                is_tvf: &|n| udfs.is_table_fn(n),
            },
        )
        .unwrap();
        let phys = lower(&plan, &catalog, &udfs).unwrap();
        assert!(matches!(
            execute_diff(&phys, &ctx),
            Err(ExecError::NotDifferentiable(_))
        ));
    }
}
