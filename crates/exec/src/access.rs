//! Access-path planning: zone-map chunk pruning and ANN top-k.
//!
//! This module is the planner half of the engine's two index-accelerated
//! access paths. Both are chosen **at `prepare()` time** inside
//! [`crate::physical::lower`] and carried on the physical plan, so they
//! compose with the normalized plan cache (parameter-slot bounds are
//! resolved at bind time, not compile time).
//!
//! ## Zone-map pruning — eligibility rules
//!
//! The filter directly above a base-table scan with a resolved schema is
//! split on top-level `AND`. A conjunct compiles into a
//! [`PrunePredicate`] when it is
//!
//! * a comparison (`<`, `<=`, `>`, `>=`, `=`) between a slot-resolved
//!   column and a numeric literal or `$n` parameter slot (either operand
//!   order — the operator is mirrored), or
//! * a non-negated `IN` list of numeric literals / parameter slots
//!   (`BETWEEN` needs no case of its own: the parser desugars it into
//!   two comparisons), or
//! * an `OR` whose arms are each individually eligible by the two rules
//!   above **and** all name the same column — the pruner then skips a
//!   chunk only when every arm excludes it (the union of the arms'
//!   surviving ranges).
//!
//! Everything else (string predicates, UDF calls, column-column
//! comparisons, `NOT IN`, mixed-column or partially-eligible `OR`s) is
//! ignored; if *no* conjunct qualifies the scan stays a full scan and
//! EXPLAIN names the reason (`full scan: no-eligible-conjunct`, or
//! `full scan: or-arm-ineligible` when a disjunction was present but an
//! arm disqualified it, or `schema-unresolved`).
//!
//! ## Pruning vs. kernels
//!
//! The [`ChunkPruner`] runs **before** the fused chain kernels: the
//! morsel scheduler asks it for a per-morsel skip mask (computed from
//! the catalog's [`TableZoneMaps`] in the same f32 precision the filter
//! kernels compare in) and pruned morsels contribute an empty slice to
//! the order-preserving reassembly without ever reaching a kernel. A
//! skipped morsel is by construction one the leading filter would have
//! emptied, so pruned and unpruned executions are byte-identical at
//! every thread count and morsel size.
//!
//! ## ANN recall contract
//!
//! `ORDER BY distance(col, $q) LIMIT k` (and the `inner_product` /
//! `cosine_sim` descending forms) lowers to the `AnnTopK` operator. With
//! no index registered — or a stale one — it runs the **flat exact**
//! path: identical scores, ordering and bytes as the scan+sort oracle.
//! With a `CREATE INDEX … USING ivf(nlist, nprobe)` index it trades
//! recall for latency; the trade-off is declared in EXPLAIN
//! (`[ivf nlist=64 nprobe=8]`) and bounded by the recall property tests.

use std::sync::atomic::{AtomicU64, Ordering};

use tdp_sql::ast::BinOp;
use tdp_storage::TableZoneMaps;

use crate::params::{ParamValue, ParamValues};
use crate::physical::{ColumnRef, CompiledExpr};

// ----------------------------------------------------------------------
// Observability counters
// ----------------------------------------------------------------------

/// Monotonic access-path counters. One shared set hangs off the engine
/// for cumulative `access_path_stats()`; profiled runs attach a fresh
/// set to report per-query numbers.
#[derive(Debug, Default)]
pub struct AccessPathCounters {
    morsels_pruned: AtomicU64,
    morsels_scanned: AtomicU64,
    ann_queries: AtomicU64,
    ivf_stale_fallbacks: AtomicU64,
    ivf_rebuilds: AtomicU64,
    barriers_selection_fed: AtomicU64,
    barriers_gathered: AtomicU64,
}

/// A point-in-time snapshot of [`AccessPathCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessPathStats {
    /// Morsels skipped wholesale by zone-map pruning.
    pub morsels_pruned: u64,
    /// Morsels that reached the chain kernels of a prunable scan.
    pub morsels_scanned: u64,
    /// Queries served by the `AnnTopK` operator.
    pub ann_queries: u64,
    /// ANN queries planned against an IVF index that had gone stale (a
    /// table write invalidated it) and silently ran flat-exact instead.
    pub ivf_stale_fallbacks: u64,
    /// Stale IVF indexes rebuilt in place under the
    /// `TDP_IVF_REBUILD_AFTER` policy.
    pub ivf_rebuilds: u64,
    /// Barrier stages (aggregate/join/sort/top-k/DISTINCT) fed a
    /// `(Batch, SelVec)` pair directly by a compiled chain, skipping the
    /// full gather.
    pub barriers_selection_fed: u64,
    /// Barrier stages that had a compiled chain upstream but consumed a
    /// gathered batch instead (the named reason lands in EXPLAIN).
    pub barriers_gathered: u64,
}

impl AccessPathCounters {
    pub fn note_morsels(&self, pruned: u64, scanned: u64) {
        self.morsels_pruned.fetch_add(pruned, Ordering::Relaxed);
        self.morsels_scanned.fetch_add(scanned, Ordering::Relaxed);
    }

    pub fn note_ann_query(&self) {
        self.ann_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// An IVF plan found its index stale at execution and fell back to
    /// the flat exact path.
    pub fn note_ivf_stale_fallback(&self) {
        self.ivf_stale_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// A stale IVF index was rebuilt in place by the
    /// `TDP_IVF_REBUILD_AFTER` policy before serving the query.
    pub fn note_ivf_rebuild(&self) {
        self.ivf_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// A barrier stage consumed a compiled chain's selection directly.
    pub fn note_barrier_selection_fed(&self) {
        self.barriers_selection_fed.fetch_add(1, Ordering::Relaxed);
    }

    /// A barrier stage below a compiled-chain candidate fell back to the
    /// gathered batch path.
    pub fn note_barrier_gathered(&self) {
        self.barriers_gathered.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> AccessPathStats {
        AccessPathStats {
            morsels_pruned: self.morsels_pruned.load(Ordering::Relaxed),
            morsels_scanned: self.morsels_scanned.load(Ordering::Relaxed),
            ann_queries: self.ann_queries.load(Ordering::Relaxed),
            ivf_stale_fallbacks: self.ivf_stale_fallbacks.load(Ordering::Relaxed),
            ivf_rebuilds: self.ivf_rebuilds.load(Ordering::Relaxed),
            barriers_selection_fed: self.barriers_selection_fed.load(Ordering::Relaxed),
            barriers_gathered: self.barriers_gathered.load(Ordering::Relaxed),
        }
    }

    /// Add another counter set's totals into this one (per-query →
    /// engine accumulation after a profiled run).
    pub fn absorb(&self, stats: AccessPathStats) {
        self.morsels_pruned
            .fetch_add(stats.morsels_pruned, Ordering::Relaxed);
        self.morsels_scanned
            .fetch_add(stats.morsels_scanned, Ordering::Relaxed);
        self.ann_queries
            .fetch_add(stats.ann_queries, Ordering::Relaxed);
        self.ivf_stale_fallbacks
            .fetch_add(stats.ivf_stale_fallbacks, Ordering::Relaxed);
        self.ivf_rebuilds
            .fetch_add(stats.ivf_rebuilds, Ordering::Relaxed);
        self.barriers_selection_fed
            .fetch_add(stats.barriers_selection_fed, Ordering::Relaxed);
        self.barriers_gathered
            .fetch_add(stats.barriers_gathered, Ordering::Relaxed);
    }
}

// ----------------------------------------------------------------------
// Chunk pruning
// ----------------------------------------------------------------------

/// A pruning bound: resolved at compile time for literals, at bind time
/// for parameter slots.
#[derive(Debug, Clone, PartialEq)]
pub enum PruneBound {
    Num(f64),
    Param(usize),
}

impl PruneBound {
    /// Resolve to the f32 value filter kernels compare against. `None`
    /// makes the owning predicate inert for this binding (unbound slot,
    /// non-numeric binding, NaN).
    fn resolve(&self, params: &ParamValues) -> Option<f32> {
        let v = match self {
            PruneBound::Num(v) => *v,
            PruneBound::Param(idx) => match params.get(*idx) {
                Some(ParamValue::Number(v)) => *v,
                _ => return None,
            },
        };
        let f = v as f32;
        (!f.is_nan()).then_some(f)
    }
}

/// One compiled conjunct: `column(slot) OP bound`, oriented so the
/// column is always on the left.
#[derive(Debug, Clone, PartialEq)]
pub enum PrunePredicate {
    Cmp {
        slot: usize,
        op: BinOp,
        bound: PruneBound,
    },
    In {
        slot: usize,
        list: Vec<PruneBound>,
    },
    /// A disjunction whose arms are all individually prunable ranges
    /// over the **same** column. The excluded chunk set is the
    /// intersection of the arms' exclusions — equivalently, the pruner
    /// keeps the union of the arms' surviving chunk ranges.
    Or {
        slot: usize,
        arms: Vec<PrunePredicate>,
    },
}

impl PrunePredicate {
    /// Whether chunk bounds `[min, max]` definitely contain **no** row
    /// passing this predicate under the current binding. Inert
    /// predicates (unresolvable bound) never prune.
    fn excludes(&self, min: f32, max: f32, params: &ParamValues) -> bool {
        match self {
            PrunePredicate::Cmp { op, bound, .. } => {
                let Some(b) = bound.resolve(params) else {
                    return false;
                };
                match op {
                    BinOp::Gt => max <= b,
                    BinOp::GtEq => max < b,
                    BinOp::Lt => min >= b,
                    BinOp::LtEq => min > b,
                    BinOp::Eq => b < min || b > max,
                    _ => false,
                }
            }
            PrunePredicate::In { list, .. } => list.iter().all(|bound| {
                let Some(b) = bound.resolve(params) else {
                    return false;
                };
                b < min || b > max
            }),
            // A row surviving *any* arm survives the OR, so the chunk is
            // excluded only when every arm excludes it.
            PrunePredicate::Or { arms, .. } => {
                arms.iter().all(|arm| arm.excludes(min, max, params))
            }
        }
    }

    fn slot(&self) -> usize {
        match self {
            PrunePredicate::Cmp { slot, .. }
            | PrunePredicate::In { slot, .. }
            | PrunePredicate::Or { slot, .. } => *slot,
        }
    }
}

/// The compiled chunk pruner a physical scan node carries: every
/// eligible conjunct of the leading filter, evaluated against zone maps
/// per morsel. Skipping is conjunct-wise sound: a morsel is skipped as
/// soon as *one* conjunct excludes its whole row range, because a row
/// must pass every conjunct to survive the filter.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkPruner {
    predicates: Vec<PrunePredicate>,
}

impl ChunkPruner {
    /// Compile the eligible conjuncts of `predicate`. `Err(reason)` when
    /// nothing qualifies — the reason lands on the EXPLAIN scan line.
    pub fn compile(predicate: &CompiledExpr) -> Result<ChunkPruner, &'static str> {
        let mut predicates = Vec::new();
        let mut or_ineligible = false;
        collect_conjuncts(predicate, &mut predicates, &mut or_ineligible);
        if predicates.is_empty() {
            Err(if or_ineligible {
                "or-arm-ineligible"
            } else {
                "no-eligible-conjunct"
            })
        } else {
            Ok(ChunkPruner { predicates })
        }
    }

    /// Number of compiled pruning predicates (EXPLAIN's
    /// `[zone-maps: N predicates]`).
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Per-morsel skip mask over `rows` rows split into `morsel_rows`
    /// morsels: `mask[i]` is true when morsel `i` cannot contain a
    /// surviving row. Missing stats (NaN chunks, stat-less columns,
    /// stale row counts) make the morsel unprunable, never wrong.
    pub fn skip_mask(
        &self,
        zone_maps: &TableZoneMaps,
        rows: usize,
        morsel_rows: usize,
        params: &ParamValues,
    ) -> Vec<bool> {
        let morsel_rows = morsel_rows.max(1);
        let morsels = rows.div_ceil(morsel_rows);
        if zone_maps.rows() != rows {
            // Stats describe a different table generation: scan all.
            return vec![false; morsels];
        }
        (0..morsels)
            .map(|i| {
                let start = i * morsel_rows;
                let end = (start + morsel_rows).min(rows);
                self.predicates.iter().any(|p| {
                    zone_maps
                        .range(p.slot(), start, end)
                        .is_some_and(|(min, max)| p.excludes(min, max, params))
                })
            })
            .collect()
    }
}

/// Recursively split on AND and harvest eligible conjuncts.
/// `or_ineligible` records that a disjunction was seen but could not be
/// compiled (an arm was ineligible or the arms mix columns) — it names
/// the full-scan reason when nothing else qualifies.
fn collect_conjuncts(expr: &CompiledExpr, out: &mut Vec<PrunePredicate>, or_ineligible: &mut bool) {
    match expr {
        CompiledExpr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            collect_conjuncts(left, out, or_ineligible);
            collect_conjuncts(right, out, or_ineligible);
        }
        CompiledExpr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => match compile_disjunction(left, right) {
            Some(p) => out.push(p),
            None => *or_ineligible = true,
        },
        CompiledExpr::Binary { op, left, right } => {
            if let Some(p) = compile_comparison(*op, left, right) {
                out.push(p);
            }
        }
        CompiledExpr::InList {
            expr,
            list,
            negated: false,
        } => {
            if let Some(p) = compile_in_list(expr, list) {
                out.push(p);
            }
        }
        _ => {}
    }
}

/// Compile `left OR right` into a single same-column
/// [`PrunePredicate::Or`]. Nested ORs flatten into one arm list; every
/// arm must itself be an eligible comparison or `IN` list, and all arms
/// must resolve to the same column slot.
fn compile_disjunction(left: &CompiledExpr, right: &CompiledExpr) -> Option<PrunePredicate> {
    let mut arms = Vec::new();
    collect_or_arms(left, &mut arms)?;
    collect_or_arms(right, &mut arms)?;
    let slot = arms.first()?.slot();
    if arms.iter().any(|arm| arm.slot() != slot) {
        return None;
    }
    Some(PrunePredicate::Or { slot, arms })
}

/// Flatten an OR tree into eligible leaf predicates. `None` as soon as
/// any leaf fails to compile — a partially-compiled OR would wrongly
/// widen the exclusion.
fn collect_or_arms(expr: &CompiledExpr, arms: &mut Vec<PrunePredicate>) -> Option<()> {
    match expr {
        CompiledExpr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => {
            collect_or_arms(left, arms)?;
            collect_or_arms(right, arms)
        }
        CompiledExpr::Binary { op, left, right } => {
            arms.push(compile_comparison(*op, left, right)?);
            Some(())
        }
        CompiledExpr::InList {
            expr,
            list,
            negated: false,
        } => {
            arms.push(compile_in_list(expr, list)?);
            Some(())
        }
        _ => None,
    }
}

fn compile_in_list(expr: &CompiledExpr, list: &[CompiledExpr]) -> Option<PrunePredicate> {
    let slot = slot_of(expr)?;
    let bounds: Option<Vec<PruneBound>> = list.iter().map(bound_of).collect();
    let list = bounds?;
    if list.is_empty() {
        return None;
    }
    Some(PrunePredicate::In { slot, list })
}

fn compile_comparison(
    op: BinOp,
    left: &CompiledExpr,
    right: &CompiledExpr,
) -> Option<PrunePredicate> {
    if !matches!(
        op,
        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq | BinOp::Eq
    ) {
        return None;
    }
    if let (Some(slot), Some(bound)) = (slot_of(left), bound_of(right)) {
        return Some(PrunePredicate::Cmp { slot, op, bound });
    }
    // Mirrored operand order: `10 < x` ≡ `x > 10`.
    if let (Some(bound), Some(slot)) = (bound_of(left), slot_of(right)) {
        let op = match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            BinOp::Eq => BinOp::Eq,
            _ => return None,
        };
        return Some(PrunePredicate::Cmp { slot, op, bound });
    }
    None
}

fn slot_of(expr: &CompiledExpr) -> Option<usize> {
    match expr {
        CompiledExpr::Column(ColumnRef::Slot { slot, .. }) => Some(*slot),
        _ => None,
    }
}

fn bound_of(expr: &CompiledExpr) -> Option<PruneBound> {
    match expr {
        CompiledExpr::Num(v) => Some(PruneBound::Num(*v)),
        CompiledExpr::Param { idx } => Some(PruneBound::Param(*idx)),
        _ => None,
    }
}

// ----------------------------------------------------------------------
// ANN access path
// ----------------------------------------------------------------------

/// How an `AnnTopK` node reaches its vectors, chosen at lower time from
/// the catalog's index registry and re-validated at execution (a stale
/// IVF plan silently degrades to the exact flat path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnPath {
    /// Exact brute-force scoring — the default, byte-identical to the
    /// scan+sort oracle.
    Flat,
    /// Approximate IVF probe with its declared trade-off.
    Ivf { nlist: usize, nprobe: usize },
}

impl std::fmt::Display for AnnPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnPath::Flat => write!(f, "flat exact"),
            AnnPath::Ivf { nlist, nprobe } => write!(f, "ivf nlist={nlist} nprobe={nprobe}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::ColumnRef;

    fn col(slot: usize) -> CompiledExpr {
        CompiledExpr::Column(ColumnRef::Slot {
            slot,
            name: format!("c{slot}"),
        })
    }

    fn num(v: f64) -> CompiledExpr {
        CompiledExpr::Num(v)
    }

    fn cmp(op: BinOp, l: CompiledExpr, r: CompiledExpr) -> CompiledExpr {
        CompiledExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn conjuncts_split_and_mirror() {
        let pred = cmp(
            BinOp::And,
            cmp(BinOp::Gt, col(0), num(10.0)),
            cmp(BinOp::Lt, num(5.0), col(1)),
        );
        let p = ChunkPruner::compile(&pred).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(
            p.predicates[1],
            PrunePredicate::Cmp {
                slot: 1,
                op: BinOp::Gt,
                bound: PruneBound::Num(5.0)
            },
            "mirrored literal-first comparison"
        );
    }

    #[test]
    fn ineligible_predicates_report_reason() {
        let pred = cmp(BinOp::Lt, col(0), col(1));
        assert_eq!(
            ChunkPruner::compile(&pred),
            Err("no-eligible-conjunct"),
            "column-column comparisons cannot use zone maps"
        );
    }

    #[test]
    fn same_column_disjunction_prunes_union_of_ranges() {
        use tdp_storage::{TableBuilder, TableZoneMaps};
        let t = TableBuilder::new()
            .col_f32("v", (0..10_000).map(|i| i as f32).collect())
            .build("t");
        let zm = TableZoneMaps::build(&t);
        // v < 100 OR v > 9000: the middle morsel is excluded by both
        // arms, the outer morsels each survive one arm.
        let pred = cmp(
            BinOp::Or,
            cmp(BinOp::Lt, col(0), num(100.0)),
            cmp(BinOp::Gt, col(0), num(9_000.0)),
        );
        let p = ChunkPruner::compile(&pred).unwrap();
        assert_eq!(p.len(), 1);
        let mask = p.skip_mask(&zm, 10_000, 4096, &ParamValues::new());
        assert_eq!(mask, vec![false, true, false]);
        // Nested OR arms flatten; IN lists qualify as arms.
        let pred = cmp(
            BinOp::Or,
            cmp(
                BinOp::Or,
                cmp(BinOp::Lt, col(0), num(50.0)),
                CompiledExpr::InList {
                    expr: Box::new(col(0)),
                    list: vec![num(60.0)],
                    negated: false,
                },
            ),
            cmp(BinOp::Gt, col(0), num(9_500.0)),
        );
        let p = ChunkPruner::compile(&pred).unwrap();
        let mask = p.skip_mask(&zm, 10_000, 4096, &ParamValues::new());
        assert_eq!(mask, vec![false, true, false]);
    }

    #[test]
    fn ineligible_or_arms_name_full_scan_reason() {
        // Arms over different columns cannot share one zone-map range.
        let mixed = cmp(
            BinOp::Or,
            cmp(BinOp::Lt, col(0), num(1.0)),
            cmp(BinOp::Gt, col(1), num(2.0)),
        );
        assert_eq!(ChunkPruner::compile(&mixed), Err("or-arm-ineligible"));
        // One ineligible arm poisons the whole disjunction.
        let partial = cmp(
            BinOp::Or,
            cmp(BinOp::Lt, col(0), num(1.0)),
            cmp(BinOp::Lt, col(0), col(1)),
        );
        assert_eq!(ChunkPruner::compile(&partial), Err("or-arm-ineligible"));
        // ...but an eligible AND sibling still compiles alongside it.
        let sibling = cmp(BinOp::And, partial, cmp(BinOp::Gt, col(0), num(3.0)));
        assert_eq!(ChunkPruner::compile(&sibling).unwrap().len(), 1);
    }

    #[test]
    fn skip_mask_prunes_out_of_range_morsels() {
        use tdp_storage::{TableBuilder, TableZoneMaps};
        let t = TableBuilder::new()
            .col_f32("v", (0..10_000).map(|i| i as f32).collect())
            .build("t");
        let zm = TableZoneMaps::build(&t);
        let p = ChunkPruner::compile(&cmp(BinOp::Gt, col(0), num(9_000.0))).unwrap();
        let mask = p.skip_mask(&zm, 10_000, 4096, &ParamValues::new());
        assert_eq!(mask, vec![true, true, false]);
        // Unbound parameter bound: predicate inert, nothing pruned.
        let p =
            ChunkPruner::compile(&cmp(BinOp::Gt, col(0), CompiledExpr::Param { idx: 0 })).unwrap();
        let mask = p.skip_mask(&zm, 10_000, 4096, &ParamValues::new());
        assert_eq!(mask, vec![false, false, false]);
    }

    #[test]
    fn stale_row_count_disables_pruning() {
        use tdp_storage::{TableBuilder, TableZoneMaps};
        let t = TableBuilder::new().col_f32("v", vec![1.0, 2.0]).build("t");
        let zm = TableZoneMaps::build(&t);
        let p = ChunkPruner::compile(&cmp(BinOp::Gt, col(0), num(100.0))).unwrap();
        assert_eq!(p.skip_mask(&zm, 5, 2, &ParamValues::new()), vec![false; 3]);
    }
}
