//! # tdp-exec
//!
//! The physical executor: relational operators lowered onto tensor kernels
//! (the TQP lowering the paper builds on).
//!
//! ## Architecture: logical → physical → kernels
//!
//! Execution is a three-stage pipeline, compiled **once** and run many
//! times — the "query compiled like a PyTorch model" contract:
//!
//! ```text
//!   SQL ── parse ──► ast::Query
//!       ── plan  ──► LogicalPlan          (tdp-sql: relational algebra)
//!       ── optimize► LogicalPlan          (rule fixpoint: folding, pushdown, fusion)
//!       ── lower ──► PhysicalPlan         (physical::lower — THE compile step)
//!                      │
//!          ┌───────────┴────────────┐
//!          ▼                        ▼
//!   exact::execute           diff::execute_diff
//!   (hard kernels)           (soft/differentiable kernels)
//! ```
//!
//! [`physical::lower`] walks the logical tree a single time, propagating
//! output **schemas** through every operator and resolving each column
//! reference to a **slot index** ([`physical::CompiledExpr`]). It also
//! resolves functions (session UDF vs. built-in kernel), lowers scalar
//! subqueries into nested physical plans, and type-checks what can be
//! checked statically (unknown columns/functions, UNION arity,
//! non-COUNT `*` aggregates). Both executors then consume the *same*
//! [`physical::PhysicalPlan`]; they diverge only in kernel choice:
//!
//! * **Exact** ([`exact`]) — filters are boolean masks, GROUP BY is
//!   sort-based over composite integer keys, joins are hash joins, ORDER BY
//!   is argsort, aggregation is segmented reduction. Probability-encoded
//!   inputs are decoded by argmax first, eliminating approximation error
//!   (paper §4, inference-time operator swap).
//! * **Soft/differentiable** ([`soft`], [`diff`]) — the trainable-query
//!   path: GROUP BY + COUNT over PE columns becomes an (iterated
//!   Khatri-Rao) product followed by a column sum — only additions and
//!   multiplications, hence end-to-end differentiable; predicates become
//!   sigmoid-weighted row weights threaded through downstream aggregates.
//!
//! Batches ([`Batch`]) carry an O(1) name→slot map, but the hot path never
//! consults it: compiled expressions address columns by slot. Name lookup
//! remains only where schemas are dynamic — downstream of table-valued
//! functions, whose output relation is whatever the TVF builds.
//!
//! What should hang off this layer next: morsel-driven parallel operators
//! (a physical plan is device- and thread-agnostic, so a scheduler can
//! partition batches across cores), cross-query kernel reuse keyed by
//! [`physical::PhysicalPlan::fingerprint`], and device placement decisions
//! made per physical node instead of per session.
//!
//! UDFs and table-valued functions ([`udf`]) execute *inside* the tensor
//! runtime: they receive encoded tensors and return encoded tensors (or
//! differentiable columns in trainable mode), so there is no context-switch
//! cost between SQL operators and ML transforms.

pub mod batch;
pub mod diff;
pub mod error;
pub mod exact;
pub mod expr;
pub mod params;
pub mod physical;
pub mod profile;
pub mod soft;
pub mod udf;

pub use batch::{Batch, ColumnData, DiffColumn};
pub use diff::execute_diff;
pub use error::ExecError;
pub use exact::execute;
pub use params::{ParamValue, ParamValues};
pub use physical::{lower, CompiledExpr, PhysicalPlan};
pub use profile::{execute_profiled, OpTrace, QueryProfile};
pub use udf::{ArgValue, ExecContext, ScalarUdf, TableFunction, UdfRegistry};
