//! # tdp-exec
//!
//! The physical executor: relational operators lowered onto tensor kernels
//! (the TQP lowering the paper builds on), in two flavours:
//!
//! * **Exact** ([`exact`]) — filters are boolean masks, GROUP BY is
//!   sort-based over composite integer keys, joins are hash joins, ORDER BY
//!   is argsort, aggregation is segmented reduction. Probability-encoded
//!   inputs are decoded by argmax first, eliminating approximation error
//!   (paper §4, inference-time operator swap).
//! * **Soft/differentiable** ([`soft`], [`diff`]) — the trainable-query
//!   path: GROUP BY + COUNT over PE columns becomes an (iterated
//!   Khatri-Rao) product followed by a column sum — only additions and
//!   multiplications, hence end-to-end differentiable; predicates become
//!   sigmoid-weighted row weights threaded through downstream aggregates.
//!
//! UDFs and table-valued functions ([`udf`]) execute *inside* the tensor
//! runtime: they receive encoded tensors and return encoded tensors (or
//! differentiable columns in trainable mode), so there is no context-switch
//! cost between SQL operators and ML transforms.

pub mod batch;
pub mod diff;
pub mod error;
pub mod exact;
pub mod expr;
pub mod profile;
pub mod soft;
pub mod udf;

pub use batch::{Batch, ColumnData, DiffColumn};
pub use diff::execute_diff;
pub use error::ExecError;
pub use exact::execute;
pub use profile::{execute_profiled, OpTrace, QueryProfile};
pub use udf::{ArgValue, ExecContext, ScalarUdf, TableFunction, UdfRegistry};
