//! # tdp-exec
//!
//! The physical executor: relational operators lowered onto tensor kernels
//! (the TQP lowering the paper builds on), scheduled morsel-at-a-time
//! across a worker pool.
//!
//! ## Architecture: logical → physical → pipelines → kernels
//!
//! Execution is compiled **once** and run many times — the "query
//! compiled like a PyTorch model" contract:
//!
//! ```text
//!   SQL ── parse ──► ast::Query
//!       ── plan  ──► LogicalPlan          (tdp-sql: relational algebra)
//!       ── optimize► LogicalPlan          (rule fixpoint: folding, pushdown, fusion)
//!       ── lower ──► PhysicalPlan         (physical::lower — THE compile step)
//!       ── decompose► PipeNode            (pipeline::decompose — fused chains + barriers)
//!                      │
//!          ┌───────────┴────────────┐
//!          ▼                        ▼
//!   pipeline::execute        diff::execute_diff
//!   (morsel scheduler,       (single-threaded,
//!    hard kernels)            soft kernels)
//! ```
//!
//! [`physical::lower`] walks the logical tree a single time, propagating
//! output **schemas** through every operator and resolving each column
//! reference to a **slot index** ([`physical::CompiledExpr`]). It also
//! resolves functions (session UDF vs. built-in kernel), lowers scalar
//! subqueries into nested physical plans, and type-checks what can be
//! checked statically.
//!
//! ## Morsel-driven execution
//!
//! [`pipeline::decompose`] breaks the physical plan at **barriers**
//! (aggregate, sort, join build, window, DISTINCT, LIMIT) and fuses the
//! barrier-free filter→project chains between them into per-morsel
//! programs. The scheduler ([`morsel`]) partitions each pipeline's input
//! into ~64k-row morsels ([`pipeline::DEFAULT_MORSEL_ROWS`]) and runs
//! the fused chain across a worker pool ([`ExecContext::threads`]),
//! claiming morsels work-stealing-style from a shared counter:
//!
//! * filter/project pipelines reassemble with an **order-preserving,
//!   encoding-preserving concat** ([`Batch::concat`]);
//! * aggregation folds every morsel into per-group **partial states**
//!   (counts, f32 sums, f64 power sums, min/max) merged by a combine
//!   step that walks morsels in index order;
//! * LIMIT pipelines **early-exit**: once the contiguous output prefix
//!   covers the requested rows, unclaimed morsels are never processed.
//!
//! Determinism is the contract: morsel boundaries depend only on
//! [`ExecContext::morsel_rows`], so every thread count (including 1)
//! produces identical batches. Chains that cannot leave the session
//! thread — session UDFs (whose parameters ride the `Rc`-based autodiff
//! tape), scalar subqueries, tensor-valued bindings — fall back to the
//! equally-deterministic whole-batch path.
//!
//! The kernels themselves live in [`exact`]: filters are boolean masks,
//! GROUP BY is sort-based over composite integer keys, joins are hash
//! joins, ORDER BY is argsort, aggregation is segmented reduction.
//! Probability-encoded inputs are decoded by argmax first (paper §4,
//! inference-time operator swap). The trainable path ([`soft`], [`diff`])
//! consumes the *same* pipeline decomposition single-threaded: GROUP BY +
//! COUNT over PE columns becomes an (iterated Khatri-Rao) product
//! followed by a column sum; predicates become sigmoid-weighted row
//! weights threaded through downstream aggregates.
//!
//! Batches ([`Batch`]) carry an O(1) name→slot map, but the hot path never
//! consults it: compiled expressions address columns by slot. Name lookup
//! remains only where schemas are dynamic — downstream of table-valued
//! functions that do *not* declare an output schema; a TVF whose
//! [`FunctionSpec`] declares one slot-resolves like a base table (and the
//! executor checks the actual output against the declaration).
//!
//! UDFs and table-valued functions ([`udf`]) execute *inside* the tensor
//! runtime: they receive encoded tensors and return encoded tensors (or
//! differentiable columns in trainable mode), so there is no context-switch
//! cost between SQL operators and ML transforms. Each declares a
//! [`FunctionSpec`] — argument types (validated at prepare time),
//! volatility (Immutable calls over literals constant-fold), a
//! `parallel_safe` capability (chains containing such UDFs morselize
//! across the worker pool) and, for TVFs, the output schema and allowed
//! positions. Legacy `name()`-only implementations keep the historical
//! fully-dynamic behaviour via defaulted methods.
//!
//! Barriers are staged rather than streamed: joins build per-partition
//! hash tables after a key-hash **exchange** ([`ExecContext::partitions`]
//! buckets, independent of the thread count) and probe morsels in
//! parallel; ORDER BY / TopK sort per-morsel runs merged k-way under the
//! stable `(keys…, input position)` order; DISTINCT dedups exchanged
//! partitions shared-nothing. Every staged path is byte-identical to the
//! sequential kernels in [`exact`], which remain the fallback (and the
//! oracle the equivalence tests compare against).
//!
//! Fused filter→project chains additionally compile to **chain
//! kernels** ([`kernel`]): selection-vector programs monomorphised over
//! the concrete column encodings, cached session-wide under the chain's
//! literal-invariant fingerprint with epoch invalidation. The
//! interpreter stays on as the byte-identity oracle — any chain the
//! compiler cannot reproduce exactly (UDFs, subqueries, tensor params)
//! runs interpreted with a named reason visible in EXPLAIN and
//! profiles.
//!
//! What should hang off this layer next: NUMA-/device-aware morsel
//! placement (a pipeline already knows its scan), cross-query kernel
//! reuse for *barrier* operators keyed by
//! [`physical::PhysicalPlan::fingerprint`] (a join whose build input
//! has no `Param` slots is binding-independent), and spilling exchanges
//! for out-of-core builds.

pub mod access;
pub mod batch;
pub mod diff;
pub mod error;
pub mod exact;
pub mod expr;
pub mod kernel;
pub(crate) mod memory;
pub mod morsel;
pub mod params;
pub mod physical;
pub mod pipeline;
pub mod profile;
pub mod soft;
pub mod udf;

pub use access::{AccessPathCounters, AccessPathStats, AnnPath, ChunkPruner};
pub use batch::{Batch, ColumnData, DiffColumn};
pub use diff::execute_diff;
pub use error::ExecError;
pub use exact::execute;
pub use kernel::{ChainKernelStats, KernelCache};
pub use params::{ParamValue, ParamValues};
pub use physical::{
    lower, param_arg_constraints, validate_function_args, validate_param_constraints, CompiledExpr,
    ParamConstraint, PhysicalPlan, StaticKind,
};
pub use pipeline::{decompose, MorselOp, PipeNode, DEFAULT_MORSEL_ROWS, DEFAULT_PARTITIONS};
pub use profile::{execute_profiled, OpTrace, QueryProfile};
pub use udf::{
    fold_immutable_udfs, ArgType, ArgValue, ExecContext, FunctionSpec, OutputSchema, ScalarUdf,
    SharedUdfRegistry, TableFunction, UdfRegistry, Volatility,
};
