//! UDF / table-valued-function registry and execution context.
//!
//! The paper's key design point (§3): functions are not an escape hatch to
//! an external tool — they are tensor programs registered into the engine,
//! executed on the same runtime as the relational operators. A scalar UDF
//! maps argument columns to one output column; a table-valued function maps
//! a relation (or argument columns) to a relation. Both may expose
//! trainable parameters, which is what makes queries trainable.

use std::collections::HashMap;
use std::sync::Arc;

use tdp_autodiff::Var;
use tdp_encoding::EncodedTensor;
use tdp_storage::Catalog;
use tdp_tensor::Device;

use crate::batch::{Batch, DiffColumn};
use crate::error::ExecError;

/// An argument handed to a UDF: an evaluated column or a SQL literal.
#[derive(Clone, Debug)]
pub enum ArgValue {
    Column(EncodedTensor),
    /// Differentiable column argument (trainable mode).
    DiffColumn(DiffColumn),
    Number(f64),
    Str(String),
    Bool(bool),
}

impl ArgValue {
    pub fn as_str(&self) -> Result<&str, ExecError> {
        match self {
            ArgValue::Str(s) => Ok(s),
            other => Err(ExecError::TypeMismatch(format!(
                "expected string argument, got {other:?}"
            ))),
        }
    }

    pub fn as_number(&self) -> Result<f64, ExecError> {
        match self {
            ArgValue::Number(n) => Ok(*n),
            other => Err(ExecError::TypeMismatch(format!(
                "expected numeric argument, got {other:?}"
            ))),
        }
    }

    pub fn as_column(&self) -> Result<&EncodedTensor, ExecError> {
        match self {
            ArgValue::Column(c) => Ok(c),
            other => Err(ExecError::TypeMismatch(format!(
                "expected column argument, got {other:?}"
            ))),
        }
    }
}

/// A scalar user-defined function: argument columns/literals in, one
/// encoded column out. UDFs may hold `Var` parameters (which are `Rc`-based),
/// so sessions — like a PyTorch process — are single-threaded; kernel-level
/// parallelism comes from the device, not from concurrent queries. Implement [`ScalarUdf::invoke_diff`] to make the
/// UDF usable inside trainable queries.
pub trait ScalarUdf {
    fn name(&self) -> &str;

    /// Exact evaluation.
    fn invoke(&self, args: &[ArgValue], ctx: &ExecContext) -> Result<EncodedTensor, ExecError>;

    /// Differentiable evaluation; defaults to "not differentiable".
    fn invoke_diff(&self, _args: &[ArgValue], _ctx: &ExecContext) -> Result<DiffColumn, ExecError> {
        Err(ExecError::NotDifferentiable(format!(
            "scalar UDF '{}' has no differentiable implementation",
            self.name()
        )))
    }

    /// Trainable parameters embedded in the UDF.
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// A table-valued function. In FROM position it receives the whole input
/// relation ([`TableFunction::invoke_table`]); in projection position it
/// receives evaluated argument columns ([`TableFunction::invoke_cols`]).
pub trait TableFunction {
    fn name(&self) -> &str;

    /// `FROM tvf(relation)` — exact evaluation.
    fn invoke_table(&self, _input: &Batch, _ctx: &ExecContext) -> Result<Batch, ExecError> {
        Err(ExecError::Unsupported(format!(
            "TVF '{}' cannot be used in FROM position",
            self.name()
        )))
    }

    /// `FROM tvf(relation)` — differentiable evaluation. Defaults to the
    /// exact path (a TVF without parameters is trivially "differentiable":
    /// gradients simply stop at its constant outputs).
    fn invoke_table_diff(&self, input: &Batch, ctx: &ExecContext) -> Result<Batch, ExecError> {
        self.invoke_table(input, ctx)
    }

    /// `SELECT tvf(args) FROM …` — exact evaluation over argument columns.
    fn invoke_cols(&self, _args: &[ArgValue], _ctx: &ExecContext) -> Result<Batch, ExecError> {
        Err(ExecError::Unsupported(format!(
            "TVF '{}' cannot be used in projection position",
            self.name()
        )))
    }

    /// Trainable parameters embedded in the TVF.
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Function namespace of a session.
#[derive(Default, Clone)]
pub struct UdfRegistry {
    scalars: HashMap<String, Arc<dyn ScalarUdf>>,
    tables: HashMap<String, Arc<dyn TableFunction>>,
}

impl UdfRegistry {
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Register a scalar UDF (replaces an existing one of the same name).
    pub fn register_scalar(&mut self, udf: Arc<dyn ScalarUdf>) {
        self.scalars.insert(Self::key(udf.name()), udf);
    }

    /// Register a table-valued function.
    pub fn register_table_fn(&mut self, tvf: Arc<dyn TableFunction>) {
        self.tables.insert(Self::key(tvf.name()), tvf);
    }

    pub fn scalar(&self, name: &str) -> Result<&Arc<dyn ScalarUdf>, ExecError> {
        self.scalars
            .get(&Self::key(name))
            .ok_or_else(|| ExecError::UnknownFunction(name.to_owned()))
    }

    pub fn table_fn(&self, name: &str) -> Result<&Arc<dyn TableFunction>, ExecError> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| ExecError::UnknownFunction(name.to_owned()))
    }

    pub fn is_table_fn(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    pub fn is_scalar(&self, name: &str) -> bool {
        self.scalars.contains_key(&Self::key(name))
    }

    /// All parameters of all registered functions (the parameter surface a
    /// compiled query can train).
    pub fn all_parameters(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for udf in self.scalars.values() {
            out.extend(udf.parameters());
        }
        for tvf in self.tables.values() {
            out.extend(tvf.parameters());
        }
        out
    }
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s: Vec<&String> = self.scalars.keys().collect();
        let mut t: Vec<&String> = self.tables.keys().collect();
        s.sort();
        t.sort();
        write!(f, "UdfRegistry(scalars={s:?}, tvfs={t:?})")
    }
}

/// Everything operators need at run time.
pub struct ExecContext<'a> {
    pub catalog: &'a Catalog,
    pub udfs: &'a UdfRegistry,
    pub device: Device,
    /// Differentiable (trainable-query) lowering.
    pub trainable: bool,
    /// Temperature of relaxed predicates: `σ((score - θ) / temperature)`.
    pub temperature: f32,
    /// Bound statement parameters: `CompiledExpr::Param { idx }` resolves
    /// to slot `idx` here. Empty for parameter-free plans.
    pub params: crate::params::ParamValues,
    /// Worker threads available to the morsel scheduler (1 = run every
    /// morsel on the calling thread). Parallelism never changes results:
    /// morsel boundaries depend only on `morsel_rows`, so any thread
    /// count produces identical batches.
    pub threads: usize,
    /// Rows per morsel for the scheduler's input partitioning.
    pub morsel_rows: usize,
}

impl<'a> ExecContext<'a> {
    pub fn new(catalog: &'a Catalog, udfs: &'a UdfRegistry) -> ExecContext<'a> {
        ExecContext {
            catalog,
            udfs,
            device: Device::Cpu,
            trainable: false,
            temperature: 0.1,
            params: crate::params::ParamValues::new(),
            threads: 1,
            morsel_rows: crate::pipeline::DEFAULT_MORSEL_ROWS,
        }
    }

    /// Configure the morsel scheduler (threads are clamped to ≥ 1, the
    /// morsel size to ≥ 1 row).
    pub fn with_scheduler(mut self, threads: usize, morsel_rows: usize) -> ExecContext<'a> {
        self.threads = threads.max(1);
        self.morsel_rows = morsel_rows.max(1);
        self
    }

    pub fn with_device(mut self, device: Device) -> ExecContext<'a> {
        self.device = device;
        self
    }

    pub fn with_trainable(mut self, trainable: bool) -> ExecContext<'a> {
        self.trainable = trainable;
        self
    }

    pub fn with_params(mut self, params: crate::params::ParamValues) -> ExecContext<'a> {
        self.params = params;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_tensor::Tensor;

    struct Doubler;
    impl ScalarUdf for Doubler {
        fn name(&self) -> &str {
            "double_it"
        }
        fn invoke(
            &self,
            args: &[ArgValue],
            _ctx: &ExecContext,
        ) -> Result<EncodedTensor, ExecError> {
            let col = args[0].as_column()?.decode_f32();
            Ok(EncodedTensor::F32(col.mul_scalar(2.0)))
        }
    }

    struct NopTvf;
    impl TableFunction for NopTvf {
        fn name(&self) -> &str {
            "nop"
        }
        fn invoke_table(&self, input: &Batch, _ctx: &ExecContext) -> Result<Batch, ExecError> {
            Ok(input.clone())
        }
    }

    #[test]
    fn registry_lookup_case_insensitive() {
        let mut reg = UdfRegistry::new();
        reg.register_scalar(Arc::new(Doubler));
        reg.register_table_fn(Arc::new(NopTvf));
        assert!(reg.scalar("DOUBLE_IT").is_ok());
        assert!(reg.is_table_fn("NOP"));
        assert!(!reg.is_table_fn("double_it"));
        assert!(matches!(
            reg.scalar("missing"),
            Err(ExecError::UnknownFunction(_))
        ));
    }

    #[test]
    fn scalar_udf_invocation() {
        let mut reg = UdfRegistry::new();
        reg.register_scalar(Arc::new(Doubler));
        let catalog = Catalog::new();
        let ctx = ExecContext::new(&catalog, &reg);
        let col = ArgValue::Column(EncodedTensor::F32(Tensor::from_vec(
            vec![1.0f32, 2.5],
            &[2],
        )));
        let out = reg
            .scalar("double_it")
            .unwrap()
            .invoke(&[col], &ctx)
            .unwrap();
        assert_eq!(out.decode_f32().to_vec(), vec![2.0, 5.0]);
    }

    #[test]
    fn default_diff_path_errors() {
        let catalog = Catalog::new();
        let reg = UdfRegistry::new();
        let ctx = ExecContext::new(&catalog, &reg);
        let err = Doubler.invoke_diff(&[], &ctx).unwrap_err();
        assert!(matches!(err, ExecError::NotDifferentiable(_)));
    }

    #[test]
    fn arg_value_coercions() {
        assert_eq!(ArgValue::Str("x".into()).as_str().unwrap(), "x");
        assert_eq!(ArgValue::Number(2.5).as_number().unwrap(), 2.5);
        assert!(ArgValue::Number(1.0).as_str().is_err());
        assert!(ArgValue::Str("s".into()).as_column().is_err());
    }
}
