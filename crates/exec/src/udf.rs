//! UDF / table-valued-function registry and execution context.
//!
//! The paper's key design point (§3): functions are not an escape hatch to
//! an external tool — they are tensor programs registered into the engine,
//! executed on the same runtime as the relational operators. A scalar UDF
//! maps argument columns to one output column; a table-valued function maps
//! a relation (or argument columns) to a relation. Both may expose
//! trainable parameters, which is what makes queries trainable.

use std::collections::HashMap;
use std::sync::Arc;

use tdp_autodiff::Var;
use tdp_encoding::EncodedTensor;
use tdp_storage::Catalog;
use tdp_tensor::Device;

use crate::batch::{Batch, DiffColumn};
use crate::error::ExecError;

// ----------------------------------------------------------------------
// Declared function signatures
// ----------------------------------------------------------------------

/// Declared type of one function argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgType {
    /// An evaluated column (any encoding, including tensor columns).
    Column,
    /// A scalar number literal / parameter.
    Number,
    /// A string literal / parameter.
    Str,
    /// A boolean literal / parameter.
    Bool,
    /// No constraint.
    Any,
}

impl ArgType {
    pub fn describe(self) -> &'static str {
        match self {
            ArgType::Column => "column",
            ArgType::Number => "number",
            ArgType::Str => "string",
            ArgType::Bool => "boolean",
            ArgType::Any => "any",
        }
    }
}

/// How a function's output relates to its inputs — what the optimizer may
/// assume when it sees a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Volatility {
    /// Same arguments always produce the same result: calls over literal
    /// arguments are constant-folded at prepare time (before literal
    /// auto-parameterisation, so the folded value shares cache entries).
    Immutable,
    /// Stable within one execution but not across registrations (e.g. a
    /// model whose weights an optimizer updates between queries).
    Stable,
    /// Never foldable.
    Volatile,
}

/// A table-valued function's declared output relation.
#[derive(Debug, Clone)]
pub enum OutputSchema {
    /// Unknown until the function runs — today's legacy behaviour:
    /// downstream references resolve by name, per batch.
    Dynamic,
    /// Fixed output column names, known at compile time: downstream
    /// expressions slot-resolve through the TVF and EXPLAIN renders the
    /// schema. The engine checks the actual output against the
    /// declaration at run time, so a drifting implementation fails
    /// loudly instead of silently feeding wrong slots.
    Declared(Vec<String>),
    /// Derived from the input schema at compile time (e.g. a
    /// column-preserving transform). Receives the input's column names;
    /// returning `None` degrades to [`OutputSchema::Dynamic`].
    Derive(fn(&[String]) -> Option<Vec<String>>),
}

impl PartialEq for OutputSchema {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (OutputSchema::Dynamic, OutputSchema::Dynamic) => true,
            (OutputSchema::Declared(a), OutputSchema::Declared(b)) => a == b,
            (OutputSchema::Derive(a), OutputSchema::Derive(b)) => std::ptr::fn_addr_eq(*a, *b),
            _ => false,
        }
    }
}

/// The declared signature of a [`ScalarUdf`] or [`TableFunction`]: what
/// the compiler is allowed to know about a function without running it.
///
/// Every function exposes one through the defaulted `spec()` trait
/// method; the default ([`FunctionSpec::dynamic`]) declares nothing and
/// preserves the historical fully-dynamic behaviour (arity and types
/// checked at run time, output schema unknown, session-thread-bound).
/// Declaring more lets every layer do more at compile time:
///
/// * `args` — `prepare()` validates arity and argument types and reports
///   a [`crate::ExecError::Signature`] before anything executes;
/// * `volatility` — [`Volatility::Immutable`] calls over literal
///   arguments are folded into constants at prepare time;
/// * `parallel_safe` — chains containing the UDF run through the morsel
///   scheduler's worker pool instead of falling back to the sequential
///   whole-batch path (requires registration through
///   [`UdfRegistry::register_scalar_parallel`], which demands
///   `Send + Sync` proof from the type system);
/// * `output` — downstream expressions slot-resolve through the TVF's
///   declared relation instead of falling back to by-name lookup;
/// * `from_position` / `projection_position` — misuse (`FROM tvf(...)`
///   on a projection-only TVF and vice versa) is rejected at prepare
///   time with an error naming the function and its allowed position.
///
/// # Implementing a function
///
/// A stateless, parallel-safe scalar UDF with a declared signature:
///
/// ```
/// use std::sync::Arc;
/// use tdp_encoding::EncodedTensor;
/// use tdp_exec::udf::{
///     ArgType, ArgValue, ExecContext, FunctionSpec, ScalarUdf, UdfRegistry, Volatility,
/// };
/// use tdp_exec::ExecError;
///
/// /// `scale(column, factor)` — multiply a column by a scalar.
/// struct Scale;
///
/// impl ScalarUdf for Scale {
///     fn name(&self) -> &str {
///         "scale"
///     }
///     fn spec(&self) -> FunctionSpec {
///         FunctionSpec::scalar("scale", vec![ArgType::Column, ArgType::Number])
///             .volatility(Volatility::Immutable)
///             .parallel_safe(true)
///     }
///     fn invoke(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<EncodedTensor, ExecError> {
///         let col = args[0].as_column()?.decode_f32();
///         let k = args[1].as_number()? as f32;
///         Ok(EncodedTensor::F32(col.mul_scalar(k)))
///     }
/// }
///
/// let mut registry = UdfRegistry::new();
/// // `Scale` is `Send + Sync`, so it may cross worker threads:
/// registry.register_scalar_parallel(Arc::new(Scale));
/// assert!(registry.is_parallel_safe_scalar("scale"));
/// ```
///
/// A schema-declaring table-valued function. A *trainable* function —
/// one holding [`Var`] parameters, which ride the `Rc`-based autodiff
/// tape — is registered through the plain [`UdfRegistry::register_table_fn`]
/// / [`UdfRegistry::register_scalar`] path and stays session-thread-bound
/// (`parallel_safe` must stay `false`); a stateless TVF like this one
/// may declare everything:
///
/// ```
/// use tdp_exec::udf::{FunctionSpec, TableFunction, ExecContext};
/// use tdp_exec::{Batch, ExecError};
///
/// /// `widths(rel)` — emits a declared two-column relation.
/// struct Widths;
///
/// impl TableFunction for Widths {
///     fn name(&self) -> &str {
///         "widths"
///     }
///     fn spec(&self) -> FunctionSpec {
///         FunctionSpec::dynamic("widths")
///             .returns(vec!["Item".into(), "Width".into()])
///             .from_only() // `FROM widths(t)`, not `SELECT widths(...)`
///     }
///     fn invoke_table(&self, input: &Batch, _ctx: &ExecContext) -> Result<Batch, ExecError> {
///         # let _ = input;
///         // ... build a batch whose columns are exactly [Item, Width] ...
///         # unimplemented!()
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSpec {
    /// Function name (matches `name()`).
    pub name: String,
    /// Declared argument types; `None` leaves arity and types unchecked
    /// until run time (the legacy dynamic behaviour).
    pub args: Option<Vec<ArgType>>,
    pub volatility: Volatility,
    /// Semantic promise that `invoke` is stateless and thread-safe. Only
    /// effective together with [`UdfRegistry::register_scalar_parallel`],
    /// which supplies the `Send + Sync` proof; `Var`-holding (trainable)
    /// functions cannot make either claim and stay session-thread-bound.
    pub parallel_safe: bool,
    /// Output relation of a table-valued function (ignored for scalars).
    pub output: OutputSchema,
    /// Whether the TVF may appear in FROM position (`FROM tvf(rel)`).
    pub from_position: bool,
    /// Whether the TVF may appear in projection position
    /// (`SELECT tvf(args) FROM …`).
    pub projection_position: bool,
}

impl FunctionSpec {
    /// The fully-dynamic signature every legacy implementation gets by
    /// default: nothing declared, everything checked at run time.
    pub fn dynamic(name: &str) -> FunctionSpec {
        FunctionSpec {
            name: name.to_owned(),
            args: None,
            volatility: Volatility::Volatile,
            parallel_safe: false,
            output: OutputSchema::Dynamic,
            from_position: true,
            projection_position: true,
        }
    }

    /// A scalar signature with declared argument types.
    pub fn scalar(name: &str, args: Vec<ArgType>) -> FunctionSpec {
        FunctionSpec {
            args: Some(args),
            ..FunctionSpec::dynamic(name)
        }
    }

    /// Declare argument types (arity + types checked at prepare time).
    pub fn with_args(mut self, args: Vec<ArgType>) -> FunctionSpec {
        self.args = Some(args);
        self
    }

    pub fn volatility(mut self, v: Volatility) -> FunctionSpec {
        self.volatility = v;
        self
    }

    pub fn parallel_safe(mut self, safe: bool) -> FunctionSpec {
        self.parallel_safe = safe;
        self
    }

    /// Declare a fixed TVF output schema.
    pub fn returns(mut self, columns: Vec<String>) -> FunctionSpec {
        self.output = OutputSchema::Declared(columns);
        self
    }

    /// Declare a TVF output schema derived from the input schema.
    pub fn returns_derived(mut self, derive: fn(&[String]) -> Option<Vec<String>>) -> FunctionSpec {
        self.output = OutputSchema::Derive(derive);
        self
    }

    /// Restrict a TVF to FROM position.
    pub fn from_only(mut self) -> FunctionSpec {
        self.from_position = true;
        self.projection_position = false;
        self
    }

    /// Restrict a TVF to projection position.
    pub fn projection_only(mut self) -> FunctionSpec {
        self.from_position = false;
        self.projection_position = true;
        self
    }

    /// Resolve the declared output schema against a (possibly unknown)
    /// input schema. `None` means dynamic — resolve by name at run time.
    pub fn output_schema(&self, input: Option<&[String]>) -> Option<Vec<String>> {
        match &self.output {
            OutputSchema::Dynamic => None,
            OutputSchema::Declared(names) => Some(names.clone()),
            OutputSchema::Derive(f) => input.and_then(*f),
        }
    }
}

/// An argument handed to a UDF: an evaluated column or a SQL literal.
#[derive(Clone, Debug)]
pub enum ArgValue {
    Column(EncodedTensor),
    /// Differentiable column argument (trainable mode).
    DiffColumn(DiffColumn),
    Number(f64),
    Str(String),
    Bool(bool),
}

impl ArgValue {
    pub fn as_str(&self) -> Result<&str, ExecError> {
        match self {
            ArgValue::Str(s) => Ok(s),
            other => Err(ExecError::TypeMismatch(format!(
                "expected string argument, got {other:?}"
            ))),
        }
    }

    pub fn as_number(&self) -> Result<f64, ExecError> {
        match self {
            ArgValue::Number(n) => Ok(*n),
            other => Err(ExecError::TypeMismatch(format!(
                "expected numeric argument, got {other:?}"
            ))),
        }
    }

    pub fn as_column(&self) -> Result<&EncodedTensor, ExecError> {
        match self {
            ArgValue::Column(c) => Ok(c),
            other => Err(ExecError::TypeMismatch(format!(
                "expected column argument, got {other:?}"
            ))),
        }
    }
}

/// A scalar user-defined function: argument columns/literals in, one
/// encoded column out. UDFs may hold `Var` parameters (which are `Rc`-based),
/// so sessions — like a PyTorch process — are single-threaded; kernel-level
/// parallelism comes from the device, not from concurrent queries. Implement [`ScalarUdf::invoke_diff`] to make the
/// UDF usable inside trainable queries.
pub trait ScalarUdf {
    fn name(&self) -> &str;

    /// Declared signature. The default declares nothing — arity and
    /// types stay run-time checked, the call is volatile, and chains
    /// containing it fall back to the sequential path. Override to opt
    /// into compile-time validation, constant folding and parallel
    /// scheduling (see [`FunctionSpec`]).
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::dynamic(self.name())
    }

    /// Exact evaluation.
    fn invoke(&self, args: &[ArgValue], ctx: &ExecContext) -> Result<EncodedTensor, ExecError>;

    /// Differentiable evaluation; defaults to "not differentiable".
    fn invoke_diff(&self, _args: &[ArgValue], _ctx: &ExecContext) -> Result<DiffColumn, ExecError> {
        Err(ExecError::NotDifferentiable(format!(
            "scalar UDF '{}' has no differentiable implementation",
            self.name()
        )))
    }

    /// Trainable parameters embedded in the UDF.
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// A table-valued function. In FROM position it receives the whole input
/// relation ([`TableFunction::invoke_table`]); in projection position it
/// receives evaluated argument columns ([`TableFunction::invoke_cols`]).
pub trait TableFunction {
    fn name(&self) -> &str;

    /// Declared signature (see [`FunctionSpec`]). The default declares
    /// nothing: both positions allowed, output schema dynamic. Override
    /// to declare the output relation (downstream references then
    /// slot-resolve at compile time) and the allowed positions (misuse
    /// is rejected at prepare time instead of mid-execution).
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::dynamic(self.name())
    }

    /// `FROM tvf(relation)` — exact evaluation.
    fn invoke_table(&self, _input: &Batch, _ctx: &ExecContext) -> Result<Batch, ExecError> {
        Err(ExecError::Unsupported(format!(
            "TVF '{}' cannot be used in FROM position",
            self.name()
        )))
    }

    /// `FROM tvf(relation)` — differentiable evaluation. Defaults to the
    /// exact path (a TVF without parameters is trivially "differentiable":
    /// gradients simply stop at its constant outputs).
    fn invoke_table_diff(&self, input: &Batch, ctx: &ExecContext) -> Result<Batch, ExecError> {
        self.invoke_table(input, ctx)
    }

    /// `SELECT tvf(args) FROM …` — exact evaluation over argument columns.
    fn invoke_cols(&self, _args: &[ArgValue], _ctx: &ExecContext) -> Result<Batch, ExecError> {
        Err(ExecError::Unsupported(format!(
            "TVF '{}' cannot be used in projection position",
            self.name()
        )))
    }

    /// Trainable parameters embedded in the TVF.
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// The `Send + Sync` subset of a registry's scalar functions — what the
/// morsel scheduler may hand to worker threads.
pub(crate) type SharedScalars = HashMap<String, Arc<dyn ScalarUdf + Send + Sync>>;

/// Engine-level registry of `Send + Sync` scalar functions, shared by
/// every session of a multi-session engine.
///
/// Unlike [`UdfRegistry`] — whose `Arc<dyn ScalarUdf>` entries may wrap
/// `Rc`-based trainable state and therefore pin the registry to one
/// thread — this container only admits thread-safe functions, so the
/// whole registry is `Send + Sync` and can live behind an engine lock.
/// Sessions see it through [`UdfRegistry::merged`], which overlays their
/// session-local registrations on top (local wins on a name collision).
#[derive(Default, Clone)]
pub struct SharedUdfRegistry {
    scalars: SharedScalars,
    /// Registration-time spec snapshots, keyed like `scalars`.
    specs: HashMap<String, FunctionSpec>,
}

impl SharedUdfRegistry {
    pub fn new() -> SharedUdfRegistry {
        SharedUdfRegistry::default()
    }

    /// Register (or replace) a thread-safe scalar UDF.
    pub fn register_scalar(&mut self, udf: Arc<dyn ScalarUdf + Send + Sync>) {
        let key = UdfRegistry::key(udf.name());
        self.specs.insert(key.clone(), udf.spec());
        self.scalars.insert(key, udf);
    }

    /// Whether a scalar of this name is registered (case-insensitive).
    pub fn contains(&self, name: &str) -> bool {
        self.scalars.contains_key(&UdfRegistry::key(name))
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.scalars.len()
    }

    pub fn is_empty(&self) -> bool {
        self.scalars.is_empty()
    }

    /// Registered function names (lowercased), sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.scalars.keys().cloned().collect();
        names.sort_unstable();
        names
    }
}

impl std::fmt::Debug for SharedUdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedUdfRegistry({:?})", self.names())
    }
}

/// Function namespace of a session.
///
/// Declared signatures are snapshotted **once, at registration**: the
/// compiler, scheduler and validator all read the stored
/// [`FunctionSpec`], so a `spec()` implementation that returned
/// different values over time could not desync folding, validation and
/// scheduling decisions (and per-expression analysis pays a map lookup,
/// not a user-code call).
#[derive(Default, Clone)]
pub struct UdfRegistry {
    scalars: HashMap<String, Arc<dyn ScalarUdf>>,
    /// Registration-time spec snapshots, keyed like `scalars`.
    scalar_specs: HashMap<String, FunctionSpec>,
    /// Scalars registered with `Send + Sync` proof (see
    /// [`UdfRegistry::register_scalar_parallel`]); always mirrored in
    /// `scalars` so name resolution is uniform.
    shared_scalars: SharedScalars,
    tables: HashMap<String, Arc<dyn TableFunction>>,
    /// Registration-time spec snapshots, keyed like `tables`.
    table_specs: HashMap<String, FunctionSpec>,
}

impl UdfRegistry {
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Register a scalar UDF (replaces an existing one of the same name).
    /// Functions registered through this path never leave the session
    /// thread — the right home for trainable UDFs whose parameters ride
    /// the `Rc`-based autodiff tape.
    pub fn register_scalar(&mut self, udf: Arc<dyn ScalarUdf>) {
        let key = Self::key(udf.name());
        // Re-registration replaces: a session-bound impl must not leave a
        // stale thread-safe twin behind.
        self.shared_scalars.remove(&key);
        self.scalar_specs.insert(key.clone(), udf.spec());
        self.scalars.insert(key, udf);
    }

    /// Register a `Send + Sync` scalar UDF, allowing the morsel scheduler
    /// to run chains containing it across the worker pool — provided its
    /// [`FunctionSpec::parallel_safe`] also opts in (the type bound
    /// proves thread safety, the spec promises statelessness).
    pub fn register_scalar_parallel(&mut self, udf: Arc<dyn ScalarUdf + Send + Sync>) {
        let key = Self::key(udf.name());
        self.scalar_specs.insert(key.clone(), udf.spec());
        self.shared_scalars.insert(key.clone(), udf.clone());
        self.scalars.insert(key, udf);
    }

    /// Register a table-valued function.
    pub fn register_table_fn(&mut self, tvf: Arc<dyn TableFunction>) {
        let key = Self::key(tvf.name());
        self.table_specs.insert(key.clone(), tvf.spec());
        self.tables.insert(key, tvf);
    }

    pub fn scalar(&self, name: &str) -> Result<&Arc<dyn ScalarUdf>, ExecError> {
        self.scalars
            .get(&Self::key(name))
            .ok_or_else(|| ExecError::UnknownFunction(name.to_owned()))
    }

    pub fn table_fn(&self, name: &str) -> Result<&Arc<dyn TableFunction>, ExecError> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| ExecError::UnknownFunction(name.to_owned()))
    }

    pub fn is_table_fn(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    pub fn is_scalar(&self, name: &str) -> bool {
        self.scalars.contains_key(&Self::key(name))
    }

    /// Whether chains calling this scalar UDF may run on worker threads:
    /// registered with `Send + Sync` proof *and* its spec promises
    /// statelessness.
    pub fn is_parallel_safe_scalar(&self, name: &str) -> bool {
        let key = Self::key(name);
        self.shared_scalars.contains_key(&key)
            && self.scalar_specs.get(&key).is_some_and(|s| s.parallel_safe)
    }

    /// Declared signature of a registered scalar UDF (the
    /// registration-time snapshot).
    pub fn scalar_spec(&self, name: &str) -> Option<&FunctionSpec> {
        self.scalar_specs.get(&Self::key(name))
    }

    /// Declared signature of a registered table-valued function (the
    /// registration-time snapshot).
    pub fn table_fn_spec(&self, name: &str) -> Option<&FunctionSpec> {
        self.table_specs.get(&Self::key(name))
    }

    /// Snapshot of the thread-safe scalar functions (for worker pools).
    pub(crate) fn shared_snapshot(&self) -> SharedScalars {
        self.shared_scalars.clone()
    }

    /// A worker-side registry holding only the thread-safe functions.
    pub(crate) fn from_shared(shared: SharedScalars) -> UdfRegistry {
        let mut reg = UdfRegistry::new();
        for udf in shared.into_values() {
            reg.register_scalar_parallel(udf);
        }
        reg
    }

    /// Build a session's view of the function namespace: the engine's
    /// shared registry overlaid with the session-local registrations.
    /// Local registrations win on a name collision — a session that
    /// registers its own `f` shadows an engine-shared `f`, mirroring how
    /// session UDFs shadow built-ins. Shared entries keep their
    /// thread-safety proof (they stay eligible for worker pools); a local
    /// override of a shared name drops it, since the local impl made no
    /// such promise.
    pub fn merged(shared: &SharedUdfRegistry, local: &UdfRegistry) -> UdfRegistry {
        let mut reg = UdfRegistry {
            scalars: HashMap::with_capacity(shared.scalars.len() + local.scalars.len()),
            scalar_specs: shared.specs.clone(),
            shared_scalars: shared.scalars.clone(),
            tables: local.tables.clone(),
            table_specs: local.table_specs.clone(),
        };
        for (key, udf) in &shared.scalars {
            reg.scalars
                .insert(key.clone(), Arc::clone(udf) as Arc<dyn ScalarUdf>);
        }
        for (key, udf) in &local.scalars {
            if !local.shared_scalars.contains_key(key) {
                // Session-bound impl: its thread-safe twin (if any) is
                // shadowed along with the name.
                reg.shared_scalars.remove(key);
            }
            reg.scalars.insert(key.clone(), Arc::clone(udf));
        }
        for (key, udf) in &local.shared_scalars {
            reg.shared_scalars.insert(key.clone(), Arc::clone(udf));
        }
        for (key, spec) in &local.scalar_specs {
            reg.scalar_specs.insert(key.clone(), spec.clone());
        }
        reg
    }

    /// All parameters of all registered functions (the parameter surface a
    /// compiled query can train).
    pub fn all_parameters(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for udf in self.scalars.values() {
            out.extend(udf.parameters());
        }
        for tvf in self.tables.values() {
            out.extend(tvf.parameters());
        }
        out
    }
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s: Vec<&String> = self.scalars.keys().collect();
        let mut t: Vec<&String> = self.tables.keys().collect();
        s.sort();
        t.sort();
        write!(f, "UdfRegistry(scalars={s:?}, tvfs={t:?})")
    }
}

/// Everything operators need at run time.
pub struct ExecContext<'a> {
    pub catalog: &'a Catalog,
    pub udfs: &'a UdfRegistry,
    pub device: Device,
    /// Differentiable (trainable-query) lowering.
    pub trainable: bool,
    /// Temperature of relaxed predicates: `σ((score - θ) / temperature)`.
    pub temperature: f32,
    /// Bound statement parameters: `CompiledExpr::Param { idx }` resolves
    /// to slot `idx` here. Empty for parameter-free plans.
    pub params: crate::params::ParamValues,
    /// Worker threads available to the morsel scheduler (1 = run every
    /// morsel on the calling thread). Parallelism never changes results:
    /// morsel boundaries depend only on `morsel_rows`, so any thread
    /// count produces identical batches.
    pub threads: usize,
    /// Rows per morsel for the scheduler's input partitioning.
    pub morsel_rows: usize,
    /// Partition count for barrier exchanges (partitioned hash join,
    /// shared-nothing DISTINCT). A plan property independent of
    /// `threads`: results never depend on it, only load balance does.
    pub partitions: usize,
    /// Session kernel cache for compiled filter→project chains
    /// ([`crate::kernel`]). `None` disables chain kernels — every chain
    /// runs on the interpreter.
    pub chain_kernels: Option<std::sync::Arc<crate::kernel::KernelCache>>,
    /// Whether the morsel scheduler consults zone maps to skip pruned
    /// morsels (`TDP_ZONE_MAPS`). Pruning never changes results — a
    /// pruned morsel is one the leading filter would empty anyway — so
    /// this is purely a perf/diagnostics switch.
    pub zone_maps: bool,
    /// Access-path observability counters (morsels pruned/scanned, ANN
    /// queries), charged by the scheduler and the `AnnTopK` operator.
    pub access: std::sync::Arc<crate::access::AccessPathCounters>,
    /// Auto-rebuild threshold for stale IVF indexes
    /// (`TDP_IVF_REBUILD_AFTER`): once a `table.column` index has
    /// degraded to the exact fallback this many times, the next ANN
    /// query retrains it in place (same name, nlist and nprobe) before
    /// searching. `0` (the default) disables rebuilds.
    pub ivf_rebuild_after: u64,
    /// This query's memory ledger ([`tdp_mem::MemoryReservation`]): the
    /// scheduler and the barrier operators charge their materializations
    /// here and abort with [`ExecError::MemoryBudget`] when a charge is
    /// refused. Defaults to a detached unlimited ledger; the engine
    /// swaps in one backed by its budgeted pool.
    pub memory: std::sync::Arc<tdp_mem::MemoryReservation>,
}

impl<'a> ExecContext<'a> {
    pub fn new(catalog: &'a Catalog, udfs: &'a UdfRegistry) -> ExecContext<'a> {
        ExecContext {
            catalog,
            udfs,
            device: Device::Cpu,
            trainable: false,
            temperature: 0.1,
            params: crate::params::ParamValues::new(),
            threads: 1,
            morsel_rows: crate::pipeline::DEFAULT_MORSEL_ROWS,
            partitions: crate::pipeline::DEFAULT_PARTITIONS,
            chain_kernels: None,
            zone_maps: true,
            access: std::sync::Arc::new(crate::access::AccessPathCounters::default()),
            ivf_rebuild_after: 0,
            memory: std::sync::Arc::new(tdp_mem::MemoryReservation::detached()),
        }
    }

    /// Configure the morsel scheduler (threads are clamped to ≥ 1, the
    /// morsel size to ≥ 1 row).
    pub fn with_scheduler(mut self, threads: usize, morsel_rows: usize) -> ExecContext<'a> {
        self.threads = threads.max(1);
        self.morsel_rows = morsel_rows.max(1);
        self
    }

    /// Set the barrier-exchange partition count (clamped to ≥ 1).
    pub fn with_partitions(mut self, partitions: usize) -> ExecContext<'a> {
        self.partitions = partitions.max(1);
        self
    }

    pub fn with_device(mut self, device: Device) -> ExecContext<'a> {
        self.device = device;
        self
    }

    pub fn with_trainable(mut self, trainable: bool) -> ExecContext<'a> {
        self.trainable = trainable;
        self
    }

    pub fn with_params(mut self, params: crate::params::ParamValues) -> ExecContext<'a> {
        self.params = params;
        self
    }

    /// Attach (or detach) the session's chain-kernel cache.
    pub fn with_chain_kernels(
        mut self,
        cache: Option<std::sync::Arc<crate::kernel::KernelCache>>,
    ) -> ExecContext<'a> {
        self.chain_kernels = cache;
        self
    }

    /// Enable or disable zone-map morsel pruning.
    pub fn with_zone_maps(mut self, on: bool) -> ExecContext<'a> {
        self.zone_maps = on;
        self
    }

    /// Share an access-path counter set (e.g. the engine's global one)
    /// instead of the fresh per-context default.
    pub fn with_access(
        mut self,
        access: std::sync::Arc<crate::access::AccessPathCounters>,
    ) -> ExecContext<'a> {
        self.access = access;
        self
    }

    /// Attach a memory ledger (normally one opened against the engine's
    /// budgeted pool) instead of the detached unlimited default.
    pub fn with_memory(
        mut self,
        memory: std::sync::Arc<tdp_mem::MemoryReservation>,
    ) -> ExecContext<'a> {
        self.memory = memory;
        self
    }
}

/// Verify a TVF's actual output against its declared schema. Downstream
/// expressions were slot-resolved through the declaration, so a drifting
/// implementation must fail loudly here rather than silently feed wrong
/// slots.
pub(crate) fn check_tvf_output(
    name: &str,
    declared: Option<&[String]>,
    out: &Batch,
) -> Result<(), ExecError> {
    let Some(expected) = declared else {
        return Ok(());
    };
    let actual = out.names();
    let matches = actual.len() == expected.len()
        && actual
            .iter()
            .zip(expected)
            .all(|(a, e)| a.eq_ignore_ascii_case(e));
    if !matches {
        return Err(ExecError::Signature(format!(
            "table function '{name}' declared output columns {expected:?} but produced \
             {actual:?}; fix the declaration or the implementation"
        )));
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Prepare-time constant folding of Immutable UDF calls
// ----------------------------------------------------------------------

/// Fold every [`Volatility::Immutable`] scalar-UDF call whose arguments
/// are all literals into the literal it evaluates to. Runs on the parsed
/// AST *before* literal auto-parameterisation, so the folded constant
/// participates in plan-cache normalization like any other literal.
///
/// Best-effort by design: a call whose invocation errors, or whose
/// result is not a single-row column, is left in place and evaluated at
/// run time as before.
pub fn fold_immutable_udfs(query: tdp_sql::ast::Query, udfs: &UdfRegistry) -> tdp_sql::ast::Query {
    let scratch = Catalog::new();
    let folder = ImmutableFolder {
        udfs,
        catalog: &scratch,
    };
    folder.fold_query(query)
}

struct ImmutableFolder<'a> {
    udfs: &'a UdfRegistry,
    catalog: &'a Catalog,
}

impl ImmutableFolder<'_> {
    fn fold_query(&self, mut q: tdp_sql::ast::Query) -> tdp_sql::ast::Query {
        for item in &mut q.select {
            item.expr = self.fold_expr(std::mem::replace(&mut item.expr, tdp_sql::ast::Expr::Star));
        }
        q.from = q.from.map(|f| self.fold_table_ref(f));
        q.where_clause = q.where_clause.map(|w| self.fold_expr(w));
        q.group_by = q.group_by.into_iter().map(|g| self.fold_expr(g)).collect();
        q.having = q.having.map(|h| self.fold_expr(h));
        for o in &mut q.order_by {
            o.expr = self.fold_expr(std::mem::replace(&mut o.expr, tdp_sql::ast::Expr::Star));
        }
        q.union_all = q.union_all.map(|u| Box::new(self.fold_query(*u)));
        q
    }

    fn fold_table_ref(&self, t: tdp_sql::ast::TableRef) -> tdp_sql::ast::TableRef {
        use tdp_sql::ast::TableRef;
        match t {
            TableRef::Named { .. } => t,
            TableRef::Tvf { name, input, alias } => TableRef::Tvf {
                name,
                input: Box::new(self.fold_table_ref(*input)),
                alias,
            },
            TableRef::Subquery { query, alias } => TableRef::Subquery {
                query: Box::new(self.fold_query(*query)),
                alias,
            },
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => TableRef::Join {
                left: Box::new(self.fold_table_ref(*left)),
                right: Box::new(self.fold_table_ref(*right)),
                kind,
                on: on.map(|o| self.fold_expr(o)),
            },
        }
    }

    fn fold_expr(&self, e: tdp_sql::ast::Expr) -> tdp_sql::ast::Expr {
        use tdp_sql::ast::{Expr, WindowFunc};
        match e {
            Expr::Func { name, args } => {
                let args: Vec<Expr> = args.into_iter().map(|a| self.fold_expr(a)).collect();
                match self.try_fold_call(&name, &args) {
                    Some(lit) => Expr::Literal(lit),
                    None => Expr::Func { name, args },
                }
            }
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(self.fold_expr(*left)),
                right: Box::new(self.fold_expr(*right)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op,
                expr: Box::new(self.fold_expr(*expr)),
            },
            Expr::Aggregate { func, arg } => Expr::Aggregate {
                func,
                arg: arg.map(|a| Box::new(self.fold_expr(*a))),
            },
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => Expr::Case {
                operand: operand.map(|o| Box::new(self.fold_expr(*o))),
                branches: branches
                    .into_iter()
                    .map(|(w, t)| (self.fold_expr(w), self.fold_expr(t)))
                    .collect(),
                else_expr: else_expr.map(|x| Box::new(self.fold_expr(*x))),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.fold_expr(*expr)),
                list: list.into_iter().map(|i| self.fold_expr(i)).collect(),
                negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.fold_expr(*expr)),
                pattern,
                negated,
            },
            Expr::Window {
                func,
                partition_by,
                order_by,
            } => Expr::Window {
                func: match func {
                    WindowFunc::Agg { func, arg } => WindowFunc::Agg {
                        func,
                        arg: arg.map(|a| Box::new(self.fold_expr(*a))),
                    },
                    other => other,
                },
                partition_by: partition_by
                    .into_iter()
                    .map(|p| self.fold_expr(p))
                    .collect(),
                order_by: order_by
                    .into_iter()
                    .map(|mut o| {
                        o.expr = self.fold_expr(o.expr);
                        o
                    })
                    .collect(),
            },
            Expr::ScalarSubquery(q) => Expr::ScalarSubquery(Box::new(self.fold_query(*q))),
            other @ (Expr::Column { .. } | Expr::Literal(_) | Expr::Param { .. } | Expr::Star) => {
                other
            }
        }
    }

    /// Fold one call, or `None` when it must stay dynamic.
    fn try_fold_call(
        &self,
        name: &str,
        args: &[tdp_sql::ast::Expr],
    ) -> Option<tdp_sql::ast::Literal> {
        use tdp_sql::ast::{Expr, Literal};
        // TVF names never fold; session scalar UDFs only, and only when
        // declared Immutable (built-ins fold separately in the optimizer).
        if self.udfs.is_table_fn(name) || !self.udfs.is_scalar(name) {
            return None;
        }
        let spec = self.udfs.scalar_spec(name)?;
        if spec.volatility != Volatility::Immutable {
            return None;
        }
        // Never invoke through a wrong arity — `lower` reports that as a
        // compile-time signature error instead.
        if spec.args.as_ref().is_some_and(|d| d.len() != args.len()) {
            return None;
        }
        let mut arg_values = Vec::with_capacity(args.len());
        for a in args {
            arg_values.push(match a {
                Expr::Literal(Literal::Number(n)) => ArgValue::Number(*n),
                Expr::Literal(Literal::String(s)) => ArgValue::Str(s.clone()),
                Expr::Literal(Literal::Bool(b)) => ArgValue::Bool(*b),
                _ => return None,
            });
        }
        // Never invoke through declared-type violations either (an impl
        // may assume its declaration): leave the call in place so the
        // validation layer reports the proper signature error.
        if let Some(declared) = &spec.args {
            let ok = declared.iter().zip(&arg_values).all(|(want, got)| {
                matches!(
                    (want, got),
                    (ArgType::Any, _)
                        | (ArgType::Number, ArgValue::Number(_))
                        | (ArgType::Str, ArgValue::Str(_))
                        | (ArgType::Bool, ArgValue::Bool(_))
                )
            });
            if !ok {
                return None;
            }
        }
        let ctx = ExecContext::new(self.catalog, self.udfs);
        let out = self
            .udfs
            .scalar(name)
            .ok()?
            .invoke(&arg_values, &ctx)
            .ok()?;
        if out.rows() != 1 {
            return None;
        }
        Some(match out {
            EncodedTensor::Bool(b) => Literal::Bool(b.at(0)),
            EncodedTensor::Dict { codes, dict } => {
                Literal::String(dict.decode_one(codes.at(0)).to_owned())
            }
            // Integer layouts decode through i64 → f64 (exact to 2^53);
            // routing them through decode_f32 would round past 2^24.
            ints @ (EncodedTensor::I64(_)
            | EncodedTensor::Rle(_)
            | EncodedTensor::BitPacked(_)
            | EncodedTensor::Delta(_)) => Literal::Number(ints.decode_i64().at(0) as f64),
            other => Literal::Number(other.decode_f32().at(0) as f64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_tensor::Tensor;

    struct Doubler;
    impl ScalarUdf for Doubler {
        fn name(&self) -> &str {
            "double_it"
        }
        fn invoke(
            &self,
            args: &[ArgValue],
            _ctx: &ExecContext,
        ) -> Result<EncodedTensor, ExecError> {
            let col = args[0].as_column()?.decode_f32();
            Ok(EncodedTensor::F32(col.mul_scalar(2.0)))
        }
    }

    struct NopTvf;
    impl TableFunction for NopTvf {
        fn name(&self) -> &str {
            "nop"
        }
        fn invoke_table(&self, input: &Batch, _ctx: &ExecContext) -> Result<Batch, ExecError> {
            Ok(input.clone())
        }
    }

    #[test]
    fn registry_lookup_case_insensitive() {
        let mut reg = UdfRegistry::new();
        reg.register_scalar(Arc::new(Doubler));
        reg.register_table_fn(Arc::new(NopTvf));
        assert!(reg.scalar("DOUBLE_IT").is_ok());
        assert!(reg.is_table_fn("NOP"));
        assert!(!reg.is_table_fn("double_it"));
        assert!(matches!(
            reg.scalar("missing"),
            Err(ExecError::UnknownFunction(_))
        ));
    }

    #[test]
    fn scalar_udf_invocation() {
        let mut reg = UdfRegistry::new();
        reg.register_scalar(Arc::new(Doubler));
        let catalog = Catalog::new();
        let ctx = ExecContext::new(&catalog, &reg);
        let col = ArgValue::Column(EncodedTensor::F32(Tensor::from_vec(
            vec![1.0f32, 2.5],
            &[2],
        )));
        let out = reg
            .scalar("double_it")
            .unwrap()
            .invoke(&[col], &ctx)
            .unwrap();
        assert_eq!(out.decode_f32().to_vec(), vec![2.0, 5.0]);
    }

    #[test]
    fn default_diff_path_errors() {
        let catalog = Catalog::new();
        let reg = UdfRegistry::new();
        let ctx = ExecContext::new(&catalog, &reg);
        let err = Doubler.invoke_diff(&[], &ctx).unwrap_err();
        assert!(matches!(err, ExecError::NotDifferentiable(_)));
    }

    #[test]
    fn arg_value_coercions() {
        assert_eq!(ArgValue::Str("x".into()).as_str().unwrap(), "x");
        assert_eq!(ArgValue::Number(2.5).as_number().unwrap(), 2.5);
        assert!(ArgValue::Number(1.0).as_str().is_err());
        assert!(ArgValue::Str("s".into()).as_column().is_err());
    }

    #[test]
    fn default_spec_is_fully_dynamic() {
        let spec = Doubler.spec();
        assert_eq!(spec.name, "double_it");
        assert!(spec.args.is_none());
        assert_eq!(spec.volatility, Volatility::Volatile);
        assert!(!spec.parallel_safe);
        assert!(spec.from_position && spec.projection_position);
        assert_eq!(spec.output_schema(None), None);
        let tvf_spec = NopTvf.spec();
        assert_eq!(tvf_spec.output_schema(Some(&["a".into()])), None);
    }

    #[test]
    fn spec_builder_round_trips() {
        let spec = FunctionSpec::scalar("f", vec![ArgType::Column, ArgType::Number])
            .volatility(Volatility::Immutable)
            .parallel_safe(true);
        assert_eq!(
            spec.args.as_deref(),
            Some(&[ArgType::Column, ArgType::Number][..])
        );
        assert_eq!(spec.volatility, Volatility::Immutable);
        assert!(spec.parallel_safe);
        let tvf = FunctionSpec::dynamic("g")
            .returns(vec!["A".into()])
            .from_only();
        assert_eq!(tvf.output_schema(None), Some(vec!["A".to_string()]));
        assert!(tvf.from_position && !tvf.projection_position);
        let derived = FunctionSpec::dynamic("h").returns_derived(|cols| Some(cols.to_vec()));
        assert_eq!(
            derived.output_schema(Some(&["x".into()])),
            Some(vec!["x".to_string()])
        );
        assert_eq!(derived.output_schema(None), None, "derive needs an input");
    }

    struct SharedDoubler;
    impl ScalarUdf for SharedDoubler {
        fn name(&self) -> &str {
            "double_it"
        }
        fn spec(&self) -> FunctionSpec {
            FunctionSpec::scalar("double_it", vec![ArgType::Column]).parallel_safe(true)
        }
        fn invoke(
            &self,
            args: &[ArgValue],
            _ctx: &ExecContext,
        ) -> Result<EncodedTensor, ExecError> {
            Ok(EncodedTensor::F32(
                args[0].as_column()?.decode_f32().mul_scalar(2.0),
            ))
        }
    }

    #[test]
    fn parallel_safety_needs_shared_registration_and_spec() {
        let mut reg = UdfRegistry::new();
        // Plain registration: never parallel, regardless of the spec.
        reg.register_scalar(Arc::new(SharedDoubler));
        assert!(!reg.is_parallel_safe_scalar("double_it"));
        // Shared registration with a parallel_safe spec: parallel.
        reg.register_scalar_parallel(Arc::new(SharedDoubler));
        assert!(reg.is_parallel_safe_scalar("DOUBLE_IT"));
        // Re-registering through the session-bound path revokes it.
        reg.register_scalar(Arc::new(Doubler));
        assert!(!reg.is_parallel_safe_scalar("double_it"));
        // Shared registration of a spec that does NOT claim parallel
        // safety stays sequential (Doubler's default spec).
        struct SendButUnsafe;
        impl ScalarUdf for SendButUnsafe {
            fn name(&self) -> &str {
                "cautious"
            }
            fn invoke(
                &self,
                _args: &[ArgValue],
                _ctx: &ExecContext,
            ) -> Result<EncodedTensor, ExecError> {
                Ok(EncodedTensor::F32(Tensor::from_vec(vec![0.0], &[1])))
            }
        }
        reg.register_scalar_parallel(Arc::new(SendButUnsafe));
        assert!(!reg.is_parallel_safe_scalar("cautious"));
    }

    #[test]
    fn worker_registry_holds_only_shared_functions() {
        let mut reg = UdfRegistry::new();
        reg.register_scalar(Arc::new(Doubler));
        reg.register_scalar_parallel(Arc::new(SharedDoubler));
        struct Other;
        impl ScalarUdf for Other {
            fn name(&self) -> &str {
                "other"
            }
            fn invoke(
                &self,
                _args: &[ArgValue],
                _ctx: &ExecContext,
            ) -> Result<EncodedTensor, ExecError> {
                Ok(EncodedTensor::F32(Tensor::from_vec(vec![0.0], &[1])))
            }
        }
        reg.register_scalar(Arc::new(Other));
        let worker = UdfRegistry::from_shared(reg.shared_snapshot());
        assert!(worker.is_scalar("double_it"));
        assert!(!worker.is_scalar("other"), "session-bound stays behind");
    }

    #[test]
    fn immutable_udf_folding_rewrites_literal_calls_only() {
        use tdp_sql::ast::{Expr, Literal};
        struct Inc;
        impl ScalarUdf for Inc {
            fn name(&self) -> &str {
                "inc"
            }
            fn spec(&self) -> FunctionSpec {
                FunctionSpec::scalar("inc", vec![ArgType::Number]).volatility(Volatility::Immutable)
            }
            fn invoke(
                &self,
                args: &[ArgValue],
                _ctx: &ExecContext,
            ) -> Result<EncodedTensor, ExecError> {
                let x = args[0].as_number()? as f32;
                Ok(EncodedTensor::F32(Tensor::from_vec(vec![x + 1.0], &[1])))
            }
        }
        let mut reg = UdfRegistry::new();
        reg.register_scalar(Arc::new(Inc));
        let q = tdp_sql::parse("SELECT inc(41), inc(x) FROM t WHERE y > inc(inc(0))").unwrap();
        let folded = fold_immutable_udfs(q, &reg);
        // Literal call folds (including nested literal calls)…
        assert!(
            matches!(&folded.select[0].expr, Expr::Literal(Literal::Number(n)) if *n == 42.0),
            "{:?}",
            folded.select[0].expr
        );
        assert_eq!(folded.to_string().matches("inc(").count(), 1);
        // …while the column-argument call survives untouched.
        assert!(matches!(&folded.select[1].expr, Expr::Func { name, .. } if name == "inc"));
    }
}
