//! Batches: the unit of data flowing between physical operators.

use tdp_autodiff::Var;
use tdp_encoding::{EncodedTensor, PeTensor};
use tdp_storage::{Column, Table};
use tdp_tensor::F32Tensor;

use crate::error::ExecError;

/// A differentiable column: a [`Var`] whose value is either a plain `[N]`
/// column or, when `class_values` is present, a probability-encoded
/// `[N, C]` matrix (the Var-domain twin of [`PeTensor`]).
#[derive(Clone)]
pub struct DiffColumn {
    pub var: Var,
    pub class_values: Option<F32Tensor>,
}

impl DiffColumn {
    /// Plain differentiable value column (`[N]`).
    pub fn plain(var: Var) -> DiffColumn {
        DiffColumn { var, class_values: None }
    }

    /// Probability-encoded differentiable column (`[N, C]`).
    pub fn pe(var: Var, class_values: F32Tensor) -> DiffColumn {
        assert_eq!(
            var.shape().len(),
            2,
            "PE diff column must be [N, C], got {:?}",
            var.shape()
        );
        assert_eq!(
            var.shape()[1],
            class_values.numel(),
            "one class value per probability column"
        );
        DiffColumn { var, class_values: Some(class_values) }
    }

    pub fn is_pe(&self) -> bool {
        self.class_values.is_some()
    }

    pub fn rows(&self) -> usize {
        self.var.shape().first().copied().unwrap_or(1)
    }

    /// Detach into an exact encoded column (PE → [`PeTensor`]).
    pub fn to_exact(&self) -> EncodedTensor {
        match &self.class_values {
            Some(cv) => EncodedTensor::Pe(PeTensor::new(self.var.value(), cv.clone())),
            None => EncodedTensor::F32(self.var.value()),
        }
    }
}

impl std::fmt::Debug for DiffColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DiffColumn(shape={:?}, pe={})",
            self.var.shape(),
            self.is_pe()
        )
    }
}

/// A column inside a batch: exact (encoded tensor) or differentiable.
#[derive(Clone, Debug)]
pub enum ColumnData {
    Exact(EncodedTensor),
    Diff(DiffColumn),
}

impl ColumnData {
    pub fn rows(&self) -> usize {
        match self {
            ColumnData::Exact(e) => e.rows(),
            ColumnData::Diff(d) => d.rows(),
        }
    }

    pub fn is_diff(&self) -> bool {
        matches!(self, ColumnData::Diff(_))
    }

    /// Exact view (detaching diff columns).
    pub fn to_exact(&self) -> EncodedTensor {
        match self {
            ColumnData::Exact(e) => e.clone(),
            ColumnData::Diff(d) => d.to_exact(),
        }
    }
}

/// An ordered set of named columns (plus, in trainable mode, soft row
/// weights produced by relaxed predicates).
#[derive(Clone, Debug, Default)]
pub struct Batch {
    columns: Vec<(String, ColumnData)>,
    /// Soft filter weights (`[N]` Var in (0,1)); `None` means all-ones.
    pub weights: Option<Var>,
}

impl Batch {
    pub fn new() -> Batch {
        Batch::default()
    }

    pub fn from_table(table: &Table) -> Batch {
        Batch {
            columns: table
                .columns()
                .iter()
                .map(|c| (c.name.clone(), ColumnData::Exact(c.data.clone())))
                .collect(),
            weights: None,
        }
    }

    /// Convert to a storage table (detaching differentiable columns).
    pub fn to_table(&self, name: &str) -> Table {
        Table::new(
            name,
            self.columns
                .iter()
                .map(|(n, c)| Column::new(n.clone(), c.to_exact()))
                .collect(),
        )
    }

    pub fn push(&mut self, name: impl Into<String>, data: ColumnData) {
        self.columns.push((name.into(), data));
    }

    pub fn columns(&self) -> &[(String, ColumnData)] {
        &self.columns
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn rows(&self) -> usize {
        self.columns.first().map(|(_, c)| c.rows()).unwrap_or(0)
    }

    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Case-insensitive column lookup.
    pub fn column(&self, name: &str) -> Result<&ColumnData, ExecError> {
        self.columns
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, c)| c)
            .ok_or_else(|| ExecError::UnknownColumn(name.to_owned()))
    }

    /// Whether any column is differentiable.
    pub fn has_diff(&self) -> bool {
        self.columns.iter().any(|(_, c)| c.is_diff())
    }

    /// First tensor-payload column (used by FROM-position TVFs whose input
    /// is a registered bare tensor).
    pub fn first_tensor(&self) -> Result<F32Tensor, ExecError> {
        for (_, c) in &self.columns {
            if let ColumnData::Exact(EncodedTensor::F32(t)) = c {
                return Ok(t.clone());
            }
        }
        Err(ExecError::TypeMismatch(
            "TVF input has no plain tensor column".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_storage::TableBuilder;
    use tdp_tensor::Tensor;

    #[test]
    fn batch_round_trips_table() {
        let t = TableBuilder::new()
            .col_f32("v", vec![1.0, 2.0])
            .col_str("s", &["a", "b"])
            .build("t");
        let b = Batch::from_table(&t);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.names(), vec!["v", "s"]);
        let back = b.to_table("out");
        assert_eq!(back.column("s").unwrap().data.decode_strings(), vec!["a", "b"]);
    }

    #[test]
    fn column_lookup_case_insensitive() {
        let t = TableBuilder::new().col_f32("Digit", vec![1.0]).build("t");
        let b = Batch::from_table(&t);
        assert!(b.column("digit").is_ok());
        assert!(matches!(
            b.column("nope"),
            Err(ExecError::UnknownColumn(_))
        ));
    }

    #[test]
    fn diff_columns_flagged_and_detached() {
        let mut b = Batch::new();
        let probs = Var::param(Tensor::from_vec(vec![0.3f32, 0.7, 0.9, 0.1], &[2, 2]));
        b.push("Income", ColumnData::Diff(DiffColumn::pe(probs, Tensor::arange(2))));
        assert!(b.has_diff());
        assert_eq!(b.rows(), 2);
        let t = b.to_table("out");
        // PE detaches to an encoded PE column that decodes by argmax.
        assert_eq!(
            t.column("Income").unwrap().data.decode_f32().to_vec(),
            vec![1.0, 0.0]
        );
    }

    #[test]
    fn first_tensor_finds_payload() {
        let imgs = Tensor::<f32>::zeros(&[3, 1, 2, 2]);
        let t = TableBuilder::new()
            .col_i64("id", vec![1, 2, 3])
            .col_tensor("images", imgs)
            .build("docs");
        // i64 column is skipped; the f32 payload is found.
        let b = Batch::from_table(&t);
        assert_eq!(b.first_tensor().unwrap().shape(), &[3, 1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "PE diff column must be")]
    fn pe_diff_column_validates_rank() {
        DiffColumn::pe(
            Var::constant(Tensor::<f32>::zeros(&[4])),
            Tensor::arange(2),
        );
    }
}
