//! Batches: the unit of data flowing between physical operators.

use tdp_autodiff::Var;
use tdp_encoding::{EncodedTensor, PeTensor};
use tdp_storage::{Column, Table};
use tdp_tensor::F32Tensor;

use crate::error::ExecError;

/// A differentiable column: a [`Var`] whose value is either a plain `[N]`
/// column or, when `class_values` is present, a probability-encoded
/// `[N, C]` matrix (the Var-domain twin of [`PeTensor`]).
#[derive(Clone)]
pub struct DiffColumn {
    pub var: Var,
    pub class_values: Option<F32Tensor>,
}

impl DiffColumn {
    /// Plain differentiable value column (`[N]`).
    pub fn plain(var: Var) -> DiffColumn {
        DiffColumn {
            var,
            class_values: None,
        }
    }

    /// Probability-encoded differentiable column (`[N, C]`).
    pub fn pe(var: Var, class_values: F32Tensor) -> DiffColumn {
        assert_eq!(
            var.shape().len(),
            2,
            "PE diff column must be [N, C], got {:?}",
            var.shape()
        );
        assert_eq!(
            var.shape()[1],
            class_values.numel(),
            "one class value per probability column"
        );
        DiffColumn {
            var,
            class_values: Some(class_values),
        }
    }

    pub fn is_pe(&self) -> bool {
        self.class_values.is_some()
    }

    pub fn rows(&self) -> usize {
        self.var.shape().first().copied().unwrap_or(1)
    }

    /// Detach into an exact encoded column (PE → [`PeTensor`]).
    pub fn to_exact(&self) -> EncodedTensor {
        match &self.class_values {
            Some(cv) => EncodedTensor::Pe(PeTensor::new(self.var.value(), cv.clone())),
            None => EncodedTensor::F32(self.var.value()),
        }
    }
}

impl std::fmt::Debug for DiffColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DiffColumn(shape={:?}, pe={})",
            self.var.shape(),
            self.is_pe()
        )
    }
}

/// A column inside a batch: exact (encoded tensor) or differentiable.
#[derive(Clone, Debug)]
pub enum ColumnData {
    Exact(EncodedTensor),
    Diff(DiffColumn),
}

impl ColumnData {
    pub fn rows(&self) -> usize {
        match self {
            ColumnData::Exact(e) => e.rows(),
            ColumnData::Diff(d) => d.rows(),
        }
    }

    pub fn is_diff(&self) -> bool {
        matches!(self, ColumnData::Diff(_))
    }

    /// Exact view (detaching diff columns).
    pub fn to_exact(&self) -> EncodedTensor {
        match self {
            ColumnData::Exact(e) => e.clone(),
            ColumnData::Diff(d) => d.to_exact(),
        }
    }
}

/// An ordered set of named columns (plus, in trainable mode, soft row
/// weights produced by relaxed predicates).
///
/// Columns are addressed two ways: by **slot index** (the hot path — the
/// physical plan resolves names to slots at compile time) or by name
/// through an O(1) lowercase name→slot map kept in sync on every push.
#[derive(Clone, Debug, Default)]
pub struct Batch {
    columns: Vec<(String, ColumnData)>,
    /// Lowercased name → first slot carrying it (mirrors the
    /// first-match-wins semantics of the former linear scan).
    index: std::collections::HashMap<String, usize>,
    /// Soft filter weights (`[N]` Var in (0,1)); `None` means all-ones.
    pub weights: Option<Var>,
}

impl Batch {
    pub fn new() -> Batch {
        Batch::default()
    }

    pub fn from_table(table: &Table) -> Batch {
        let mut out = Batch::new();
        for c in table.columns() {
            out.push(c.name.clone(), ColumnData::Exact(c.data.clone()));
        }
        out
    }

    /// Convert to a storage table (detaching differentiable columns).
    pub fn to_table(&self, name: &str) -> Table {
        Table::new(
            name,
            self.columns
                .iter()
                .map(|(n, c)| Column::new(n.clone(), c.to_exact()))
                .collect(),
        )
    }

    pub fn push(&mut self, name: impl Into<String>, data: ColumnData) {
        let name = name.into();
        let slot = self.columns.len();
        self.index.entry(name.to_ascii_lowercase()).or_insert(slot);
        self.columns.push((name, data));
    }

    pub fn columns(&self) -> &[(String, ColumnData)] {
        &self.columns
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn rows(&self) -> usize {
        self.columns.first().map(|(_, c)| c.rows()).unwrap_or(0)
    }

    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Case-insensitive column lookup, O(1) via the name index.
    pub fn column(&self, name: &str) -> Result<&ColumnData, ExecError> {
        self.slot(name)
            .map(|s| &self.columns[s].1)
            .ok_or_else(|| ExecError::UnknownColumn(name.to_owned()))
    }

    /// Slot carrying `name` (case-insensitive, first occurrence).
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.index.get(&name.to_ascii_lowercase()).copied()
    }

    /// Column at a physical slot index.
    pub fn column_at(&self, slot: usize) -> Option<&ColumnData> {
        self.columns.get(slot).map(|(_, c)| c)
    }

    /// Name of the column at a slot.
    pub fn name_at(&self, slot: usize) -> Option<&str> {
        self.columns.get(slot).map(|(n, _)| n.as_str())
    }

    /// First `n` rows of every column as a new batch — a contiguous
    /// prefix slice, cheaper than materialising an index tensor and
    /// gathering. Soft weights are dropped (callers on the trainable path
    /// handle weights themselves).
    pub fn head(&self, n: usize) -> Batch {
        let mut out = Batch::new();
        for (name, col) in &self.columns {
            out.push(name.clone(), ColumnData::Exact(col.to_exact().head(n)));
        }
        out
    }

    /// Rows `start..end` of every column as a new batch — the morsel
    /// slice. A contiguous range copy per column (dictionary slices share
    /// the parent dictionary, so codes stay comparable across morsels);
    /// no index tensor, no gather. Soft weights are dropped, as in
    /// [`Batch::head`].
    pub fn slice_rows(&self, start: usize, end: usize) -> Batch {
        let mut out = Batch::new();
        for (name, col) in &self.columns {
            out.push(
                name.clone(),
                ColumnData::Exact(col.to_exact().slice_rows(start, end)),
            );
        }
        out
    }

    /// Concatenate batches row-wise, preserving column encodings where
    /// the pieces agree (see [`EncodedTensor::concat`]) — the
    /// order-preserving merge of morsel outputs. Column names and order
    /// come from the first batch; every batch must have the same arity.
    pub fn concat(parts: &[Batch]) -> Batch {
        assert!(!parts.is_empty(), "concat of zero batches");
        if parts.len() == 1 {
            return parts[0].clone();
        }
        let mut out = Batch::new();
        let exact: Vec<Vec<EncodedTensor>> = parts
            .iter()
            .map(|b| b.columns().iter().map(|(_, c)| c.to_exact()).collect())
            .collect();
        for (i, (name, _)) in parts[0].columns().iter().enumerate() {
            let pieces: Vec<&EncodedTensor> = exact.iter().map(|cols| &cols[i]).collect();
            out.push(
                name.clone(),
                ColumnData::Exact(EncodedTensor::concat(&pieces)),
            );
        }
        out
    }

    /// Whether any column is differentiable.
    pub fn has_diff(&self) -> bool {
        self.columns.iter().any(|(_, c)| c.is_diff())
    }

    /// First tensor-payload column (used by FROM-position TVFs whose input
    /// is a registered bare tensor).
    pub fn first_tensor(&self) -> Result<F32Tensor, ExecError> {
        for (_, c) in &self.columns {
            if let ColumnData::Exact(EncodedTensor::F32(t)) = c {
                return Ok(t.clone());
            }
        }
        Err(ExecError::TypeMismatch(
            "TVF input has no plain tensor column".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_storage::TableBuilder;
    use tdp_tensor::Tensor;

    #[test]
    fn batch_round_trips_table() {
        let t = TableBuilder::new()
            .col_f32("v", vec![1.0, 2.0])
            .col_str("s", &["a", "b"])
            .build("t");
        let b = Batch::from_table(&t);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.names(), vec!["v", "s"]);
        let back = b.to_table("out");
        assert_eq!(
            back.column("s").unwrap().data.decode_strings(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn column_lookup_case_insensitive() {
        let t = TableBuilder::new().col_f32("Digit", vec![1.0]).build("t");
        let b = Batch::from_table(&t);
        assert!(b.column("digit").is_ok());
        assert!(matches!(b.column("nope"), Err(ExecError::UnknownColumn(_))));
    }

    #[test]
    fn diff_columns_flagged_and_detached() {
        let mut b = Batch::new();
        let probs = Var::param(Tensor::from_vec(vec![0.3f32, 0.7, 0.9, 0.1], &[2, 2]));
        b.push(
            "Income",
            ColumnData::Diff(DiffColumn::pe(probs, Tensor::arange(2))),
        );
        assert!(b.has_diff());
        assert_eq!(b.rows(), 2);
        let t = b.to_table("out");
        // PE detaches to an encoded PE column that decodes by argmax.
        assert_eq!(
            t.column("Income").unwrap().data.decode_f32().to_vec(),
            vec![1.0, 0.0]
        );
    }

    #[test]
    fn first_tensor_finds_payload() {
        let imgs = Tensor::<f32>::zeros(&[3, 1, 2, 2]);
        let t = TableBuilder::new()
            .col_i64("id", vec![1, 2, 3])
            .col_tensor("images", imgs)
            .build("docs");
        // i64 column is skipped; the f32 payload is found.
        let b = Batch::from_table(&t);
        assert_eq!(b.first_tensor().unwrap().shape(), &[3, 1, 2, 2]);
    }

    #[test]
    fn slot_index_tracks_pushes_first_match_wins() {
        let mut b = Batch::new();
        b.push(
            "A",
            ColumnData::Exact(EncodedTensor::from_f32_slice(&[1.0])),
        );
        b.push(
            "b",
            ColumnData::Exact(EncodedTensor::from_f32_slice(&[2.0])),
        );
        // Duplicate name: the map must keep pointing at the first slot.
        b.push(
            "a",
            ColumnData::Exact(EncodedTensor::from_f32_slice(&[3.0])),
        );
        assert_eq!(b.slot("a"), Some(0));
        assert_eq!(b.slot("B"), Some(1));
        assert_eq!(b.slot("missing"), None);
        assert_eq!(b.name_at(2), Some("a"));
        assert_eq!(
            b.column("A").unwrap().to_exact().decode_f32().to_vec(),
            vec![1.0]
        );
        assert!(b.column_at(3).is_none());
    }

    #[test]
    fn head_takes_prefix_rows() {
        let t = TableBuilder::new()
            .col_f32("v", vec![1.0, 2.0, 3.0])
            .col_str("s", &["a", "b", "c"])
            .build("t");
        let b = Batch::from_table(&t);
        let h = b.head(2);
        assert_eq!(h.rows(), 2);
        assert_eq!(
            h.column("s").unwrap().to_exact().decode_strings(),
            vec!["a", "b"]
        );
        assert_eq!(b.head(10).rows(), 3, "head clamps to the row count");
        assert_eq!(b.head(0).rows(), 0);
    }

    #[test]
    #[should_panic(expected = "PE diff column must be")]
    fn pe_diff_column_validates_rank() {
        DiffColumn::pe(Var::constant(Tensor::<f32>::zeros(&[4])), Tensor::arange(2));
    }
}
