//! Executor errors.

/// Anything that can go wrong while lowering or running a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Referenced table is not in the catalog.
    UnknownTable(String),
    /// Referenced column is not in the current batch.
    UnknownColumn(String),
    /// Referenced function is not registered.
    UnknownFunction(String),
    /// The operation is valid SQL but not supported by this executor.
    Unsupported(String),
    /// Type/encoding mismatch between operator and operand.
    TypeMismatch(String),
    /// The differentiable executor cannot lower this construct.
    NotDifferentiable(String),
    /// A UDF/TVF reported a failure.
    Udf(String),
    /// A statement-parameter problem: unbound slot, arity mismatch, or a
    /// binding the engine cannot evaluate (e.g. NULL in this NULL-free
    /// dialect).
    Param(String),
    /// A call violates a function's declared signature: wrong arity,
    /// wrong argument type, a TVF used in a position it does not
    /// support, or a TVF whose output drifted from its declared schema.
    /// Declared-signature violations surface at prepare time.
    Signature(String),
    /// A memory charge pushed the query past the engine's byte budget
    /// (`TDP_MEM_BUDGET`). Aborts only the offending query; names the
    /// operator whose allocation breached and the refused byte count.
    MemoryBudget {
        /// Operator whose allocation breached (e.g. `join build`).
        operator: String,
        /// Bytes the refused charge asked for.
        requested: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            ExecError::UnknownFunction(n) => write!(f, "unknown function '{n}'"),
            ExecError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            ExecError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            ExecError::NotDifferentiable(m) => {
                write!(f, "not differentiable (compile without TRAINABLE?): {m}")
            }
            ExecError::Udf(m) => write!(f, "UDF error: {m}"),
            ExecError::Param(m) => write!(f, "parameter error: {m}"),
            ExecError::Signature(m) => write!(f, "function signature error: {m}"),
            ExecError::MemoryBudget {
                operator,
                requested,
            } => write!(
                f,
                "out of memory budget: {operator} needed {requested} more bytes \
                 than TDP_MEM_BUDGET allows"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_offender() {
        assert!(ExecError::UnknownTable("docs".into())
            .to_string()
            .contains("docs"));
        assert!(ExecError::UnknownColumn("x".into())
            .to_string()
            .contains("'x'"));
        assert!(ExecError::NotDifferentiable("join".into())
            .to_string()
            .contains("TRAINABLE"));
        let oom = ExecError::MemoryBudget {
            operator: "join build".into(),
            requested: 4096,
        }
        .to_string();
        assert!(oom.contains("out of memory budget"));
        assert!(oom.contains("join build"));
        assert!(oom.contains("4096"));
    }
}
