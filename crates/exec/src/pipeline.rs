//! Pipeline decomposition of physical plans — the morsel-driven execution
//! model (Leis et al., adapted to tensor-kernel operators).
//!
//! A [`PhysicalPlan`] is a tree of operators; most of them are
//! **streamable**: filters and projections transform each row
//! independently, so a scheduler can partition their input into morsels
//! (~64k-row horizontal slices) and run the *fused* filter→project chain
//! over every morsel concurrently. Other operators are **barriers**: an
//! aggregate, sort, join build, window or DISTINCT needs (a digest of)
//! all its input rows before it can emit anything.
//!
//! [`decompose`] walks the plan once and produces a [`PipeNode`] tree:
//!
//! * barrier-free `Filter`/`Project` runs fuse into one [`Pipeline`]
//!   (a chain of [`MorselOp`]s applied per morsel, source → sink);
//! * `Aggregate` terminates its pipeline with a **parallel partial
//!   aggregation** sink — every morsel folds into per-group partial
//!   states, merged by a deterministic combine step;
//! * `Limit` terminates its pipeline with an **early-exit** sink that
//!   stops claiming morsels once the contiguous output prefix holds
//!   enough rows;
//! * everything else becomes a [`PipeNode::Barrier`] executed on its
//!   materialised children.
//!
//! ## Staged barrier execution
//!
//! A barrier's *input* must be complete before it emits anything, but
//! its *work* still splits. Joins, ORDER BY, TopK and DISTINCT execute
//! as short stage sequences over their materialised inputs
//! (chains → exchange → barrier stages, see [`crate::morsel`]):
//!
//! * **Join** — build-side rows are exchanged into
//!   [`crate::ExecContext::partitions`] buckets by composite-key hash,
//!   one hash table is built per partition (shared-nothing), and probe
//!   morsels are processed in parallel with morsel-order reassembly;
//! * **Sort / TopK** — each morsel produces a sorted run (top-k runs
//!   for `ORDER BY … LIMIT`), k-way merged under the stable
//!   `(keys…, input position)` order;
//! * **DISTINCT** — rows are exchanged by grouping-code hash and each
//!   partition dedups independently, survivors re-sorted to input order.
//!
//! Windows, TVFs and UNION ALL remain whole-batch. The partition count
//! is a plan property (`TDP_PARTITIONS`, default
//! [`DEFAULT_PARTITIONS`]) independent of the worker count, so staged
//! barriers keep the determinism contract below.
//!
//! The decomposition is shared: [`execute`] (the scheduled exact path)
//! and [`crate::diff::execute_diff`] (single-threaded, soft kernels)
//! both consume the same `PipeNode` tree, so results are bitwise
//! identical across thread counts — morsel boundaries depend only on
//! [`crate::ExecContext::morsel_rows`], never on the worker count.
//!
//! EXPLAIN's `== pipelines ==` section renders the decomposition with
//! each barrier's strategy resolved against the session:
//!
//! ```text
//! barrier Sort: total DESC [merge-sort]
//!   barrier Join: Inner ON k = k [partitioned ×16]
//!     pipeline [Filter] -> collect
//!       source Scan: orders
//!     source Scan: items
//! ```

use tdp_sql::ast::LimitCount;

use crate::batch::Batch;
use crate::error::ExecError;
use crate::exact;
use crate::expr::{eval_expr, resolve_limit};
use crate::morsel;
use crate::physical::{PhysAggregate, PhysKey, PhysProjectItem, PhysicalPlan, ScanAccess};
use crate::udf::ExecContext;

/// Default rows per morsel: large enough that per-morsel dispatch cost is
/// noise, small enough that a scan splits across a worker pool.
pub const DEFAULT_MORSEL_ROWS: usize = 65_536;

/// Default partition count for barrier exchanges (join build, DISTINCT).
/// A plan property, deliberately independent of the thread count:
/// partition assignment depends only on the key hash and this number, so
/// results cannot vary with the worker pool. 16 keeps every partition
/// busy on today's typical core counts without fragmenting small builds.
pub const DEFAULT_PARTITIONS: usize = 16;

/// One fused per-morsel operator. Borrowed from the compiled plan — the
/// decomposition adds no allocation beyond the chain vectors.
#[derive(Clone, Copy, Debug)]
pub enum MorselOp<'p> {
    Filter(&'p crate::physical::CompiledExpr),
    Project(&'p [PhysProjectItem]),
}

/// A fused, barrier-free operator chain over a morsel source.
#[derive(Debug)]
pub struct Pipeline<'p> {
    /// Ops in source→sink order (applied left to right per morsel).
    pub ops: Vec<MorselOp<'p>>,
    /// Where the rows come from: a scan, or a materialised barrier.
    pub input: Box<PipeNode<'p>>,
}

/// A node of the pipeline decomposition.
#[derive(Debug)]
pub enum PipeNode<'p> {
    /// Leaf: a base-table scan (the canonical morsel source).
    Scan {
        table: &'p str,
        schema: Option<&'p [String]>,
        /// The access path decided at lower time; a pipeline fed directly
        /// by a pruned scan consults it for a per-morsel skip mask.
        access: &'p ScanAccess,
    },
    /// A pipeline whose sink is an order-preserving concat of morsel
    /// outputs.
    Stream(Pipeline<'p>),
    /// A pipeline terminated by LIMIT: morsel processing early-exits once
    /// the contiguous output prefix reaches `n` rows.
    Limit { n: LimitCount, pipe: Pipeline<'p> },
    /// A pipeline terminated by grouped aggregation: morsels fold into
    /// per-group partial states, merged by a combine step.
    Aggregate {
        keys: &'p [PhysKey],
        aggregates: &'p [PhysAggregate],
        pipe: Pipeline<'p>,
    },
    /// A whole-batch barrier operator (sort, join, window, TVF, …),
    /// executed single-threaded on its materialised children.
    Barrier {
        plan: &'p PhysicalPlan,
        inputs: Vec<PipeNode<'p>>,
    },
}

/// Decompose a physical plan into pipelines broken at barriers, fusing
/// barrier-free filter→project chains. Performed once per execution (it
/// only borrows the plan); both the scheduled exact executor and the
/// differentiable executor consume the result.
pub fn decompose(plan: &PhysicalPlan) -> PipeNode<'_> {
    match plan {
        PhysicalPlan::Scan {
            table,
            schema,
            access,
        } => PipeNode::Scan {
            table,
            schema: schema.as_deref(),
            access,
        },
        PhysicalPlan::Filter { predicate, input } => {
            extend_chain(decompose(input), MorselOp::Filter(predicate))
        }
        PhysicalPlan::Project { items, input } => {
            extend_chain(decompose(input), MorselOp::Project(items))
        }
        PhysicalPlan::Limit { n, input } => PipeNode::Limit {
            n: *n,
            pipe: into_pipeline(decompose(input)),
        },
        PhysicalPlan::Aggregate {
            keys,
            aggregates,
            input,
        } => PipeNode::Aggregate {
            keys,
            aggregates,
            pipe: into_pipeline(decompose(input)),
        },
        other => PipeNode::Barrier {
            plan: other,
            inputs: other.inputs().into_iter().map(decompose).collect(),
        },
    }
}

/// Append one morsel op to a node, fusing into an existing chain.
fn extend_chain<'p>(node: PipeNode<'p>, op: MorselOp<'p>) -> PipeNode<'p> {
    match node {
        PipeNode::Stream(mut pipe) => {
            pipe.ops.push(op);
            PipeNode::Stream(pipe)
        }
        other => PipeNode::Stream(Pipeline {
            ops: vec![op],
            input: Box::new(other),
        }),
    }
}

/// View a node as the pipeline feeding a sink (LIMIT / aggregate),
/// absorbing an existing fused chain.
fn into_pipeline(node: PipeNode<'_>) -> Pipeline<'_> {
    match node {
        PipeNode::Stream(pipe) => pipe,
        other => Pipeline {
            ops: Vec::new(),
            input: Box::new(other),
        },
    }
}

// ----------------------------------------------------------------------
// Rendering (EXPLAIN's pipeline section)
// ----------------------------------------------------------------------

/// Render the pipeline breakdown of a plan: fused chains, their sinks,
/// and the barriers between them. Without a context the rendering is
/// purely structural; see [`explain_ctx`] for fallback annotations.
pub fn explain(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    explain_node(&decompose(plan), None, &mut out, 0);
    out
}

/// Like [`explain`], but resolved against a session context: pipelines
/// that will take the sequential whole-batch path are annotated with the
/// *reason* (`[sequential: udf-not-parallel-safe(f)]`,
/// `scalar-subquery`, `tensor-param($n)`, `count-distinct`), so
/// fallbacks are observable before running anything.
pub fn explain_ctx(plan: &PhysicalPlan, ctx: &ExecContext) -> String {
    let mut out = String::new();
    explain_node(&decompose(plan), Some(ctx), &mut out, 0);
    out
}

/// ` [sequential: reason]` annotation for a pipeline, empty when the
/// chain is parallel-safe or no context is available.
fn fallback_note(
    ops: &[MorselOp<'_>],
    sink: Option<(&[PhysKey], &[PhysAggregate])>,
    ctx: Option<&ExecContext>,
) -> String {
    ctx.and_then(|c| morsel::chain_fallback_reason(ops, sink, c))
        .map(|reason| format!(" [sequential: {reason}]"))
        .unwrap_or_default()
}

/// Chain-kernel strategy annotation (` [compiled ×N ops]` or
/// ` [interpreted: reason]`) for a non-empty chain. Suppressed when the
/// pipeline already carries a sequential note — that *is* its strategy
/// — or when no context is available.
fn kernel_note(
    ops: &[MorselOp<'_>],
    sink: Option<(&[PhysKey], &[PhysAggregate])>,
    ctx: Option<&ExecContext>,
) -> String {
    let Some(c) = ctx else {
        return String::new();
    };
    if morsel::chain_fallback_reason(ops, sink, c).is_some() {
        return String::new();
    }
    match crate::kernel::chain_strategy(ops, c) {
        Some(crate::kernel::ChainStrategy::Compiled(n)) => format!(" [compiled ×{n} ops]"),
        Some(crate::kernel::ChainStrategy::Interpreted(reason)) => {
            format!(" [interpreted: {reason}]")
        }
        None => String::new(),
    }
}

fn chain_label(ops: &[MorselOp<'_>]) -> String {
    let rendered: Vec<&str> = ops
        .iter()
        .map(|op| match op {
            MorselOp::Filter(_) => "Filter",
            MorselOp::Project(_) => "Project",
        })
        .collect();
    format!("[{}]", rendered.join(" -> "))
}

fn explain_node(node: &PipeNode<'_>, ctx: Option<&ExecContext>, out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    match node {
        PipeNode::Scan { table, .. } => {
            out.push_str(&format!("source Scan: {table}\n"));
        }
        PipeNode::Stream(pipe) => {
            out.push_str(&format!(
                "pipeline {} -> collect{}{}\n",
                chain_label(&pipe.ops),
                fallback_note(&pipe.ops, None, ctx),
                kernel_note(&pipe.ops, None, ctx)
            ));
            explain_node(&pipe.input, ctx, out, depth + 1);
        }
        PipeNode::Limit { n, pipe } => {
            out.push_str(&format!(
                "pipeline {} -> limit {n} (early exit){}{}\n",
                chain_label(&pipe.ops),
                fallback_note(&pipe.ops, None, ctx),
                kernel_note(&pipe.ops, None, ctx)
            ));
            explain_node(&pipe.input, ctx, out, depth + 1);
        }
        PipeNode::Aggregate {
            keys,
            aggregates,
            pipe,
        } => {
            out.push_str(&format!(
                "pipeline {} -> partial aggregate ({} keys, {} aggs) + combine{}{}\n",
                chain_label(&pipe.ops),
                keys.len(),
                aggregates.len(),
                fallback_note(&pipe.ops, Some((keys, aggregates)), ctx),
                kernel_note(&pipe.ops, Some((keys, aggregates)), ctx)
            ));
            explain_node(&pipe.input, ctx, out, depth + 1);
        }
        PipeNode::Barrier { plan, inputs } => {
            let label = plan.explain();
            let first = label.lines().next().unwrap_or("?").trim();
            let note = ctx
                .and_then(|c| morsel::barrier_note(plan, c))
                .map(|n| format!(" [{n}]"))
                .unwrap_or_default();
            let sel = ctx
                .and_then(|c| barrier_sel_note(plan, inputs, c))
                .unwrap_or_default();
            out.push_str(&format!("barrier {first}{note}{sel}\n"));
            for input in inputs {
                explain_node(input, ctx, out, depth + 1);
            }
        }
    }
}

/// ` [barrier: …]` annotation for a staged barrier: whether its fused
/// chain child will hand over a live selection vector or gather first
/// (with the capability reason). Sizing is a run-time property — a
/// chain that turns out to fit one morsel still gathers, which profiles
/// report as `gathered: single-morsel` — so this note reflects the
/// session's capability verdict only. `None` when no child is a chain.
fn barrier_sel_note(
    plan: &PhysicalPlan,
    inputs: &[PipeNode<'_>],
    ctx: &ExecContext,
) -> Option<String> {
    use crate::physical::PhysicalPlan as P;
    if !matches!(
        plan,
        P::Join { .. } | P::Sort { .. } | P::TopK { .. } | P::Distinct { .. }
    ) {
        return None;
    }
    let pipe = inputs.iter().find_map(|i| match i {
        PipeNode::Stream(p) => Some(p),
        _ => None,
    })?;
    match crate::kernel::selection_verdict(&pipe.ops, ctx) {
        Ok(()) => Some(" [barrier: selection-fed]".to_string()),
        Err(reason) => Some(format!(" [barrier: gathered: {reason}]")),
    }
}

// ----------------------------------------------------------------------
// Scheduled execution
// ----------------------------------------------------------------------

/// Execute a physical plan through the morsel scheduler. This is the
/// exact execution path: [`crate::exact::execute`] delegates here. With
/// `ctx.threads == 1` every morsel runs on the calling thread; higher
/// thread counts only change *who* processes each morsel, never the
/// result.
pub fn execute(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Batch, ExecError> {
    exec_node(&decompose(plan), ctx)
}

pub(crate) fn exec_node(node: &PipeNode<'_>, ctx: &ExecContext) -> Result<Batch, ExecError> {
    match node {
        PipeNode::Scan { table, schema, .. } => exact::scan_table(table, *schema, ctx),
        PipeNode::Stream(pipe) => {
            let input = exec_node(&pipe.input, ctx)?;
            let skip = scan_skip_mask(&pipe.input, input.rows(), ctx);
            morsel::run_ops(&input, &pipe.ops, None, skip.as_deref(), ctx)
        }
        PipeNode::Limit { n, pipe } => {
            let limit = resolve_limit(n, ctx)?;
            let input = exec_node(&pipe.input, ctx)?;
            let skip = scan_skip_mask(&pipe.input, input.rows(), ctx);
            morsel::run_ops(&input, &pipe.ops, Some(limit), skip.as_deref(), ctx)
        }
        PipeNode::Aggregate {
            keys,
            aggregates,
            pipe,
        } => {
            let input = exec_node(&pipe.input, ctx)?;
            let skip = scan_skip_mask(&pipe.input, input.rows(), ctx);
            morsel::run_aggregate(&input, &pipe.ops, keys, aggregates, skip.as_deref(), ctx)
        }
        PipeNode::Barrier { plan, inputs } => exec_barrier(plan, inputs, ctx),
    }
}

/// Zone-map skip mask for a pipeline fed directly by a pruned base-table
/// scan: one bool per morsel, `true` = every row of that morsel is
/// provably excluded by the compiled filter conjuncts. `None` when
/// pruning is off (`ctx.zone_maps`), the source is not a pruned scan, or
/// no zone map exists for the table. The mask itself handles stale stats
/// and unresolvable bounds conservatively (nothing skipped).
pub(crate) fn scan_skip_mask(
    input: &PipeNode<'_>,
    rows: usize,
    ctx: &ExecContext,
) -> Option<Vec<bool>> {
    if !ctx.zone_maps {
        return None;
    }
    let PipeNode::Scan {
        table,
        access: ScanAccess::Pruned(pruner),
        ..
    } = input
    else {
        return None;
    };
    let zm = ctx.catalog.zone_map(table)?;
    Some(pruner.skip_mask(&zm, rows, ctx.morsel_rows, &ctx.params))
}

/// Materialise (or selection-feed) one barrier child. A Stream child —
/// a fused filter→project chain — is given the chance to hand its
/// `(Batch, SelVec)` pair straight to the barrier; every other child
/// executes normally and arrives as a dense batch.
fn barrier_input(
    node: &PipeNode<'_>,
    ctx: &ExecContext,
) -> Result<morsel::BarrierInput, ExecError> {
    if let PipeNode::Stream(pipe) = node {
        let input = exec_node(&pipe.input, ctx)?;
        let skip = scan_skip_mask(&pipe.input, input.rows(), ctx);
        return morsel::chain_barrier_input(&input, &pipe.ops, skip.as_deref(), ctx);
    }
    Ok(morsel::BarrierInput::Gathered(exec_node(node, ctx)?, None))
}

/// Execute a barrier operator over its children. The match mirrors the
/// operator arms of the historical operator-at-a-time executor;
/// streamable operators never reach here.
fn exec_barrier(
    plan: &PhysicalPlan,
    inputs: &[PipeNode<'_>],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    match plan {
        PhysicalPlan::TvfScan { name, schema, .. } => {
            let inp = exec_node(&inputs[0], ctx)?;
            let tvf = ctx.udfs.table_fn(name)?.clone();
            let out = tvf.invoke_table(&inp, ctx)?;
            crate::udf::check_tvf_output(name, schema.as_deref(), &out)?;
            Ok(out)
        }
        PhysicalPlan::TvfProject {
            name, args, schema, ..
        } => {
            let inp = exec_node(&inputs[0], ctx)?;
            let tvf = ctx.udfs.table_fn(name)?.clone();
            let mut arg_values = Vec::with_capacity(args.len());
            for a in args {
                arg_values.push(eval_expr(a, &inp, ctx)?.into_arg());
            }
            let out = tvf.invoke_cols(&arg_values, ctx)?;
            crate::udf::check_tvf_output(name, schema.as_deref(), &out)?;
            Ok(out)
        }
        PhysicalPlan::Join { kind, on, .. } => {
            let l = barrier_input(&inputs[0], ctx)?;
            let r = barrier_input(&inputs[1], ctx)?;
            morsel::run_join(l, r, *kind, on, ctx)
        }
        PhysicalPlan::Sort { keys, .. } => {
            morsel::run_sort(barrier_input(&inputs[0], ctx)?, keys, ctx)
        }
        PhysicalPlan::TopK { keys, n, .. } => {
            let k = resolve_limit(n, ctx)?;
            morsel::run_topk(barrier_input(&inputs[0], ctx)?, keys, k, ctx)
        }
        PhysicalPlan::Window { windows, .. } => {
            let inp = exec_node(&inputs[0], ctx)?;
            exact::window_batch(&inp, windows, ctx)
        }
        PhysicalPlan::Distinct { .. } => morsel::run_distinct(barrier_input(&inputs[0], ctx)?, ctx),
        PhysicalPlan::UnionAll { .. } => {
            let l = exec_node(&inputs[0], ctx)?;
            let r = exec_node(&inputs[1], ctx)?;
            exact::union_all_batches(&l, &r)
        }
        PhysicalPlan::AnnTopK {
            table,
            schema,
            column,
            query,
            metric,
            n,
            path,
        } => exact::ann_topk(table, schema, column, query, *metric, n, path, ctx),
        // Streamable operators are fused into pipelines by `decompose`.
        PhysicalPlan::Scan { .. }
        | PhysicalPlan::Filter { .. }
        | PhysicalPlan::Project { .. }
        | PhysicalPlan::Aggregate { .. }
        | PhysicalPlan::Limit { .. } => {
            unreachable!("streamable operator reached the barrier executor")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::lower;
    use crate::udf::UdfRegistry;
    use tdp_sql::plan::{build_plan, PlannerContext};
    use tdp_sql::{optimizer, parse};
    use tdp_storage::{Catalog, TableBuilder};

    fn setup() -> Catalog {
        let catalog = Catalog::new();
        catalog.register(
            TableBuilder::new()
                .col_f32("v", (0..100).map(|i| i as f32).collect())
                .col_i64("k", (0..100).map(|i| i % 5).collect())
                .build("t"),
        );
        catalog
    }

    fn compile(catalog: &Catalog, sql: &str) -> PhysicalPlan {
        let udfs = UdfRegistry::new();
        let plan = optimizer::optimize(
            build_plan(&parse(sql).unwrap(), &PlannerContext::default()).unwrap(),
        );
        lower(&plan, catalog, &udfs).unwrap()
    }

    #[test]
    fn filter_project_chains_fuse() {
        let c = setup();
        let plan = compile(&c, "SELECT v * 2 AS d FROM t WHERE v > 10");
        let node = decompose(&plan);
        match node {
            PipeNode::Stream(pipe) => {
                assert_eq!(pipe.ops.len(), 2, "filter and project fuse into one chain");
                assert!(matches!(pipe.ops[0], MorselOp::Filter(_)));
                assert!(matches!(pipe.ops[1], MorselOp::Project(_)));
                assert!(matches!(*pipe.input, PipeNode::Scan { .. }));
            }
            other => panic!("expected fused stream, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_breaks_the_pipeline() {
        let c = setup();
        let plan = compile(&c, "SELECT k, COUNT(*) FROM t WHERE v > 10 GROUP BY k");
        match decompose(&plan) {
            PipeNode::Aggregate { pipe, .. } => {
                assert_eq!(pipe.ops.len(), 1, "the filter fuses below the aggregate");
                assert!(matches!(*pipe.input, PipeNode::Scan { .. }));
            }
            other => panic!("expected aggregate sink, got {other:?}"),
        }
    }

    #[test]
    fn sort_is_a_barrier() {
        let c = setup();
        let plan = compile(&c, "SELECT v FROM t WHERE v > 10 ORDER BY v");
        // Sort sits on top; the filter chain streams below it.
        match decompose(&plan) {
            PipeNode::Barrier { plan, inputs } => {
                assert!(matches!(plan, PhysicalPlan::Sort { .. }));
                assert!(matches!(inputs[0], PipeNode::Stream(_)));
            }
            other => panic!("expected sort barrier, got {other:?}"),
        }
    }

    #[test]
    fn explain_renders_chains_and_barriers() {
        let c = setup();
        let text = explain(&compile(
            &c,
            "SELECT k, COUNT(*) FROM t WHERE v > 10 GROUP BY k ORDER BY k",
        ));
        assert!(text.contains("barrier Sort"), "{text}");
        assert!(text.contains("partial aggregate"), "{text}");
        assert!(text.contains("[Filter]"), "{text}");
        assert!(text.contains("source Scan: t"), "{text}");
    }

    #[test]
    fn limit_sink_carries_early_exit() {
        let c = setup();
        let plan = compile(&c, "SELECT v FROM t WHERE v > 3 LIMIT 7");
        match decompose(&plan) {
            PipeNode::Limit { n, pipe } => {
                assert_eq!(n, LimitCount::Const(7));
                assert!(!pipe.ops.is_empty());
            }
            other => panic!("expected limit sink, got {other:?}"),
        }
        let text = explain(&plan);
        assert!(text.contains("limit 7 (early exit)"), "{text}");
    }
}
