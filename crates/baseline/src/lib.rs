//! # tdp-baseline
//!
//! A deliberately conventional, standalone mini columnar engine — the
//! "external analytical database" comparator of the OCR experiment (paper
//! §5.2 loads pre-extracted tables into DuckDB and queries them there).
//!
//! It shares no code with the tensor engine: values are plain `f64`/string
//! vectors, execution is scalar vector-at-a-time, and the API covers what
//! the bulk-conversion pipeline needs — bulk load, equality filters and
//! column averages. Like DuckDB in the paper's comparison, query latency
//! here is *not* the bottleneck; the two-orders-of-magnitude gap comes from
//! converting every image up front.

use std::collections::HashMap;

/// A column of the baseline engine.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineColumn {
    Num(Vec<f64>),
    Str(Vec<String>),
}

impl BaselineColumn {
    pub fn len(&self) -> usize {
        match self {
            BaselineColumn::Num(v) => v.len(),
            BaselineColumn::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A table: equal-length named columns.
#[derive(Debug, Clone, Default)]
pub struct BaselineTable {
    names: Vec<String>,
    columns: Vec<BaselineColumn>,
}

impl BaselineTable {
    pub fn new() -> BaselineTable {
        BaselineTable::default()
    }

    pub fn add_num(&mut self, name: &str, values: Vec<f64>) -> &mut Self {
        self.check_len(values.len());
        self.names.push(name.to_owned());
        self.columns.push(BaselineColumn::Num(values));
        self
    }

    pub fn add_str(&mut self, name: &str, values: Vec<String>) -> &mut Self {
        self.check_len(values.len());
        self.names.push(name.to_owned());
        self.columns.push(BaselineColumn::Str(values));
        self
    }

    fn check_len(&self, n: usize) {
        if let Some(first) = self.columns.first() {
            assert_eq!(first.len(), n, "ragged baseline table");
        }
    }

    pub fn rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    pub fn column(&self, name: &str) -> Option<&BaselineColumn> {
        self.names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
            .map(|i| &self.columns[i])
    }

    /// Append another table with the same schema (bulk load).
    pub fn append(&mut self, other: &BaselineTable) {
        assert_eq!(self.names, other.names, "schema mismatch on append");
        for (mine, theirs) in self.columns.iter_mut().zip(&other.columns) {
            match (mine, theirs) {
                (BaselineColumn::Num(a), BaselineColumn::Num(b)) => a.extend_from_slice(b),
                (BaselineColumn::Str(a), BaselineColumn::Str(b)) => a.extend_from_slice(b),
                _ => panic!("column type mismatch on append"),
            }
        }
    }
}

/// Row predicate for the tiny query API.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// String column equals literal.
    StrEq(String, String),
    /// Numeric column within `[lo, hi]`.
    NumBetween(String, f64, f64),
    /// Keep everything.
    True,
}

/// The engine: a named-table store with a micro query API.
#[derive(Debug, Default)]
pub struct BaselineDb {
    tables: HashMap<String, BaselineTable>,
}

impl BaselineDb {
    pub fn new() -> BaselineDb {
        BaselineDb::default()
    }

    /// Create or replace a table.
    pub fn create(&mut self, name: &str, table: BaselineTable) {
        self.tables.insert(name.to_ascii_lowercase(), table);
    }

    /// Bulk-append rows into an existing table (creating it if absent).
    pub fn insert(&mut self, name: &str, rows: &BaselineTable) {
        match self.tables.get_mut(&name.to_ascii_lowercase()) {
            Some(t) => t.append(rows),
            None => self.create(name, rows.clone()),
        }
    }

    pub fn table(&self, name: &str) -> Option<&BaselineTable> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    fn selection(&self, table: &BaselineTable, pred: &Predicate) -> Vec<usize> {
        let n = table.rows();
        match pred {
            Predicate::True => (0..n).collect(),
            Predicate::StrEq(col, lit) => match table.column(col) {
                Some(BaselineColumn::Str(v)) => (0..n).filter(|&i| v[i] == *lit).collect(),
                _ => Vec::new(),
            },
            Predicate::NumBetween(col, lo, hi) => match table.column(col) {
                Some(BaselineColumn::Num(v)) => {
                    (0..n).filter(|&i| v[i] >= *lo && v[i] <= *hi).collect()
                }
                _ => Vec::new(),
            },
        }
    }

    /// `SELECT COUNT(*) FROM t WHERE pred`.
    pub fn count(&self, table: &str, pred: &Predicate) -> usize {
        self.table(table)
            .map(|t| self.selection(t, pred).len())
            .unwrap_or(0)
    }

    /// `SELECT AVG(col), … FROM t WHERE pred` for several columns.
    /// Returns `None` for missing tables/columns or empty selections.
    pub fn avg(&self, table: &str, cols: &[&str], pred: &Predicate) -> Option<Vec<f64>> {
        let t = self.table(table)?;
        let sel = self.selection(t, pred);
        if sel.is_empty() {
            return None;
        }
        let mut out = Vec::with_capacity(cols.len());
        for &c in cols {
            match t.column(c)? {
                BaselineColumn::Num(v) => {
                    out.push(sel.iter().map(|&i| v[i]).sum::<f64>() / sel.len() as f64)
                }
                BaselineColumn::Str(_) => return None,
            }
        }
        Some(out)
    }

    /// `SELECT key, COUNT(*) FROM t GROUP BY key` over a string column.
    pub fn group_count(&self, table: &str, key: &str) -> Option<Vec<(String, usize)>> {
        let t = self.table(table)?;
        let BaselineColumn::Str(v) = t.column(key)? else {
            return None;
        };
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for s in v {
            *counts.entry(s).or_default() += 1;
        }
        let mut out: Vec<(String, usize)> =
            counts.into_iter().map(|(k, c)| (k.to_owned(), c)).collect();
        out.sort();
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iris_like() -> BaselineTable {
        let mut t = BaselineTable::new();
        t.add_num("SepalLength", vec![5.0, 6.0, 7.0, 4.0])
            .add_num("PetalLength", vec![1.0, 2.0, 3.0, 4.0])
            .add_str("ts", vec!["a".into(), "b".into(), "a".into(), "c".into()]);
        t
    }

    #[test]
    fn create_count_avg() {
        let mut db = BaselineDb::new();
        db.create("iris", iris_like());
        assert_eq!(db.count("iris", &Predicate::True), 4);
        assert_eq!(
            db.count("iris", &Predicate::StrEq("ts".into(), "a".into())),
            2
        );
        let avgs = db
            .avg(
                "iris",
                &["SepalLength", "PetalLength"],
                &Predicate::StrEq("ts".into(), "a".into()),
            )
            .unwrap();
        assert_eq!(avgs, vec![6.0, 2.0]);
    }

    #[test]
    fn numeric_range_predicate() {
        let mut db = BaselineDb::new();
        db.create("iris", iris_like());
        assert_eq!(
            db.count(
                "iris",
                &Predicate::NumBetween("SepalLength".into(), 5.5, 7.5)
            ),
            2
        );
    }

    #[test]
    fn bulk_insert_appends() {
        let mut db = BaselineDb::new();
        db.insert("iris", &iris_like());
        db.insert("iris", &iris_like());
        assert_eq!(db.count("iris", &Predicate::True), 8);
    }

    #[test]
    fn group_count() {
        let mut db = BaselineDb::new();
        db.create("iris", iris_like());
        let g = db.group_count("iris", "ts").unwrap();
        assert_eq!(g, vec![("a".into(), 2), ("b".into(), 1), ("c".into(), 1)]);
    }

    #[test]
    fn missing_cases() {
        let db = BaselineDb::new();
        assert_eq!(db.count("nope", &Predicate::True), 0);
        assert!(db.avg("nope", &["x"], &Predicate::True).is_none());
        let mut db2 = BaselineDb::new();
        db2.create("t", iris_like());
        assert!(
            db2.avg("t", &["ts"], &Predicate::True).is_none(),
            "avg over strings is refused"
        );
        assert!(
            db2.avg(
                "t",
                &["SepalLength"],
                &Predicate::StrEq("ts".into(), "zz".into())
            )
            .is_none(),
            "empty selection yields no average"
        );
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_tables_rejected() {
        let mut t = BaselineTable::new();
        t.add_num("a", vec![1.0, 2.0]).add_num("b", vec![1.0]);
    }
}
