//! A 5×7 bitmap glyph atlas (digits, '.', '-').
//!
//! Used by the digit generator (upscaled, jittered, noised) and by the
//! document renderer / OCR template matcher (crisp, at integer scale).

use tdp_tensor::{F32Tensor, Tensor};

/// Glyph width in atlas pixels.
pub const GLYPH_W: usize = 5;
/// Glyph height in atlas pixels.
pub const GLYPH_H: usize = 7;

/// Characters available in the atlas, in atlas order.
pub const CHARSET: &[char] = &['0', '1', '2', '3', '4', '5', '6', '7', '8', '9', '.', '-'];

// Each row is a 5-bit pattern, LSB = leftmost pixel.
#[rustfmt::skip]
const GLYPHS: [[u8; 7]; 12] = [
    // 0
    [0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110],
    // 1
    [0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110],
    // 2
    [0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111],
    // 3
    [0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110],
    // 4
    [0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010],
    // 5
    [0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110],
    // 6
    [0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110],
    // 7
    [0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000],
    // 8
    [0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110],
    // 9
    [0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100],
    // .
    [0b00000, 0b00000, 0b00000, 0b00000, 0b00000, 0b01100, 0b01100],
    // -
    [0b00000, 0b00000, 0b00000, 0b01110, 0b00000, 0b00000, 0b00000],
];

/// Index of a character within the atlas.
pub fn glyph_index(c: char) -> Option<usize> {
    CHARSET.iter().position(|&g| g == c)
}

/// The glyph bitmap of a character as a `[GLYPH_H, GLYPH_W]` 0/1 tensor.
pub fn glyph(c: char) -> Option<F32Tensor> {
    let idx = glyph_index(c)?;
    let mut data = Vec::with_capacity(GLYPH_H * GLYPH_W);
    for row in GLYPHS[idx] {
        for x in 0..GLYPH_W {
            data.push(if row & (1 << x) != 0 { 1.0 } else { 0.0 });
        }
    }
    Some(Tensor::from_vec(data, &[GLYPH_H, GLYPH_W]))
}

/// Glyph scaled up by an integer factor: `[GLYPH_H*s, GLYPH_W*s]`.
pub fn glyph_scaled(c: char, s: usize) -> Option<F32Tensor> {
    let g = glyph(c)?;
    let (h, w) = (GLYPH_H * s, GLYPH_W * s);
    let mut data = vec![0.0f32; h * w];
    for y in 0..h {
        for x in 0..w {
            data[y * w + x] = g.get(&[y / s, x / s]);
        }
    }
    Some(Tensor::from_vec(data, &[h, w]))
}

/// Stamp a glyph onto a canvas (additive, clamped to 1) at `(top, left)`.
/// Out-of-bounds parts are clipped.
pub fn stamp(canvas: &mut F32Tensor, glyph: &F32Tensor, top: isize, left: isize) {
    let (ch, cw) = (canvas.shape()[0], canvas.shape()[1]);
    let (gh, gw) = (glyph.shape()[0], glyph.shape()[1]);
    let g = glyph.clone();
    let data = canvas.data_mut();
    for gy in 0..gh {
        for gx in 0..gw {
            let y = top + gy as isize;
            let x = left + gx as isize;
            if y >= 0 && (y as usize) < ch && x >= 0 && (x as usize) < cw {
                let idx = y as usize * cw + x as usize;
                data[idx] = (data[idx] + g.get(&[gy, gx])).min(1.0);
            }
        }
    }
}

/// Render a string of atlas characters onto a fresh canvas with 1px
/// letter-spacing at integer scale `s`. Returns `[GLYPH_H*s, width]`.
pub fn render_text(text: &str, s: usize) -> F32Tensor {
    let n = text.chars().count();
    let advance = (GLYPH_W + 1) * s;
    let w = if n == 0 { 1 } else { n * advance };
    let mut canvas = F32Tensor::zeros(&[GLYPH_H * s, w]);
    for (i, c) in text.chars().enumerate() {
        if let Some(g) = glyph_scaled(c, s) {
            stamp(&mut canvas, &g, 0, (i * advance) as isize);
        }
    }
    canvas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_covers_charset() {
        for &c in CHARSET {
            let g = glyph(c).unwrap_or_else(|| panic!("glyph for '{c}'"));
            assert_eq!(g.shape(), &[GLYPH_H, GLYPH_W]);
        }
        assert!(glyph('x').is_none());
    }

    #[test]
    fn glyphs_are_distinct() {
        for (i, &a) in CHARSET.iter().enumerate() {
            for &b in &CHARSET[i + 1..] {
                assert_ne!(
                    glyph(a).unwrap().to_vec(),
                    glyph(b).unwrap().to_vec(),
                    "glyphs '{a}' and '{b}' must differ"
                );
            }
        }
    }

    #[test]
    fn scaling_preserves_mass_ratio() {
        let g = glyph('8').unwrap();
        let g3 = glyph_scaled('8', 3).unwrap();
        assert_eq!(g3.shape(), &[21, 15]);
        assert!((g3.sum() - g.sum() * 9.0).abs() < 1e-5);
    }

    #[test]
    fn stamping_clips_and_clamps() {
        let mut canvas = F32Tensor::zeros(&[7, 5]);
        let g = glyph('1').unwrap();
        stamp(&mut canvas, &g, 0, 0);
        stamp(&mut canvas, &g, 0, 0); // double-stamp must clamp at 1
        assert!(canvas.max_all() <= 1.0);
        // Off-canvas stamp is a no-op.
        let before = canvas.to_vec();
        stamp(&mut canvas, &g, -20, -20);
        assert_eq!(canvas.to_vec(), before);
    }

    #[test]
    fn render_text_width() {
        let t = render_text("3.14", 2);
        assert_eq!(t.shape()[0], 14);
        assert_eq!(t.shape()[1], 4 * (GLYPH_W + 1) * 2);
        assert!(t.sum() > 0.0);
    }
}
