//! Adult-Income-like tabular data, LLP bags and the Laplace mechanism.
//!
//! The LLP experiments (paper §5.3/§5.4) need a binary classification task
//! whose instance labels can be aggregated into per-bag counts. We generate
//! census-flavoured numeric features and draw labels from a noisy linear
//! logistic ground truth, so a linear classifier (the paper's Listing 9
//! model) can approach a known Bayes-ish error but never reach zero.

use tdp_tensor::{F32Tensor, I64Tensor, Rng64, Tensor};

/// Number of numeric features (age, education-num, hours/week, capital
/// gain/loss and five engineered interaction stand-ins).
pub const NUM_FEATURES: usize = 10;

/// A labelled tabular dataset.
#[derive(Debug, Clone)]
pub struct IncomeDataset {
    /// `[n, NUM_FEATURES]`, standardised.
    pub features: F32Tensor,
    /// `[n]`, 0 = "<=50K", 1 = ">50K".
    pub labels: I64Tensor,
    /// The generating hyperplane (for diagnostics).
    pub true_weights: F32Tensor,
}

impl IncomeDataset {
    pub fn len(&self) -> usize {
        self.labels.numel()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into (train, test) shares of the *same* task: both halves are
    /// labelled by the same generating hyperplane. Generating two separate
    /// datasets would create two unrelated tasks.
    pub fn split(&self, n_train: usize) -> (IncomeDataset, IncomeDataset) {
        assert!(n_train < self.len(), "split point beyond dataset");
        let n_test = self.len() - n_train;
        let train = IncomeDataset {
            features: self.features.narrow(0, 0, n_train),
            labels: self.labels.narrow(0, 0, n_train),
            true_weights: self.true_weights.clone(),
        };
        let test = IncomeDataset {
            features: self.features.narrow(0, n_train, n_test),
            labels: self.labels.narrow(0, n_train, n_test),
            true_weights: self.true_weights.clone(),
        };
        (train, test)
    }
}

/// Generate `n` records with label noise `flip_prob` (label flips model
/// Bayes error; 0.1 mirrors the difficulty band of the census task).
pub fn generate_income(n: usize, flip_prob: f64, rng: &mut Rng64) -> IncomeDataset {
    let mut w = Vec::with_capacity(NUM_FEATURES);
    for _ in 0..NUM_FEATURES {
        w.push(rng.normal_with(0.0, 1.0) as f32);
    }
    let bias = rng.normal_with(0.0, 0.3) as f32;

    let mut feats = Vec::with_capacity(n * NUM_FEATURES);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let mut z = bias;
        for &wi in &w {
            let x = rng.normal() as f32;
            feats.push(x);
            z += wi * x;
        }
        // Sharpened logistic: most of the error budget comes from the
        // explicit flips, not boundary sampling, so the task has a clear
        // recoverable signal (like the census task for linear models).
        let p = 1.0 / (1.0 + (-3.0 * z as f64).exp());
        let mut y = i64::from(rng.coin(p));
        if rng.coin(flip_prob) {
            y = 1 - y;
        }
        labels.push(y);
    }
    IncomeDataset {
        features: Tensor::from_vec(feats, &[n, NUM_FEATURES]),
        labels: Tensor::from_vec(labels, &[n]),
        true_weights: Tensor::from_vec(w, &[NUM_FEATURES]),
    }
}

/// One LLP bag: instances plus aggregate class counts (no instance labels).
#[derive(Debug, Clone)]
pub struct Bag {
    /// `[bag_size, NUM_FEATURES]`.
    pub features: F32Tensor,
    /// `[2]` — count of class 0 and class 1 in the bag. May be noisy (DP)
    /// and is stored as f32 because the Laplace mechanism is continuous.
    pub counts: F32Tensor,
}

/// Partition a dataset into bags of `bag_size` with exact count labels.
/// Trailing records that do not fill a bag are dropped (as in LLP practice).
pub fn make_bags(data: &IncomeDataset, bag_size: usize, rng: &mut Rng64) -> Vec<Bag> {
    assert!(bag_size > 0, "bag size must be positive");
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut bags = Vec::with_capacity(n / bag_size);
    for chunk in order.chunks_exact(bag_size) {
        let mut feats = Vec::with_capacity(bag_size * NUM_FEATURES);
        let mut counts = [0.0f32; 2];
        for &i in chunk {
            feats.extend_from_slice(data.features.row(i).data());
            counts[data.labels.at(i) as usize] += 1.0;
        }
        bags.push(Bag {
            features: Tensor::from_vec(feats, &[bag_size, NUM_FEATURES]),
            counts: Tensor::from_vec(counts.to_vec(), &[2]),
        });
    }
    bags
}

/// Apply the Laplace mechanism to every bag's counts (label-DP, paper
/// §5.4): each count gets independent `Laplace(0, 1/epsilon)` noise.
pub fn add_label_dp_noise(bags: &mut [Bag], epsilon: f64, rng: &mut Rng64) {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let scale = 1.0 / epsilon;
    for bag in bags {
        let noisy: Vec<f32> = bag
            .counts
            .data()
            .iter()
            .map(|&c| c + rng.laplace(scale) as f32)
            .collect();
        bag.counts = Tensor::from_vec(noisy, &[2]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_and_balance() {
        let mut rng = Rng64::new(1);
        let ds = generate_income(2000, 0.1, &mut rng);
        assert_eq!(ds.features.shape(), &[2000, NUM_FEATURES]);
        let pos = ds.labels.count_eq(1);
        assert!(
            pos > 400 && pos < 1600,
            "labels should not be degenerate: {pos}"
        );
    }

    #[test]
    fn labels_are_linearly_predictable() {
        // The generating hyperplane itself must beat chance comfortably,
        // otherwise the LLP experiment has no signal to recover.
        let mut rng = Rng64::new(2);
        let ds = generate_income(4000, 0.1, &mut rng);
        let mut correct = 0;
        for i in 0..ds.len() {
            let x = ds.features.row(i);
            let z: f32 = x
                .data()
                .iter()
                .zip(ds.true_weights.data())
                .map(|(a, b)| a * b)
                .sum();
            if i64::from(z > 0.0) == ds.labels.at(i) {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.len() as f64;
        assert!(acc > 0.75, "true hyperplane accuracy {acc}");
    }

    #[test]
    fn bags_partition_and_count() {
        let mut rng = Rng64::new(3);
        let ds = generate_income(1000, 0.0, &mut rng);
        let bags = make_bags(&ds, 32, &mut rng);
        assert_eq!(bags.len(), 1000 / 32);
        let total: f32 = bags.iter().map(|b| b.counts.sum()).sum();
        assert_eq!(
            total as usize,
            31 * 32,
            "each bag contributes bag_size counts"
        );
        for b in &bags {
            assert_eq!(b.features.shape(), &[32, NUM_FEATURES]);
            assert_eq!(b.counts.sum(), 32.0);
        }
    }

    #[test]
    fn bag_size_one_exposes_instance_labels() {
        let mut rng = Rng64::new(4);
        let ds = generate_income(64, 0.0, &mut rng);
        let bags = make_bags(&ds, 1, &mut rng);
        assert_eq!(bags.len(), 64);
        for b in &bags {
            // Exactly one of the two counts is 1.
            let c = b.counts.to_vec();
            assert!((c[0] == 1.0 && c[1] == 0.0) || (c[0] == 0.0 && c[1] == 1.0));
        }
    }

    #[test]
    fn dp_noise_scale_tracks_epsilon() {
        let mut rng = Rng64::new(5);
        let ds = generate_income(4096, 0.0, &mut rng);
        let clean = make_bags(&ds, 8, &mut rng);
        let mut strict = clean.clone();
        add_label_dp_noise(&mut strict, 0.1, &mut rng); // scale 10
        let mut loose = clean.clone();
        add_label_dp_noise(&mut loose, 10.0, &mut rng); // scale 0.1
        let dev = |noisy: &[Bag]| -> f64 {
            noisy
                .iter()
                .zip(&clean)
                .map(|(a, b)| (a.counts.sub(&b.counts)).abs().mean())
                .sum::<f64>()
                / clean.len() as f64
        };
        let d_strict = dev(&strict);
        let d_loose = dev(&loose);
        assert!(
            d_strict > 10.0 * d_loose,
            "epsilon 0.1 noise ({d_strict}) must dwarf epsilon 10 noise ({d_loose})"
        );
    }
}
