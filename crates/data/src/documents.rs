//! Document images containing rendered numeric tables (OCR substrate).
//!
//! Substitution for the paper's §5.2 setup (`dataframe_image` renderings of
//! Iris dataframes): each document is a grayscale image with an anchor
//! marker and a table of fixed-format numbers rendered from the 5×7 atlas
//! at a random offset, plus a timestamp metadata column. The OCR pipeline
//! in `tdp-ml` must *localise* the table (correlating for the anchor) and
//! *recognise* each character (template matching) — real per-image tensor
//! compute, which is what makes the lazy-vs-bulk comparison meaningful.

use tdp_tensor::{F32Tensor, Rng64, Tensor};

use crate::font;

/// Geometry shared by the renderer and the OCR pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocGeometry {
    /// Integer glyph scale.
    pub scale: usize,
    /// Table rows / columns.
    pub rows: usize,
    pub cols: usize,
    /// Characters per cell (fixed-format "d.dd" = 4).
    pub cell_chars: usize,
    /// Document image size.
    pub height: usize,
    pub width: usize,
    /// Side of the solid anchor square stamped at the table origin.
    pub anchor: usize,
}

impl DocGeometry {
    /// The default Iris-like geometry: 6 data rows × 4 columns.
    pub fn iris() -> DocGeometry {
        DocGeometry {
            scale: 2,
            rows: 6,
            cols: 4,
            cell_chars: 4,
            height: 160,
            width: 256,
            anchor: 10,
        }
    }

    /// Advance per character in pixels.
    pub fn char_advance(&self) -> usize {
        (font::GLYPH_W + 1) * self.scale
    }

    /// Cell width in pixels (including padding).
    pub fn cell_w(&self) -> usize {
        self.cell_chars * self.char_advance() + 2 * self.scale
    }

    /// Row height in pixels.
    pub fn row_h(&self) -> usize {
        font::GLYPH_H * self.scale + 3 * self.scale
    }

    /// Top-left of cell (r, c) relative to the anchor's top-left.
    pub fn cell_origin(&self, r: usize, c: usize) -> (usize, usize) {
        (
            self.anchor + 2 * self.scale + r * self.row_h(),
            c * self.cell_w(),
        )
    }

    /// Total table extent (for bounds checks).
    pub fn table_extent(&self) -> (usize, usize) {
        (
            self.anchor + 2 * self.scale + self.rows * self.row_h(),
            self.cols * self.cell_w(),
        )
    }
}

/// A document dataset.
#[derive(Debug, Clone)]
pub struct DocumentDataset {
    /// `[n, 1, height, width]` grayscale images (ink = bright on dark 0).
    pub images: F32Tensor,
    /// Per-document timestamp strings (e.g. `"2022:08:10"`).
    pub timestamps: Vec<String>,
    /// Ground-truth tables, each `[rows, cols]`.
    pub tables: Vec<F32Tensor>,
    /// Column names of the rendered tables.
    pub schema: Vec<String>,
    pub geometry: DocGeometry,
}

impl DocumentDataset {
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }
}

/// Format a value the way the renderer and OCR both expect: `d.dd`.
pub fn format_cell(v: f32) -> String {
    format!("{:.2}", v.clamp(0.0, 9.99))
}

/// Render one document: anchor + table at a random offset + noise.
/// Returns the image and the ground-truth table.
pub fn render_document(g: DocGeometry, rng: &mut Rng64) -> (F32Tensor, F32Tensor) {
    let (ext_h, ext_w) = g.table_extent();
    assert!(
        ext_h + 16 < g.height && ext_w + 16 < g.width,
        "table must fit"
    );
    let off_y = 4 + rng.below(g.height - ext_h - 8);
    let off_x = 4 + rng.below(g.width - ext_w - 8);

    let mut img = F32Tensor::zeros(&[g.height, g.width]);
    // Anchor: solid square at the table origin.
    {
        let d = img.data_mut();
        for y in 0..g.anchor {
            for x in 0..g.anchor {
                d[(off_y + y) * g.width + off_x + x] = 1.0;
            }
        }
    }

    // Table values (Iris-flavoured ranges per column).
    let mut table = Vec::with_capacity(g.rows * g.cols);
    for _ in 0..g.rows {
        for c in 0..g.cols {
            let (lo, hi) = match c % 4 {
                0 => (4.3, 7.9), // sepal length
                1 => (2.0, 4.4), // sepal width
                2 => (1.0, 6.9), // petal length
                _ => (0.1, 2.5), // petal width
            };
            // Quantise to the rendered precision so ground truth matches
            // what OCR can possibly read back.
            let v = (rng.uniform_range(lo, hi) * 100.0).round() as f32 / 100.0;
            table.push(v);
        }
    }

    for r in 0..g.rows {
        for c in 0..g.cols {
            let (cy, cx) = g.cell_origin(r, c);
            let text = format_cell(table[r * g.cols + c]);
            let rendered = font::render_text(&text, g.scale);
            font::stamp(
                &mut img,
                &rendered,
                (off_y + cy) as isize,
                (off_x + cx) as isize,
            );
        }
    }

    // Light sensor noise.
    let d = img.data_mut();
    for v in d.iter_mut() {
        *v = (*v + rng.normal_with(0.0, 0.03) as f32).clamp(0.0, 1.0);
    }

    (
        img.reshape(&[1, g.height, g.width]),
        Tensor::from_vec(table, &[g.rows, g.cols]),
    )
}

/// Generate `n` documents with distinct timestamps `2022:08:01 + i days`
/// (wrapping months loosely — they only need to be unique and filterable).
pub fn generate_documents(n: usize, g: DocGeometry, rng: &mut Rng64) -> DocumentDataset {
    let mut pixels = Vec::with_capacity(n * g.height * g.width);
    let mut timestamps = Vec::with_capacity(n);
    let mut tables = Vec::with_capacity(n);
    for i in 0..n {
        let (img, table) = render_document(g, rng);
        pixels.extend_from_slice(img.data());
        timestamps.push(format!("2022:{:02}:{:02}", 8 + i / 28, 1 + i % 28));
        tables.push(table);
    }
    DocumentDataset {
        images: Tensor::from_vec(pixels, &[n, 1, g.height, g.width]),
        timestamps,
        tables,
        schema: vec![
            "SepalLength".to_owned(),
            "SepalWidth".to_owned(),
            "PetalLength".to_owned(),
            "PetalWidth".to_owned(),
        ],
        geometry: g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_fits_default_canvas() {
        let g = DocGeometry::iris();
        let (h, w) = g.table_extent();
        assert!(h < g.height && w < g.width);
        let (y0, x0) = g.cell_origin(0, 0);
        let (y1, x1) = g.cell_origin(1, 1);
        assert!(y1 > y0 && x1 > x0);
    }

    #[test]
    fn render_document_contains_anchor_and_ink() {
        let mut rng = Rng64::new(1);
        let g = DocGeometry::iris();
        let (img, table) = render_document(g, &mut rng);
        assert_eq!(img.shape(), &[1, g.height, g.width]);
        assert_eq!(table.shape(), &[g.rows, g.cols]);
        // Anchor contributes a solid bright block.
        assert!(img.sum() > (g.anchor * g.anchor) as f32 * 0.8);
        // Values respect the per-column ranges.
        for r in 0..g.rows {
            assert!(table.get(&[r, 3]) <= 2.5 + 1e-3);
            assert!(table.get(&[r, 0]) >= 4.3 - 1e-3);
        }
    }

    #[test]
    fn format_cell_fixed_width() {
        assert_eq!(format_cell(5.0), "5.00");
        assert_eq!(format_cell(0.1), "0.10");
        assert_eq!(format_cell(42.0), "9.99", "clamped to renderable range");
        for v in [0.1f32, 3.25159, 9.99] {
            assert_eq!(format_cell(v).len(), 4);
        }
    }

    #[test]
    fn dataset_has_unique_timestamps() {
        let mut rng = Rng64::new(2);
        let ds = generate_documents(40, DocGeometry::iris(), &mut rng);
        assert_eq!(ds.len(), 40);
        let mut t = ds.timestamps.clone();
        t.sort();
        t.dedup();
        assert_eq!(t.len(), 40, "timestamps must be unique for point filters");
        assert_eq!(ds.schema.len(), 4);
    }

    #[test]
    fn quantised_truth_is_representable() {
        let mut rng = Rng64::new(3);
        let g = DocGeometry::iris();
        let (_, table) = render_document(g, &mut rng);
        for &v in table.data() {
            let rendered: f32 = format_cell(v).parse().unwrap();
            assert!((rendered - v).abs() < 1e-6, "{v} not render-exact");
        }
    }
}
