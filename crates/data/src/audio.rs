//! Synthetic audio clips: the audio modality of the multi-modal storage
//! story (paper §1 lists audio alongside images/video/text as data the
//! tensor abstraction must hold natively).
//!
//! Each clip is a 1-d waveform row of a 2-d `[n, samples]` tensor column —
//! exactly how TDP stores per-row vectors. Classes are acoustically
//! distinct so a small feature extractor can separate them: pure tones
//! (low/high), rising chirps, white noise, and click trains.

use tdp_tensor::{F32Tensor, I64Tensor, Rng64, Tensor};

/// Samples per second of every generated clip.
pub const SAMPLE_RATE: usize = 8_000;
/// Samples per clip (0.25 s).
pub const CLIP_LEN: usize = 2_000;

/// The acoustic classes of the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AudioClass {
    /// Steady sine around 220 Hz.
    ToneLow,
    /// Steady sine around 1200 Hz.
    ToneHigh,
    /// Linear chirp sweeping 200 → 2000 Hz.
    Chirp,
    /// White noise.
    Noise,
    /// Periodic clicks over silence.
    Clicks,
}

impl AudioClass {
    pub const ALL: [AudioClass; 5] = [
        AudioClass::ToneLow,
        AudioClass::ToneHigh,
        AudioClass::Chirp,
        AudioClass::Noise,
        AudioClass::Clicks,
    ];

    /// Stable id, aligned with the position in [`AudioClass::ALL`].
    pub fn id(self) -> i64 {
        AudioClass::ALL
            .iter()
            .position(|c| *c == self)
            .expect("class in ALL") as i64
    }

    pub fn label(self) -> &'static str {
        match self {
            AudioClass::ToneLow => "tone_low",
            AudioClass::ToneHigh => "tone_high",
            AudioClass::Chirp => "chirp",
            AudioClass::Noise => "noise",
            AudioClass::Clicks => "clicks",
        }
    }
}

/// A generated audio corpus.
pub struct AudioDataset {
    /// `[n, CLIP_LEN]` waveforms in `[-1, 1]`.
    pub clips: F32Tensor,
    /// Class id per clip.
    pub class_ids: I64Tensor,
    /// Class per clip.
    pub classes: Vec<AudioClass>,
}

impl AudioDataset {
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// Render one clip of a class with random phase/jitter/amplitude.
pub fn render_clip(class: AudioClass, rng: &mut Rng64) -> F32Tensor {
    let amp = 0.5 + 0.4 * rng.uniform() as f32;
    let phase = rng.uniform() as f32 * std::f32::consts::TAU;
    let sr = SAMPLE_RATE as f32;
    let mut wave = Vec::with_capacity(CLIP_LEN);
    match class {
        AudioClass::ToneLow | AudioClass::ToneHigh => {
            let base = if class == AudioClass::ToneLow {
                220.0
            } else {
                1200.0
            };
            let f = base * (1.0 + 0.1 * (rng.uniform() as f32 - 0.5));
            for t in 0..CLIP_LEN {
                let x = std::f32::consts::TAU * f * t as f32 / sr + phase;
                // A little 2nd harmonic for timbre.
                wave.push(amp * (x.sin() + 0.2 * (2.0 * x).sin()) / 1.2);
            }
        }
        AudioClass::Chirp => {
            let f0 = 200.0 * (1.0 + 0.2 * rng.uniform() as f32);
            let f1 = 2000.0 * (1.0 + 0.2 * rng.uniform() as f32);
            for t in 0..CLIP_LEN {
                let u = t as f32 / CLIP_LEN as f32;
                let f = f0 + (f1 - f0) * u;
                // Phase integral of a linear sweep.
                let x =
                    std::f32::consts::TAU * (f0 * u + 0.5 * (f1 - f0) * u * u) * CLIP_LEN as f32
                        / sr
                        + phase;
                let _ = f;
                wave.push(amp * x.sin());
            }
        }
        AudioClass::Noise => {
            for _ in 0..CLIP_LEN {
                wave.push(amp * (rng.uniform() as f32 * 2.0 - 1.0));
            }
        }
        AudioClass::Clicks => {
            let period = 150 + rng.below(100);
            let width = 8;
            for t in 0..CLIP_LEN {
                let in_click = t % period < width;
                wave.push(if in_click { amp } else { 0.0 });
            }
        }
    }
    Tensor::from_vec(wave, &[CLIP_LEN])
}

/// Generate `n` clips cycling through the classes.
pub fn generate_audio(n: usize, rng: &mut Rng64) -> AudioDataset {
    let mut data = Vec::with_capacity(n * CLIP_LEN);
    let mut ids = Vec::with_capacity(n);
    let mut classes = Vec::with_capacity(n);
    for i in 0..n {
        let class = AudioClass::ALL[i % AudioClass::ALL.len()];
        data.extend_from_slice(render_clip(class, rng).data());
        ids.push(class.id());
        classes.push(class);
    }
    AudioDataset {
        clips: Tensor::from_vec(data, &[n, CLIP_LEN]),
        class_ids: Tensor::from_vec(ids, &[n]),
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_shape_and_range() {
        let mut rng = Rng64::new(2);
        let ds = generate_audio(10, &mut rng);
        assert_eq!(ds.clips.shape(), &[10, CLIP_LEN]);
        assert_eq!(ds.len(), 10);
        assert!(ds.clips.data().iter().all(|v| v.abs() <= 1.0));
        // All five classes present.
        let mut seen: Vec<i64> = ds.class_ids.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn classes_are_acoustically_distinct() {
        let mut rng = Rng64::new(3);
        // Zero-crossing rates separate low tones, high tones and noise.
        let zcr = |w: &F32Tensor| {
            w.data()
                .windows(2)
                .filter(|p| (p[0] >= 0.0) != (p[1] >= 0.0))
                .count() as f64
                / CLIP_LEN as f64
        };
        let low = zcr(&render_clip(AudioClass::ToneLow, &mut rng));
        let high = zcr(&render_clip(AudioClass::ToneHigh, &mut rng));
        let noise = zcr(&render_clip(AudioClass::Noise, &mut rng));
        assert!(low < high, "low tone crosses less: {low} vs {high}");
        assert!(high < noise, "noise crosses most: {high} vs {noise}");
        // Clicks are mostly silent.
        let clicks = render_clip(AudioClass::Clicks, &mut rng);
        let silent = clicks.data().iter().filter(|v| v.abs() < 1e-6).count();
        assert!(silent > CLIP_LEN / 2);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = generate_audio(4, &mut Rng64::new(9)).clips;
        let b = generate_audio(4, &mut Rng64::new(9)).clips;
        assert_eq!(a.to_vec(), b.to_vec());
    }
}
