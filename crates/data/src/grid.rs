//! MNISTGrid: 3×3 grids of digit tiles with grouped count labels.
//!
//! Each grid is a single `[1, 84, 84]` image containing 9 digit tiles; the
//! label is the 10×2 table of (digit, size) → COUNT(*) the paper's query
//! produces (Fig. 1). The tile layout matches the einops rearrange of
//! Listing 4: `"1 (h1 h2) (w1 w2) -> (h1 w1) 1 h2 w2"` with `h1 = w1 = 3`.

use tdp_tensor::{F32Tensor, Rng64, Tensor};

use crate::digits::{render_digit, SizeClass, TILE};

/// Grid side in tiles.
pub const GRID: usize = 3;
/// Grid image side in pixels.
pub const GRID_PX: usize = GRID * TILE;
/// Number of digit classes.
pub const DIGIT_CLASSES: usize = 10;
/// Number of size classes.
pub const SIZE_CLASSES: usize = 2;

/// One MNISTGrid sample.
#[derive(Debug, Clone)]
pub struct GridSample {
    /// `[1, GRID_PX, GRID_PX]` image.
    pub image: F32Tensor,
    /// Ground-truth grouped counts, `[DIGIT_CLASSES * SIZE_CLASSES]`, in
    /// (digit-major, size-minor) lexicographic group order — the order the
    /// soft GROUP BY produces.
    pub counts: F32Tensor,
    /// Per-tile digit labels `[9]` (row-major tiles).
    pub tile_digits: Vec<u8>,
    /// Per-tile size labels `[9]`.
    pub tile_sizes: Vec<SizeClass>,
}

/// Dataset of grids.
#[derive(Debug, Clone)]
pub struct GridDataset {
    pub samples: Vec<GridSample>,
}

impl GridDataset {
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Generate one grid.
pub fn generate_grid(rng: &mut Rng64) -> GridSample {
    let mut image = F32Tensor::zeros(&[GRID_PX, GRID_PX]);
    let mut counts = vec![0.0f32; DIGIT_CLASSES * SIZE_CLASSES];
    let mut tile_digits = Vec::with_capacity(GRID * GRID);
    let mut tile_sizes = Vec::with_capacity(GRID * GRID);
    for ty in 0..GRID {
        for tx in 0..GRID {
            let d = rng.below(DIGIT_CLASSES) as u8;
            let s = if rng.coin(0.5) {
                SizeClass::Small
            } else {
                SizeClass::Large
            };
            let tile = render_digit(d, s, rng).reshape(&[TILE, TILE]);
            // Copy the tile into its cell.
            let base_y = ty * TILE;
            let base_x = tx * TILE;
            let dst = image.data_mut();
            for y in 0..TILE {
                for x in 0..TILE {
                    dst[(base_y + y) * GRID_PX + base_x + x] = tile.get(&[y, x]);
                }
            }
            counts[d as usize * SIZE_CLASSES + s.label() as usize] += 1.0;
            tile_digits.push(d);
            tile_sizes.push(s);
        }
    }
    GridSample {
        image: image.reshape(&[1, GRID_PX, GRID_PX]),
        counts: Tensor::from_vec(counts, &[DIGIT_CLASSES * SIZE_CLASSES]),
        tile_digits,
        tile_sizes,
    }
}

/// Generate a dataset of `n` grids.
pub fn generate_grids(n: usize, rng: &mut Rng64) -> GridDataset {
    GridDataset {
        samples: (0..n).map(|_| generate_grid(rng)).collect(),
    }
}

/// The tile split of Listing 4: `[1, 84, 84] -> [9, 1, 28, 28]`, tiles in
/// row-major order. This is the tensor-program half of `parse_mnist_grid`,
/// expressed with the paper's exact einops pattern.
pub fn split_tiles(grid_image: &F32Tensor) -> F32Tensor {
    assert_eq!(
        grid_image.shape(),
        &[1, GRID_PX, GRID_PX],
        "expected a [1, {GRID_PX}, {GRID_PX}] grid image"
    );
    grid_image.rearrange(
        "1 (h1 h2) (w1 w2) -> (h1 w1) 1 h2 w2",
        &[("h1", GRID), ("w1", GRID)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_sample_invariants() {
        let mut rng = Rng64::new(5);
        let g = generate_grid(&mut rng);
        assert_eq!(g.image.shape(), &[1, GRID_PX, GRID_PX]);
        assert_eq!(g.counts.numel(), 20);
        assert_eq!(g.counts.sum(), 9.0, "counts must cover all 9 tiles");
        assert_eq!(g.tile_digits.len(), 9);
    }

    #[test]
    fn counts_match_tile_labels() {
        let mut rng = Rng64::new(6);
        let g = generate_grid(&mut rng);
        let mut expected = vec![0.0f32; 20];
        for (d, s) in g.tile_digits.iter().zip(&g.tile_sizes) {
            expected[*d as usize * 2 + s.label() as usize] += 1.0;
        }
        assert_eq!(g.counts.to_vec(), expected);
    }

    #[test]
    fn split_tiles_recovers_cells() {
        let mut rng = Rng64::new(7);
        let g = generate_grid(&mut rng);
        let tiles = split_tiles(&g.image);
        assert_eq!(tiles.shape(), &[9, 1, TILE, TILE]);
        // Tile 4 (centre) equals the centre 28x28 region of the image.
        let img = g.image.reshape(&[GRID_PX, GRID_PX]);
        for y in 0..TILE {
            for x in 0..TILE {
                assert_eq!(
                    tiles.get(&[4, 0, y, x]),
                    img.get(&[TILE + y, TILE + x]),
                    "centre tile mismatch at ({y},{x})"
                );
            }
        }
        // Total ink is preserved by the rearrange.
        assert!((tiles.sum() - g.image.sum()).abs() < 1e-3);
    }

    #[test]
    fn dataset_generation() {
        let mut rng = Rng64::new(8);
        let ds = generate_grids(12, &mut rng);
        assert_eq!(ds.len(), 12);
        // Samples differ (vanishingly unlikely to collide).
        assert_ne!(ds.samples[0].image.to_vec(), ds.samples[1].image.to_vec());
    }
}
