//! Synthetic handwritten-digit stand-in (MNIST substitution).
//!
//! Digits are atlas glyphs rendered into 28×28 tiles with randomised
//! geometry (position jitter, two size classes), stroke dropout and pixel
//! noise, so a small CNN has a real-but-learnable 10-class problem — which
//! is all the MNISTGrid and reuse experiments require of MNIST.

use tdp_tensor::{F32Tensor, I64Tensor, Rng64, Tensor};

use crate::font;

/// Tile side length (matches MNIST).
pub const TILE: usize = 28;

/// Size class of a rendered digit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// Glyph scaled 2× (10×14 px ink box).
    Small = 0,
    /// Glyph scaled 3× (15×21 px ink box).
    Large = 1,
}

impl SizeClass {
    pub fn scale(self) -> usize {
        match self {
            SizeClass::Small => 2,
            SizeClass::Large => 3,
        }
    }

    pub fn label(self) -> i64 {
        self as i64
    }
}

/// Render one digit tile `[1, TILE, TILE]`.
pub fn render_digit(digit: u8, size: SizeClass, rng: &mut Rng64) -> F32Tensor {
    assert!(digit < 10, "digit out of range");
    let s = size.scale();
    let glyph = font::glyph_scaled(char::from(b'0' + digit), s).expect("digit glyph");
    let (gh, gw) = (glyph.shape()[0], glyph.shape()[1]);
    let mut canvas = F32Tensor::zeros(&[TILE, TILE]);
    // Random placement keeping the glyph fully inside the tile.
    let max_top = TILE - gh;
    let max_left = TILE - gw;
    let top = rng.below(max_top + 1) as isize;
    let left = rng.below(max_left + 1) as isize;
    font::stamp(&mut canvas, &glyph, top, left);

    // Stroke dropout + background noise: keeps the task honest without
    // making the glyph unrecognisable.
    let data = canvas.data_mut();
    for v in data.iter_mut() {
        if *v > 0.5 {
            if rng.coin(0.06) {
                *v = 0.0;
            } else {
                *v = (*v - rng.uniform() as f32 * 0.25).max(0.0);
            }
        } else if rng.coin(0.04) {
            *v = rng.uniform_range(0.0, 0.35) as f32;
        }
    }
    canvas.reshape(&[1, TILE, TILE])
}

/// A labelled digit dataset.
#[derive(Debug, Clone)]
pub struct DigitDataset {
    /// `[n, 1, TILE, TILE]` images in `[0, 1]`.
    pub images: F32Tensor,
    /// Digit labels `[n]`, values 0–9.
    pub digits: I64Tensor,
    /// Size labels `[n]`, 0 = small, 1 = large.
    pub sizes: I64Tensor,
}

impl DigitDataset {
    pub fn len(&self) -> usize {
        self.digits.numel()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Image `i` as `[1, 1, TILE, TILE]` (a singleton batch).
    pub fn image(&self, i: usize) -> F32Tensor {
        self.images.row(i).reshape(&[1, 1, TILE, TILE])
    }

    /// Contiguous mini-batch `[len, 1, TILE, TILE]` with labels.
    pub fn batch(&self, start: usize, len: usize) -> (F32Tensor, I64Tensor, I64Tensor) {
        (
            self.images.narrow(0, start, len),
            self.digits.narrow(0, start, len),
            self.sizes.narrow(0, start, len),
        )
    }
}

/// Generate `n` uniformly-labelled digit tiles.
pub fn generate_digits(n: usize, rng: &mut Rng64) -> DigitDataset {
    let mut pixels = Vec::with_capacity(n * TILE * TILE);
    let mut digits = Vec::with_capacity(n);
    let mut sizes = Vec::with_capacity(n);
    for _ in 0..n {
        let d = rng.below(10) as u8;
        let s = if rng.coin(0.5) {
            SizeClass::Small
        } else {
            SizeClass::Large
        };
        let img = render_digit(d, s, rng);
        pixels.extend_from_slice(img.data());
        digits.push(d as i64);
        sizes.push(s.label());
    }
    DigitDataset {
        images: Tensor::from_vec(pixels, &[n, 1, TILE, TILE]),
        digits: Tensor::from_vec(digits, &[n]),
        sizes: Tensor::from_vec(sizes, &[n]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shapes_and_range() {
        let mut rng = Rng64::new(1);
        for d in 0..10u8 {
            let img = render_digit(d, SizeClass::Small, &mut rng);
            assert_eq!(img.shape(), &[1, TILE, TILE]);
            assert!(img.min_all() >= 0.0 && img.max_all() <= 1.0);
            assert!(img.sum() > 3.0, "digit {d} must leave ink");
        }
    }

    #[test]
    fn size_classes_differ_in_ink() {
        let mut rng = Rng64::new(2);
        let mut small_ink = 0.0;
        let mut large_ink = 0.0;
        for _ in 0..20 {
            small_ink += render_digit(8, SizeClass::Small, &mut rng).sum();
            large_ink += render_digit(8, SizeClass::Large, &mut rng).sum();
        }
        assert!(
            large_ink > small_ink * 1.5,
            "large digits must carry visibly more ink ({large_ink} vs {small_ink})"
        );
    }

    #[test]
    fn dataset_generation_is_seeded_and_balanced() {
        let mut r1 = Rng64::new(7);
        let mut r2 = Rng64::new(7);
        let a = generate_digits(200, &mut r1);
        let b = generate_digits(200, &mut r2);
        assert_eq!(a.images.to_vec(), b.images.to_vec());
        assert_eq!(a.len(), 200);
        // Every class appears.
        for d in 0..10 {
            assert!(a.digits.count_eq(d) > 5, "digit {d} underrepresented");
        }
        let smalls = a.sizes.count_eq(0);
        assert!(smalls > 60 && smalls < 140, "sizes roughly balanced");
    }

    #[test]
    fn batch_and_single_access() {
        let mut rng = Rng64::new(3);
        let ds = generate_digits(10, &mut rng);
        let (imgs, digs, sizes) = ds.batch(2, 4);
        assert_eq!(imgs.shape(), &[4, 1, TILE, TILE]);
        assert_eq!(digs.numel(), 4);
        assert_eq!(sizes.numel(), 4);
        assert_eq!(ds.image(5).shape(), &[1, 1, TILE, TILE]);
        assert_eq!(ds.image(5).to_vec(), ds.images.row(5).to_vec());
    }
}
