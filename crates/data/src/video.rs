//! Synthetic video clips: the fourth modality.
//!
//! The paper's intro claims the tensor abstraction covers video, and its
//! related work positions TDP against special-purpose video analytics
//! systems (VIVA). Each clip here is a `[FRAMES, H, W]` grayscale tensor
//! — one row of a 4-d `[n, FRAMES, H, W]` column — with motion classes a
//! small temporal feature extractor can separate.

use tdp_tensor::{F32Tensor, I64Tensor, Rng64, Tensor};

/// Frames per clip.
pub const FRAMES: usize = 8;
/// Frame height/width.
pub const FRAME_H: usize = 16;
pub const FRAME_W: usize = 16;

/// Motion classes of the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VideoClass {
    /// Static textured scene (no motion).
    Static,
    /// A bright object crossing left → right.
    PanRight,
    /// A bright object crossing right → left.
    PanLeft,
    /// Whole-frame brightness oscillation.
    Flicker,
}

impl VideoClass {
    pub const ALL: [VideoClass; 4] = [
        VideoClass::Static,
        VideoClass::PanRight,
        VideoClass::PanLeft,
        VideoClass::Flicker,
    ];

    pub fn id(self) -> i64 {
        VideoClass::ALL
            .iter()
            .position(|c| *c == self)
            .expect("class in ALL") as i64
    }

    pub fn label(self) -> &'static str {
        match self {
            VideoClass::Static => "static",
            VideoClass::PanRight => "pan_right",
            VideoClass::PanLeft => "pan_left",
            VideoClass::Flicker => "flicker",
        }
    }
}

/// A generated video corpus.
pub struct VideoDataset {
    /// `[n, FRAMES, FRAME_H, FRAME_W]` clips in `[0, 1]`.
    pub clips: F32Tensor,
    pub class_ids: I64Tensor,
    pub classes: Vec<VideoClass>,
}

impl VideoDataset {
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// Render one clip of a class with randomised scene parameters.
pub fn render_video(class: VideoClass, rng: &mut Rng64) -> F32Tensor {
    let mut frames = Vec::with_capacity(FRAMES * FRAME_H * FRAME_W);
    // Static textured background shared by every frame of the clip.
    let mut background = vec![0.0f32; FRAME_H * FRAME_W];
    for px in background.iter_mut() {
        *px = 0.2 + 0.2 * rng.uniform() as f32;
    }
    let cy = 4 + rng.below(FRAME_H - 8);
    let radius = 2.0 + rng.uniform() as f32;

    for f in 0..FRAMES {
        let brightness = match class {
            VideoClass::Flicker => {
                1.0 + 0.8 * ((f as f32 / FRAMES as f32) * std::f32::consts::TAU * 2.0).sin()
            }
            _ => 1.0,
        };
        for y in 0..FRAME_H {
            for x in 0..FRAME_W {
                let mut v = background[y * FRAME_W + x] * brightness;
                // The moving object, when the class has one.
                let cx = match class {
                    VideoClass::PanRight => {
                        Some(f as f32 / (FRAMES - 1) as f32 * (FRAME_W - 1) as f32)
                    }
                    VideoClass::PanLeft => {
                        Some((1.0 - f as f32 / (FRAMES - 1) as f32) * (FRAME_W - 1) as f32)
                    }
                    _ => None,
                };
                if let Some(cx) = cx {
                    let d2 = (y as f32 - cy as f32).powi(2) + (x as f32 - cx).powi(2);
                    if d2 < radius * radius {
                        v = 0.95;
                    }
                }
                frames.push(v.clamp(0.0, 1.0));
            }
        }
    }
    Tensor::from_vec(frames, &[FRAMES, FRAME_H, FRAME_W])
}

/// Generate `n` clips cycling through the classes.
pub fn generate_video(n: usize, rng: &mut Rng64) -> VideoDataset {
    let mut data = Vec::with_capacity(n * FRAMES * FRAME_H * FRAME_W);
    let mut ids = Vec::with_capacity(n);
    let mut classes = Vec::with_capacity(n);
    for i in 0..n {
        let class = VideoClass::ALL[i % VideoClass::ALL.len()];
        data.extend_from_slice(render_video(class, rng).data());
        ids.push(class.id());
        classes.push(class);
    }
    VideoDataset {
        clips: Tensor::from_vec(data, &[n, FRAMES, FRAME_H, FRAME_W]),
        class_ids: Tensor::from_vec(ids, &[n]),
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_shape_and_range() {
        let mut rng = Rng64::new(6);
        let ds = generate_video(8, &mut rng);
        assert_eq!(ds.clips.shape(), &[8, FRAMES, FRAME_H, FRAME_W]);
        assert!(ds.clips.data().iter().all(|v| (0.0..=1.0).contains(v)));
        let mut seen: Vec<i64> = ds.class_ids.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn static_clips_do_not_move() {
        let mut rng = Rng64::new(7);
        let clip = render_video(VideoClass::Static, &mut rng);
        let first = clip.narrow(0, 0, 1);
        let last = clip.narrow(0, FRAMES - 1, 1);
        assert!(
            first.max_abs_diff(&last) < 1e-6,
            "static frames must be identical"
        );
    }

    #[test]
    fn panning_clips_move_the_bright_object() {
        let mut rng = Rng64::new(8);
        let clip = render_video(VideoClass::PanRight, &mut rng);
        // Horizontal centroid of bright pixels drifts right over time.
        let centroid_x = |f: usize| {
            let frame = clip.narrow(0, f, 1).reshape(&[FRAME_H, FRAME_W]);
            let (mut num, mut den) = (0.0f64, 0.0f64);
            for y in 0..FRAME_H {
                for x in 0..FRAME_W {
                    let v = frame.get(&[y, x]) as f64;
                    if v > 0.9 {
                        num += x as f64 * v;
                        den += v;
                    }
                }
            }
            num / den.max(1e-9)
        };
        assert!(centroid_x(FRAMES - 1) > centroid_x(0) + 5.0);
    }

    #[test]
    fn flicker_oscillates_brightness() {
        let mut rng = Rng64::new(9);
        let clip = render_video(VideoClass::Flicker, &mut rng);
        let mean = |f: usize| clip.narrow(0, f, 1).mean();
        let means: Vec<f64> = (0..FRAMES).map(mean).collect();
        let spread = means.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
            - means.iter().fold(f64::INFINITY, |m, &v| m.min(v));
        assert!(spread > 0.2, "brightness must swing: {means:?}");
    }
}
