//! Email-attachment image generator (photos / receipts / logos).
//!
//! Substitution for the paper's §5.1 dataset ("100 images of photographs,
//! 50 receipts, and 50 company logos"). Each class is generated with
//! distinctive, *statistically recoverable* structure — smooth textured
//! scenes for photos (with a dog/cat/landscape subtype carried by hue
//! layout), bright paper with dark horizontal text lines for receipts
//! (KFC receipts add a red header band), and flat saturated marks for
//! logos — so the CLIP-sim encoder in `tdp-ml` can embed text and images
//! into a shared space where cosine similarity separates the classes.

use tdp_tensor::{F32Tensor, I64Tensor, Rng64, Tensor};

/// Attachment classes, with the subtypes the multimodal queries target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttachmentClass {
    PhotoDog,
    PhotoCat,
    PhotoLandscape,
    Receipt,
    KfcReceipt,
    Logo,
}

impl AttachmentClass {
    /// All classes.
    pub const ALL: [AttachmentClass; 6] = [
        AttachmentClass::PhotoDog,
        AttachmentClass::PhotoCat,
        AttachmentClass::PhotoLandscape,
        AttachmentClass::Receipt,
        AttachmentClass::KfcReceipt,
        AttachmentClass::Logo,
    ];

    /// Stable integer id.
    pub fn id(self) -> i64 {
        Self::ALL.iter().position(|&c| c == self).expect("in ALL") as i64
    }

    /// Natural-language label (the text side of the text↔image pairs).
    pub fn label(self) -> &'static str {
        match self {
            AttachmentClass::PhotoDog => "dog",
            AttachmentClass::PhotoCat => "cat",
            AttachmentClass::PhotoLandscape => "landscape",
            AttachmentClass::Receipt => "receipt",
            AttachmentClass::KfcReceipt => "KFC Receipt",
            AttachmentClass::Logo => "logo",
        }
    }

    /// Whether the class belongs to the photo supergroup.
    pub fn is_photo(self) -> bool {
        matches!(
            self,
            AttachmentClass::PhotoDog | AttachmentClass::PhotoCat | AttachmentClass::PhotoLandscape
        )
    }

    /// Whether the class is a receipt (generic or branded).
    pub fn is_receipt(self) -> bool {
        matches!(self, AttachmentClass::Receipt | AttachmentClass::KfcReceipt)
    }
}

/// The attachment dataset.
#[derive(Debug, Clone)]
pub struct AttachmentDataset {
    /// `[n, 3, h, w]` RGB images in `[0, 1]`.
    pub images: F32Tensor,
    /// Class ids `[n]` (see [`AttachmentClass::id`]).
    pub class_ids: I64Tensor,
    /// Class of every image.
    pub classes: Vec<AttachmentClass>,
}

impl AttachmentDataset {
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    pub fn height(&self) -> usize {
        self.images.shape()[2]
    }

    pub fn width(&self) -> usize {
        self.images.shape()[3]
    }
}

/// Generate one attachment image `[3, h, w]`.
pub fn render_attachment(class: AttachmentClass, h: usize, w: usize, rng: &mut Rng64) -> F32Tensor {
    let mut img = vec![0.0f32; 3 * h * w];
    let mut set = |c: usize, y: usize, x: usize, v: f32| {
        img[(c * h + y) * w + x] = v.clamp(0.0, 1.0);
    };

    match class {
        c if c.is_photo() => {
            // Smooth scene: two-band hue layout + low-frequency texture.
            let (top, bottom): ([f64; 3], [f64; 3]) = match c {
                AttachmentClass::PhotoDog => ([0.55, 0.42, 0.28], [0.45, 0.33, 0.20]),
                AttachmentClass::PhotoCat => ([0.52, 0.52, 0.56], [0.42, 0.42, 0.48]),
                _ => ([0.35, 0.55, 0.85], [0.25, 0.60, 0.25]), // sky over grass
            };
            let horizon = (h as f64 * rng.uniform_range(0.4, 0.6)) as usize;
            // Low-frequency texture via a few random cosine waves.
            let waves: Vec<(f64, f64, f64)> = (0..4)
                .map(|_| {
                    (
                        rng.uniform_range(0.02, 0.12),
                        rng.uniform_range(0.02, 0.12),
                        rng.uniform_range(0.0, std::f64::consts::TAU),
                    )
                })
                .collect();
            for y in 0..h {
                for x in 0..w {
                    let base = if y < horizon { top } else { bottom };
                    let mut t = 0.0;
                    for (fy, fx, ph) in &waves {
                        t += (fy * y as f64 + fx * x as f64 + ph).cos();
                    }
                    t *= 0.04;
                    #[allow(clippy::needless_range_loop)] // ch is also set()'s channel arg
                    for ch in 0..3 {
                        set(ch, y, x, (base[ch] + t + rng.normal_with(0.0, 0.02)) as f32);
                    }
                }
            }
        }
        c if c.is_receipt() => {
            // Bright paper with dark horizontal text lines.
            for y in 0..h {
                for x in 0..w {
                    let v = (0.92 + rng.normal_with(0.0, 0.015)) as f32;
                    for ch in 0..3 {
                        set(ch, y, x, v);
                    }
                }
            }
            // Text lines every few rows, with ragged right edges.
            let mut y = h / 8;
            while y + 1 < h {
                let line_end = (w as f64 * rng.uniform_range(0.45, 0.95)) as usize;
                for x in w / 12..line_end {
                    if rng.coin(0.8) {
                        let ink = rng.uniform_range(0.05, 0.3) as f32;
                        for ch in 0..3 {
                            set(ch, y, x, ink);
                        }
                    }
                }
                y += 3 + rng.below(2);
            }
            if c == AttachmentClass::KfcReceipt {
                // Red brand band across the top.
                for y in 0..h / 6 {
                    for x in 0..w {
                        set(0, y, x, 0.85);
                        set(1, y, x, 0.12);
                        set(2, y, x, 0.12);
                    }
                }
            }
        }
        _ => {
            // Logo: flat saturated background + contrasting centred disc.
            let palette = [
                [0.9, 0.15, 0.15],
                [0.15, 0.4, 0.9],
                [0.1, 0.7, 0.3],
                [0.95, 0.7, 0.1],
            ];
            let bg = palette[rng.below(palette.len())];
            let fg = palette[(palette
                .iter()
                .position(|p| p == &bg)
                .expect("bg from palette")
                + 2)
                % palette.len()];
            let (cy, cx) = (h as f64 / 2.0, w as f64 / 2.0);
            let r = h.min(w) as f64 * 0.3;
            for y in 0..h {
                for x in 0..w {
                    let inside = ((y as f64 - cy).powi(2) + (x as f64 - cx).powi(2)).sqrt() < r;
                    let col = if inside { fg } else { bg };
                    #[allow(clippy::needless_range_loop)] // ch is also set()'s channel arg
                    for ch in 0..3 {
                        set(ch, y, x, col[ch] as f32);
                    }
                }
            }
        }
    }
    Tensor::from_vec(img, &[3, h, w])
}

/// Generate the paper's attachment mix, scaled to `n` total images:
/// half photos (subtypes uniform), a quarter receipts (20% KFC-branded),
/// a quarter logos — shuffled.
pub fn generate_attachments(n: usize, h: usize, w: usize, rng: &mut Rng64) -> AttachmentDataset {
    let mut classes = Vec::with_capacity(n);
    for i in 0..n {
        let c = if i < n / 2 {
            match i % 3 {
                0 => AttachmentClass::PhotoDog,
                1 => AttachmentClass::PhotoCat,
                _ => AttachmentClass::PhotoLandscape,
            }
        } else if i < n * 3 / 4 {
            if i % 5 == 0 {
                AttachmentClass::KfcReceipt
            } else {
                AttachmentClass::Receipt
            }
        } else {
            AttachmentClass::Logo
        };
        classes.push(c);
    }
    rng.shuffle(&mut classes);

    let mut pixels = Vec::with_capacity(n * 3 * h * w);
    let mut ids = Vec::with_capacity(n);
    for &c in &classes {
        pixels.extend_from_slice(render_attachment(c, h, w, rng).data());
        ids.push(c.id());
    }
    AttachmentDataset {
        images: Tensor::from_vec(pixels, &[n, 3, h, w]),
        class_ids: Tensor::from_vec(ids, &[n]),
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel_mean(img: &F32Tensor, ch: usize) -> f64 {
        let (h, w) = (img.shape()[1], img.shape()[2]);
        img.narrow(0, ch, 1).reshape(&[h * w]).mean()
    }

    #[test]
    fn classes_have_distinct_statistics() {
        let mut rng = Rng64::new(1);
        let receipt = render_attachment(AttachmentClass::Receipt, 48, 72, &mut rng);
        let logo = render_attachment(AttachmentClass::Logo, 48, 72, &mut rng);
        let photo = render_attachment(AttachmentClass::PhotoLandscape, 48, 72, &mut rng);
        // Receipts are the brightest class on average.
        let brightness = |img: &F32Tensor| {
            (channel_mean(img, 0) + channel_mean(img, 1) + channel_mean(img, 2)) / 3.0
        };
        assert!(brightness(&receipt) > brightness(&photo));
        assert!(brightness(&receipt) > brightness(&logo) * 1.1);
        // Landscape photos are blue-over-green: blue mean > red mean.
        assert!(channel_mean(&photo, 2) > channel_mean(&photo, 0));
    }

    #[test]
    fn kfc_band_is_red() {
        let mut rng = Rng64::new(2);
        let kfc = render_attachment(AttachmentClass::KfcReceipt, 48, 72, &mut rng);
        // Top band: red channel dominates.
        let top_red = kfc.narrow(0, 0, 1).narrow(1, 0, 6);
        let top_green = kfc.narrow(0, 1, 1).narrow(1, 0, 6);
        assert!(top_red.mean() > 3.0 * top_green.mean());
    }

    #[test]
    fn dataset_mix_matches_paper_proportions() {
        let mut rng = Rng64::new(3);
        let ds = generate_attachments(200, 24, 36, &mut rng);
        assert_eq!(ds.len(), 200);
        let photos = ds.classes.iter().filter(|c| c.is_photo()).count();
        let receipts = ds.classes.iter().filter(|c| c.is_receipt()).count();
        let logos = ds
            .classes
            .iter()
            .filter(|c| **c == AttachmentClass::Logo)
            .count();
        assert_eq!(photos, 100);
        assert_eq!(receipts, 50);
        assert_eq!(logos, 50);
        assert_eq!(ds.images.shape(), &[200, 3, 24, 36]);
    }

    #[test]
    fn ids_round_trip() {
        for c in AttachmentClass::ALL {
            assert_eq!(AttachmentClass::ALL[c.id() as usize], c);
        }
    }

    #[test]
    fn pixel_range_valid() {
        let mut rng = Rng64::new(4);
        for c in AttachmentClass::ALL {
            let img = render_attachment(c, 16, 24, &mut rng);
            assert!(img.min_all() >= 0.0 && img.max_all() <= 1.0, "{c:?}");
        }
    }
}
