//! # tdp-data
//!
//! Procedural dataset generators for the paper's evaluation. Every
//! experiment input the authors took from external sources (MNIST, the
//! Adult Income census extract, email-attachment images, `dataframe_image`
//! renderings of the Iris dataset) is replaced by a seeded synthetic
//! generator that preserves the property the experiment exercises:
//!
//! * [`digits`] — handwritten-digit stand-ins (procedural glyphs with
//!   random geometry and noise) in two sizes, learnable by a small CNN;
//! * [`grid`] — MNISTGrid: 3×3 grids of digit tiles with grouped
//!   (digit, size) count labels (paper §3/§5.5);
//! * [`income`] — Adult-Income-like tabular binary classification plus the
//!   LLP bag builder and the Laplace mechanism for label-DP (§5.3/§5.4);
//! * [`attachments`] — email-attachment images (photos / receipts / logos)
//!   with class-characteristic statistics for the CLIP-sim encoder (§5.1);
//! * [`documents`] — document images with rendered numeric tables and an
//!   anchor marker, for the OCR pipeline (§5.2);
//! * [`font`] — the 5×7 bitmap glyph atlas everything above renders with.

pub mod attachments;
pub mod audio;
pub mod digits;
pub mod documents;
pub mod font;
pub mod grid;
pub mod income;
pub mod video;
