//! # tdp-ml
//!
//! The model zoo and ML-side UDF/TVF implementations for the paper's use
//! cases:
//!
//! * [`cnn`] — the digit/size parser CNNs of the MNISTGrid query, plus the
//!   two pure-deep-learning baselines (CNN-Small ≈ 850K parameters and a
//!   ResNet-18-style network ≈ 11M parameters) used in §5.5 Experiment 1;
//! * [`clip`] — **CLIP-sim**, the deterministic joint text/image embedding
//!   standing in for OpenAI CLIP in the multimodal queries of §5.1;
//! * [`ocr`] — the `extract_table` pipeline of §5.2: anchor-correlation
//!   table localisation + glyph template matching, all tensor kernels;
//! * [`tvf`] — the paper's table-valued functions: `parse_mnist_grid`
//!   (Listing 4) and `classify_incomes` (Listing 9), with differentiable
//!   and exact paths.

pub mod audio;
pub mod clip;
pub mod cnn;
pub mod ocr;
pub mod tvf;
pub mod video;

pub use audio::{AudioSim, AudioTextSimilarityUdf};
pub use clip::{ClipSim, ImageTextSimilarityUdf};
pub use cnn::{CnnSmall, DigitCnn, ResNet18};
pub use ocr::ExtractTableTvf;
pub use tvf::{ClassifyIncomesTvf, ParseMnistGridTvf};
pub use video::{VideoSim, VideoTextSimilarityUdf};
