//! The paper's table-valued functions.
//!
//! * [`ParseMnistGridTvf`] — Listing 4: splits a grid image into 9 tiles
//!   (the einops rearrange) and runs the digit and size parser CNNs,
//!   emitting two probability-encoded columns.
//! * [`ClassifyIncomesTvf`] — Listing 9: a linear classifier over the
//!   feature matrix of an LLP bag, emitting a PE `Income` column.
//!
//! Both implement the exact path by running the differentiable path and
//! decoding (argmax) — the operator-swap story of §4 in miniature.

use tdp_autodiff::Var;
use tdp_data::grid::GRID_PX;
use tdp_exec::{
    Batch, ColumnData, DiffColumn, ExecContext, ExecError, FunctionSpec, TableFunction, Volatility,
};
use tdp_nn::{Linear, Module};
use tdp_tensor::{F32Tensor, Rng64, Tensor};

use crate::cnn::DigitCnn;

/// Detach every differentiable column of a batch (exact view).
fn detach_batch(diff: Batch) -> Batch {
    let mut out = Batch::new();
    for (name, col) in diff.columns() {
        out.push(name.clone(), ColumnData::Exact(col.to_exact()));
    }
    out
}

/// `parse_mnist_grid(MNIST_Grid)` — the trainable TVF of the MNISTGrid
/// query. Input: a relation whose tensor column is `[n, 1, 84, 84]` grid
/// images. Output: PE columns `Digit` (10 classes) and `Size` (2 classes)
/// with one row per tile (9·n rows).
pub struct ParseMnistGridTvf {
    pub digit_parser: DigitCnn,
    pub size_parser: DigitCnn,
}

impl ParseMnistGridTvf {
    pub fn new(rng: &mut Rng64) -> ParseMnistGridTvf {
        ParseMnistGridTvf {
            digit_parser: DigitCnn::new(10, rng),
            size_parser: DigitCnn::new(2, rng),
        }
    }

    /// The tile rearrange of Listing 4 for a whole grid batch:
    /// `[n, 1, 84, 84] -> [9n, 1, 28, 28]`.
    pub fn tiles_of(grids: &F32Tensor) -> Result<F32Tensor, ExecError> {
        if grids.ndim() != 4 || grids.shape()[1] != 1 || grids.shape()[2] != GRID_PX {
            return Err(ExecError::TypeMismatch(format!(
                "parse_mnist_grid expects [n, 1, {GRID_PX}, {GRID_PX}] grids, got {:?}",
                grids.shape()
            )));
        }
        Ok(grids.rearrange(
            "n 1 (h1 h2) (w1 w2) -> (n h1 w1) 1 h2 w2",
            &[("h1", tdp_data::grid::GRID), ("w1", tdp_data::grid::GRID)],
        ))
    }
}

impl TableFunction for ParseMnistGridTvf {
    fn name(&self) -> &str {
        "parse_mnist_grid"
    }

    /// Declared signature: FROM position only, output relation
    /// `[Digit, Size]` (so downstream GROUP BY / filters slot-resolve).
    /// The parser CNNs are trainable (`Var` parameters on the `Rc`-based
    /// autodiff tape), so the TVF is Stable — never constant-folded —
    /// and stays session-thread-bound.
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::dynamic(self.name())
            .volatility(Volatility::Stable)
            .returns(vec!["Digit".into(), "Size".into()])
            .from_only()
    }

    fn invoke_table(&self, input: &Batch, ctx: &ExecContext) -> Result<Batch, ExecError> {
        Ok(detach_batch(self.invoke_table_diff(input, ctx)?))
    }

    fn invoke_table_diff(&self, input: &Batch, _ctx: &ExecContext) -> Result<Batch, ExecError> {
        let tiles = Self::tiles_of(&input.first_tensor()?)?;
        let x = Var::constant(tiles);
        let digit_probs = self.digit_parser.forward(&x).softmax(1);
        let size_probs = self.size_parser.forward(&x).softmax(1);
        let mut out = Batch::new();
        out.push(
            "Digit",
            ColumnData::Diff(DiffColumn::pe(digit_probs, F32Tensor::arange(10))),
        );
        out.push(
            "Size",
            ColumnData::Diff(DiffColumn::pe(size_probs, F32Tensor::arange(2))),
        );
        Ok(out)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.digit_parser.parameters();
        ps.extend(self.size_parser.parameters());
        ps
    }
}

/// `classify_incomes(Adult_Income_Bag)` — the LLP TVF. Input: a relation
/// whose tensor column is the `[bag_size, d]` feature matrix of one bag.
/// Output: PE column `Income` (2 classes), one row per instance.
pub struct ClassifyIncomesTvf {
    pub model: Linear,
}

impl ClassifyIncomesTvf {
    pub fn new(num_features: usize, rng: &mut Rng64) -> ClassifyIncomesTvf {
        ClassifyIncomesTvf {
            model: Linear::new(num_features, 2, rng),
        }
    }

    /// Instance-level predictions for a feature matrix (used to compute
    /// test error after LLP training).
    pub fn predict(&self, features: &F32Tensor) -> Tensor<i64> {
        self.model
            .forward(&Var::constant(features.clone()))
            .value()
            .argmax_dim(1)
    }
}

impl TableFunction for ClassifyIncomesTvf {
    fn name(&self) -> &str {
        "classify_incomes"
    }

    /// FROM position only, output relation `[Income]`; trainable, so
    /// Stable and session-thread-bound (see [`ParseMnistGridTvf::spec`]).
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::dynamic(self.name())
            .volatility(Volatility::Stable)
            .returns(vec!["Income".into()])
            .from_only()
    }

    fn invoke_table(&self, input: &Batch, ctx: &ExecContext) -> Result<Batch, ExecError> {
        Ok(detach_batch(self.invoke_table_diff(input, ctx)?))
    }

    fn invoke_table_diff(&self, input: &Batch, _ctx: &ExecContext) -> Result<Batch, ExecError> {
        let features = input.first_tensor()?;
        if features.ndim() != 2 || features.shape()[1] != self.model.in_features() {
            return Err(ExecError::TypeMismatch(format!(
                "classify_incomes expects [n, {}] features, got {:?}",
                self.model.in_features(),
                features.shape()
            )));
        }
        let logits = self.model.forward(&Var::constant(features));
        let probs = logits.softmax(1);
        let mut out = Batch::new();
        out.push(
            "Income",
            ColumnData::Diff(DiffColumn::pe(probs, F32Tensor::arange(2))),
        );
        Ok(out)
    }

    fn parameters(&self) -> Vec<Var> {
        self.model.parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_data::grid::generate_grid;
    use tdp_encoding::EncodedTensor;
    use tdp_exec::UdfRegistry;
    use tdp_storage::Catalog;

    fn ctx_fixture() -> (Catalog, UdfRegistry) {
        (Catalog::new(), UdfRegistry::new())
    }

    #[test]
    fn parse_mnist_grid_emits_pe_tile_rows() {
        let mut rng = Rng64::new(1);
        let tvf = ParseMnistGridTvf::new(&mut rng);
        let g = generate_grid(&mut rng);
        let mut input = Batch::new();
        input.push(
            "value",
            ColumnData::Exact(EncodedTensor::F32(g.image.reshape(&[1, 1, 84, 84]))),
        );
        let (catalog, udfs) = ctx_fixture();
        let ctx = ExecContext::new(&catalog, &udfs);
        let out = tvf.invoke_table_diff(&input, &ctx).unwrap();
        assert_eq!(out.rows(), 9);
        match out.column("Digit").unwrap() {
            ColumnData::Diff(d) => {
                assert!(d.is_pe());
                assert_eq!(d.var.shape(), vec![9, 10]);
                let sums = d.var.value().sum_dim(1, false);
                assert!(sums.data().iter().all(|&s| (s - 1.0).abs() < 1e-5));
            }
            other => panic!("expected PE diff column, got {other:?}"),
        }
        // Exact path decodes instead.
        let exact = tvf.invoke_table(&input, &ctx).unwrap();
        assert!(!exact.has_diff());
        assert_eq!(exact.rows(), 9);
    }

    #[test]
    fn parse_mnist_grid_batches_multiple_grids() {
        let mut rng = Rng64::new(2);
        let g1 = generate_grid(&mut rng);
        let g2 = generate_grid(&mut rng);
        let stacked = tdp_tensor::index::concat_rows(&[
            &g1.image.reshape(&[1, 1, 84, 84]),
            &g2.image.reshape(&[1, 1, 84, 84]),
        ]);
        let tiles = ParseMnistGridTvf::tiles_of(&stacked).unwrap();
        assert_eq!(tiles.shape(), &[18, 1, 28, 28]);
    }

    #[test]
    fn parse_mnist_grid_rejects_bad_shapes() {
        let bad = F32Tensor::zeros(&[1, 1, 32, 32]);
        assert!(matches!(
            ParseMnistGridTvf::tiles_of(&bad),
            Err(ExecError::TypeMismatch(_))
        ));
    }

    #[test]
    fn parameters_cover_both_parsers() {
        let mut rng = Rng64::new(3);
        let tvf = ParseMnistGridTvf::new(&mut rng);
        let n_params: usize = tvf.parameters().iter().map(|p| p.numel()).sum();
        let expected = tvf.digit_parser.num_parameters() + tvf.size_parser.num_parameters();
        assert_eq!(n_params, expected);
    }

    #[test]
    fn classify_incomes_emits_income_pe() {
        let mut rng = Rng64::new(4);
        let tvf = ClassifyIncomesTvf::new(10, &mut rng);
        let feats = F32Tensor::randn(&[16, 10], 0.0, 1.0, &mut rng);
        let mut input = Batch::new();
        input.push(
            "value",
            ColumnData::Exact(EncodedTensor::F32(feats.clone())),
        );
        let (catalog, udfs) = ctx_fixture();
        let ctx = ExecContext::new(&catalog, &udfs);
        let out = tvf.invoke_table_diff(&input, &ctx).unwrap();
        assert_eq!(out.rows(), 16);
        assert!(out.column("Income").unwrap().is_diff());
        // Predictions agree with the exact decode of the PE column.
        let pred = tvf.predict(&feats);
        let exact = tvf.invoke_table(&input, &ctx).unwrap();
        assert_eq!(
            exact
                .column("Income")
                .unwrap()
                .to_exact()
                .decode_i64()
                .to_vec(),
            pred.to_vec()
        );
    }

    #[test]
    fn classify_incomes_shape_check() {
        let mut rng = Rng64::new(5);
        let tvf = ClassifyIncomesTvf::new(10, &mut rng);
        let mut input = Batch::new();
        input.push(
            "value",
            ColumnData::Exact(EncodedTensor::F32(F32Tensor::zeros(&[4, 3]))),
        );
        let (catalog, udfs) = ctx_fixture();
        let ctx = ExecContext::new(&catalog, &udfs);
        assert!(matches!(
            tvf.invoke_table_diff(&input, &ctx),
            Err(ExecError::TypeMismatch(_))
        ));
    }
}
