//! The `extract_table` OCR pipeline (paper §5.2).
//!
//! A two-stage pipeline of tensor kernels, mirroring the paper's "(1)
//! recognize where the table is in the image; and (2) OCR the image and
//! convert it into a plain tensor":
//!
//! 1. **Localisation** — cross-correlate the image with the solid anchor
//!    template and take the argmax peak as the table origin.
//! 2. **Recognition** — for every character slot of every cell, crop the
//!    glyph window and template-match it against the atlas (dot-product
//!    scoring); assemble the characters and parse the float.
//!
//! Both stages are deliberately real per-image compute: the OCR experiment
//! compares *lazy* conversion of one filtered image inside the query
//! against *bulk* conversion of the whole corpus before loading an
//! external database.

use tdp_data::documents::DocGeometry;
use tdp_data::font;
use tdp_encoding::EncodedTensor;
use tdp_exec::{
    ArgType, ArgValue, Batch, ColumnData, ExecContext, ExecError, FunctionSpec, TableFunction,
    Volatility,
};
use tdp_tensor::{F32Tensor, Tensor};

/// The OCR pipeline with its geometry priors and glyph templates.
pub struct ExtractTableTvf {
    geometry: DocGeometry,
    schema: Vec<String>,
    /// Glyph templates at document scale, one per atlas character.
    templates: Vec<(char, F32Tensor)>,
    anchor: F32Tensor,
}

impl ExtractTableTvf {
    pub fn new(geometry: DocGeometry, schema: Vec<String>) -> ExtractTableTvf {
        assert_eq!(
            schema.len(),
            geometry.cols,
            "one schema column per table column"
        );
        let templates = font::CHARSET
            .iter()
            .map(|&c| {
                (
                    c,
                    font::glyph_scaled(c, geometry.scale).expect("atlas glyph"),
                )
            })
            .collect();
        let anchor = F32Tensor::ones(&[geometry.anchor, geometry.anchor]);
        ExtractTableTvf {
            geometry,
            schema,
            templates,
            anchor,
        }
    }

    /// Locate the table origin (anchor top-left) in a `[h, w]` image.
    pub fn locate(&self, img: &F32Tensor) -> (usize, usize) {
        let score = img.correlate2d(&self.anchor);
        let best = score.argmax_flat();
        let w = score.shape()[1];
        (best / w, best % w)
    }

    /// Recognise the character in a glyph window.
    fn recognise(&self, window: &F32Tensor) -> char {
        let mut best = ' ';
        let mut best_score = f32::NEG_INFINITY;
        for (c, tpl) in &self.templates {
            // Match score: correlation with a mild ink-mass penalty so '.'
            // doesn't win on every sparse window.
            let score = window.mul(tpl).sum() - 0.35 * tpl.sum();
            if score > best_score {
                best_score = score;
                best = *c;
            }
        }
        best
    }

    /// Read one cell into a float.
    fn read_cell(&self, img: &F32Tensor, origin: (usize, usize), r: usize, c: usize) -> f32 {
        let g = self.geometry;
        let (cy, cx) = g.cell_origin(r, c);
        let (gh, gw) = (font::GLYPH_H * g.scale, font::GLYPH_W * g.scale);
        let mut text = String::with_capacity(g.cell_chars);
        for slot in 0..g.cell_chars {
            let top = origin.0 + cy;
            let left = origin.1 + cx + slot * g.char_advance();
            if top + gh > img.shape()[0] || left + gw > img.shape()[1] {
                return f32::NAN;
            }
            let window = img.narrow(0, top, gh).narrow(1, left, gw);
            text.push(self.recognise(&window));
        }
        text.parse().unwrap_or(f32::NAN)
    }

    /// Extract the full table of one `[h, w]` image.
    pub fn extract(&self, img: &F32Tensor) -> F32Tensor {
        let g = self.geometry;
        let origin = self.locate(img);
        let mut out = Vec::with_capacity(g.rows * g.cols);
        for r in 0..g.rows {
            for c in 0..g.cols {
                out.push(self.read_cell(img, origin, r, c));
            }
        }
        Tensor::from_vec(out, &[g.rows, g.cols])
    }

    /// Extract every image of a `[n, 1, h, w]` column, concatenating rows.
    pub fn extract_batch(&self, images: &F32Tensor) -> F32Tensor {
        assert_eq!(images.ndim(), 4, "expected [n, 1, h, w]");
        let g = self.geometry;
        let n = images.rows();
        let (h, w) = (images.shape()[2], images.shape()[3]);
        let mut out = Vec::with_capacity(n * g.rows * g.cols);
        for i in 0..n {
            let img = images.row(i).reshape(&[h, w]);
            out.extend_from_slice(self.extract(&img).data());
        }
        Tensor::from_vec(out, &[n * g.rows, g.cols])
    }
}

impl TableFunction for ExtractTableTvf {
    fn name(&self) -> &str {
        "extract_table"
    }

    /// Declared signature: one image-column argument, projection position
    /// only, output schema = the configured table columns. Downstream
    /// expressions (`AVG(SepalLength)` over the extraction) slot-resolve
    /// at compile time instead of falling back to by-name lookup, and
    /// `FROM extract_table(...)` misuse is rejected at prepare time.
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::dynamic(self.name())
            .with_args(vec![ArgType::Column])
            .volatility(Volatility::Immutable)
            .returns(self.schema.clone())
            .projection_only()
    }

    /// Projection position: `SELECT extract_table(images) FROM …`.
    fn invoke_cols(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<Batch, ExecError> {
        if args.len() != 1 {
            return Err(ExecError::Udf(
                "extract_table takes one image column".into(),
            ));
        }
        let images = match args[0].as_column()? {
            EncodedTensor::F32(t) => t.clone(),
            other => {
                return Err(ExecError::TypeMismatch(format!(
                    "extract_table expects an image tensor column, got {:?}",
                    other.kind()
                )))
            }
        };
        let table = self.extract_batch(&images);
        let rows = table.shape()[0];
        let mut out = Batch::new();
        for (c, name) in self.schema.iter().enumerate() {
            let col = table.narrow(1, c, 1).reshape(&[rows]);
            out.push(name.clone(), ColumnData::Exact(EncodedTensor::F32(col)));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_data::documents::{generate_documents, render_document};
    use tdp_tensor::Rng64;

    fn pipeline() -> ExtractTableTvf {
        let g = DocGeometry::iris();
        ExtractTableTvf::new(
            g,
            vec![
                "SepalLength".into(),
                "SepalWidth".into(),
                "PetalLength".into(),
                "PetalWidth".into(),
            ],
        )
    }

    #[test]
    fn localisation_finds_the_anchor() {
        let mut rng = Rng64::new(1);
        let g = DocGeometry::iris();
        let tvf = pipeline();
        for _ in 0..5 {
            let (img, _) = render_document(g, &mut rng);
            let flat = img.reshape(&[g.height, g.width]);
            let (y, x) = tvf.locate(&flat);
            // The anchor is stamped at offsets in [4, …); localisation must
            // land within a pixel of a bright solid block.
            let window = flat.narrow(0, y, g.anchor).narrow(1, x, g.anchor);
            assert!(
                window.mean() > 0.8,
                "located region is not the anchor (mean {})",
                window.mean()
            );
        }
    }

    #[test]
    fn extraction_recovers_ground_truth() {
        let mut rng = Rng64::new(2);
        let g = DocGeometry::iris();
        let tvf = pipeline();
        let mut total = 0usize;
        let mut correct = 0usize;
        for _ in 0..4 {
            let (img, truth) = render_document(g, &mut rng);
            let got = tvf.extract(&img.reshape(&[g.height, g.width]));
            assert_eq!(got.shape(), truth.shape());
            for i in 0..truth.numel() {
                total += 1;
                if (got.at(i) - truth.at(i)).abs() < 5e-3 {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "cell accuracy {acc} (={correct}/{total})");
    }

    #[test]
    fn batch_extraction_stacks_rows() {
        let mut rng = Rng64::new(3);
        let ds = generate_documents(3, DocGeometry::iris(), &mut rng);
        let tvf = pipeline();
        let table = tvf.extract_batch(&ds.images);
        assert_eq!(table.shape(), &[3 * 6, 4]);
    }

    #[test]
    fn tvf_invocation_yields_schema_columns() {
        let mut rng = Rng64::new(4);
        let ds = generate_documents(2, DocGeometry::iris(), &mut rng);
        let tvf = pipeline();
        let catalog = tdp_storage::Catalog::new();
        let udfs = tdp_exec::UdfRegistry::new();
        let ctx = ExecContext::new(&catalog, &udfs);
        let out = tvf
            .invoke_cols(
                &[ArgValue::Column(EncodedTensor::F32(ds.images.clone()))],
                &ctx,
            )
            .unwrap();
        assert_eq!(
            out.names(),
            vec!["SepalLength", "SepalWidth", "PetalLength", "PetalWidth"]
        );
        assert_eq!(out.rows(), 12);
        // AVG over the extracted column ≈ AVG over ground truth.
        let got = out.column("SepalLength").unwrap().to_exact().decode_f32();
        let truth_avg: f32 = ds
            .tables
            .iter()
            .map(|t| t.narrow(1, 0, 1).sum())
            .sum::<f32>()
            / 12.0;
        assert!((got.mean() as f32 - truth_avg).abs() < 0.05);
    }

    #[test]
    fn from_position_is_rejected() {
        let tvf = pipeline();
        let catalog = tdp_storage::Catalog::new();
        let udfs = tdp_exec::UdfRegistry::new();
        let ctx = ExecContext::new(&catalog, &udfs);
        assert!(matches!(
            tvf.invoke_table(&Batch::new(), &ctx),
            Err(ExecError::Unsupported(_))
        ));
    }
}
