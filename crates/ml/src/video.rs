//! VideoSim: temporal feature extraction and text↔video matching,
//! completing the modality set (table / image / audio / video).
//!
//! Features capture *motion*, which pixels of any single frame cannot:
//! temporal-difference energy, the direction of the brightness centroid's
//! drift, and global-brightness oscillation. As with CLIP-sim/AudioSim,
//! a keyword "text encoder" plus an exemplar posterior give calibrated
//! similarity scores usable in SQL filters and top-k searches.

use tdp_data::video::{render_video, VideoClass, FRAMES, FRAME_H, FRAME_W};
use tdp_encoding::EncodedTensor;
use tdp_exec::{ArgType, ArgValue, ExecContext, ExecError, FunctionSpec, ScalarUdf, Volatility};
use tdp_tensor::{F32Tensor, Rng64, Tensor};

/// Dimensionality of [`video_features`].
pub const NUM_VIDEO_FEATURES: usize = 6;

/// Extract the feature vector of one `[FRAMES, H, W]` clip.
pub fn video_features(clip: &F32Tensor) -> F32Tensor {
    assert_eq!(
        clip.shape(),
        &[FRAMES, FRAME_H, FRAME_W],
        "expected a [{FRAMES}, {FRAME_H}, {FRAME_W}] clip"
    );

    // Temporal difference energy: mean |frame_{t+1} − frame_t|.
    let head = clip.narrow(0, 0, FRAMES - 1);
    let tail = clip.narrow(0, 1, FRAMES - 1);
    let diff = tail.sub(&head);
    let motion = diff.abs().mean() as f32;

    // Brightness-centroid drift: x/y displacement of the bright mass
    // between the first and last frame.
    let centroid = |f: usize| {
        let frame = clip.narrow(0, f, 1).reshape(&[FRAME_H, FRAME_W]);
        let (mut nx, mut ny, mut den) = (0.0f64, 0.0f64, 0.0f64);
        for y in 0..FRAME_H {
            for x in 0..FRAME_W {
                let v = (frame.get(&[y, x]) as f64).powi(4); // weight bright pixels
                nx += x as f64 * v;
                ny += y as f64 * v;
                den += v;
            }
        }
        (nx / den.max(1e-9), ny / den.max(1e-9))
    };
    let (x0, y0) = centroid(0);
    let (x1, y1) = centroid(FRAMES - 1);
    let drift_x = ((x1 - x0) / FRAME_W as f64) as f32;
    let drift_y = ((y1 - y0) / FRAME_H as f64) as f32;

    // Global brightness oscillation: std of per-frame means.
    let frame_means: Vec<f64> = (0..FRAMES).map(|f| clip.narrow(0, f, 1).mean()).collect();
    let mean_of_means = frame_means.iter().sum::<f64>() / FRAMES as f64;
    let flicker = (frame_means
        .iter()
        .map(|m| (m - mean_of_means).powi(2))
        .sum::<f64>()
        / FRAMES as f64)
        .sqrt() as f32;

    // Spatial detail (first frame) and overall brightness.
    let first = clip.narrow(0, 0, 1);
    let fm = first.mean() as f32;
    let centered = first.sub_scalar(fm);
    let spatial = (centered.mul(&centered).mean()).sqrt() as f32;

    Tensor::from_vec(
        vec![motion, drift_x, drift_y, flicker, spatial, fm],
        &[NUM_VIDEO_FEATURES],
    )
}

/// The calibrated joint video model.
#[derive(Debug, Clone)]
pub struct VideoSim {
    mu: F32Tensor,
    sigma: F32Tensor,
    exemplars: F32Tensor,
    per_class: usize,
    beta: f32,
}

impl VideoSim {
    /// Calibrate against the clip generator ("pretrain").
    pub fn pretrained(samples_per_class: usize, seed: u64) -> VideoSim {
        let mut rng = Rng64::new(seed);
        let mut feats: Vec<F32Tensor> = Vec::new();
        for &c in &VideoClass::ALL {
            for _ in 0..samples_per_class {
                feats.push(video_features(&render_video(c, &mut rng)));
            }
        }
        let all = {
            let refs: Vec<&F32Tensor> = feats.iter().collect();
            tdp_tensor::index::stack(&refs)
        };
        let mu = all.mean_dim(0, false);
        let centered = all.sub(&mu);
        let sigma = centered
            .mul(&centered)
            .mean_dim(0, false)
            .sqrt()
            .add_scalar(1e-6);
        let exemplars = all.sub(&mu).div(&sigma);
        VideoSim {
            mu,
            sigma,
            exemplars,
            per_class: samples_per_class,
            beta: 2.0,
        }
    }

    /// Class posterior of one clip.
    pub fn posterior(&self, clip: &F32Tensor) -> F32Tensor {
        let f = video_features(clip).sub(&self.mu).div(&self.sigma);
        let k = VideoClass::ALL.len();
        let diff = self.exemplars.sub(&f.reshape(&[1, NUM_VIDEO_FEATURES]));
        let d2 = diff.mul(&diff).sum_dim(1, false);
        let min_d2 = d2
            .reshape(&[k, self.per_class])
            .min_dim(1, false)
            .mul_scalar(-self.beta);
        min_d2.reshape(&[1, k]).softmax(1).reshape(&[k])
    }

    /// The "text encoder": classes named by a query.
    pub fn text_classes(query: &str) -> Vec<VideoClass> {
        let q = query.to_ascii_lowercase();
        if q.contains("right") {
            return vec![VideoClass::PanRight];
        }
        if q.contains("left") {
            return vec![VideoClass::PanLeft];
        }
        if q.contains("moving") || q.contains("motion") || q.contains("pan") {
            return vec![VideoClass::PanRight, VideoClass::PanLeft];
        }
        if q.contains("flicker") || q.contains("flash") || q.contains("strobe") {
            return vec![VideoClass::Flicker];
        }
        if q.contains("static") || q.contains("still") {
            return vec![VideoClass::Static];
        }
        Vec::new()
    }

    /// Similarity of a text query and one clip.
    pub fn similarity(&self, query: &str, clip: &F32Tensor) -> f32 {
        let classes = Self::text_classes(query);
        if classes.is_empty() {
            return 0.0;
        }
        let post = self.posterior(clip);
        classes.iter().map(|c| post.at(c.id() as usize)).sum()
    }

    /// Similarity scores for a whole `[n, FRAMES, H, W]` clip column.
    pub fn similarity_batch(&self, query: &str, clips: &F32Tensor) -> F32Tensor {
        assert_eq!(clips.ndim(), 4, "expected [n, frames, h, w]");
        let n = clips.rows();
        let out: Vec<f32> = (0..n)
            .map(|i| self.similarity(query, &clips.row(i)))
            .collect();
        Tensor::from_vec(out, &[n]).to(clips.device())
    }
}

/// `video_text_similarity(query, clips)` — the video member of the
/// Listing-7 UDF family.
pub struct VideoTextSimilarityUdf {
    model: VideoSim,
}

impl VideoTextSimilarityUdf {
    pub fn new(model: VideoSim) -> VideoTextSimilarityUdf {
        VideoTextSimilarityUdf { model }
    }
}

impl ScalarUdf for VideoTextSimilarityUdf {
    fn name(&self) -> &str {
        "video_text_similarity"
    }

    /// `(query: string, clips: column)`, immutable, parallel-safe — see
    /// [`crate::ImageTextSimilarityUdf`] for the contract.
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::scalar(self.name(), vec![ArgType::Str, ArgType::Column])
            .volatility(Volatility::Immutable)
            .parallel_safe(true)
    }

    fn invoke(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<EncodedTensor, ExecError> {
        if args.len() != 2 {
            return Err(ExecError::TypeMismatch(
                "video_text_similarity(query, clips) takes two arguments".into(),
            ));
        }
        let query = args[0].as_str()?;
        let clips = args[1].as_column()?.decode_f32();
        if clips.ndim() != 4 {
            return Err(ExecError::TypeMismatch(format!(
                "expected an [n, frames, h, w] video column, got {:?}",
                clips.shape()
            )));
        }
        Ok(EncodedTensor::F32(
            self.model.similarity_batch(query, &clips),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_data::video::generate_video;

    #[test]
    fn features_capture_motion_direction_and_flicker() {
        let mut rng = Rng64::new(2);
        let right = video_features(&render_video(VideoClass::PanRight, &mut rng));
        let left = video_features(&render_video(VideoClass::PanLeft, &mut rng));
        let still = video_features(&render_video(VideoClass::Static, &mut rng));
        let flicker = video_features(&render_video(VideoClass::Flicker, &mut rng));
        assert!(right.at(1) > 0.2, "rightward drift: {:?}", right.to_vec());
        assert!(left.at(1) < -0.2, "leftward drift: {:?}", left.to_vec());
        assert!(still.at(0) < 1e-6, "no temporal energy when static");
        assert!(
            flicker.at(3) > still.at(3) + 0.05,
            "flicker has brightness swing"
        );
    }

    #[test]
    fn posterior_identifies_every_class() {
        let model = VideoSim::pretrained(6, 19);
        let mut rng = Rng64::new(77);
        for &c in &VideoClass::ALL {
            let clip = render_video(c, &mut rng);
            let post = model.posterior(&clip);
            let argmax = post
                .data()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(argmax as i64, c.id(), "{c:?}: {:?}", post.to_vec());
        }
    }

    #[test]
    fn directional_queries_separate_pans() {
        let model = VideoSim::pretrained(6, 20);
        let mut rng = Rng64::new(3);
        let ds = generate_video(16, &mut rng);
        let right_scores = model.similarity_batch("object moving right", &ds.clips);
        for (c, &s) in ds.classes.iter().zip(right_scores.data()) {
            if *c == VideoClass::PanRight {
                assert!(s > 0.8, "{c:?} scored {s}");
            } else {
                assert!(s < 0.2, "{c:?} scored {s}");
            }
        }
        // The umbrella query matches both pan directions.
        let motion_scores = model.similarity_batch("motion", &ds.clips);
        for (c, &s) in ds.classes.iter().zip(motion_scores.data()) {
            let moving = matches!(c, VideoClass::PanLeft | VideoClass::PanRight);
            assert_eq!(s > 0.5, moving, "{c:?} scored {s}");
        }
    }
}
