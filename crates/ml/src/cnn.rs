//! Convolutional models: parser CNNs and the deep-learning baselines.

use tdp_autodiff::Var;
use tdp_nn::{
    Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Module, ReLU, Residual, Sequential,
};
use tdp_tensor::Rng64;

/// The parser CNN of Listing 4: a small convnet classifying 28×28 tiles
/// into `num_classes` (10 for digits, 2 for sizes).
pub struct DigitCnn {
    net: Sequential,
    num_classes: usize,
}

impl DigitCnn {
    pub fn new(num_classes: usize, rng: &mut Rng64) -> DigitCnn {
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 8, 3, 1, 1, rng)),
            Box::new(ReLU),
            Box::new(MaxPool2d::new(2, 2)), // 28 -> 14
            Box::new(Conv2d::new(8, 16, 3, 1, 1, rng)),
            Box::new(ReLU),
            Box::new(MaxPool2d::new(2, 2)), // 14 -> 7
            Box::new(Flatten),
            Box::new(Linear::new(16 * 7 * 7, 128, rng)),
            Box::new(ReLU),
            Box::new(Linear::new(128, num_classes, rng)),
        ]);
        DigitCnn { net, num_classes }
    }

    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

impl Module for DigitCnn {
    /// `[n, 1, 28, 28]` → logits `[n, num_classes]`.
    fn forward(&self, x: &Var) -> Var {
        self.net.forward(x)
    }

    fn parameters(&self) -> Vec<Var> {
        self.net.parameters()
    }
}

/// CNN-Small: the ~850K-parameter monolithic regressor baseline of §5.5,
/// mapping an 84×84 grid image straight to the 20 grouped counts.
pub struct CnnSmall {
    net: Sequential,
}

impl CnnSmall {
    pub fn new(outputs: usize, rng: &mut Rng64) -> CnnSmall {
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 16, 3, 1, 1, rng)),
            Box::new(ReLU),
            Box::new(MaxPool2d::new(2, 2)), // 84 -> 42
            Box::new(Conv2d::new(16, 32, 3, 1, 1, rng)),
            Box::new(ReLU),
            Box::new(MaxPool2d::new(2, 2)), // 42 -> 21
            Box::new(Conv2d::new(32, 32, 3, 1, 1, rng)),
            Box::new(ReLU),
            Box::new(MaxPool2d::new(2, 2)), // 21 -> 10
            Box::new(Flatten),
            Box::new(Linear::new(32 * 10 * 10, 256, rng)),
            Box::new(ReLU),
            Box::new(Linear::new(256, outputs, rng)),
        ]);
        CnnSmall { net }
    }
}

impl Module for CnnSmall {
    /// `[n, 1, 84, 84]` → `[n, outputs]` count regressions.
    fn forward(&self, x: &Var) -> Var {
        self.net.forward(x)
    }

    fn parameters(&self) -> Vec<Var> {
        self.net.parameters()
    }
}

/// ResNet-18-style regressor (~11M parameters): the heavyweight baseline
/// of §5.5 Experiment 1. Standard [2, 2, 2, 2] basic-block layout without
/// batch normalisation (biases instead), global average pooling, linear
/// head.
pub struct ResNet18 {
    stem: Sequential,
    stages: Vec<Residual>,
    head: Sequential,
}

fn basic_block(in_ch: usize, out_ch: usize, stride: usize, rng: &mut Rng64) -> Residual {
    let body = Sequential::new(vec![
        Box::new(Conv2d::new(in_ch, out_ch, 3, stride, 1, rng)),
        Box::new(ReLU),
        Box::new(Conv2d::new(out_ch, out_ch, 3, 1, 1, rng)),
    ]);
    let proj = if stride != 1 || in_ch != out_ch {
        Some(Conv2d::new(in_ch, out_ch, 1, stride, 0, rng))
    } else {
        None
    };
    Residual::new(body, proj)
}

impl ResNet18 {
    pub fn new(outputs: usize, rng: &mut Rng64) -> ResNet18 {
        let stem = Sequential::new(vec![
            Box::new(Conv2d::new(1, 64, 7, 2, 3, rng)), // 84 -> 42
            Box::new(ReLU),
            Box::new(MaxPool2d::new(2, 2)), // 42 -> 21
        ]);
        let mut stages = Vec::new();
        let plan: [(usize, usize, usize); 8] = [
            (64, 64, 1),
            (64, 64, 1),
            (64, 128, 2), // 21 -> 11
            (128, 128, 1),
            (128, 256, 2), // 11 -> 6
            (256, 256, 1),
            (256, 512, 2), // 6 -> 3
            (512, 512, 1),
        ];
        for (i, o, s) in plan {
            stages.push(basic_block(i, o, s, rng));
        }
        let head = Sequential::new(vec![
            Box::new(GlobalAvgPool),
            Box::new(Linear::new(512, outputs, rng)),
        ]);
        ResNet18 { stem, stages, head }
    }
}

impl Module for ResNet18 {
    fn forward(&self, x: &Var) -> Var {
        let mut cur = self.stem.forward(x);
        for stage in &self.stages {
            cur = stage.forward(&cur);
        }
        self.head.forward(&cur)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.stem.parameters();
        for s in &self.stages {
            ps.extend(s.parameters());
        }
        ps.extend(self.head.parameters());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_autodiff::Var;
    use tdp_tensor::{F32Tensor, Tensor};

    #[test]
    fn digit_cnn_shapes() {
        let mut rng = Rng64::new(1);
        let cnn = DigitCnn::new(10, &mut rng);
        let x = Var::constant(F32Tensor::zeros(&[3, 1, 28, 28]));
        assert_eq!(cnn.forward(&x).shape(), vec![3, 10]);
        assert_eq!(cnn.num_classes(), 10);
        let size_cnn = DigitCnn::new(2, &mut rng);
        assert_eq!(size_cnn.forward(&x).shape(), vec![3, 2]);
    }

    #[test]
    fn cnn_small_parameter_budget() {
        let mut rng = Rng64::new(2);
        let m = CnnSmall::new(20, &mut rng);
        let n = m.num_parameters();
        // Paper: "CNN-Small with 850K trainable parameters".
        assert!(
            (700_000..1_000_000).contains(&n),
            "CNN-Small has {n} parameters"
        );
        let x = Var::constant(F32Tensor::zeros(&[1, 1, 84, 84]));
        assert_eq!(m.forward(&x).shape(), vec![1, 20]);
    }

    #[test]
    fn resnet18_parameter_budget_and_shape() {
        let mut rng = Rng64::new(3);
        let m = ResNet18::new(20, &mut rng);
        let n = m.num_parameters();
        // Paper: "Resnet-18 with 11.1M trainable parameters".
        assert!(
            (10_000_000..12_500_000).contains(&n),
            "ResNet-18 has {n} parameters"
        );
        let x = Var::constant(F32Tensor::zeros(&[1, 1, 84, 84]));
        assert_eq!(m.forward(&x).shape(), vec![1, 20]);
    }

    #[test]
    fn digit_cnn_learns_a_two_image_toy() {
        use tdp_nn::{Adam, Optimizer};
        let mut rng = Rng64::new(4);
        let cnn = DigitCnn::new(2, &mut rng);
        // Two fixed images: bright left half vs bright right half.
        let mut a = F32Tensor::zeros(&[28, 28]);
        let mut b = F32Tensor::zeros(&[28, 28]);
        for y in 0..28 {
            for x in 0..14 {
                a.set(&[y, x], 1.0);
                b.set(&[y, 27 - x], 1.0);
            }
        }
        let batch = tdp_tensor::index::concat_rows(&[
            &a.reshape(&[1, 1, 28, 28]),
            &b.reshape(&[1, 1, 28, 28]),
        ]);
        let labels = Tensor::from_vec(vec![0i64, 1], &[2]);
        let mut opt = Adam::new(cnn.parameters(), 0.01);
        let mut last = f32::MAX;
        for _ in 0..30 {
            opt.zero_grad();
            let loss = cnn
                .forward(&Var::constant(batch.clone()))
                .cross_entropy(&labels);
            loss.backward();
            opt.step();
            last = loss.value().item();
        }
        assert!(last < 0.1, "toy task must be learnable, loss={last}");
    }
}
