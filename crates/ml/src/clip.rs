//! CLIP-sim: a deterministic joint text/image similarity model.
//!
//! Substitution for OpenAI CLIP (paper §5.1, Listing 7). The real system
//! embeds text and images into a shared space learned from 400M pairs; the
//! experiments only require that (a) a text query and the images matching
//! it score above a threshold while others score below, and (b) the image
//! side costs per-image tensor compute so CPU/accelerator comparisons are
//! meaningful.
//!
//! CLIP-sim achieves this with a classic recipe: a hand-rolled feature
//! extractor (channel statistics, texture anisotropy, saturation, band
//! colour, central contrast — all tensor kernels), feature standardisation,
//! and class prototypes *calibrated* once against the generator (playing
//! the role of pretraining). The similarity of a text query and an image
//! is the posterior mass the image assigns to the classes named by the
//! query — a calibrated score in `[0, 1]` where the paper's `> 0.8`
//! filters behave as intended.

use tdp_data::attachments::{render_attachment, AttachmentClass};
use tdp_encoding::EncodedTensor;
use tdp_exec::{ArgType, ArgValue, ExecContext, ExecError, FunctionSpec, ScalarUdf, Volatility};
use tdp_tensor::{F32Tensor, Rng64, Tensor};

/// Number of scalar features extracted per image.
pub const NUM_FEATURES: usize = 9;

/// Extract the CLIP-sim feature vector of one `[3, h, w]` image.
/// Pure tensor kernels; cost is linear in the pixel count.
pub fn image_features(img: &F32Tensor) -> F32Tensor {
    assert_eq!(img.ndim(), 3, "expected [3, h, w]");
    let (c, h, w) = (img.shape()[0], img.shape()[1], img.shape()[2]);
    assert_eq!(c, 3, "expected RGB");
    let r = img.narrow(0, 0, 1).reshape(&[h, w]);
    let g = img.narrow(0, 1, 1).reshape(&[h, w]);
    let b = img.narrow(0, 2, 1).reshape(&[h, w]);
    let gray = r.add(&g).add(&b).mul_scalar(1.0 / 3.0);

    let mean_r = r.mean() as f32;
    let mean_g = g.mean() as f32;
    let mean_b = b.mean() as f32;
    let brightness = gray.mean() as f32;

    // Contrast: std of the gray plane.
    let centered = gray.sub_scalar(brightness);
    let contrast = (centered.mul(&centered).mean()).sqrt() as f32;

    // Texture anisotropy: horizontal text lines make row-to-row differences
    // much larger than column-to-column ones.
    let row_diff = gray
        .narrow(0, 1, h - 1)
        .sub(&gray.narrow(0, 0, h - 1))
        .abs()
        .mean();
    let col_diff = gray
        .narrow(1, 1, w - 1)
        .sub(&gray.narrow(1, 0, w - 1))
        .abs()
        .mean();
    let anisotropy = (row_diff / (row_diff + col_diff + 1e-9)) as f32;

    // Saturation: mean channel spread.
    let maxc = r.maximum(&g).maximum(&b);
    let minc = r.minimum(&g).minimum(&b);
    let saturation = maxc.sub(&minc).mean() as f32;

    // Top-band redness (brand bands, skies).
    let band = h / 6;
    let top_red =
        r.narrow(0, 0, band.max(1)).mean() as f32 - g.narrow(0, 0, band.max(1)).mean() as f32;

    // Central contrast (logo discs): |centre mean − border mean|.
    let ch = h / 3;
    let cw = w / 3;
    let centre = gray
        .narrow(0, ch, ch.max(1))
        .narrow(1, cw, cw.max(1))
        .mean() as f32;
    let central_contrast = (centre - brightness).abs();

    Tensor::from_vec(
        vec![
            mean_r,
            mean_g,
            mean_b,
            brightness,
            contrast,
            anisotropy,
            saturation,
            top_red,
            central_contrast,
        ],
        &[NUM_FEATURES],
    )
}

/// The calibrated joint model.
#[derive(Debug, Clone)]
pub struct ClipSim {
    /// Per-feature mean/std across the calibration corpus.
    mu: F32Tensor,
    sigma: F32Tensor,
    /// Standardised class exemplars `[num_classes * per_class, NUM_FEATURES]`.
    /// Classes like logos are multimodal (palette choices), so the posterior
    /// uses the distance to the *nearest* exemplar of each class rather than
    /// a single mean prototype.
    exemplars: F32Tensor,
    per_class: usize,
    /// Posterior sharpness.
    beta: f32,
}

impl ClipSim {
    /// Calibrate prototypes against the attachment generator ("pretrain").
    /// `samples_per_class` images per class at the given resolution.
    pub fn pretrained(h: usize, w: usize, samples_per_class: usize, seed: u64) -> ClipSim {
        let mut rng = Rng64::new(seed);
        let classes = AttachmentClass::ALL;
        let mut feats: Vec<F32Tensor> = Vec::new();
        for &c in &classes {
            for _ in 0..samples_per_class {
                feats.push(image_features(&render_attachment(c, h, w, &mut rng)));
            }
        }
        let all = {
            let refs: Vec<&F32Tensor> = feats.iter().collect();
            tdp_tensor::index::stack(&refs)
        };
        let mu = all.mean_dim(0, false);
        let centered = all.sub(&mu);
        let sigma = centered
            .mul(&centered)
            .mean_dim(0, false)
            .sqrt()
            .add_scalar(1e-6);

        // Standardised exemplars, grouped by class.
        let exemplars = all.sub(&mu).div(&sigma);
        ClipSim {
            mu,
            sigma,
            exemplars,
            per_class: samples_per_class,
            beta: 2.0,
        }
    }

    /// Class posterior of one image:
    /// softmax over classes of −β · min_exemplar ||f − e||².
    pub fn posterior(&self, img: &F32Tensor) -> F32Tensor {
        let f = image_features(img).sub(&self.mu).div(&self.sigma);
        let k = AttachmentClass::ALL.len();
        let diff = self.exemplars.sub(&f.reshape(&[1, NUM_FEATURES]));
        let d2 = diff.mul(&diff).sum_dim(1, false); // [k * per_class]
        let min_d2 = d2
            .reshape(&[k, self.per_class])
            .min_dim(1, false)
            .mul_scalar(-self.beta);
        min_d2.reshape(&[1, k]).softmax(1).reshape(&[k])
    }

    /// Classes named by a text query (the "text encoder"). Unknown words
    /// match nothing (scores ~0), like an out-of-distribution CLIP query.
    pub fn text_classes(query: &str) -> Vec<AttachmentClass> {
        let q = query.to_ascii_lowercase();
        if q.contains("kfc") {
            return vec![AttachmentClass::KfcReceipt];
        }
        if q.contains("receipt") {
            return vec![AttachmentClass::Receipt, AttachmentClass::KfcReceipt];
        }
        if q.contains("dog") {
            return vec![AttachmentClass::PhotoDog];
        }
        if q.contains("cat") {
            return vec![AttachmentClass::PhotoCat];
        }
        if q.contains("landscape") || q.contains("scenery") {
            return vec![AttachmentClass::PhotoLandscape];
        }
        if q.contains("photo") || q.contains("picture") {
            return vec![
                AttachmentClass::PhotoDog,
                AttachmentClass::PhotoCat,
                AttachmentClass::PhotoLandscape,
            ];
        }
        if q.contains("logo") || q.contains("brand") {
            return vec![AttachmentClass::Logo];
        }
        Vec::new()
    }

    /// Similarity of a text query and one image: posterior mass on the
    /// query's classes. Calibrated to `[0, 1]`.
    pub fn similarity(&self, query: &str, img: &F32Tensor) -> f32 {
        let classes = Self::text_classes(query);
        if classes.is_empty() {
            return 0.0;
        }
        let post = self.posterior(img);
        classes.iter().map(|c| post.at(c.id() as usize)).sum()
    }

    /// Similarity scores for a whole `[n, 3, h, w]` image column. Work is
    /// per-image (feature extraction over every pixel), so the accelerator
    /// splits across images regardless of how few there are.
    pub fn similarity_batch(&self, query: &str, images: &F32Tensor) -> F32Tensor {
        assert_eq!(images.ndim(), 4, "expected [n, 3, h, w]");
        let n = images.rows();
        let out = vec![0.0f32; n];
        let out_ptr = SyncPtr(out.as_ptr() as *mut f32);
        let out_ref = &out_ptr; // capture the wrapper, not the raw field
        images.device().for_each_heavy(n, |i| {
            let score = self.similarity(query, &images.row(i));
            // Each index is written by exactly one lane.
            unsafe { *out_ref.0.add(i) = score };
        });
        Tensor::from_vec(out, &[n]).to(images.device())
    }
}

struct SyncPtr(*mut f32);
unsafe impl Send for SyncPtr {}
unsafe impl Sync for SyncPtr {}

/// The `image_text_similarity(query, images)` scalar UDF of Listing 7.
pub struct ImageTextSimilarityUdf {
    model: ClipSim,
}

impl ImageTextSimilarityUdf {
    pub fn new(model: ClipSim) -> ImageTextSimilarityUdf {
        ImageTextSimilarityUdf { model }
    }
}

impl ScalarUdf for ImageTextSimilarityUdf {
    fn name(&self) -> &str {
        "image_text_similarity"
    }

    /// Declared signature: `(query: string, images: column)`. Arity and
    /// argument types are checked at prepare time; the model weights are
    /// fixed after pretraining (Immutable) and the UDF holds no session
    /// state, so — registered through
    /// [`tdp_exec::UdfRegistry::register_scalar_parallel`] — chains
    /// applying it run across the morsel worker pool.
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::scalar(self.name(), vec![ArgType::Str, ArgType::Column])
            .volatility(Volatility::Immutable)
            .parallel_safe(true)
    }

    fn invoke(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<EncodedTensor, ExecError> {
        if args.len() != 2 {
            return Err(ExecError::Udf(
                "image_text_similarity(query, images) takes two arguments".into(),
            ));
        }
        let query = args[0].as_str()?;
        let images = match args[1].as_column()? {
            EncodedTensor::F32(t) => t.clone(),
            other => {
                return Err(ExecError::TypeMismatch(format!(
                    "images argument must be a tensor column, got {:?}",
                    other.kind()
                )))
            }
        };
        Ok(EncodedTensor::F32(
            self.model.similarity_batch(query, &images),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ClipSim {
        ClipSim::pretrained(32, 48, 6, 42)
    }

    #[test]
    fn matching_classes_score_high_others_low() {
        let m = model();
        let mut rng = Rng64::new(7);
        for &c in &AttachmentClass::ALL {
            let img = render_attachment(c, 32, 48, &mut rng);
            let own = m.similarity(c.label(), &img);
            assert!(own > 0.8, "{c:?} scores {own} for its own label");
        }
        // Cross-class: a logo must not look like a receipt.
        let logo = render_attachment(AttachmentClass::Logo, 32, 48, &mut rng);
        assert!(m.similarity("receipt", &logo) < 0.5);
        let dog = render_attachment(AttachmentClass::PhotoDog, 32, 48, &mut rng);
        assert!(m.similarity("logo", &dog) < 0.5);
    }

    #[test]
    fn receipt_supergroup_includes_kfc() {
        let m = model();
        let mut rng = Rng64::new(8);
        let kfc = render_attachment(AttachmentClass::KfcReceipt, 32, 48, &mut rng);
        assert!(m.similarity("receipt", &kfc) > 0.8);
        // And the branded query prefers the branded receipt.
        let plain = render_attachment(AttachmentClass::Receipt, 32, 48, &mut rng);
        assert!(m.similarity("KFC Receipt", &kfc) > m.similarity("KFC Receipt", &plain));
    }

    #[test]
    fn unknown_queries_score_zero() {
        let m = model();
        let mut rng = Rng64::new(9);
        let img = render_attachment(AttachmentClass::Logo, 32, 48, &mut rng);
        assert_eq!(m.similarity("submarine", &img), 0.0);
    }

    #[test]
    fn posterior_is_a_distribution() {
        let m = model();
        let mut rng = Rng64::new(10);
        let img = render_attachment(AttachmentClass::Receipt, 32, 48, &mut rng);
        let p = m.posterior(&img);
        assert_eq!(p.numel(), AttachmentClass::ALL.len());
        assert!((p.sum() - 1.0).abs() < 1e-5);
        assert!(p.min_all() >= 0.0);
    }

    #[test]
    fn batch_scores_match_single_scores() {
        let m = model();
        let mut rng = Rng64::new(11);
        let a = render_attachment(AttachmentClass::Logo, 32, 48, &mut rng);
        let b = render_attachment(AttachmentClass::Receipt, 32, 48, &mut rng);
        let batch = tdp_tensor::index::stack(&[&a, &b]);
        let scores = m.similarity_batch("logo", &batch);
        assert!((scores.at(0) - m.similarity("logo", &a)).abs() < 1e-6);
        assert!((scores.at(1) - m.similarity("logo", &b)).abs() < 1e-6);
    }

    #[test]
    fn udf_surface() {
        let m = model();
        let udf = ImageTextSimilarityUdf::new(m);
        assert_eq!(udf.name(), "image_text_similarity");
        let catalog = tdp_storage::Catalog::new();
        let udfs = tdp_exec::UdfRegistry::new();
        let ctx = ExecContext::new(&catalog, &udfs);
        let mut rng = Rng64::new(12);
        let img = render_attachment(AttachmentClass::Logo, 32, 48, &mut rng);
        let batch = tdp_tensor::index::stack(&[&img]);
        let out = udf
            .invoke(
                &[
                    ArgValue::Str("logo".into()),
                    ArgValue::Column(EncodedTensor::F32(batch)),
                ],
                &ctx,
            )
            .unwrap();
        assert!(out.decode_f32().at(0) > 0.8);
        // Wrong arity / types error cleanly.
        assert!(udf.invoke(&[ArgValue::Str("x".into())], &ctx).is_err());
    }
}
