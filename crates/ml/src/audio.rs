//! AudioSim: a deterministic audio↔text joint embedding, the audio
//! counterpart of [`crate::clip::ClipSim`].
//!
//! Features are classical acoustic statistics computed with tensor
//! kernels: RMS energy, zero-crossing rate, band energies from a small
//! Goertzel-style resonator bank, click duty cycle, and spectral spread.
//! The "text encoder" maps keyword queries onto acoustic classes, and
//! similarity is posterior mass on the queried classes — identical in
//! shape to the CLIP-sim image path, so the same multimodal SQL queries
//! run over audio columns.

use tdp_data::audio::{render_clip, AudioClass, CLIP_LEN, SAMPLE_RATE};
use tdp_encoding::EncodedTensor;
use tdp_exec::{ArgType, ArgValue, ExecContext, ExecError, FunctionSpec, ScalarUdf, Volatility};
use tdp_tensor::{F32Tensor, Rng64, Tensor};

/// Dimensionality of [`audio_features`].
pub const NUM_AUDIO_FEATURES: usize = 10;

/// Center frequencies of the resonator bank (Hz).
const BANDS: [f32; 5] = [220.0, 500.0, 1200.0, 2000.0, 3000.0];

/// Extract the feature vector of one `[CLIP_LEN]` waveform.
pub fn audio_features(wave: &F32Tensor) -> F32Tensor {
    assert_eq!(wave.ndim(), 1, "expected a 1-d waveform");
    let n = wave.numel();
    let data = wave.data();

    // RMS energy.
    let rms = (wave.mul(wave).mean()).sqrt() as f32;

    // Zero-crossing rate.
    let zc = data
        .windows(2)
        .filter(|p| (p[0] >= 0.0) != (p[1] >= 0.0))
        .count() as f32
        / n as f32;

    // Goertzel band energies (normalised by total energy).
    let total: f32 = data.iter().map(|v| v * v).sum::<f32>().max(1e-9);
    let mut bands = [0.0f32; 5];
    for (b, &freq) in BANDS.iter().enumerate() {
        let w = std::f32::consts::TAU * freq / SAMPLE_RATE as f32;
        let coef = 2.0 * w.cos();
        let (mut s1, mut s2) = (0.0f32, 0.0f32);
        for &x in data {
            let s0 = x + coef * s1 - s2;
            s2 = s1;
            s1 = s0;
        }
        let power = s1 * s1 + s2 * s2 - coef * s1 * s2;
        // Log-compressed: raw band energies span many orders of magnitude
        // across classes, which would let a single band dominate the
        // standardised embedding distance.
        bands[b] = (power / (n as f32 * total)).clamp(1e-20, 10.0).log10();
    }

    // Duty cycle: fraction of near-silent samples (clicks are sparse).
    let silent = data.iter().filter(|v| v.abs() < 1e-4).count() as f32 / n as f32;

    // Crest factor (peak / rms): ~1.4 for tones, ~3 for noise, huge for
    // impulsive click trains. DC ratio (mean / rms): ~0 for zero-mean
    // signals, ~duty-normalised for one-sided clicks.
    let peak = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let crest = (peak / rms.max(1e-6)).min(50.0);
    let dc_ratio = (wave.mean() as f32 / rms.max(1e-6)).clamp(-5.0, 5.0);

    Tensor::from_vec(
        vec![
            rms, zc, bands[0], bands[1], bands[2], bands[3], bands[4], silent, crest, dc_ratio,
        ],
        &[NUM_AUDIO_FEATURES],
    )
}

/// The calibrated joint audio model.
#[derive(Debug, Clone)]
pub struct AudioSim {
    mu: F32Tensor,
    sigma: F32Tensor,
    /// Standardised exemplars, `[num_classes * per_class, F]`, grouped by
    /// class in `AudioClass::ALL` order.
    exemplars: F32Tensor,
    per_class: usize,
    beta: f32,
}

impl AudioSim {
    /// Calibrate against the clip generator ("pretrain").
    pub fn pretrained(samples_per_class: usize, seed: u64) -> AudioSim {
        let mut rng = Rng64::new(seed);
        let mut feats: Vec<F32Tensor> = Vec::new();
        for &c in &AudioClass::ALL {
            for _ in 0..samples_per_class {
                feats.push(audio_features(&render_clip(c, &mut rng)));
            }
        }
        let all = {
            let refs: Vec<&F32Tensor> = feats.iter().collect();
            tdp_tensor::index::stack(&refs)
        };
        let mu = all.mean_dim(0, false);
        let centered = all.sub(&mu);
        let sigma = centered
            .mul(&centered)
            .mean_dim(0, false)
            .sqrt()
            .add_scalar(1e-6);
        let exemplars = all.sub(&mu).div(&sigma);
        AudioSim {
            mu,
            sigma,
            exemplars,
            per_class: samples_per_class,
            beta: 2.0,
        }
    }

    /// Class posterior of one clip.
    pub fn posterior(&self, wave: &F32Tensor) -> F32Tensor {
        let f = audio_features(wave).sub(&self.mu).div(&self.sigma);
        let k = AudioClass::ALL.len();
        let diff = self.exemplars.sub(&f.reshape(&[1, NUM_AUDIO_FEATURES]));
        let d2 = diff.mul(&diff).sum_dim(1, false);
        let min_d2 = d2
            .reshape(&[k, self.per_class])
            .min_dim(1, false)
            .mul_scalar(-self.beta);
        min_d2.reshape(&[1, k]).softmax(1).reshape(&[k])
    }

    /// The "text encoder": classes named by a query.
    pub fn text_classes(query: &str) -> Vec<AudioClass> {
        let q = query.to_ascii_lowercase();
        if q.contains("low") {
            return vec![AudioClass::ToneLow];
        }
        if q.contains("high") {
            return vec![AudioClass::ToneHigh];
        }
        if q.contains("tone") || q.contains("note") {
            return vec![AudioClass::ToneLow, AudioClass::ToneHigh];
        }
        if q.contains("chirp") || q.contains("sweep") || q.contains("siren") {
            return vec![AudioClass::Chirp];
        }
        if q.contains("noise") || q.contains("static") || q.contains("hiss") {
            return vec![AudioClass::Noise];
        }
        if q.contains("click") || q.contains("tick") || q.contains("beat") {
            return vec![AudioClass::Clicks];
        }
        Vec::new()
    }

    /// Similarity of a text query and one clip.
    pub fn similarity(&self, query: &str, wave: &F32Tensor) -> f32 {
        let classes = Self::text_classes(query);
        if classes.is_empty() {
            return 0.0;
        }
        let post = self.posterior(wave);
        classes.iter().map(|c| post.at(c.id() as usize)).sum()
    }

    /// Similarity scores for a whole `[n, CLIP_LEN]` clip column.
    pub fn similarity_batch(&self, query: &str, clips: &F32Tensor) -> F32Tensor {
        assert_eq!(clips.ndim(), 2, "expected [n, samples]");
        let n = clips.rows();
        let out: Vec<f32> = (0..n)
            .map(|i| self.similarity(query, &clips.row(i)))
            .collect();
        Tensor::from_vec(out, &[n]).to(clips.device())
    }

    /// Per-class embedding matrix `[num_classes, F]` (the mean exemplar),
    /// usable as vector-index input for audio search.
    pub fn embed_batch(&self, clips: &F32Tensor) -> F32Tensor {
        assert_eq!(clips.ndim(), 2, "expected [n, samples]");
        let n = clips.rows();
        let mut out = Vec::with_capacity(n * NUM_AUDIO_FEATURES);
        for i in 0..n {
            let f = audio_features(&clips.row(i)).sub(&self.mu).div(&self.sigma);
            out.extend_from_slice(f.data());
        }
        Tensor::from_vec(out, &[n, NUM_AUDIO_FEATURES])
    }
}

/// `audio_text_similarity(query, clips)` — the audio twin of Listing 7's
/// image UDF, making audio a first-class filter/search modality in SQL.
pub struct AudioTextSimilarityUdf {
    model: AudioSim,
}

impl AudioTextSimilarityUdf {
    pub fn new(model: AudioSim) -> AudioTextSimilarityUdf {
        AudioTextSimilarityUdf { model }
    }
}

impl ScalarUdf for AudioTextSimilarityUdf {
    fn name(&self) -> &str {
        "audio_text_similarity"
    }

    /// `(query: string, clips: column)`, immutable, parallel-safe — see
    /// [`crate::ImageTextSimilarityUdf`] for the contract.
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::scalar(self.name(), vec![ArgType::Str, ArgType::Column])
            .volatility(Volatility::Immutable)
            .parallel_safe(true)
    }

    fn invoke(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<EncodedTensor, ExecError> {
        if args.len() != 2 {
            return Err(ExecError::TypeMismatch(
                "audio_text_similarity(query, clips) takes two arguments".into(),
            ));
        }
        let query = args[0].as_str()?;
        let clips = args[1].as_column()?.decode_f32();
        if clips.ndim() != 2 || clips.shape()[1] != CLIP_LEN {
            return Err(ExecError::TypeMismatch(format!(
                "expected an [n, {CLIP_LEN}] audio column, got {:?}",
                clips.shape()
            )));
        }
        Ok(EncodedTensor::F32(
            self.model.similarity_batch(query, &clips),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_data::audio::generate_audio;

    #[test]
    fn features_separate_classes() {
        let mut rng = Rng64::new(1);
        let low = audio_features(&render_clip(AudioClass::ToneLow, &mut rng));
        let high = audio_features(&render_clip(AudioClass::ToneHigh, &mut rng));
        // Band energies concentrate at the right resonator.
        assert!(low.at(2) > low.at(4), "low tone favours the 220 Hz band");
        assert!(
            high.at(4) > high.at(2),
            "high tone favours the 1200 Hz band"
        );
    }

    #[test]
    fn posterior_identifies_every_class() {
        let model = AudioSim::pretrained(6, 11);
        let mut rng = Rng64::new(33);
        for &c in &AudioClass::ALL {
            let clip = render_clip(c, &mut rng);
            let post = model.posterior(&clip);
            let argmax = post
                .data()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(
                argmax as i64,
                c.id(),
                "{c:?}: posterior {:?}",
                post.to_vec()
            );
        }
    }

    #[test]
    fn similarity_scores_rank_matching_clips_first() {
        let model = AudioSim::pretrained(6, 12);
        let mut rng = Rng64::new(44);
        let ds = generate_audio(20, &mut rng);
        let scores = model.similarity_batch("chirp", &ds.clips);
        // Every chirp clip must outscore every non-chirp clip.
        let chirp_min = ds
            .classes
            .iter()
            .zip(scores.data())
            .filter(|(c, _)| **c == AudioClass::Chirp)
            .map(|(_, &s)| s)
            .fold(f32::INFINITY, f32::min);
        let other_max = ds
            .classes
            .iter()
            .zip(scores.data())
            .filter(|(c, _)| **c != AudioClass::Chirp)
            .map(|(_, &s)| s)
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(
            chirp_min > other_max,
            "chirps {chirp_min} must outscore others {other_max}"
        );
    }

    #[test]
    fn unknown_queries_score_zero() {
        let model = AudioSim::pretrained(4, 13);
        let mut rng = Rng64::new(5);
        let clip = render_clip(AudioClass::Noise, &mut rng);
        assert_eq!(model.similarity("violin concerto", &clip), 0.0);
    }
}
