//! Integration tests of the prepared-statement API: `prepare`/`bind`/`run`
//! across the exact, profiled and differentiable executors, parameter
//! edge cases (NULL, rebind type changes, arity), literal-invariant
//! plan-cache reuse, and a property check that prepare+bind always equals
//! inlining the literals into the SQL text.

use std::sync::Arc;

use proptest::prelude::*;
use tdp_core::autodiff::Var;
use tdp_core::encoding::EncodedTensor;
use tdp_core::exec::{ArgValue, DiffColumn, ExecContext, ExecError, ScalarUdf};
use tdp_core::storage::{Table, TableBuilder};
use tdp_core::tensor::Tensor;
use tdp_core::{ParamValues, QueryConfig, Tdp, TdpError};

fn session() -> Tdp {
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("v", vec![0.5, 1.5, 2.5, 3.5, 4.5])
            .col_i64("k", vec![0, 1, 0, 1, 0])
            .col_str("tag", &["a", "b", "a", "c", "b"])
            .build("t"),
    );
    tdp
}

/// Two result tables are byte-identical: same column names, encodings and
/// decoded contents.
fn assert_tables_identical(a: &Table, b: &Table, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row counts differ");
    let (ac, bc) = (a.columns(), b.columns());
    assert_eq!(ac.len(), bc.len(), "{what}: column counts differ");
    for (x, y) in ac.iter().zip(bc.iter()) {
        assert_eq!(x.name, y.name, "{what}: column names differ");
        assert_eq!(
            x.data.decode_f32().to_vec(),
            y.data.decode_f32().to_vec(),
            "{what}: column '{}' differs",
            x.name
        );
    }
}

#[test]
fn bind_and_run_matches_inlined_literals_on_all_executors() {
    let tdp = session();
    let prepared = tdp
        .prepare("SELECT k, COUNT(*), SUM(v) FROM t WHERE v > ? GROUP BY k ORDER BY k")
        .unwrap();
    for threshold in [0.0, 1.0, 2.6, 9.9] {
        let bound = prepared.bind(ParamValues::new().number(threshold)).unwrap();
        let inlined = tdp
            .query(&format!(
                "SELECT k, COUNT(*), SUM(v) FROM t WHERE v > {threshold} GROUP BY k ORDER BY k"
            ))
            .unwrap();
        // Exact executor.
        assert_tables_identical(
            &bound.run().unwrap(),
            &inlined.run().unwrap(),
            &format!("exact @ {threshold}"),
        );
        // Profiled executor returns the same table plus a profile.
        let (pt, profile) = bound.run_profiled().unwrap();
        assert_tables_identical(&pt, &inlined.run().unwrap(), "profiled");
        assert!(profile.ops.len() >= 2);
        // One plan, two bindings: fingerprints (and the plan itself) shared.
        assert_eq!(bound.fingerprint(), inlined.fingerprint());
        assert!(std::ptr::eq(bound.physical_plan(), inlined.physical_plan()));
    }
}

/// Scalar UDF emitting a differentiable per-row score from a parameter.
struct ScoreUdf {
    scores: Var,
}

impl ScalarUdf for ScoreUdf {
    fn name(&self) -> &str {
        "score"
    }
    fn invoke(&self, _args: &[ArgValue], _ctx: &ExecContext) -> Result<EncodedTensor, ExecError> {
        Ok(EncodedTensor::F32(self.scores.value()))
    }
    fn invoke_diff(&self, _args: &[ArgValue], _ctx: &ExecContext) -> Result<DiffColumn, ExecError> {
        Ok(DiffColumn::plain(self.scores.clone()))
    }
    fn parameters(&self) -> Vec<Var> {
        vec![self.scores.clone()]
    }
}

#[test]
fn bind_and_run_diff_matches_inlined_literals() {
    let tdp = session();
    let scores = Var::param(Tensor::from_vec(vec![0.1f32, 0.9, 0.4, 0.8, 0.2], &[5]));
    tdp.register_udf(Arc::new(ScoreUdf { scores }));
    let config = QueryConfig::default().trainable(true).temperature(0.05);
    let prepared = tdp
        .prepare_with("SELECT COUNT(*) FROM t WHERE score(v) > ?", config)
        .unwrap();
    for threshold in [0.3, 0.5, 0.7] {
        let soft_bound = prepared
            .bind(ParamValues::new().number(threshold))
            .unwrap()
            .run_counts()
            .unwrap();
        let soft_inline = tdp
            .query_with(
                &format!("SELECT COUNT(*) FROM t WHERE score(v) > {threshold}"),
                config,
            )
            .unwrap()
            .run_counts()
            .unwrap();
        let (a, b) = (soft_bound.value(), soft_inline.value());
        assert_eq!(a.to_vec(), b.to_vec(), "diff executor @ {threshold}");
        // Gradients still flow through the bound plan.
        soft_bound.sum().backward();
    }
}

#[test]
fn binding_null_reports_a_parameter_error() {
    let tdp = session();
    let prepared = tdp.prepare("SELECT COUNT(*) FROM t WHERE v > ?").unwrap();
    // Binding NULL succeeds (the slot is covered)…
    let bound = prepared.bind(ParamValues::new().null()).unwrap();
    // …but evaluation rejects it: this dialect is NULL-free.
    match bound.run() {
        Err(TdpError::Exec(ExecError::Param(msg))) => {
            assert!(msg.contains("$1") && msg.contains("NULL"), "{msg}");
        }
        other => panic!("expected a parameter error, got {other:?}"),
    }
}

#[test]
fn arity_mismatch_is_rejected_at_bind_time() {
    let tdp = session();
    let prepared = tdp
        .prepare("SELECT COUNT(*) FROM t WHERE v > ? AND k = ?")
        .unwrap();
    assert_eq!(prepared.param_count(), 2);
    for bad in [
        ParamValues::new(),
        ParamValues::new().number(1.0),
        ParamValues::new().number(1.0).number(0.0).number(3.0),
    ] {
        match prepared.bind(bad) {
            Err(TdpError::Session(msg)) => {
                assert!(msg.contains("expects 2 parameter(s)"), "{msg}")
            }
            other => panic!("expected arity error, got {other:?}"),
        }
    }
    let ok = prepared
        .bind(ParamValues::new().number(2.0).number(0.0))
        .unwrap();
    assert_eq!(
        ok.run()
            .unwrap()
            .column("COUNT(*)")
            .unwrap()
            .data
            .decode_i64()
            .to_vec(),
        vec![2]
    );
}

#[test]
fn type_mismatched_rebind_of_the_same_plan() {
    // One prepared plan, rebound with values of different types: numbers
    // work, a string in a numeric comparison fails at run time with a
    // type error, and the plan stays usable afterwards.
    let tdp = session();
    let prepared = tdp.prepare("SELECT COUNT(*) FROM t WHERE v > ?").unwrap();
    let good = prepared.bind(ParamValues::new().number(2.0)).unwrap();
    assert_eq!(
        good.run()
            .unwrap()
            .column("COUNT(*)")
            .unwrap()
            .data
            .decode_i64()
            .to_vec(),
        vec![3]
    );
    let bad = prepared.bind(ParamValues::new().string("oops")).unwrap();
    assert!(
        matches!(bad.run(), Err(TdpError::Exec(ExecError::TypeMismatch(_)))),
        "string in numeric comparison must be a type error"
    );
    // The shared plan is not poisoned by the failed binding.
    let again = prepared.bind(ParamValues::new().number(4.0)).unwrap();
    assert_eq!(
        again
            .run()
            .unwrap()
            .column("COUNT(*)")
            .unwrap()
            .data
            .decode_i64()
            .to_vec(),
        vec![1]
    );
    // String params work where strings are expected — same plan shape,
    // dictionary comparison path.
    let by_tag = tdp.prepare("SELECT COUNT(*) FROM t WHERE tag = ?").unwrap();
    assert_eq!(
        by_tag
            .bind(ParamValues::new().string("b"))
            .unwrap()
            .run()
            .unwrap()
            .column("COUNT(*)")
            .unwrap()
            .data
            .decode_i64()
            .to_vec(),
        vec![2]
    );
}

#[test]
fn tensor_params_bind_whole_columns() {
    let tdp = session();
    let prepared = tdp.prepare("SELECT v + ? AS shifted FROM t").unwrap();
    let offsets = Tensor::from_vec(vec![10.0f32, 20.0, 30.0, 40.0, 50.0], &[5]);
    let out = prepared
        .bind(ParamValues::new().tensor(offsets))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        out.column("shifted").unwrap().data.decode_f32().to_vec(),
        vec![10.5, 21.5, 32.5, 43.5, 54.5]
    );
    // A row-count mismatch is a clean runtime error, not a panic.
    let wrong = prepared
        .bind(ParamValues::new().tensor(Tensor::<f32>::zeros(&[2])))
        .unwrap();
    match wrong.run() {
        Err(TdpError::Exec(ExecError::Param(msg))) => {
            assert!(msg.contains("5 row(s)"), "{msg}");
        }
        other => panic!("expected a parameter error, got {other:?}"),
    }
}

#[test]
fn numbered_params_bind_by_slot_not_occurrence() {
    let tdp = session();
    let prepared = tdp
        .prepare("SELECT COUNT(*) FROM t WHERE v > $2 AND v < $1")
        .unwrap();
    assert_eq!(prepared.param_count(), 2);
    // $1 = 4.0 (upper), $2 = 1.0 (lower): keeps 1.5, 2.5, 3.5.
    let out = prepared
        .bind(ParamValues::new().number(4.0).number(1.0))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        out.column("COUNT(*)").unwrap().data.decode_i64().to_vec(),
        vec![3]
    );
}

#[test]
fn explain_renders_param_slots_and_trailer() {
    let tdp = session();
    let prepared = tdp
        .prepare("SELECT COUNT(*) FROM t WHERE v > ? AND k = 1")
        .unwrap();
    let text = prepared.explain();
    // $1 is the explicit placeholder; the literal 1 was auto-extracted
    // into $2. Both render in the physical tree and in the trailer.
    assert!(text.contains("$1"), "{text}");
    assert!(text.contains("$2"), "{text}");
    assert!(
        text.contains("params: 2 [$1, $2] (1 explicit, 1 auto-extracted)"),
        "{text}"
    );
    // Parameter-free statements say so.
    let none = tdp.prepare("SELECT k FROM t").unwrap();
    assert!(
        none.explain().contains("params: none"),
        "{}",
        none.explain()
    );
    // The bound view reports its binding.
    let bound = prepared.bind(ParamValues::new().number(0.5)).unwrap();
    assert!(bound.explain().contains("params: 2"), "{}", bound.explain());
}

#[test]
fn plan_cache_stats_prove_literal_invariant_reuse() {
    let tdp = session();
    for (i, thr) in [0.1f32, 0.7, 1.3, 2.9].iter().enumerate() {
        tdp.query(&format!("SELECT COUNT(*) FROM t WHERE v > {thr}"))
            .unwrap()
            .run()
            .unwrap();
        let stats = tdp.plan_cache_stats();
        assert_eq!(stats.entries, 1, "one shared entry");
        assert_eq!(stats.misses, 1, "only the first text compiles");
        assert_eq!(stats.hits, i as u64, "every later text hits");
    }
    // prepare() shares the same cache as query().
    let p = tdp.prepare("SELECT COUNT(*) FROM t WHERE v > ?").unwrap();
    let stats = tdp.plan_cache_stats();
    assert_eq!(
        (stats.entries, stats.hits),
        (1, 4),
        "explicit-param text normalizes onto the literal-variant entry"
    );
    assert_eq!(p.param_count(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// prepare+bind equals inlined-literal query on random
    /// filter → aggregate → order → limit pipelines, across random data,
    /// thresholds, scales and limits.
    #[test]
    fn prepare_bind_equals_inlined_query_on_random_pipelines(
        values in proptest::collection::vec(-20.0f32..20.0, 1..40),
        keys in proptest::collection::vec(0i64..4, 40),
        threshold in -20.0f32..20.0,
        scale in -3.0f32..3.0,
        limit in 1u64..8
    ) {
        let n = values.len();
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("v", values.clone())
                .col_i64("k", keys[..n].to_vec())
                .build("t"),
        );
        let inlined_sql = format!(
            "SELECT k, COUNT(*), SUM(v * {scale}) AS s FROM t WHERE v > {threshold} \
             GROUP BY k ORDER BY k LIMIT {limit}"
        );
        let prepared_sql = format!(
            "SELECT k, COUNT(*), SUM(v * ?) AS s FROM t WHERE v > ? \
             GROUP BY k ORDER BY k LIMIT {limit}"
        );
        let inlined = tdp.query(&inlined_sql).unwrap().run().unwrap();
        let bound = tdp
            .prepare(&prepared_sql)
            .unwrap()
            .bind(ParamValues::new().number(scale as f64).number(threshold as f64))
            .unwrap()
            .run()
            .unwrap();
        prop_assert_eq!(inlined.rows(), bound.rows());
        for (a, b) in inlined.columns().iter().zip(bound.columns().iter()) {
            prop_assert_eq!(&a.name, &b.name);
            let (av, bv) = (a.data.decode_f32().to_vec(), b.data.decode_f32().to_vec());
            prop_assert_eq!(av, bv, "column {} differs", &a.name);
        }
    }
}
