//! Integration tests for the extended feature set: the einops rearrange
//! path, the wider SQL surface (CASE / IN / LIKE / DISTINCT / UNION ALL /
//! new aggregates / built-in scalar functions), the compressed integer
//! encodings, the vector index, the query profiler, and the soft top-k
//! relaxation — all exercised through the public `Tdp` session API.

use std::sync::Arc;

use tdp_core::autodiff::Var;
use tdp_core::encoding::EncodedTensor;
use tdp_core::exec::{ArgValue, DiffColumn, ExecContext, ExecError, ScalarUdf};
use tdp_core::index::{recall_at_k, IvfParams, Metric};
use tdp_core::nn::{Adam, Optimizer};
use tdp_core::storage::TableBuilder;
use tdp_core::tensor::{einops, F32Tensor, Rng64, Tensor};
use tdp_core::{IndexKind, QueryConfig, Tdp};

fn orders_session() -> Tdp {
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("price", vec![3.0, 1.0, 2.0, 5.0, 4.0])
            .col_str("item", &["book", "bag", "bag", "candle", "book"])
            .col_i64("qty", vec![10, 20, 30, 40, 50])
            .build("orders"),
    );
    tdp
}

fn f32_col(t: &tdp_core::storage::Table, name: &str) -> Vec<f32> {
    t.column(name).unwrap().data.decode_f32().to_vec()
}

// ----------------------------------------------------------------------
// SQL surface
// ----------------------------------------------------------------------

#[test]
fn case_in_like_through_session() {
    let tdp = orders_session();
    let r = tdp
        .query(
            "SELECT item, CASE WHEN price >= 4 THEN 1 ELSE 0 END AS pricey \
             FROM orders WHERE item LIKE 'b%' AND qty IN (10, 50) ORDER BY qty",
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(r.rows(), 2);
    assert_eq!(f32_col(&r, "pricey"), vec![0.0, 1.0]);
}

#[test]
fn distinct_union_all_through_session() {
    let tdp = orders_session();
    let r = tdp
        .query("SELECT DISTINCT item FROM orders")
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(r.rows(), 3);
    let u = tdp
        .query(
            "SELECT price FROM orders WHERE price >= 5 \
             UNION ALL SELECT price FROM orders WHERE price <= 1",
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(f32_col(&u, "price"), vec![5.0, 1.0]);
}

#[test]
fn new_aggregates_through_session() {
    let tdp = orders_session();
    let r = tdp
        .query(
            "SELECT item, COUNT(DISTINCT qty) AS dq, STDDEV(price) AS sd \
             FROM orders GROUP BY item ORDER BY item",
        )
        .unwrap()
        .run()
        .unwrap();
    // items sorted: bag, book, candle
    assert_eq!(
        r.column("dq").unwrap().data.decode_i64().to_vec(),
        vec![2, 2, 1]
    );
    let sd = f32_col(&r, "sd");
    assert!((sd[0] - (0.5f32).sqrt()).abs() < 1e-5); // prices 1, 2
    assert!((sd[2] - 0.0).abs() < 1e-6); // singleton group
}

#[test]
fn builtin_functions_and_profiler() {
    let tdp = orders_session();
    let q = tdp
        .query("SELECT ROUND(SQRT(qty)) AS r FROM orders ORDER BY qty LIMIT 3")
        .unwrap();
    let (table, profile) = q.run_profiled().unwrap();
    assert_eq!(f32_col(&table, "r"), vec![3.0, 4.0, 5.0]);
    // ORDER BY + LIMIT fuses into TopK (even under a projection that
    // drops the sort key), so no standalone Limit operator remains.
    assert!(profile.ops.iter().any(|o| o.label.starts_with("TopK")));
    assert!(profile.total_seconds() >= 0.0);
    assert_eq!(profile.ops[0].rows_out, 3);
}

// ----------------------------------------------------------------------
// einops
// ----------------------------------------------------------------------

#[test]
fn einops_round_trips_and_matches_manual_split() {
    // The Listing-4 pattern against a manual loop implementation.
    let mut rng = Rng64::new(3);
    let grid = F32Tensor::randn(&[1, 12, 12], 0.0, 1.0, &mut rng);
    let tiles = einops::rearrange(
        &grid,
        "1 (h1 h2) (w1 w2) -> (h1 w1) 1 h2 w2",
        &[("h1", 3), ("w1", 3)],
    )
    .unwrap();
    assert_eq!(tiles.shape(), &[9, 1, 4, 4]);
    for ty in 0..3 {
        for tx in 0..3 {
            for y in 0..4 {
                for x in 0..4 {
                    assert_eq!(
                        tiles.get(&[ty * 3 + tx, 0, y, x]),
                        grid.get(&[0, ty * 4 + y, tx * 4 + x]),
                    );
                }
            }
        }
    }
    // Inverse pattern reassembles the grid.
    let back = einops::rearrange(
        &tiles,
        "(h1 w1) 1 h2 w2 -> 1 (h1 h2) (w1 w2)",
        &[("h1", 3), ("w1", 3)],
    )
    .unwrap();
    assert_eq!(back.to_vec(), grid.to_vec());
}

// ----------------------------------------------------------------------
// Compressed encodings through SQL
// ----------------------------------------------------------------------

#[test]
fn compressed_table_queries_match_plain() {
    let ts: Vec<i64> = (0..300).map(|i| 5_000 + 7 * i).collect();
    let cat: Vec<i64> = (0..300).map(|i| i % 4).collect();
    let table = TableBuilder::new()
        .col_i64("ts", ts)
        .col_i64("cat", cat)
        .build("log");

    let plain = Tdp::new();
    plain.register_table(table.clone());
    let packed = Tdp::new();
    packed.register_table(table.compress());

    for sql in [
        "SELECT cat, COUNT(*), MIN(ts), MAX(ts) FROM log GROUP BY cat",
        "SELECT COUNT(*) FROM log WHERE ts BETWEEN 5100 AND 6000",
        "SELECT DISTINCT cat FROM log ORDER BY cat",
    ] {
        let a = plain.query(sql).unwrap().run().unwrap();
        let b = packed.query(sql).unwrap().run().unwrap();
        assert_eq!(a.rows(), b.rows(), "{sql}");
        for col in a.column_names() {
            assert_eq!(
                a.column(col).unwrap().data.decode_i64().to_vec(),
                b.column(col).unwrap().data.decode_i64().to_vec(),
                "{sql} / {col}"
            );
        }
    }
}

// ----------------------------------------------------------------------
// Vector index
// ----------------------------------------------------------------------

#[test]
fn vector_index_recall_against_exact() {
    let mut rng = Rng64::new(5);
    let data = F32Tensor::randn(&[512, 16], 0.0, 1.0, &mut rng);
    let tdp = Tdp::new();
    tdp.register_table(TableBuilder::new().col_tensor("emb", data).build("vecs"));

    tdp.create_vector_index("vecs", "emb", Metric::Cosine, IndexKind::Flat, 0)
        .unwrap();
    let q = F32Tensor::randn(&[16], 0.0, 1.0, &mut rng);
    let exact = tdp.vector_topk("vecs", "emb", &q, 10, 1).unwrap();

    tdp.create_vector_index(
        "vecs",
        "emb",
        Metric::Cosine,
        IndexKind::IvfFlat(IvfParams::new(16), 16),
        42,
    )
    .unwrap();
    let full_probe = tdp.vector_topk("vecs", "emb", &q, 10, 16).unwrap();
    assert!(
        recall_at_k(&exact, &full_probe) > 0.99,
        "full probe must be exact"
    );
    // On unclustered data recall grows with probe depth; a single probe
    // may legitimately miss most of the true top-k.
    let one = recall_at_k(&exact, &tdp.vector_topk("vecs", "emb", &q, 10, 1).unwrap());
    let eight = recall_at_k(&exact, &tdp.vector_topk("vecs", "emb", &q, 10, 8).unwrap());
    assert!(
        eight >= one,
        "recall must not shrink with nprobe: {one} vs {eight}"
    );
    assert!(
        eight > 0.5,
        "8/16 probes should recover most of the top-k: {eight}"
    );
}

// ----------------------------------------------------------------------
// Audio as a first-class SQL modality
// ----------------------------------------------------------------------

#[test]
fn sql_filters_and_searches_audio_clips() {
    use tdp_data::audio::{generate_audio, AudioClass};
    use tdp_ml::{AudioSim, AudioTextSimilarityUdf};

    let mut rng = Rng64::new(21);
    let ds = generate_audio(30, &mut rng);
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("clip", ds.clips.clone())
            .col_i64("id", (0..30).collect())
            .build("Sounds"),
    );
    tdp.register_udf(Arc::new(AudioTextSimilarityUdf::new(AudioSim::pretrained(
        6, 7,
    ))));

    // Filter clips by natural-language criterion (the audio Listing 7).
    let out = tdp
        .query("SELECT COUNT(*) FROM Sounds WHERE audio_text_similarity('chirp', clip) > 0.8")
        .unwrap()
        .run()
        .unwrap();
    let expected = ds
        .classes
        .iter()
        .filter(|c| **c == AudioClass::Chirp)
        .count() as i64;
    assert_eq!(
        out.column("COUNT(*)").unwrap().data.decode_i64().at(0),
        expected
    );

    // Top-k audio search through ORDER BY … LIMIT (fused TopK path).
    let top = tdp
        .query(
            "SELECT id, audio_text_similarity('noise', clip) AS score \
             FROM Sounds ORDER BY score DESC LIMIT 3",
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(top.rows(), 3);
    for id in top.column("id").unwrap().data.decode_i64().to_vec() {
        assert_eq!(ds.classes[id as usize], AudioClass::Noise, "id {id}");
    }

    // Vector search over audio embeddings through the session index.
    let model = AudioSim::pretrained(6, 7);
    let embeds = model.embed_batch(&ds.clips);
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("emb", embeds.clone())
            .build("AEmb"),
    );
    tdp.create_vector_index("AEmb", "emb", Metric::Cosine, IndexKind::Flat, 0)
        .unwrap();
    let probe = embeds.row(2); // a chirp
    let hits = tdp.vector_topk("AEmb", "emb", &probe, 5, 1).unwrap();
    for h in &hits {
        assert_eq!(ds.classes[h.id], AudioClass::Chirp, "hit {}", h.id);
    }
}

#[test]
fn sql_filters_video_clips_by_motion() {
    use tdp_data::video::{generate_video, VideoClass};
    use tdp_ml::{VideoSim, VideoTextSimilarityUdf};

    let mut rng = Rng64::new(31);
    let ds = generate_video(24, &mut rng);
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("clip", ds.clips.clone())
            .col_i64("id", (0..24).collect())
            .build("Videos"),
    );
    tdp.register_udf(Arc::new(VideoTextSimilarityUdf::new(VideoSim::pretrained(
        6, 5,
    ))));

    // "find clips where something moves" — the video-analytics query shape.
    let out = tdp
        .query(
            "SELECT id FROM Videos WHERE video_text_similarity('motion', clip) > 0.8 ORDER BY id",
        )
        .unwrap()
        .run()
        .unwrap();
    let got: Vec<i64> = out.column("id").unwrap().data.decode_i64().to_vec();
    let expected: Vec<i64> = ds
        .classes
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c, VideoClass::PanLeft | VideoClass::PanRight))
        .map(|(i, _)| i as i64)
        .collect();
    assert_eq!(got, expected);

    // Aggregate over a CASE of similarity scores — mixing modalities with
    // plain SQL machinery.
    let agg = tdp
        .query(
            "SELECT COUNT(*) AS n, \
             SUM(CASE WHEN video_text_similarity('flicker', clip) > 0.8 THEN 1 ELSE 0 END) AS flickering \
             FROM Videos",
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(agg.column("n").unwrap().data.decode_i64().at(0), 24);
    assert_eq!(f32_col(&agg, "flickering"), vec![6.0]);
}

#[test]
fn query_results_render_to_ppm_and_wav() {
    use tdp_core::render;
    use tdp_data::attachments::generate_attachments;
    use tdp_data::audio::{generate_audio, SAMPLE_RATE};

    let mut rng = Rng64::new(8);
    let ds = generate_audio(5, &mut rng);
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("clip", ds.clips.clone())
            .build("Sounds"),
    );
    let result = tdp
        .query("SELECT clip FROM Sounds LIMIT 2")
        .unwrap()
        .run()
        .unwrap();
    let wav = render::column_row_to_wav(&result, "clip", 0, SAMPLE_RATE as u32).unwrap();
    assert_eq!(&wav[..4], b"RIFF");
    assert_eq!(wav.len(), 44 + 2 * ds.clips.shape()[1]);

    // Image rendering over a generated attachment.
    let att = generate_attachments(2, 8, 12, &mut rng);
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("img", att.images)
            .build("Imgs"),
    );
    let imgs = tdp.query("SELECT img FROM Imgs").unwrap().run().unwrap();
    let ppm = render::column_row_to_ppm(&imgs, "img", 1).unwrap();
    assert!(ppm.starts_with(b"P6\n12 8\n255\n"));
}

// ----------------------------------------------------------------------
// Trainable threshold through the soft predicate (end-to-end)
// ----------------------------------------------------------------------

struct ThresholdUdf {
    theta: Var,
}

impl ScalarUdf for ThresholdUdf {
    fn name(&self) -> &str {
        "threshold"
    }
    fn invoke(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<EncodedTensor, ExecError> {
        let n = args[0].as_column()?.rows();
        Ok(EncodedTensor::F32(Tensor::full(
            &[n],
            self.theta.value().at(0),
        )))
    }
    fn invoke_diff(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<DiffColumn, ExecError> {
        let n = match &args[0] {
            ArgValue::Column(c) => c.rows(),
            ArgValue::DiffColumn(d) => d.var.shape()[0],
            _ => return Err(ExecError::TypeMismatch("need a column".into())),
        };
        Ok(DiffColumn::plain(self.theta.broadcast_to(&[n])))
    }
    fn parameters(&self) -> Vec<Var> {
        vec![self.theta.clone()]
    }
}

#[test]
fn where_threshold_learns_from_counts() {
    let mut rng = Rng64::new(11);
    let tdp = Tdp::new();
    let theta = Var::param(Tensor::from_vec(vec![0.0f32], &[1]));
    tdp.register_udf(Arc::new(ThresholdUdf {
        theta: theta.clone(),
    }));
    let q = tdp
        .query_with(
            "SELECT COUNT(*) FROM readings WHERE v > threshold(v)",
            QueryConfig::default().trainable(true).temperature(0.05),
        )
        .unwrap();
    assert_eq!(
        q.num_parameters(),
        1,
        "threshold parameter must be discovered"
    );

    let true_cut = 0.4f32;
    let mut opt = Adam::new(q.parameters(), 0.05);
    for _ in 0..150 {
        let vals: Vec<f32> = (0..256).map(|_| rng.uniform() as f32).collect();
        let target = vals.iter().filter(|&&v| v > true_cut).count() as f32;
        tdp.register_table(TableBuilder::new().col_f32("v", vals).build("readings"));
        opt.zero_grad();
        let count = q.run_counts().unwrap();
        count
            .mse_loss(&Tensor::from_vec(vec![target], &[1]))
            .backward();
        opt.step();
    }
    let learned = theta.value().at(0);
    assert!(
        (learned - true_cut).abs() < 0.1,
        "θ = {learned}, expected ≈ {true_cut}"
    );
}

// ----------------------------------------------------------------------
// Soft top-k through the session API
// ----------------------------------------------------------------------

struct FixedScoreUdf {
    scores: Var,
}

impl ScalarUdf for FixedScoreUdf {
    fn name(&self) -> &str {
        "fixed_score"
    }
    fn invoke(&self, _args: &[ArgValue], _ctx: &ExecContext) -> Result<EncodedTensor, ExecError> {
        Ok(EncodedTensor::F32(self.scores.value()))
    }
    fn invoke_diff(&self, _args: &[ArgValue], _ctx: &ExecContext) -> Result<DiffColumn, ExecError> {
        Ok(DiffColumn::plain(self.scores.clone()))
    }
    fn parameters(&self) -> Vec<Var> {
        vec![self.scores.clone()]
    }
}

#[test]
fn trainable_topk_query_produces_soft_weights() {
    let tdp = Tdp::new();
    let scores = Var::param(Tensor::from_vec(vec![0.1f32, 0.9, 0.5, 0.2], &[4]));
    tdp.register_udf(Arc::new(FixedScoreUdf {
        scores: scores.clone(),
    }));
    tdp.register_table(
        TableBuilder::new()
            .col_f32("x", vec![1.0, 2.0, 3.0, 4.0])
            .build("t"),
    );
    let q = tdp
        .query_with(
            "SELECT x, fixed_score(x) AS s FROM t ORDER BY s DESC LIMIT 2",
            QueryConfig::default().trainable(true).temperature(0.01),
        )
        .unwrap();
    let batch = q.run_diff().unwrap();
    assert_eq!(batch.rows(), 4, "soft top-k keeps all rows");
    let w = batch.weights.as_ref().expect("weights").value();
    assert!(w.at(1) > 0.99 && w.at(2) > 0.99, "{:?}", w.to_vec());
    assert!((w.sum() - 2.0).abs() < 0.01, "total mass = k");
    // Exact run of the same compiled query cuts hard.
    let exact = q.run().unwrap();
    assert_eq!(exact.rows(), 2);
    assert_eq!(f32_col(&exact, "x"), vec![2.0, 3.0]);
}
