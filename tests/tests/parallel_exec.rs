//! Morsel-driven parallel execution: determinism across thread counts,
//! staged barrier operators (partitioned hash join, parallel merge
//! sort, parallel top-k, shared-nothing DISTINCT) against the
//! sequential oracle, LIMIT early-exit correctness at morsel
//! boundaries, the parameterised `LIMIT ?` path, and the scheduler's
//! session configuration surface.

use proptest::prelude::*;
use tdp_core::exec::ExecError;
use tdp_core::storage::{Table, TableBuilder};
use tdp_core::{ParamValues, Tdp, TdpError};

fn table(n: usize, seed: u64) -> Table {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let vs: Vec<f32> = (0..n)
        .map(|_| (next() % 2000) as f32 / 100.0 - 10.0)
        .collect();
    let ks: Vec<i64> = (0..n).map(|_| (next() % 11) as i64).collect();
    let tags: Vec<String> = (0..n).map(|_| format!("g{}", next() % 5)).collect();
    TableBuilder::new()
        .col_f32("v", vs)
        .col_i64("k", ks)
        .col_str("tag", &tags)
        .build("t")
}

/// Join dimension table: integer keys 0..=6 (0, 1, 2 duplicated, so
/// probes multi-match) plus 20/21, which never occur in `t` — LEFT JOIN
/// probes hit the unmatched pass. `name` mirrors the same pattern over
/// `t.tag`'s string domain (dictionary keys decode through different
/// dicts on each side). 12 rows, so small morsels split the build.
fn dim(seed: u64) -> Table {
    let ks: Vec<i64> = vec![0, 1, 2, 3, 4, 5, 6, 0, 1, 2, 20, 21];
    let names: Vec<String> = ks.iter().map(|k| format!("g{k}")).collect();
    let ws: Vec<f32> = (0..ks.len())
        .map(|i| ((seed as usize * 7 + i * 13) % 97) as f32 / 10.0)
        .collect();
    TableBuilder::new()
        .col_i64("k", ks)
        .col_str("name", &names)
        .col_f32("w", ws)
        .build("d")
}

fn run_at(tdp: &Tdp, sql: &str, threads: usize) -> Table {
    tdp.set_threads(threads);
    tdp.query(sql).expect("compile").run().expect("run")
}

fn assert_tables_identical(a: &Table, b: &Table, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row count");
    let names_a: Vec<&str> = a.columns().iter().map(|c| c.name.as_str()).collect();
    let names_b: Vec<&str> = b.columns().iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names_a, names_b, "{what}: column order");
    for col in a.columns() {
        let other = b.column(&col.name).expect("column present");
        // Bitwise comparison: decode to bit patterns so NaN == NaN and
        // -0.0 != 0.0 differences would be caught.
        let bits_a: Vec<u32> = col
            .data
            .decode_f32()
            .to_vec()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let bits_b: Vec<u32> = other
            .data
            .decode_f32()
            .to_vec()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(bits_a, bits_b, "{what}: column {}", col.name);
        assert_eq!(
            col.data.decode_strings(),
            other.data.decode_strings(),
            "{what}: column {} (string view)",
            col.name
        );
    }
}

/// SQL pipeline shapes stressed by the determinism property: fused
/// chains, every parallel aggregate, LIMIT early exit, and the staged
/// barriers — partitioned hash join (inner and LEFT with its unmatched
/// pass), parallel merge sort over duplicate keys (tie-break
/// stability), parallel top-k, and shared-nothing DISTINCT — both
/// standalone and stacked downstream of parallel pipelines.
const PIPELINES: &[&str] = &[
    "SELECT v FROM t WHERE v > 0.0",
    "SELECT v * 2 + k AS s, tag FROM t WHERE v < 5.0 AND k > 1",
    "SELECT tag FROM t WHERE tag <> 'g2'",
    "SELECT v FROM t WHERE v > -5.0 LIMIT 41",
    "SELECT k, COUNT(*) FROM t GROUP BY k",
    "SELECT tag, SUM(v), AVG(v), MIN(v), MAX(v) FROM t WHERE v > -8.0 GROUP BY tag",
    "SELECT k, tag, COUNT(*), VARIANCE(v) FROM t GROUP BY k, tag",
    "SELECT COUNT(*), SUM(v), STDDEV(v) FROM t WHERE k < 7",
    "SELECT k, COUNT(v > 0.0) FROM t GROUP BY k",
    "SELECT v FROM t WHERE v > 0.5 ORDER BY v DESC LIMIT 13",
    "SELECT DISTINCT tag FROM t WHERE v > 0.0",
    "SELECT tag, COUNT(*) FROM t GROUP BY tag HAVING COUNT(*) > 2",
    // Staged barriers: partitioned joins (multi-match keys 0..=2,
    // unmatched keys 7..=10 on the LEFT pass; `tag = name` joins
    // dictionary columns through *different* dictionaries)…
    "SELECT t.v, d.w FROM t JOIN d ON t.k = d.k",
    "SELECT t.tag, d.w FROM t LEFT JOIN d ON t.k = d.k",
    "SELECT t.v, d.w FROM t JOIN d ON t.k = d.k WHERE t.v > 0.0",
    "SELECT t.v, d.name FROM t JOIN d ON t.tag = d.name",
    // …parallel merge sort over duplicate keys (k has 11 distinct
    // values, v duplicates too: input position must break ties)…
    "SELECT v, k FROM t ORDER BY k, v DESC",
    "SELECT tag, v FROM t ORDER BY tag, k",
    // …parallel top-k with massive key duplication…
    "SELECT v, k FROM t ORDER BY k LIMIT 17",
    // …shared-nothing DISTINCT, alone and under a sort barrier…
    "SELECT DISTINCT k, tag FROM t",
    "SELECT DISTINCT tag FROM t ORDER BY tag",
    // …a full barrier stack: join, then sort…
    "SELECT t.v, d.w FROM t JOIN d ON t.k = d.k ORDER BY d.w, t.v",
    // …and filter→barrier shapes where a compiled chain can hand its
    // selection vector straight to the barrier (derived tables place
    // the chain directly under a join probe side).
    "SELECT s.v, d.w FROM (SELECT v, k FROM t WHERE v > 0.0) AS s JOIN d ON s.k = d.k",
    "SELECT s.tag, d.w FROM (SELECT tag, k FROM t WHERE v < 2.0) AS s LEFT JOIN d ON s.k = d.k",
    "SELECT v, k FROM t WHERE v > 1.0 ORDER BY v DESC, k",
    "SELECT v, tag FROM t WHERE v < 0.0 ORDER BY tag, v LIMIT 9",
    "SELECT DISTINCT tag FROM t WHERE v > 0.5",
    "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t WHERE v > 0.0",
    "SELECT tag, COUNT(*), SUM(v) FROM t WHERE v > 1.0 GROUP BY tag",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `run()` returns identical batches — values *and* column order —
    /// at every thread count, on random tables across random pipeline
    /// shapes, with morsels small enough that every query splits.
    #[test]
    fn run_is_identical_across_thread_counts(
        seed in 1u64..1_000_000,
        rows in 1usize..400,
        morsel in 1usize..64,
        partitions in 1usize..24,
        which in 0usize..PIPELINES.len(),
    ) {
        let tdp = Tdp::new();
        tdp.register_table(table(rows, seed));
        tdp.register_table(dim(seed));
        tdp.set_morsel_rows(morsel);
        tdp.set_partitions(partitions);
        let sql = PIPELINES[which];
        // threads=1 takes the sequential kernels (the oracle); higher
        // thread counts take the staged barrier paths, with chain
        // kernels off (gathered barrier inputs) and on (selection-fed
        // where the chain qualifies).
        let one = run_at(&tdp, sql, 1);
        for kernels in [false, true] {
            tdp.set_chain_kernels(kernels);
            for threads in [2usize, 7] {
                let out = run_at(&tdp, sql, threads);
                assert_tables_identical(
                    &one,
                    &out,
                    &format!("{sql} @ {threads} threads kernels={kernels}"),
                );
            }
        }
        tdp.set_chain_kernels(false);
    }

    /// A query applying a `parallel_safe` declared-signature UDF — which
    /// runs through the worker pool rather than the sequential fallback —
    /// is thread-count-invariant too: identical batches at 1, 2 and 7
    /// threads for any table/morsel-size combination.
    #[test]
    fn parallel_safe_udf_is_thread_count_invariant(
        seed in 1u64..1_000_000,
        rows in 1usize..300,
        morsel in 1usize..48,
        which in 0usize..3usize,
    ) {
        let tdp = Tdp::new();
        tdp.register_table(table(rows, seed));
        tdp.register_udf_parallel(std::sync::Arc::new(tdp_integration::HalveUdf));
        tdp.set_morsel_rows(morsel);
        let sql = [
            "SELECT halve(v) AS h, k FROM t WHERE halve(v) > -2.0",
            "SELECT k, SUM(halve(v)) FROM t GROUP BY k",
            "SELECT halve(v) AS h FROM t WHERE v > 0.0 LIMIT 23",
        ][which];
        let one = run_at(&tdp, sql, 1);
        for threads in [2usize, 7] {
            let out = run_at(&tdp, sql, threads);
            assert_tables_identical(&one, &out, &format!("{sql} @ {threads} threads"));
        }
    }
}

#[test]
fn limit_early_exit_never_drops_or_duplicates_rows() {
    // A LIMIT that lands on, before, and after morsel boundaries must
    // return exactly the input prefix — no dropped rows, no duplicates —
    // while skipping morsels past the satisfied prefix.
    let n = 100;
    let tdp = Tdp::new();
    let ids: Vec<i64> = (0..n as i64).collect();
    tdp.register_table(TableBuilder::new().col_i64("id", ids).build("seq"));
    tdp.set_morsel_rows(8);
    for threads in [1usize, 3, 8] {
        tdp.set_threads(threads);
        for limit in [0usize, 1, 7, 8, 9, 16, 17, 50, 99, 100, 250] {
            let out = tdp
                .query(&format!("SELECT id FROM seq LIMIT {limit}"))
                .unwrap()
                .run()
                .unwrap();
            let expect: Vec<i64> = (0..limit.min(n) as i64).collect();
            assert_eq!(
                out.column("id").unwrap().data.decode_i64().to_vec(),
                expect,
                "LIMIT {limit} @ {threads} threads"
            );
        }
        // Early exit composed with a filter: the prefix is of the
        // *filtered* stream, still in input order.
        let out = tdp
            .query("SELECT id FROM seq WHERE id % 2 = 0 LIMIT 10")
            .unwrap()
            .run()
            .unwrap();
        let expect: Vec<i64> = (0..10).map(|i| i * 2).collect();
        assert_eq!(out.column("id").unwrap().data.decode_i64().to_vec(), expect);
    }
}

#[test]
fn parameterised_limit_binds_and_reuses_the_plan() {
    let tdp = Tdp::new();
    tdp.register_table(table(50, 3));
    tdp.set_morsel_rows(7);
    let p = tdp.prepare("SELECT v FROM t LIMIT ?").unwrap();
    assert_eq!(p.param_count(), 1);
    for k in [0u32, 3, 49, 50, 99] {
        let out = p
            .bind(ParamValues::new().number(k as f64))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out.rows(), (k as usize).min(50), "LIMIT {k}");
    }
    // The slot renders in EXPLAIN and the plan is shared across binds.
    assert!(p.explain().contains("Limit: $1"), "{}", p.explain());
    // ORDER BY … LIMIT ? fuses into a parameterised TopK.
    let topk = tdp
        .prepare("SELECT v FROM t ORDER BY v DESC LIMIT ?")
        .unwrap();
    assert!(topk.explain().contains("TopK"), "{}", topk.explain());
    let out = topk
        .bind(ParamValues::new().number(5.0))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.rows(), 5);
    let vs = out.column("v").unwrap().data.decode_f32().to_vec();
    assert!(vs.windows(2).all(|w| w[0] >= w[1]), "{vs:?}");
}

#[test]
fn parameterised_limit_rejects_bad_bindings() {
    let tdp = Tdp::new();
    tdp.register_table(table(10, 4));
    let p = tdp.prepare("SELECT v FROM t LIMIT ?").unwrap();
    for (params, what) in [
        (ParamValues::new().number(-1.0), "negative"),
        (ParamValues::new().number(2.5), "non-integer"),
        (ParamValues::new().string("nope"), "string"),
        (ParamValues::new().bool(true), "boolean"),
        (ParamValues::new().null(), "NULL"),
    ] {
        let err = p.bind(params).unwrap().run().unwrap_err();
        assert!(
            matches!(err, TdpError::Exec(ExecError::Param(_))),
            "{what} binding must be a clean parameter error, got {err:?}"
        );
    }
}

#[test]
fn staged_barriers_match_sequential_oracle_at_tiny_morsels() {
    // The TDP_MORSEL_ROWS=7 regression: 7-row morsels land mid-key-run
    // (t's keys repeat every ~11 rows, d's build side splits into two
    // morsels), so exchange buckets, sorted runs and probe morsels all
    // cut across partition boundaries. Staged barrier output must stay
    // byte-identical to the sequential kernels (threads=1 falls back to
    // them) at every thread *and* partition count.
    let tdp = Tdp::new();
    tdp.register_table(table(100, 11));
    tdp.register_table(dim(5));
    tdp.set_morsel_rows(7);
    for sql in [
        "SELECT t.v, t.tag, d.w FROM t JOIN d ON t.k = d.k",
        "SELECT t.v, d.w FROM t LEFT JOIN d ON t.k = d.k",
        "SELECT t.v, d.w FROM t JOIN d ON t.tag = d.name",
        "SELECT v, k, tag FROM t ORDER BY k, tag",
        "SELECT v, k FROM t ORDER BY k DESC LIMIT 23",
        "SELECT DISTINCT k, tag FROM t",
        "SELECT DISTINCT t.k, d.w FROM t JOIN d ON t.k = d.k ORDER BY d.w DESC",
    ] {
        let oracle = run_at(&tdp, sql, 1);
        for threads in [2usize, 7] {
            for partitions in [1usize, 3, 16] {
                tdp.set_partitions(partitions);
                let out = run_at(&tdp, sql, threads);
                assert_tables_identical(
                    &oracle,
                    &out,
                    &format!("{sql} @ {threads} threads / {partitions} partitions"),
                );
            }
        }
    }
}

#[test]
fn explain_and_profile_report_barrier_strategy() {
    let tdp = Tdp::new();
    tdp.register_table(table(200, 3));
    tdp.register_table(dim(4));
    tdp.set_threads(3);
    tdp.set_morsel_rows(16);
    tdp.set_partitions(8);

    // EXPLAIN resolves each barrier's strategy against the session.
    let q = tdp
        .query("SELECT t.v, d.w FROM t JOIN d ON t.k = d.k ORDER BY t.v DESC")
        .unwrap();
    let text = q.explain();
    assert!(text.contains("barrier Join"), "{text}");
    assert!(text.contains("[partitioned ×8]"), "{text}");
    assert!(text.contains("[merge-sort]"), "{text}");

    // Profiled runs report what actually happened: strategy with morsel
    // counts on the barrier traces, partitions in the totals.
    let (_, prof) = q.run_profiled().unwrap();
    let join_op = prof
        .ops
        .iter()
        .find(|o| o.label.starts_with("Join"))
        .expect("join trace");
    let strat = join_op.strategy.as_deref().expect("join strategy recorded");
    assert!(strat.contains("partitioned ×8"), "{strat}");
    assert!(strat.contains("probe morsels"), "{strat}");
    let sort_op = prof
        .ops
        .iter()
        .find(|o| o.label.starts_with("Sort"))
        .expect("sort trace");
    assert!(
        sort_op.strategy.as_deref().unwrap().contains("merge-sort"),
        "{:?}",
        sort_op.strategy
    );
    assert_eq!(prof.partitions, 8, "join exchange partitions in totals");
    assert!(
        prof.pretty().contains("partitioned ×8"),
        "{}",
        prof.pretty()
    );

    // TopK renders its own strategy.
    let topk = tdp
        .query("SELECT v FROM t ORDER BY v DESC LIMIT 5")
        .unwrap();
    assert!(
        topk.explain().contains("[parallel top-k]"),
        "{}",
        topk.explain()
    );
    // …but a LIMIT 0 top-k short-circuits to the sequential kernel, and
    // the profile must say so (no phantom staged strategy).
    let (_, prof0) = tdp
        .query("SELECT v FROM t ORDER BY v DESC LIMIT 0")
        .unwrap()
        .run_profiled()
        .unwrap();
    let topk_op = prof0
        .ops
        .iter()
        .find(|o| o.label.starts_with("TopK"))
        .expect("topk trace");
    assert!(topk_op.strategy.is_none(), "{:?}", topk_op.strategy);

    // DISTINCT partitions too.
    let distinct = tdp.query("SELECT DISTINCT tag FROM t").unwrap();
    assert!(
        distinct.explain().contains("[partitioned ×8]"),
        "{}",
        distinct.explain()
    );

    // Single-threaded sessions render the sequential decision…
    tdp.set_threads(1);
    assert!(
        q.explain().contains("[sequential: threads=1]"),
        "{}",
        q.explain()
    );
    tdp.set_threads(3);

    // …and a sort key the workers cannot evaluate (session-bound UDF)
    // reports the same capability reason chains do, in EXPLAIN and in
    // the profiled run.
    tdp.register_udf(std::sync::Arc::new(tdp_integration::HalveUdf));
    let udf_sort = tdp.query("SELECT v FROM t ORDER BY halve(v)").unwrap();
    assert!(
        udf_sort
            .explain()
            .contains("[sequential: udf-not-parallel-safe(halve)]"),
        "{}",
        udf_sort.explain()
    );
    let (_, prof2) = udf_sort.run_profiled().unwrap();
    assert!(
        prof2
            .fallback_reasons()
            .contains(&"udf-not-parallel-safe(halve)"),
        "{:?}",
        prof2.fallback_reasons()
    );
}

#[test]
fn scheduler_configuration_surface() {
    let tdp = Tdp::new();
    assert!(
        tdp.threads() >= 1,
        "default comes from TDP_THREADS or the machine"
    );
    tdp.set_threads(0);
    assert_eq!(tdp.threads(), 1, "clamped");
    tdp.set_threads(6);
    assert_eq!(tdp.threads(), 6);
    tdp.set_morsel_rows(0);
    assert_eq!(tdp.morsel_rows(), 1, "clamped");
    tdp.set_morsel_rows(1024);
    assert_eq!(tdp.morsel_rows(), 1024);
    assert!(
        tdp.partitions() >= 1,
        "default comes from TDP_PARTITIONS or the built-in 16"
    );
    tdp.set_partitions(0);
    assert_eq!(tdp.partitions(), 1, "clamped");
    tdp.set_partitions(5);
    assert_eq!(tdp.partitions(), 5);
}

#[test]
fn plan_cache_stats_report_evictions() {
    let tdp = Tdp::new();
    tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0]).build("t"));
    let s0 = tdp.plan_cache_stats();
    assert_eq!((s0.evictions, s0.entries), (0, 0));
    // Overflow the cache with structurally distinct statements (literal
    // variants share one entry, LIMIT counts are structural).
    for i in 0..300 {
        tdp.query(&format!("SELECT x FROM t LIMIT {i}")).unwrap();
    }
    let s = tdp.plan_cache_stats();
    assert_eq!(s.entries, 256, "bounded at capacity");
    assert_eq!(
        s.evictions as usize,
        300 - 256,
        "each overflow insert evicts exactly one entry"
    );
    assert_eq!(s.misses, 300);
    // Explicit clears are not evictions.
    tdp.clear_plan_cache();
    let s2 = tdp.plan_cache_stats();
    assert_eq!(s2.entries, 0);
    assert_eq!(s2.evictions, s.evictions);
}

#[test]
fn profiled_run_reports_scheduler_counters() {
    let tdp = Tdp::new();
    tdp.register_table(table(100, 9));
    tdp.set_morsel_rows(16);
    tdp.set_threads(3);
    let (out, prof) = tdp
        .query("SELECT k, COUNT(*) FROM t WHERE v > 0.0 GROUP BY k")
        .unwrap()
        .run_profiled()
        .unwrap();
    assert!(out.rows() > 0);
    assert_eq!(prof.threads, 3);
    assert!(
        prof.morsels >= 7,
        "filter (7) + aggregate morsels: {}",
        prof.morsels
    );
    assert!(prof.pretty().starts_with("threads=3"), "{}", prof.pretty());
}

#[test]
fn explain_renders_the_pipeline_breakdown() {
    let tdp = Tdp::new();
    tdp.register_table(table(10, 2));
    let q = tdp
        .query("SELECT k, COUNT(*) FROM t WHERE v > 0.0 GROUP BY k ORDER BY k")
        .unwrap();
    let text = q.explain();
    assert!(text.contains("== pipelines =="), "{text}");
    assert!(text.contains("barrier Sort"), "{text}");
    assert!(text.contains("partial aggregate"), "{text}");
    assert!(text.contains("[Filter]"), "{text}");
}

#[test]
fn trainable_queries_still_run_single_threaded() {
    // The diff path consumes the same pipeline decomposition but must
    // ignore the session thread pool (the tape is Rc-based).
    let tdp = Tdp::new();
    tdp.register_table(table(60, 5));
    tdp.set_threads(8);
    tdp.set_morsel_rows(4);
    let q = tdp
        .query_with(
            "SELECT COUNT(*) FROM t WHERE v > 0.0",
            tdp_core::QueryConfig::default().trainable(true),
        )
        .unwrap();
    let exact = q.run().unwrap();
    let soft = q.run_diff().unwrap();
    let hard_count = exact.column("COUNT(*)").unwrap().data.decode_f32().at(0);
    let soft_count = match soft.column("COUNT(*)").unwrap() {
        tdp_core::exec::ColumnData::Diff(d) => d.var.value().at(0),
        tdp_core::exec::ColumnData::Exact(e) => e.decode_f32().at(0),
    };
    assert!(
        (hard_count - soft_count).abs() < 1e-3,
        "{hard_count} vs {soft_count}"
    );
}
