//! Memory-budget isolation: a query that breaches `TDP_MEM_BUDGET`
//! must abort with the typed out-of-memory error while every
//! concurrent in-budget query completes **byte-identically** to a run
//! on an unconstrained engine — and over TCP the breach must map to
//! `ERR MEM_BUDGET` on a connection that stays usable.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use tdp_core::storage::TableBuilder;
use tdp_core::{TdpEngine, TdpError};
use tdp_server::{ServerConfig, TdpServer};

/// Budget for the constrained engines: 1 MiB. The big table's decoded
/// column alone (200k × 8 B = 1.6 MB) exceeds it, so a breaching query
/// is refused its *first* charge and aborts holding zero bytes — the
/// budget stays fully available to concurrent small queries.
const BUDGET: u64 = 1 << 20;
const BIG_ROWS: usize = 200_000;

fn load_tables(engine: &TdpEngine) {
    engine.register_table(
        TableBuilder::new()
            .col_i64("qty", (0..BIG_ROWS as i64).map(|i| i % 977).collect())
            .build("big"),
    );
    engine.register_table(
        TableBuilder::new()
            .col_f32("price", vec![3.0, 1.0, 2.0, 5.0, 4.0, 2.5, 0.5, 9.0])
            .col_str("item", &["b", "a", "a", "c", "b", "a", "c", "b"])
            .build("orders"),
    );
}

const BREACHING: &str = "SELECT DISTINCT qty FROM big ORDER BY qty";
const SMALL: &[&str] = &[
    "SELECT item, SUM(price) AS total FROM orders GROUP BY item ORDER BY item",
    "SELECT COUNT(*) FROM orders WHERE price > 2.0",
    "SELECT price FROM orders WHERE price >= 2.5 ORDER BY price",
];

#[test]
fn breaching_query_aborts_typed_and_names_no_dropped_state() {
    let engine = TdpEngine::with_memory_budget(BUDGET);
    load_tables(&engine);
    let session = engine.session();
    let err = session
        .query(BREACHING)
        .unwrap()
        .run()
        .expect_err("1 MiB budget cannot hold a 200k-row DISTINCT");
    match &err {
        TdpError::Exec(tdp_core::exec::ExecError::MemoryBudget {
            operator,
            requested,
        }) => {
            assert!(!operator.is_empty(), "abort names the operator");
            assert!(*requested > BUDGET, "first refused charge: {requested}");
        }
        other => panic!("expected MemoryBudget, got {other:?}"),
    }
    assert!(err.to_string().contains("out of memory budget"), "{err}");
    // The abort released everything and was counted once.
    assert_eq!(engine.memory_pool().used(), 0);
    assert_eq!(engine.stats().mem_budget_aborts, 1);
    // The same session keeps working after the abort.
    let t = session.query(SMALL[1]).unwrap().run().unwrap();
    assert_eq!(t.rows(), 1);
}

#[test]
fn concurrent_small_queries_are_byte_identical_to_unconstrained_run() {
    // Oracle: the small queries on an engine with no budget at all.
    let oracle_engine = TdpEngine::new();
    load_tables(&oracle_engine);
    let oracle_session = oracle_engine.session();
    let oracle: Vec<String> = SMALL
        .iter()
        .map(|q| oracle_session.query(q).unwrap().run().unwrap().pretty(100))
        .collect();

    let engine = TdpEngine::with_memory_budget(BUDGET);
    load_tables(&engine);
    std::thread::scope(|s| {
        // Breaching queries hammering the pool from two threads…
        for _ in 0..2 {
            let engine = Arc::clone(&engine);
            s.spawn(move || {
                for _ in 0..5 {
                    let err = engine.session().query(BREACHING).unwrap().run();
                    assert!(
                        matches!(
                            err,
                            Err(TdpError::Exec(
                                tdp_core::exec::ExecError::MemoryBudget { .. }
                            ))
                        ),
                        "breacher must abort on the budget: {err:?}"
                    );
                }
            });
        }
        // …while in-budget queries stay byte-identical to the oracle.
        for _ in 0..2 {
            let engine = Arc::clone(&engine);
            let oracle = &oracle;
            s.spawn(move || {
                let session = engine.session();
                for _ in 0..5 {
                    for (q, want) in SMALL.iter().zip(oracle) {
                        let got = session.query(q).unwrap().run().unwrap().pretty(100);
                        assert_eq!(&got, want, "in-budget query diverged under pressure");
                    }
                }
            });
        }
    });
    assert_eq!(engine.memory_pool().used(), 0, "every ledger released");
    assert_eq!(engine.stats().mem_budget_aborts, 10);
}

/// Late materialization: a selective filter feeding SUM charges only
/// its selection vector (~8 KB), so the query fits a budget the
/// gathered path — which materializes the full 1.6 MB decoded column
/// before aggregating — cannot. Same engine, same query, same budget;
/// the only difference is whether the chain hands the barrier a
/// selection vector or a gathered batch.
#[test]
fn selection_fed_aggregate_fits_budget_the_gathered_path_exceeds() {
    let engine = TdpEngine::with_memory_budget(BUDGET);
    load_tables(&engine);
    let session = engine.session();
    let sql = "SELECT SUM(qty) AS s FROM big WHERE qty < 5";

    session.set_chain_kernels(false);
    let err = session
        .query(sql)
        .unwrap()
        .run()
        .expect_err("gathered aggregation decodes the whole column up front");
    assert!(
        matches!(
            err,
            TdpError::Exec(tdp_core::exec::ExecError::MemoryBudget { .. })
        ),
        "{err:?}"
    );

    session.set_chain_kernels(true);
    let t = session
        .query(sql)
        .unwrap()
        .run()
        .expect("selection-fed aggregation charges survivors, not morsel width");
    assert_eq!(t.rows(), 1);
    // 204 full cycles of 0..977 plus a 692-row tail: 205 × (0+1+2+3+4).
    assert_eq!(t.columns()[0].data.decode_f32().to_vec(), vec![2050.0]);
    assert_eq!(engine.memory_pool().used(), 0, "ledger fully released");
}

#[test]
fn run_profiled_reports_peak_bytes_under_and_over_budget() {
    let engine = TdpEngine::new();
    load_tables(&engine);
    let session = engine.session();
    let (_, profile) = session
        .query("SELECT DISTINCT qty FROM big ORDER BY qty")
        .unwrap()
        .run_profiled()
        .unwrap();
    assert!(
        profile.peak_memory_bytes > (BIG_ROWS * 8) as u64,
        "peak must cover the decoded column: {}",
        profile.peak_memory_bytes
    );
    assert!(
        profile.pretty().contains("mem peak"),
        "{}",
        profile.pretty()
    );
    assert!(
        profile.ops.iter().any(|op| op.charged_bytes > 0),
        "some operator must report charged bytes"
    );
    assert!(engine.stats().mem_high_water_bytes >= profile.peak_memory_bytes);
}

// ---------------------------------------------------------------------
// The TCP half: N clients against one tightly budgeted engine.
// ---------------------------------------------------------------------

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// Send one request line, collect the framed response up to the `.`.
/// The `read_line != 0` assert is the no-dropped-connection check: a
/// server that hangs up mid-response fails here, not with a lost reply.
fn roundtrip(stream: &TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
    let mut w = stream.try_clone().unwrap();
    writeln!(w, "{req}").unwrap();
    w.flush().unwrap();
    let mut out = String::new();
    loop {
        let mut line = String::new();
        assert_ne!(reader.read_line(&mut line).unwrap(), 0, "server hung up");
        if line.trim_end() == "." {
            return out;
        }
        out.push_str(&line);
    }
}

#[test]
fn tcp_clients_get_typed_mem_budget_errors_not_dropped_connections() {
    // Unconstrained oracle server for the expected small-query bytes.
    let oracle_engine = TdpEngine::new();
    load_tables(&oracle_engine);
    let oracle_server =
        TdpServer::bind(oracle_engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let oracle: Vec<String> = {
        let (stream, mut reader) = connect(oracle_server.local_addr());
        SMALL
            .iter()
            .map(|q| roundtrip(&stream, &mut reader, &format!("QUERY {q}")))
            .collect()
    };
    oracle_server.shutdown();

    let engine = TdpEngine::with_memory_budget(BUDGET);
    load_tables(&engine);
    let server = TdpServer::bind(
        engine,
        "127.0.0.1:0",
        // One query at a time: this test is about budget aborts and
        // connection survival, not admission pressure.
        ServerConfig::default()
            .max_concurrent(1)
            .max_queued(64)
            .queue_timeout(Duration::from_secs(30)),
    )
    .unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..6)
        .map(|client| {
            std::thread::spawn(move || {
                let (stream, mut reader) = connect(addr);
                let mut replies = Vec::new();
                for round in 0..3 {
                    if (client + round) % 2 == 0 {
                        let r = roundtrip(&stream, &mut reader, &format!("QUERY {BREACHING}"));
                        assert!(r.starts_with("ERR MEM_BUDGET "), "typed abort code: {r}");
                        assert!(r.contains("out of memory budget"), "{r}");
                    } else {
                        for (idx, q) in SMALL.iter().enumerate() {
                            let r = roundtrip(&stream, &mut reader, &format!("QUERY {q}"));
                            replies.push((idx, r));
                        }
                    }
                }
                // The connection survived every abort on it.
                let r = roundtrip(&stream, &mut reader, "QUERY SELECT COUNT(*) FROM orders");
                assert!(r.starts_with("OK 1 rows"), "{r}");
                replies
            })
        })
        .collect();
    for h in handles {
        for (idx, got) in h.join().expect("client panicked") {
            assert_eq!(got, oracle[idx], "small query diverged from oracle");
        }
    }

    let (stream, mut reader) = connect(addr);
    let stats = roundtrip(&stream, &mut reader, "STATS");
    let aborts: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("mem_budget_aborts "))
        .expect("STATS reports mem_budget_aborts")
        .trim()
        .parse()
        .unwrap();
    assert!(aborts >= 6, "every breaching query counted: {stats}");
    assert!(
        stats.contains(&format!("mem_budget_bytes {BUDGET}")),
        "{stats}"
    );
    server.shutdown();
}
