//! Property-based integration tests: invariants that must hold for *all*
//! inputs, spanning encodings, the soft/exact operator pair, and the SQL
//! frontend.

use proptest::prelude::*;
use tdp_core::autodiff::Var;
use tdp_core::encoding::{PeTensor, RleColumn, StringDict};
use tdp_core::exec::soft;
use tdp_core::storage::TableBuilder;
use tdp_core::tensor::Tensor;
use tdp_core::Tdp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dictionary encoding round-trips arbitrary string columns, and code
    /// order equals string order (the order-preserving property).
    #[test]
    fn dictionary_round_trip_and_order(strings in proptest::collection::vec("[a-z]{0,6}", 1..40)) {
        let (dict, codes) = StringDict::encode(&strings);
        prop_assert_eq!(dict.decode(&codes), strings.clone());
        for i in 0..strings.len() {
            for j in 0..strings.len() {
                prop_assert_eq!(
                    strings[i] < strings[j],
                    codes.at(i) < codes.at(j),
                    "order must be preserved for ({}, {})", strings[i], strings[j]
                );
            }
        }
    }

    /// RLE round-trips arbitrary i64 columns and its predicate masks match
    /// the plain comparison.
    #[test]
    fn rle_round_trip(values in proptest::collection::vec(-3i64..4, 0..100), probe in -3i64..4) {
        let n = values.len();
        let col = Tensor::from_vec(values, &[n]);
        let rle = RleColumn::encode(&col);
        prop_assert_eq!(rle.decode(), col.clone());
        prop_assert_eq!(rle.eq_mask(probe).to_vec(), col.eq_scalar(probe).to_vec());
    }

    /// One-hot PE: soft counts equal exact counts — the lossless embedding
    /// of exact data in the differentiable domain.
    #[test]
    fn soft_count_equals_exact_on_onehot(ids in proptest::collection::vec(0i64..5, 1..50)) {
        let n = ids.len();
        let id_t = Tensor::from_vec(ids.clone(), &[n]);
        let pe = PeTensor::from_class_ids(&id_t, PeTensor::range_classes(5));
        let soft = pe.soft_counts();
        for c in 0..5 {
            let exact = ids.iter().filter(|&&v| v == c as i64).count() as f32;
            prop_assert!((soft.at(c) - exact).abs() < 1e-5);
        }
    }

    /// Soft grouped counts always conserve probability mass: they sum to
    /// the (weighted) row count for arbitrary stochastic matrices.
    #[test]
    fn soft_groupby_conserves_mass(
        rows in proptest::collection::vec(proptest::collection::vec(0.01f32..1.0, 3), 1..20),
        weights in proptest::collection::vec(0.0f32..1.0, 20)
    ) {
        let n = rows.len();
        // Normalise rows into distributions.
        let mut probs = Vec::with_capacity(n * 3);
        for r in &rows {
            let s: f32 = r.iter().sum();
            probs.extend(r.iter().map(|v| v / s));
        }
        let membership = Var::constant(Tensor::from_vec(probs, &[n, 3]));
        let w = Var::constant(Tensor::from_vec(weights[..n].to_vec(), &[n]));
        let counts = soft::soft_groupby_count(&membership, Some(&w)).value();
        let expected: f32 = weights[..n].iter().sum();
        prop_assert!((counts.sum() - expected).abs() < 1e-3);
    }

    /// SQL pretty-print → reparse is a fixpoint for generated queries.
    #[test]
    fn sql_display_reparse_fixpoint(
        col_a in "[a-c]", col_b in "[x-z]",
        lit in 0u32..100, limit in 1u64..50, desc in any::<bool>()
    ) {
        let sql = format!(
            "SELECT {col_a}, COUNT(*) FROM t WHERE {col_b} > {lit} GROUP BY {col_a} \
             ORDER BY {col_a}{} LIMIT {limit}",
            if desc { " DESC" } else { "" }
        );
        let ast1 = tdp_core::sql::parse(&sql).unwrap();
        let printed = format!("{ast1}");
        let ast2 = tdp_core::sql::parse(&printed).unwrap();
        prop_assert_eq!(format!("{}", ast2), printed);
    }

    /// Engine-level COUNT/SUM agree with a scalar reference implementation
    /// on arbitrary numeric tables.
    #[test]
    fn aggregates_match_reference(
        values in proptest::collection::vec(-100.0f32..100.0, 1..60),
        keys in proptest::collection::vec(0i64..4, 60)
    ) {
        let n = values.len();
        let keys = &keys[..n];
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("v", values.clone())
                .col_i64("k", keys.to_vec())
                .build("t"),
        );
        let out = tdp
            .query("SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k ORDER BY k")
            .unwrap()
            .run()
            .unwrap();
        // Reference.
        let mut ref_counts = std::collections::BTreeMap::new();
        for (v, k) in values.iter().zip(keys) {
            let e = ref_counts.entry(*k).or_insert((0i64, 0.0f64));
            e.0 += 1;
            e.1 += *v as f64;
        }
        let got_keys = out.column("k").unwrap().data.decode_i64();
        let got_counts = out.column("COUNT(*)").unwrap().data.decode_i64();
        let got_sums = out.column("SUM(v)").unwrap().data.decode_f32();
        prop_assert_eq!(got_keys.numel(), ref_counts.len());
        for (i, (k, (c, s))) in ref_counts.iter().enumerate() {
            prop_assert_eq!(got_keys.at(i), *k);
            prop_assert_eq!(got_counts.at(i), *c);
            prop_assert!((got_sums.at(i) as f64 - s).abs() < 0.05, "sum mismatch");
        }
    }

    /// Filter + count equals counting the predicate matches, for arbitrary
    /// thresholds — WHERE lowering is consistent with expression lowering.
    #[test]
    fn filter_count_consistency(
        values in proptest::collection::vec(-10.0f32..10.0, 1..50),
        threshold in -10.0f32..10.0
    ) {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("v", values.clone()).build("t"));
        let out = tdp
            .query(&format!("SELECT COUNT(*) FROM t WHERE v > {threshold}"))
            .unwrap()
            .run()
            .unwrap();
        let got = out.column("COUNT(*)").unwrap().data.decode_i64().at(0);
        let expected = values.iter().filter(|&&v| v > threshold).count() as i64;
        prop_assert_eq!(got, expected);
    }

    /// Bit-packed and delta encodings round-trip arbitrary i64 columns,
    /// and the auto-compressor never loses data while never growing it.
    #[test]
    fn compressed_encodings_round_trip(
        values in proptest::collection::vec(proptest::num::i64::ANY, 0..80)
    ) {
        use tdp_core::encoding::{BitPackedColumn, DeltaColumn, EncodedTensor};
        let n = values.len();
        let col = Tensor::from_vec(values.clone(), &[n]);
        let packed = BitPackedColumn::encode(&col);
        prop_assert_eq!(packed.decode().to_vec(), values.clone());
        if let Some(delta) = DeltaColumn::encode(&col) {
            prop_assert_eq!(delta.decode().to_vec(), values.clone());
        }
        let auto = EncodedTensor::compress_i64(&col);
        prop_assert_eq!(auto.decode_i64().to_vec(), values.clone());
        prop_assert!(auto.memory_bytes() <= n * 8 + 16, "auto pick may not inflate");
    }

    /// einops rearrange is invertible: applying the reversed pattern
    /// recovers the original tensor for arbitrary 3-d shapes.
    #[test]
    fn einops_rearrange_invertible(
        a in 1usize..5, b in 1usize..5, c in 1usize..5, perm in 0usize..6
    ) {
        use tdp_core::tensor::einops::rearrange;
        let n = a * b * c;
        let t = Tensor::from_vec((0..n).map(|v| v as f32).collect(), &[a, b, c]);
        let orders = ["a b c", "a c b", "b a c", "b c a", "c a b", "c b a"];
        let fwd_pat = format!("a b c -> {}", orders[perm]);
        let bwd_pat = format!("{} -> a b c", orders[perm]);
        let fwd = rearrange(&t, &fwd_pat, &[]).unwrap();
        let back = rearrange(&fwd, &bwd_pat, &[]).unwrap();
        prop_assert_eq!(back.to_vec(), t.to_vec());
        prop_assert_eq!(back.shape(), t.shape());
        // Composition then decomposition also round-trips.
        let flat = rearrange(&t, "a b c -> (a b c)", &[]).unwrap();
        let split = rearrange(&flat, "(a b c) -> a b c", &[("a", a), ("b", b)]).unwrap();
        prop_assert_eq!(split.to_vec(), t.to_vec());
    }

    /// SQL LIKE agrees with a reference regex-free matcher for arbitrary
    /// patterns of literals, `%` and `_`.
    #[test]
    fn like_matches_reference(
        strings in proptest::collection::vec("[ab]{0,5}", 1..20),
        pattern in "[ab%_]{0,5}"
    ) {
        fn reference(p: &str, s: &str) -> bool {
            // Naive DP reference.
            let p: Vec<char> = p.chars().collect();
            let s: Vec<char> = s.chars().collect();
            let mut dp = vec![vec![false; s.len() + 1]; p.len() + 1];
            dp[0][0] = true;
            for i in 1..=p.len() {
                if p[i - 1] == '%' {
                    dp[i][0] = dp[i - 1][0];
                }
                for j in 1..=s.len() {
                    dp[i][j] = match p[i - 1] {
                        '%' => dp[i - 1][j] || dp[i][j - 1],
                        '_' => dp[i - 1][j - 1],
                        c => dp[i - 1][j - 1] && s[j - 1] == c,
                    };
                }
            }
            dp[p.len()][s.len()]
        }
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_str("s", &strings).build("t"));
        let escaped = pattern.replace('\'', "''");
        let out = tdp
            .query(&format!("SELECT COUNT(*) FROM t WHERE s LIKE '{escaped}'"))
            .unwrap()
            .run()
            .unwrap();
        let got = out.column("COUNT(*)").unwrap().data.decode_i64().at(0);
        let expected = strings.iter().filter(|s| reference(&pattern, s)).count() as i64;
        prop_assert_eq!(got, expected, "pattern '{}' over {:?}", pattern, strings);
    }

    /// DISTINCT returns exactly the set of unique rows, in first-occurrence
    /// order, for arbitrary low-cardinality columns.
    #[test]
    fn distinct_matches_reference(
        values in proptest::collection::vec(0i64..6, 1..60)
    ) {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_i64("v", values.clone()).build("t"));
        let out = tdp.query("SELECT DISTINCT v FROM t").unwrap().run().unwrap();
        let mut seen = Vec::new();
        for v in &values {
            if !seen.contains(v) {
                seen.push(*v);
            }
        }
        prop_assert_eq!(out.column("v").unwrap().data.decode_i64().to_vec(), seen);
    }

    /// The fused TopK operator returns exactly what the full sort + limit
    /// returns, for arbitrary data, k and direction (including ties).
    #[test]
    fn topk_equals_sort_plus_limit(
        values in proptest::collection::vec(-5i64..5, 1..60),
        k in 1u64..70,
        desc in proptest::bool::ANY
    ) {
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_i64("v", values.clone())
                .col_i64("row", (0..values.len() as i64).collect())
                .build("t"),
        );
        let dir = if desc { "DESC" } else { "ASC" };
        // The optimizer fuses this into TopK…
        let fused = tdp
            .query(&format!("SELECT v, row FROM t ORDER BY v {dir} LIMIT {k}"))
            .unwrap();
        prop_assert!(fused.explain().contains("TopK"), "{}", fused.explain());
        let a = fused.run().unwrap();
        // …while a reference full sort in plain code gives the ground truth.
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&x, &y| {
            let ord = if desc { values[y].cmp(&values[x]) } else { values[x].cmp(&values[y]) };
            ord.then(x.cmp(&y))
        });
        idx.truncate(k as usize);
        prop_assert_eq!(
            a.column("row").unwrap().data.decode_i64().to_vec(),
            idx.iter().map(|&i| i as i64).collect::<Vec<_>>()
        );
    }

    /// RANK / DENSE_RANK / ROW_NUMBER satisfy their defining relations on
    /// arbitrary data: row_number is a permutation of 1..=n per partition,
    /// rank equals 1 + count of strictly-smaller keys, dense_rank equals
    /// the number of distinct keys ≤ this one.
    #[test]
    fn window_ranks_match_reference(
        keys in proptest::collection::vec(0i64..5, 1..30)
    ) {
        let n = keys.len();
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_i64("k", keys.clone())
                .col_i64("row", (0..n as i64).collect())
                .build("t"),
        );
        let out = tdp
            .query(
                "SELECT row, ROW_NUMBER() OVER (ORDER BY k) AS rn, \
                 RANK() OVER (ORDER BY k) AS r, DENSE_RANK() OVER (ORDER BY k) AS d \
                 FROM t ORDER BY row",
            )
            .unwrap()
            .run()
            .unwrap();
        let rn = out.column("rn").unwrap().data.decode_i64();
        let r = out.column("r").unwrap().data.decode_i64();
        let d = out.column("d").unwrap().data.decode_i64();
        let mut rns: Vec<i64> = rn.to_vec();
        rns.sort_unstable();
        prop_assert_eq!(rns, (1..=n as i64).collect::<Vec<_>>());
        for i in 0..n {
            let smaller = keys.iter().filter(|&&k| k < keys[i]).count() as i64;
            prop_assert_eq!(r.at(i), smaller + 1, "rank at {}", i);
            let mut distinct_le: Vec<i64> =
                keys.iter().copied().filter(|&k| k <= keys[i]).collect();
            distinct_le.sort_unstable();
            distinct_le.dedup();
            prop_assert_eq!(d.at(i), distinct_le.len() as i64, "dense_rank at {}", i);
        }
    }

    /// einops reduce agrees with manual pooling for arbitrary block sizes.
    #[test]
    fn einops_reduce_matches_manual_pooling(
        h in 1usize..4, w in 1usize..4, bh in 1usize..4, bw in 1usize..4
    ) {
        use tdp_core::tensor::einops::{reduce, ReduceOp};
        let (hh, ww) = (h * bh, w * bw);
        let t = Tensor::from_vec(
            (0..hh * ww).map(|v| (v as f32).sin()).collect(),
            &[hh, ww],
        );
        let pooled = reduce(
            &t,
            "(h bh) (w bw) -> h w",
            ReduceOp::Sum,
            &[("bh", bh), ("bw", bw)],
        )
        .unwrap();
        prop_assert_eq!(pooled.shape(), &[h, w]);
        for y in 0..h {
            for x in 0..w {
                let mut manual = 0.0f32;
                for dy in 0..bh {
                    for dx in 0..bw {
                        manual += t.get(&[y * bh + dy, x * bw + dx]);
                    }
                }
                prop_assert!(
                    (pooled.get(&[y, x]) - manual).abs() < 1e-4,
                    "block ({}, {})", y, x
                );
            }
        }
    }

    /// Windowed running SUM matches a plain-code reference (per-partition,
    /// peers-inclusive) for arbitrary data.
    #[test]
    fn window_running_sum_matches_reference(
        parts in proptest::collection::vec(0i64..3, 1..40),
        keys in proptest::collection::vec(0i64..4, 40),
        vals in proptest::collection::vec(-10.0f32..10.0, 40)
    ) {
        let n = parts.len();
        let keys = &keys[..n];
        let vals = &vals[..n];
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_i64("p", parts.clone())
                .col_i64("k", keys.to_vec())
                .col_f32("v", vals.to_vec())
                .col_i64("row", (0..n as i64).collect())
                .build("t"),
        );
        let out = tdp
            .query(
                "SELECT row, SUM(v) OVER (PARTITION BY p ORDER BY k) AS s FROM t ORDER BY row",
            )
            .unwrap()
            .run()
            .unwrap();
        let got = out.column("s").unwrap().data.decode_f32();
        for i in 0..n {
            // Reference: sum of v over rows in the same partition whose
            // order key is <= this row's key (peers included).
            let expect: f32 = (0..n)
                .filter(|&j| parts[j] == parts[i] && keys[j] <= keys[i])
                .map(|j| vals[j])
                .sum();
            prop_assert!(
                (got.at(i) - expect).abs() < 1e-3,
                "row {i}: got {} expect {expect}", got.at(i)
            );
        }
    }

    /// Lowered physical plans preserve exact-path semantics: for randomly
    /// generated filter → project pipelines, the slot-resolved execution
    /// matches a plain-Rust reference row for row.
    #[test]
    fn lowered_filter_project_matches_reference(
        values in proptest::collection::vec(-50.0f32..50.0, 1..60),
        threshold in -50.0f32..50.0,
        scale in -4.0f32..4.0,
        shift in -10.0f32..10.0
    ) {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("v", values.clone()).build("t"));
        let sql = format!("SELECT v * {scale} + {shift} AS y FROM t WHERE v > {threshold}");
        let q = tdp.query(&sql).unwrap();
        // The compiled plan resolved the column to a slot.
        prop_assert!(q.explain().contains("v@0"), "{}", q.explain());
        let got = q.run().unwrap().column("y").unwrap().data.decode_f32().to_vec();
        let expect: Vec<f32> = values
            .iter()
            .filter(|&&v| v > threshold)
            .map(|&v| v * scale + shift)
            .collect();
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() < 1e-3, "{g} vs {e}");
        }
    }

    /// Lowered physical plans preserve exact-path semantics for randomly
    /// generated filter → group → order → limit pipelines, and repeated
    /// compilation through the plan cache is fingerprint-stable.
    #[test]
    fn lowered_groupby_pipeline_matches_reference(
        values in proptest::collection::vec(-20.0f32..20.0, 1..50),
        keys in proptest::collection::vec(0i64..5, 50),
        threshold in -20.0f32..20.0,
        limit in 1u64..8
    ) {
        let n = values.len();
        let keys = &keys[..n];
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("v", values.clone())
                .col_i64("k", keys.to_vec())
                .build("t"),
        );
        let sql = format!(
            "SELECT k, COUNT(*), SUM(v) FROM t WHERE v > {threshold} \
             GROUP BY k ORDER BY k LIMIT {limit}"
        );
        let q1 = tdp.query(&sql).unwrap();
        let q2 = tdp.query(&sql).unwrap();
        prop_assert_eq!(q1.fingerprint(), q2.fingerprint(), "cache must be stable");
        let out = q1.run().unwrap();

        // Plain-Rust reference of the same pipeline.
        let mut groups: std::collections::BTreeMap<i64, (i64, f64)> =
            std::collections::BTreeMap::new();
        for (v, k) in values.iter().zip(keys) {
            if *v > threshold {
                let e = groups.entry(*k).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += *v as f64;
            }
        }
        let expect: Vec<(i64, i64, f64)> = groups
            .into_iter()
            .map(|(k, (c, s))| (k, c, s))
            .take(limit as usize)
            .collect();

        let got_keys = out.column("k").unwrap().data.decode_i64();
        let got_counts = out.column("COUNT(*)").unwrap().data.decode_i64();
        let got_sums = out.column("SUM(v)").unwrap().data.decode_f32();
        prop_assert_eq!(out.rows(), expect.len());
        for (i, (k, c, s)) in expect.iter().enumerate() {
            prop_assert_eq!(got_keys.at(i), *k);
            prop_assert_eq!(got_counts.at(i), *c);
            prop_assert!((got_sums.at(i) as f64 - s).abs() < 0.05);
        }
    }

    /// Soft top-k mass always sums to k (≤ n) and weights stay in [0, k]
    /// (the NeuralSort matrix is row-stochastic, not doubly stochastic, so
    /// a single row's weight may exceed 1 at high temperature), for
    /// arbitrary scores and temperatures.
    #[test]
    fn soft_topk_mass_invariant(
        scores in proptest::collection::vec(-3.0f32..3.0, 1..20),
        k in 0usize..25,
        temp in 0.05f32..2.0
    ) {
        let n = scores.len();
        let s = Var::constant(Tensor::from_vec(scores, &[n]));
        let w = soft::soft_topk_weights(&s, k, true, temp).value();
        let mass: f32 = w.data().iter().sum();
        let expect = k.min(n) as f32;
        prop_assert!((mass - expect).abs() < 1e-3, "mass {} vs k {}", mass, expect);
        prop_assert!(
            w.data().iter().all(|&x| (-1e-4..=expect + 1e-3).contains(&x)),
            "weights outside [0, k]: {:?}", w.to_vec()
        );
    }
}
