//! Compiled chain kernels: the interpreter is the byte-identity oracle
//! at every thread count and morsel size, with kernels on or off; the
//! session cache invalidates on catalog changes and UDF registration;
//! EXPLAIN and profiled runs name each chain's strategy.

use proptest::prelude::*;
use tdp_core::storage::{Table, TableBuilder};
use tdp_core::{ParamValues, Tdp};

/// Deterministic mixed-encoding table: f32 values, small-domain i64
/// keys (dictionary-friendly), and a dictionary-encoded tag column.
fn table(vs: &[f32]) -> Table {
    let n = vs.len();
    let ks: Vec<i64> = (0..n).map(|i| (i % 13) as i64 - 3).collect();
    let tags: Vec<String> = (0..n).map(|i| format!("g{}", i % 5)).collect();
    TableBuilder::new()
        .col_f32("v", vs.to_vec())
        .col_i64("k", ks)
        .col_str("tag", &tags)
        .build("t")
}

fn assert_tables_identical(a: &Table, b: &Table, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row count");
    for col in a.columns() {
        let other = b.column(&col.name).expect("column present");
        let bits = |t: &tdp_core::storage::Column| -> Vec<u32> {
            t.data
                .decode_f32()
                .to_vec()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        };
        assert_eq!(bits(col), bits(other), "{what}: column {}", col.name);
        assert_eq!(
            col.data.decode_strings(),
            other.data.decode_strings(),
            "{what}: column {} (string view)",
            col.name
        );
    }
}

/// Chain shapes the kernel compiles: multi-conjunct filters, computed
/// projections, dictionary comparisons and LIKE, CASE (searched and
/// with operand), IN lists, built-ins, negation, and literal columns.
const CHAINS: &[&str] = &[
    "SELECT v FROM t WHERE v > 0.0 AND k < 7",
    "SELECT v * 2 - k AS s, tag FROM t WHERE v < 5.0",
    "SELECT tag FROM t WHERE tag LIKE 'g_' AND v > -5.0",
    "SELECT tag, v FROM t WHERE tag >= 'g2' AND tag <> 'g4'",
    "SELECT CASE WHEN v > 0.0 THEN v ELSE -v END AS a, k FROM t WHERE k IN (0, 2, 5)",
    "SELECT CASE k WHEN 1 THEN v WHEN 2 THEN -v ELSE 0.5 END AS c FROM t WHERE v <> 0.25",
    "SELECT sqrt(v * v) AS r, 1.5 AS one FROM t WHERE NOT (v > 0.0)",
    "SELECT v + k AS s FROM t WHERE v > -2.0 AND v < 2.0 AND k <> 3",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Compiled chains are byte-identical to the interpreter across
    /// thread counts, morsel sizes, and arbitrary f32 data (including
    /// values that fail every predicate).
    #[test]
    fn compiled_chains_match_interpreter(
        vs in proptest::collection::vec(-10.0f32..10.0, 0..200),
    ) {
        let tdp = Tdp::new();
        tdp.register_table(table(&vs));
        for sql in CHAINS {
            // Oracle: interpreter, single thread, whole-batch morsels.
            tdp.set_chain_kernels(false);
            tdp.set_threads(1);
            tdp.set_morsel_rows(tdp_core::exec::DEFAULT_MORSEL_ROWS);
            let oracle = tdp.query(sql).unwrap().run().unwrap();
            for threads in [1usize, 2, 7] {
                tdp.set_threads(threads);
                for morsel in [7usize, tdp_core::exec::DEFAULT_MORSEL_ROWS] {
                    tdp.set_morsel_rows(morsel);
                    for kernels in [false, true] {
                        tdp.set_chain_kernels(kernels);
                        let out = tdp.query(sql).unwrap().run().unwrap();
                        assert_tables_identical(
                            &oracle,
                            &out,
                            &format!("{sql} @ {threads}t/{morsel}m kernels={kernels}"),
                        );
                    }
                }
            }
        }
    }
}

/// A small dimension table joinable on `t.k` (which ranges over
/// `[-3, 9]`): every key matches, plus two keys with no fact rows.
fn dim() -> Table {
    TableBuilder::new()
        .col_i64("k", (-3..10).collect())
        .col_f32("w", (0..13).map(|i| i as f32 * 0.5 - 2.0).collect())
        .build("d")
}

/// Selective chains feeding each barrier kind. Derived tables place the
/// filter chain directly under the join; ORDER BY / DISTINCT queries
/// get their chain from predicate pushdown. Join, sort, top-k and
/// DISTINCT only move input bytes, so one sequential whole-batch oracle
/// covers every thread count, morsel size, and kernel setting.
const BARRIER_CHAINS: &[&str] = &[
    "SELECT s.v, d.w FROM (SELECT v, k FROM t WHERE v > 0.0) AS s JOIN d ON s.k = d.k",
    "SELECT s.v, d.w FROM (SELECT v, k FROM t WHERE v > 2.5) AS s LEFT JOIN d ON s.k = d.k",
    "SELECT v, k FROM t WHERE v > 0.0 ORDER BY v DESC, k",
    "SELECT v, tag FROM t WHERE v < 1.0 ORDER BY tag, v LIMIT 5",
    "SELECT DISTINCT tag FROM t WHERE v > 0.5",
];

/// Filter→aggregate shapes: the masked fast path (plain ungrouped
/// columns), the mini-batch path (GROUP BY, computed arguments), and
/// the f64-moment aggregates.
const AGGREGATE_CHAINS: &[&str] = &[
    "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t WHERE v > 0.0",
    "SELECT AVG(v), VARIANCE(v), STDDEV(v) FROM t WHERE v < 1.0",
    "SELECT tag, COUNT(*), SUM(v) FROM t WHERE v > 0.0 GROUP BY tag",
    "SELECT SUM(v * 2.0 - k) AS s FROM t WHERE k > 0",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Selection-fed barriers are byte-identical to the sequential
    /// whole-batch oracle at every thread/morsel/kernel configuration.
    #[test]
    fn selection_fed_barriers_match_oracle(
        vs in proptest::collection::vec(-10.0f32..10.0, 0..200),
    ) {
        let tdp = Tdp::new();
        tdp.register_table(table(&vs));
        tdp.register_table(dim());
        for sql in BARRIER_CHAINS {
            tdp.set_chain_kernels(false);
            tdp.set_threads(1);
            tdp.set_morsel_rows(tdp_core::exec::DEFAULT_MORSEL_ROWS);
            let oracle = tdp.query(sql).unwrap().run().unwrap();
            for threads in [1usize, 2, 7] {
                tdp.set_threads(threads);
                for morsel in [7usize, tdp_core::exec::DEFAULT_MORSEL_ROWS] {
                    tdp.set_morsel_rows(morsel);
                    for kernels in [false, true] {
                        tdp.set_chain_kernels(kernels);
                        let out = tdp.query(sql).unwrap().run().unwrap();
                        assert_tables_identical(
                            &oracle,
                            &out,
                            &format!("{sql} @ {threads}t/{morsel}m kernels={kernels}"),
                        );
                    }
                }
            }
        }
    }

    /// Selection-fed aggregation chunks partials by *input* morsel
    /// boundaries, so each morsel size is byte-identical to its own
    /// single-threaded gathered run — across thread counts and with
    /// kernels on or off.
    #[test]
    fn selection_fed_aggregates_match_gathered_partials(
        vs in proptest::collection::vec(-10.0f32..10.0, 0..200),
    ) {
        let tdp = Tdp::new();
        tdp.register_table(table(&vs));
        for sql in AGGREGATE_CHAINS {
            for morsel in [7usize, tdp_core::exec::DEFAULT_MORSEL_ROWS] {
                tdp.set_morsel_rows(morsel);
                // Oracle per morsel size: float partial order follows the
                // input morsel grid, which both paths share.
                tdp.set_chain_kernels(false);
                tdp.set_threads(1);
                let oracle = tdp.query(sql).unwrap().run().unwrap();
                for threads in [1usize, 2, 7] {
                    tdp.set_threads(threads);
                    for kernels in [false, true] {
                        tdp.set_chain_kernels(kernels);
                        let out = tdp.query(sql).unwrap().run().unwrap();
                        assert_tables_identical(
                            &oracle,
                            &out,
                            &format!("{sql} @ {threads}t/{morsel}m kernels={kernels}"),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn selection_feeding_is_observable() {
    let tdp = Tdp::new();
    tdp.register_table(table(
        &(0..200).map(|i| i as f32 / 7.0 - 10.0).collect::<Vec<_>>(),
    ));
    tdp.set_threads(3);
    tdp.set_morsel_rows(16);
    tdp.set_chain_kernels(true);

    // EXPLAIN marks the barrier as selection-capable…
    let q = tdp
        .query("SELECT v, k FROM t WHERE v > 17.0 ORDER BY v DESC")
        .unwrap();
    assert!(
        q.explain().contains("[barrier: selection-fed]"),
        "{}",
        q.explain()
    );

    // …and the profiled run records what actually happened: the chain's
    // selection density and the barrier's feeding mode, mirrored in the
    // run totals.
    let (out, prof) = q.run_profiled().unwrap();
    assert!(
        out.rows() > 0 && out.rows() < 60,
        "selective: {}",
        out.rows()
    );
    assert!(
        prof.barriers_selection_fed >= 1,
        "sort fed by selection: {prof:?}"
    );
    let text = prof.pretty();
    assert!(text.contains("[barrier: selection-fed ("), "{text}");
    assert!(text.contains("[selection: "), "{text}");
    assert!(text.contains("selection-fed / "), "{text}");

    // A filtered derived table places the chain directly under a join
    // probe side; it selection-feeds too.
    tdp.register_table(dim());
    let jq = tdp
        .query("SELECT s.v, d.w FROM (SELECT v, k FROM t WHERE v > 17.0) AS s JOIN d ON s.k = d.k")
        .unwrap();
    assert!(
        jq.explain().contains("[barrier: selection-fed]"),
        "{}",
        jq.explain()
    );
    let (_, jprof) = jq.run_profiled().unwrap();
    assert!(jprof.barriers_selection_fed >= 1, "{jprof:?}");

    // Disabled kernels gather, and both renderings say why.
    tdp.set_chain_kernels(false);
    assert!(
        q.explain()
            .contains("[barrier: gathered: chain-kernels-disabled]"),
        "{}",
        q.explain()
    );
    let (_, gprof) = q.run_profiled().unwrap();
    assert!(
        gprof.barriers_gathered >= 1 && gprof.barriers_selection_fed == 0,
        "{gprof:?}"
    );
    assert!(
        gprof
            .pretty()
            .contains("[barrier: gathered: chain-kernels-disabled]"),
        "{}",
        gprof.pretty()
    );
}

#[test]
fn parameterised_chains_share_one_kernel_across_bindings() {
    let tdp = Tdp::new();
    tdp.register_table(table(
        &(0..100).map(|i| i as f32 / 10.0 - 5.0).collect::<Vec<_>>(),
    ));
    // Force kernels on regardless of TDP_CHAIN_KERNELS: the test counts
    // kernel-cache traffic, which only exists on the compiled path.
    tdp.set_chain_kernels(true);
    let before = tdp.chain_kernel_stats();
    let prepared = tdp.prepare("SELECT v FROM t WHERE v > $1").unwrap();
    for (i, threshold) in [-2.0, 0.0, 3.5].iter().enumerate() {
        let out = prepared
            .bind(ParamValues::new().number(*threshold))
            .unwrap()
            .run()
            .unwrap();
        assert!(out.rows() > 0, "threshold {threshold}");
        let s = tdp.chain_kernel_stats();
        assert_eq!(s.misses, before.misses + 1, "one compile for all bindings");
        assert_eq!(s.hits, before.hits + i as u64, "later bindings hit");
    }
    // Literal variants of the same statement normalise to the same
    // fingerprint too (auto-parameterisation renders literals as $n).
    tdp.query("SELECT v FROM t WHERE v > 1.0")
        .unwrap()
        .run()
        .unwrap();
    tdp.query("SELECT v FROM t WHERE v > 4.5")
        .unwrap()
        .run()
        .unwrap();
    let s = tdp.chain_kernel_stats();
    assert_eq!(s.misses, before.misses + 1, "still one compiled program");
}

#[test]
fn null_param_falls_back_and_reproduces_the_interpreter_error() {
    let tdp = Tdp::new();
    tdp.register_table(table(&[1.0, 2.0, 3.0]));
    // Force kernels on regardless of TDP_CHAIN_KERNELS: the bind-time
    // refusal this test counts only happens on the compiled path.
    tdp.set_chain_kernels(true);
    let prepared = tdp.prepare("SELECT v FROM t WHERE v > $1").unwrap();
    let with_kernels = prepared.bind(ParamValues::new().null()).unwrap().run();
    tdp.set_chain_kernels(false);
    let interpreted = prepared.bind(ParamValues::new().null()).unwrap().run();
    match (with_kernels, interpreted) {
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => {
            assert_eq!(
                a.map(|t| t.rows()).ok(),
                b.map(|t| t.rows()).ok(),
                "both paths must agree"
            );
        }
    }
    tdp.set_chain_kernels(true);
    let s = tdp.chain_kernel_stats();
    assert!(s.fallbacks >= 1, "bind-time refusal counted: {s:?}");
}

#[test]
fn cache_invalidates_on_catalog_and_udf_registration() {
    let tdp = Tdp::new();
    let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
    tdp.register_table(table(&data));
    // Force kernels on regardless of TDP_CHAIN_KERNELS: invalidation is
    // only observable through kernel-cache hit/miss counters.
    tdp.set_chain_kernels(true);
    let sql = "SELECT sqrt(v) AS r FROM t WHERE v > 10.0";
    tdp.query(sql).unwrap().run().unwrap();
    let s0 = tdp.chain_kernel_stats();
    tdp.query(sql).unwrap().run().unwrap();
    let s1 = tdp.chain_kernel_stats();
    assert_eq!(s1.hits, s0.hits + 1, "warm rerun hits the kernel cache");

    // Re-registering a table bumps the epoch: stale entries recompile.
    tdp.register_table(table(&data));
    tdp.query(sql).unwrap().run().unwrap();
    let s2 = tdp.chain_kernel_stats();
    assert_eq!(s2.misses, s1.misses + 1, "catalog change invalidates");

    // A UDF shadowing the built-in must take over even though a kernel
    // for the built-in chain was cached: registration bumps the epoch
    // and the recompile refuses the now-shadowed call.
    tdp.register_udf(std::sync::Arc::new(ShiftUdf));
    let out = tdp.query(sql).unwrap().run().unwrap();
    let r = out.column("r").unwrap().data.decode_f32();
    assert!(
        (r.at(0) - (11.0 + 100.0)).abs() < 1e-3,
        "shadowing UDF executed, got {}",
        r.at(0)
    );
}

/// `sqrt(x) := x + 100` — deliberately disagrees with the built-in so
/// any stale compiled kernel is unmissable.
struct ShiftUdf;
impl tdp_core::ScalarUdf for ShiftUdf {
    fn name(&self) -> &str {
        "sqrt"
    }
    fn invoke(
        &self,
        args: &[tdp_core::exec::udf::ArgValue],
        _ctx: &tdp_core::exec::ExecContext,
    ) -> Result<tdp_core::encoding::EncodedTensor, tdp_core::exec::ExecError> {
        Ok(tdp_core::encoding::EncodedTensor::F32(
            args[0].as_column()?.decode_f32().add_scalar(100.0),
        ))
    }
}

#[test]
fn explain_and_profile_report_chain_strategy() {
    let tdp = Tdp::new();
    tdp.register_table(table(
        &(0..200).map(|i| i as f32 / 7.0 - 10.0).collect::<Vec<_>>(),
    ));
    tdp.set_threads(3);
    tdp.set_morsel_rows(16);
    // Force kernels on regardless of TDP_CHAIN_KERNELS: the strategies
    // this test asserts only render on the compiled path.
    tdp.set_chain_kernels(true);

    // A fused filter→project chain compiles: EXPLAIN counts its ops.
    let q = tdp.query("SELECT v * 2 AS d FROM t WHERE v > 0.0").unwrap();
    assert!(q.explain().contains("[compiled ×2 ops]"), "{}", q.explain());
    let (_, prof) = q.run_profiled().unwrap();
    let filter = prof
        .ops
        .iter()
        .find(|o| o.label.starts_with("Filter"))
        .expect("filter trace");
    assert_eq!(filter.strategy.as_deref(), Some("compiled"));

    // Disabled kernels are a named interpreter verdict, not silence.
    tdp.set_chain_kernels(false);
    assert!(
        q.explain()
            .contains("[interpreted: chain-kernels-disabled]"),
        "{}",
        q.explain()
    );
    tdp.set_chain_kernels(true);

    // A session-bound UDF pins the chain to the session thread; the
    // profile folds that reason into the chain strategy.
    tdp.register_udf(std::sync::Arc::new(tdp_integration::HalveUdf));
    let uq = tdp
        .query("SELECT halve(v) AS h FROM t WHERE v > 0.0")
        .unwrap();
    let (_, uprof) = uq.run_profiled().unwrap();
    let proj = uprof
        .ops
        .iter()
        .find(|o| o.strategy.is_some())
        .expect("a chain trace");
    assert_eq!(
        proj.strategy.as_deref(),
        Some("interpreted: udf-not-parallel-safe(halve)"),
        "{:?}",
        uprof.ops
    );
}

#[test]
fn chain_kernel_session_surface() {
    let tdp = Tdp::new();
    // Default is on unless TDP_CHAIN_KERNELS disabled it for this run.
    let default_on = std::env::var("TDP_CHAIN_KERNELS")
        .map(|v| !matches!(v.trim(), "0" | "false" | "off"))
        .unwrap_or(true);
    assert_eq!(tdp.chain_kernels_enabled(), default_on);
    tdp.set_chain_kernels(false);
    assert!(!tdp.chain_kernels_enabled());

    // Disabled sessions never touch the kernel cache.
    tdp.register_table(table(&[1.0, 2.0, 3.0, 4.0]));
    tdp.query("SELECT v FROM t WHERE v > 2.0")
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(tdp.chain_kernel_stats(), Default::default());

    tdp.set_chain_kernels(true);
    let out = tdp
        .query("SELECT v FROM t WHERE v > 2.0")
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.rows(), 2);
    let s = tdp.chain_kernel_stats();
    assert_eq!((s.misses, s.entries), (1, 1), "{s:?}");
}
