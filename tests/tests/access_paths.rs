//! PR 8 access paths, end to end: zone-map chunk pruning must be a pure
//! performance substitution (byte-identical results across thread
//! counts, morsel sizes, and `TDP_ZONE_MAPS` settings), the `AnnTopK`
//! operator must match the scan+sort oracle exactly on the flat path and
//! within a declared recall bound on IVF, SQL `CREATE INDEX` must round
//! trip, stale indexes must fall back to exact, and the counters behind
//! `STATS` / `run_profiled` must move.

use proptest::prelude::*;
use tdp_core::storage::{Table, TableBuilder};
use tdp_core::tensor::{F32Tensor, Rng64, Tensor};
use tdp_core::{ParamValue, ParamValues, StatementOutcome, Tdp};

/// A table whose `v` column is block-ordered: chunk-sized runs of rising
/// values, so range predicates can rule out whole 4096-row chunks. `k`
/// cycles 0..=9 (never prunable), `tag` exercises dictionary columns.
fn blocked_table(rows: usize) -> Table {
    let vs: Vec<f32> = (0..rows).map(|i| i as f32).collect();
    let ks: Vec<i64> = (0..rows).map(|i| (i % 10) as i64).collect();
    let tags: Vec<String> = (0..rows).map(|i| format!("g{}", i % 4)).collect();
    TableBuilder::new()
        .col_f32("v", vs)
        .col_i64("k", ks)
        .col_str("tag", &tags)
        .build("t")
}

fn assert_tables_identical(a: &Table, b: &Table, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row count");
    let names_a: Vec<&str> = a.columns().iter().map(|c| c.name.as_str()).collect();
    let names_b: Vec<&str> = b.columns().iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names_a, names_b, "{what}: column order");
    for col in a.columns() {
        let other = b.column(&col.name).expect("column present");
        let bits_a: Vec<u32> = col
            .data
            .decode_f32()
            .to_vec()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let bits_b: Vec<u32> = other
            .data
            .decode_f32()
            .to_vec()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(bits_a, bits_b, "{what}: column {} bits", col.name);
    }
}

// ----------------------------------------------------------------------
// Zone-map pruning: byte identity across the whole knob matrix
// ----------------------------------------------------------------------

#[test]
fn pruning_is_invisible_across_threads_morsels_and_zone_maps() {
    let tdp = Tdp::new();
    tdp.register_table(blocked_table(10_000));
    let queries = [
        "SELECT v, k, tag FROM t WHERE v < 100",
        "SELECT v, k FROM t WHERE v >= 4100 AND v < 4200 AND k > 2",
        "SELECT SUM(v) AS s, COUNT(*) AS c FROM t WHERE v BETWEEN 5000 AND 5100",
        "SELECT v FROM t WHERE v IN (3, 4096, 9999) ORDER BY v",
        "SELECT tag, COUNT(*) AS c FROM t WHERE v > 9990 GROUP BY tag ORDER BY tag",
        "SELECT v FROM t WHERE v < 50 LIMIT 7",
    ];
    // Baseline: zone maps off, 1 thread, default morsel size.
    for sql in queries {
        tdp.set_zone_maps(false);
        tdp.set_threads(1);
        let baseline = tdp.query(sql).unwrap().run().unwrap();
        for zone_maps in [true, false] {
            for threads in [1usize, 2, 7] {
                for morsel_rows in [Some(7usize), None] {
                    let t2 = Tdp::new();
                    t2.register_table(blocked_table(10_000));
                    t2.set_zone_maps(zone_maps);
                    t2.set_threads(threads);
                    if let Some(m) = morsel_rows {
                        t2.set_morsel_rows(m);
                    }
                    let got = t2.query(sql).unwrap().run().unwrap();
                    assert_tables_identical(
                        &baseline,
                        &got,
                        &format!("{sql} [zm={zone_maps} t={threads} m={morsel_rows:?}]"),
                    );
                }
            }
        }
    }
}

proptest! {
    /// Random range predicates over random block-sorted data: pruned and
    /// unpruned runs agree bitwise at an awkward morsel size.
    #[test]
    fn random_ranges_prune_identically(
        lo in 0i64..9_000,
        width in 0i64..2_000,
        threads in 1usize..8,
    ) {
        let sql = format!(
            "SELECT v, k FROM t WHERE v >= {lo} AND v < {}",
            lo + width
        );
        let tdp = Tdp::new();
        tdp.register_table(blocked_table(9_500));
        tdp.set_threads(threads);
        tdp.set_morsel_rows(7);
        tdp.set_zone_maps(false);
        let unpruned = tdp.query(&sql).unwrap().run().unwrap();
        tdp.set_zone_maps(true);
        let pruned = tdp.query(&sql).unwrap().run().unwrap();
        prop_assert_eq!(unpruned.rows(), pruned.rows());
        assert_tables_identical(&unpruned, &pruned, &sql);
    }
}

/// Chunk-boundary regression: morsels of 7 rows straddle the 4096-row
/// zone-map chunk boundary (4096 % 7 != 0), so a skipped morsel's rows
/// can span two chunks; a morsel survives if EITHER chunk might match.
#[test]
fn morsels_straddling_chunk_boundaries_prune_correctly() {
    let tdp = Tdp::new();
    tdp.register_table(blocked_table(8_192));
    tdp.set_morsel_rows(7);
    // Rows 4090..4102 straddle the chunk-0/chunk-1 boundary.
    let sql = "SELECT v FROM t WHERE v >= 4090 AND v < 4102";
    tdp.set_zone_maps(true);
    let got = tdp.query(sql).unwrap().run().unwrap();
    assert_eq!(got.rows(), 12);
    let vals = got.column("v").unwrap().data.decode_f32().to_vec();
    assert_eq!(vals, (4090..4102).map(|i| i as f32).collect::<Vec<_>>());
}

/// Pruning composes with the plan cache: a `$1` bound at BIND time must
/// re-evaluate the pruner bounds per execution, not bake in the first
/// binding's.
#[test]
fn param_bounds_evaluate_at_bind_time() {
    let tdp = Tdp::new();
    tdp.register_table(blocked_table(10_000));
    let prepared = tdp
        .prepare("SELECT COUNT(*) AS c FROM t WHERE v < ?")
        .unwrap();
    for bound in [10.0f64, 5_000.0, 9_999.0, 0.0] {
        let mut params = ParamValues::new();
        params.push(ParamValue::Number(bound));
        let got = prepared.bind(params).unwrap().run().unwrap();
        let c = got.column("c").unwrap().data.decode_i64().to_vec()[0];
        assert_eq!(c, bound as i64, "COUNT(v < {bound})");
    }
}

// ----------------------------------------------------------------------
// Access-path observability: profiler counters, engine stats, EXPLAIN
// ----------------------------------------------------------------------

#[test]
fn profiled_runs_report_pruned_and_scanned_morsels() {
    let tdp = Tdp::new();
    tdp.register_table(blocked_table(10_000));
    tdp.set_zone_maps(true);
    // Morsels smaller than the 4096-row zone-map chunks, so morsels
    // beyond chunk 0 are provably empty under v < 100.
    tdp.set_morsel_rows(1024);
    let q = tdp.query("SELECT v FROM t WHERE v < 100").unwrap();
    let (_, profile) = q.run_profiled().unwrap();
    assert!(
        profile.morsels_pruned > 0,
        "only chunk 0 can match; later chunks must prune: {profile:?}"
    );
    assert!(profile.morsels_scanned > 0);
    assert!(
        profile.pretty().contains("zone-maps:"),
        "{}",
        profile.pretty()
    );

    // Zone maps off: the same query consults no pruner at all.
    tdp.set_zone_maps(false);
    let (_, profile) = tdp
        .query("SELECT v FROM t WHERE v < 100")
        .unwrap()
        .run_profiled()
        .unwrap();
    assert_eq!(profile.morsels_pruned, 0);
    assert_eq!(profile.morsels_scanned, 0);
}

#[test]
fn engine_access_path_stats_accumulate() {
    let tdp = Tdp::new();
    tdp.register_table(blocked_table(10_000));
    tdp.set_zone_maps(true);
    tdp.set_morsel_rows(1024);
    let before = tdp.engine().access_path_stats();
    tdp.query("SELECT v FROM t WHERE v < 10")
        .unwrap()
        .run()
        .unwrap();
    let after = tdp.engine().access_path_stats();
    assert!(after.morsels_pruned > before.morsels_pruned);
    assert!(after.morsels_scanned > before.morsels_scanned);
}

#[test]
fn explain_renders_access_paths() {
    let tdp = Tdp::new();
    tdp.register_table(blocked_table(100));
    // Two prunable conjuncts on the scan line.
    let plan = tdp
        .prepare("SELECT v FROM t WHERE v > 1 AND v < 9 AND SQRT(v) > 0")
        .unwrap()
        .explain();
    assert!(plan.contains("[zone-maps: 2 predicates]"), "{plan}");
    // Nothing a zone map can evaluate: named full-scan reason.
    let plan = tdp
        .prepare("SELECT v FROM t WHERE SQRT(v) < 2")
        .unwrap()
        .explain();
    assert!(plan.contains("[full scan: no-eligible-conjunct]"), "{plan}");
}

// ----------------------------------------------------------------------
// AnnTopK: flat byte-identity oracle, IVF recall bound, DDL round trip
// ----------------------------------------------------------------------

/// Clustered embeddings: `nclusters` well-separated centers with small
/// jitter, so IVF's k-means finds real structure and recall is stable.
fn clustered_vectors(n: usize, d: usize, nclusters: usize, seed: u64) -> F32Tensor {
    let mut rng = Rng64::new(seed);
    let centers = F32Tensor::randn(&[nclusters, d], 0.0, 10.0, &mut rng);
    let jitter = F32Tensor::randn(&[n, d], 0.0, 0.1, &mut rng);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        let c = i % nclusters;
        for j in 0..d {
            data.push(centers.data()[c * d + j] + jitter.data()[i * d + j]);
        }
    }
    Tensor::from_vec(data, &[n, d])
}

fn vecs_table(n: usize, d: usize, seed: u64) -> Table {
    let ids: Vec<i64> = (0..n as i64).collect();
    TableBuilder::new()
        .col_i64("id", ids)
        .col_tensor("emb", clustered_vectors(n, d, 8, seed))
        .build("vecs")
}

fn query_vec(d: usize, seed: u64) -> F32Tensor {
    let mut rng = Rng64::new(seed);
    F32Tensor::randn(&[d], 0.0, 10.0, &mut rng)
}

fn ann_ids(table: &Table) -> Vec<i64> {
    table.column("id").unwrap().data.decode_i64().to_vec()
}

/// Run `ORDER BY distance(emb, $1) LIMIT k` (which lowers to AnnTopK)
/// and its sort-only oracle (which cannot), returning both id lists.
fn ann_vs_oracle(tdp: &Tdp, q: &F32Tensor, k: usize) -> (Vec<i64>, Vec<i64>) {
    let bind = |sql: &str| {
        let mut params = ParamValues::new();
        params.push(ParamValue::Tensor(q.clone()));
        tdp.prepare(sql)
            .unwrap()
            .bind(params)
            .unwrap()
            .run()
            .unwrap()
    };
    let ann = bind(&format!(
        "SELECT id FROM vecs ORDER BY distance(emb, ?) LIMIT {k}"
    ));
    // No LIMIT → Sort, not TopK → never AnnTopK: the exact oracle.
    let oracle = bind("SELECT id FROM vecs ORDER BY distance(emb, ?)");
    (ann_ids(&ann), ann_ids(&oracle)[..k].to_vec())
}

#[test]
fn flat_ann_topk_matches_scan_sort_oracle_exactly() {
    let tdp = Tdp::new();
    tdp.register_table(vecs_table(300, 8, 11));
    let plan = tdp
        .prepare("SELECT id FROM vecs ORDER BY distance(emb, ?) LIMIT 10")
        .unwrap()
        .explain();
    assert!(plan.contains("AnnTopK"), "{plan}");
    assert!(plan.contains("[flat exact]"), "{plan}");
    for seed in [1u64, 2, 3, 4, 5] {
        let q = query_vec(8, seed);
        let (ann, oracle) = ann_vs_oracle(&tdp, &q, 10);
        assert_eq!(ann, oracle, "flat AnnTopK must be exact (seed {seed})");
    }
}

#[test]
fn ivf_index_meets_declared_recall_bound() {
    let tdp = Tdp::new();
    tdp.register_table(vecs_table(512, 8, 7));
    match tdp
        .execute("CREATE INDEX vi ON vecs (emb) USING ivf(8, 4) METRIC l2")
        .unwrap()
    {
        StatementOutcome::Ack(msg) => assert_eq!(msg, "CREATE INDEX vi"),
        StatementOutcome::Rows(_) => panic!("DDL must ack, not return rows"),
    }
    let plan = tdp
        .prepare("SELECT id FROM vecs ORDER BY distance(emb, ?) LIMIT 10")
        .unwrap()
        .explain();
    assert!(plan.contains("ivf nlist=8 nprobe=4"), "{plan}");

    // Probing half the cells of well-clustered data: declared bound is
    // recall@10 ≥ 0.8 averaged over seeds (per-seed ≥ 0.5).
    let mut total = 0.0;
    let seeds = [21u64, 22, 23, 24, 25];
    for &seed in &seeds {
        let q = query_vec(8, seed);
        let (ann, oracle) = ann_vs_oracle(&tdp, &q, 10);
        let hits = ann.iter().filter(|id| oracle.contains(id)).count();
        let recall = hits as f64 / 10.0;
        assert!(recall >= 0.5, "seed {seed}: recall {recall}");
        total += recall;
    }
    assert!(
        total / seeds.len() as f64 >= 0.8,
        "mean recall {}",
        total / seeds.len() as f64
    );

    let ann_count_before = tdp.engine().access_path_stats().ann_queries;
    let q = query_vec(8, 99);
    ann_vs_oracle(&tdp, &q, 5);
    assert!(tdp.engine().access_path_stats().ann_queries > ann_count_before);
}

#[test]
fn stale_index_falls_back_to_exact() {
    let tdp = Tdp::new();
    tdp.register_table(vecs_table(256, 8, 3));
    tdp.execute("CREATE INDEX vi ON vecs (emb) USING ivf(4, 1) METRIC l2")
        .unwrap();
    assert!(tdp.has_vector_index("vecs", "emb"));
    // A table write invalidates the catalog entry outright…
    tdp.register_table(vecs_table(320, 8, 4));
    assert!(!tdp.has_vector_index("vecs", "emb"));
    // …so the query answers exactly, from the new data.
    for seed in [31u64, 32, 33] {
        let q = query_vec(8, seed);
        let (ann, oracle) = ann_vs_oracle(&tdp, &q, 10);
        assert_eq!(ann, oracle, "stale index must not serve (seed {seed})");
    }
}

#[test]
fn append_keeps_index_stale_and_counts_fallbacks() {
    let tdp = Tdp::new();
    tdp.register_table(vecs_table(256, 8, 7));
    tdp.execute("CREATE INDEX vi ON vecs (emb) USING ivf(4, 2) METRIC l2")
        .unwrap();
    assert!(tdp.has_vector_index("vecs", "emb"));

    // An append keeps the index entry (unlike a wholesale re-register):
    // the executor re-validates row counts at run time, answers from the
    // exact flat path, and counts the stale fallback.
    let more = TableBuilder::new()
        .col_i64("id", (256..320).collect())
        .col_tensor("emb", clustered_vectors(64, 8, 8, 9))
        .build("vecs");
    assert!(tdp.append_rows("vecs", &more));
    assert!(
        tdp.has_vector_index("vecs", "emb"),
        "append keeps the index for later rebuild"
    );

    let before = tdp.engine().access_path_stats().ivf_stale_fallbacks;
    for seed in [41u64, 42, 43] {
        let q = query_vec(8, seed);
        let (ann, oracle) = ann_vs_oracle(&tdp, &q, 10);
        assert_eq!(
            ann, oracle,
            "stale-index fallback must be exact (seed {seed})"
        );
    }
    let after = tdp.engine().access_path_stats().ivf_stale_fallbacks;
    assert_eq!(
        after - before,
        3,
        "every ANN run on the stale index counted"
    );
}

#[test]
fn stale_ivf_rebuilds_in_place_at_the_configured_threshold() {
    let tdp = Tdp::new();
    tdp.register_table(vecs_table(256, 8, 7));
    tdp.execute("CREATE INDEX vi ON vecs (emb) USING ivf(4, 4) METRIC l2")
        .unwrap();
    tdp.set_ivf_rebuild_after(2);

    // Append: the entry survives but its row count is stale.
    let more = TableBuilder::new()
        .col_i64("id", (256..320).collect())
        .col_tensor("emb", clustered_vectors(64, 8, 8, 9))
        .build("vecs");
    assert!(tdp.append_rows("vecs", &more));

    // Fallback #1: under the threshold — exact answer, no rebuild.
    let q = query_vec(8, 51);
    let (ann, oracle) = ann_vs_oracle(&tdp, &q, 10);
    assert_eq!(ann, oracle, "below threshold the fallback stays exact");
    assert_eq!(tdp.engine().access_path_stats().ivf_rebuilds, 0);

    // Fallback #2 reaches the threshold: the index is retrained in
    // place before searching, the rebuild is counted, and the profiled
    // run flags it.
    let mut params = ParamValues::new();
    params.push(ParamValue::Tensor(query_vec(8, 52)));
    let (out, profile) = tdp
        .prepare("SELECT id FROM vecs ORDER BY distance(emb, ?) LIMIT 10")
        .unwrap()
        .bind(params)
        .unwrap()
        .run_profiled()
        .unwrap();
    assert_eq!(out.rows(), 10);
    assert_eq!(profile.ivf_rebuilds, 1, "{profile:?}");
    assert!(
        profile.pretty().contains("[ivf rebuilt]"),
        "{}",
        profile.pretty()
    );
    assert_eq!(tdp.engine().access_path_stats().ivf_rebuilds, 1);

    // The fresh index now serves: no further stale fallbacks, recall on
    // the full (appended) table meets the probe-everything bound.
    let stale_before = tdp.engine().access_path_stats().ivf_stale_fallbacks;
    for seed in [61u64, 62, 63] {
        let q = query_vec(8, seed);
        let (ann, oracle) = ann_vs_oracle(&tdp, &q, 10);
        // nprobe = nlist: IVF probes every cell, so top-k is exact.
        assert_eq!(ann, oracle, "rebuilt index must cover appended rows");
    }
    assert_eq!(
        tdp.engine().access_path_stats().ivf_stale_fallbacks,
        stale_before,
        "the rebuilt index is fresh — no more fallbacks"
    );
}

#[test]
fn index_ddl_round_trip() {
    let tdp = Tdp::new();
    tdp.register_table(vecs_table(64, 4, 1));
    tdp.execute("CREATE INDEX vi ON vecs (emb) USING FLAT METRIC cosine")
        .unwrap();
    assert!(tdp.has_vector_index("vecs", "emb"));
    // Metric mismatch (index is cosine, query is L2 distance): planner
    // reports the flat path, and execution stays exact.
    let plan = tdp
        .prepare("SELECT id FROM vecs ORDER BY distance(emb, ?) LIMIT 3")
        .unwrap()
        .explain();
    assert!(plan.contains("[flat exact]"), "{plan}");
    match tdp.execute("DROP INDEX vi").unwrap() {
        StatementOutcome::Ack(msg) => assert_eq!(msg, "DROP INDEX vi"),
        StatementOutcome::Rows(_) => panic!("DDL must ack"),
    }
    assert!(!tdp.has_vector_index("vecs", "emb"));
    assert!(tdp.execute("DROP INDEX vi").is_err());
    // Plain queries still route through execute().
    match tdp.execute("SELECT COUNT(*) AS c FROM vecs").unwrap() {
        StatementOutcome::Rows(t) => assert_eq!(t.rows(), 1),
        StatementOutcome::Ack(_) => panic!("query must return rows"),
    }
}
