//! End-to-end SQL coverage across the whole stack: parser → optimizer →
//! exact executor → storage, through the public session API only.

use tdp_core::storage::TableBuilder;
use tdp_core::{Device, Tdp};
use tdp_integration::orders_table;

fn session() -> Tdp {
    let tdp = Tdp::new();
    tdp.register_table(orders_table());
    tdp.register_table(
        TableBuilder::new()
            .col_str("item", &["a", "b", "c"])
            .col_f32("weight", vec![0.5, 1.5, 2.5])
            .build("items"),
    );
    tdp
}

fn run_f32(tdp: &Tdp, sql: &str, col: &str) -> Vec<f32> {
    tdp.query(sql)
        .unwrap()
        .run()
        .unwrap()
        .column(col)
        .unwrap_or_else(|| panic!("missing column {col}"))
        .data
        .decode_f32()
        .to_vec()
}

#[test]
fn filters_projections_expressions() {
    let tdp = session();
    assert_eq!(
        run_f32(
            &tdp,
            "SELECT price * qty AS total FROM orders WHERE item = 'a' ORDER BY total",
            "total"
        ),
        vec![20.0, 60.0, 150.0]
    );
    assert_eq!(
        run_f32(
            &tdp,
            "SELECT price FROM orders WHERE price BETWEEN 2 AND 4 ORDER BY price DESC",
            "price"
        ),
        vec![4.0, 3.0, 2.5, 2.0]
    );
}

#[test]
fn aggregation_pipeline() {
    let tdp = session();
    let out = tdp
        .query(
            "SELECT item, COUNT(*), SUM(qty), AVG(price), MIN(price), MAX(price) \
                FROM orders GROUP BY item ORDER BY item",
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.rows(), 3);
    assert_eq!(
        out.column("item").unwrap().data.decode_strings(),
        vec!["a", "b", "c"]
    );
    assert_eq!(
        out.column("SUM(qty)").unwrap().data.decode_f32().to_vec(),
        vec![110.0, 60.0, 40.0]
    );
    assert_eq!(
        out.column("MAX(price)").unwrap().data.decode_f32().to_vec(),
        vec![2.5, 4.0, 5.0]
    );
}

#[test]
fn having_and_arithmetic_over_aggregates() {
    let tdp = session();
    let out = tdp
        .query(
            "SELECT item, SUM(qty) / COUNT(*) AS mean_qty FROM orders \
                GROUP BY item HAVING COUNT(*) > 1 ORDER BY item",
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.rows(), 2);
    assert_eq!(
        out.column("mean_qty").unwrap().data.decode_f32().to_vec(),
        vec![110.0 / 3.0, 30.0]
    );
}

#[test]
fn joins_through_the_session() {
    let tdp = session();
    let out = tdp
        .query(
            "SELECT item, SUM(weight * qty) AS load FROM orders JOIN items \
                ON orders.item = items.item GROUP BY item ORDER BY item",
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        out.column("load").unwrap().data.decode_f32().to_vec(),
        vec![55.0, 90.0, 100.0]
    );
}

#[test]
fn nested_subqueries() {
    let tdp = session();
    let out = tdp
        .query(
            "SELECT AVG(total) FROM (SELECT price * qty AS total FROM \
             (SELECT price, qty FROM orders WHERE item <> 'c'))",
        )
        .unwrap()
        .run()
        .unwrap();
    // totals: b:30, a:20, a:60, b:200, a:150 -> avg 92
    assert_eq!(
        out.column("AVG(total)").unwrap().data.decode_f32().to_vec(),
        vec![92.0]
    );
}

#[test]
fn order_by_limit_topk() {
    let tdp = session();
    assert_eq!(
        run_f32(
            &tdp,
            "SELECT price FROM orders ORDER BY price DESC LIMIT 2",
            "price"
        ),
        vec![5.0, 4.0]
    );
    assert_eq!(
        run_f32(
            &tdp,
            "SELECT qty FROM orders ORDER BY item ASC, qty DESC LIMIT 3",
            "qty"
        ),
        vec![60.0, 30.0, 20.0]
    );
}

#[test]
fn results_identical_across_devices() {
    let tdp = session();
    let sql = "SELECT item, SUM(price * qty) AS v FROM orders GROUP BY item ORDER BY item";
    let cpu = tdp.query(sql).unwrap().run().unwrap();
    let accel = tdp
        .query_with(
            sql,
            tdp_core::QueryConfig::default().device(Device::accel()),
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        cpu.column("v").unwrap().data.decode_f32().to_vec(),
        accel.column("v").unwrap().data.decode_f32().to_vec(),
        "device placement must not change results"
    );
}

#[test]
fn dictionary_range_predicates() {
    let tdp = session();
    assert_eq!(
        run_f32(
            &tdp,
            "SELECT qty FROM orders WHERE item >= 'b' ORDER BY qty",
            "qty"
        ),
        vec![10.0, 40.0, 50.0]
    );
}

#[test]
fn errors_are_informative() {
    let tdp = session();
    // Unknown columns over a known table fail at compile time now that
    // lowering slot-resolves against the catalog schema.
    let e = tdp.query("SELECT nope FROM orders").unwrap_err();
    assert!(e.to_string().contains("nope"));
    // Unknown tables still fail at run time (the table may be registered
    // after compilation, as in the paper's training loop).
    let e2 = tdp
        .query("SELECT * FROM ghosts")
        .unwrap()
        .run()
        .unwrap_err();
    assert!(e2.to_string().contains("ghosts"));
    assert!(tdp.query("SELECT FROM WHERE").is_err());
}

#[test]
fn group_by_expression_keys_work_end_to_end() {
    // Regression: a select item / sort key / HAVING residue equal to a
    // GROUP BY *expression* must reference the aggregate's key output
    // instead of re-evaluating the expression (its input columns are gone
    // post-grouping) — and literal auto-parameterisation must give the
    // select item and the key the same parameter slots.
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("x", vec![1.0, 2.0, 1.0, 3.0])
            .build("t"),
    );
    let out = tdp
        .query("SELECT x + 1, COUNT(*) FROM t GROUP BY x + 1")
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.rows(), 3);
    assert_eq!(
        out.column("(x + 1)").unwrap().data.decode_f32().to_vec(),
        vec![2.0, 3.0, 4.0],
        "output column keeps the pre-extraction name"
    );
    // Sorted descending by the expression key, groups filtered by HAVING
    // over the key expression.
    let sorted = tdp
        .query(
            "SELECT x + 1, COUNT(*) FROM t GROUP BY x + 1 \
             HAVING x + 1 < 4 ORDER BY x + 1 DESC",
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        sorted.column("(x + 1)").unwrap().data.decode_f32().to_vec(),
        vec![3.0, 2.0]
    );
    assert_eq!(
        sorted
            .column("COUNT(*)")
            .unwrap()
            .data
            .decode_i64()
            .to_vec(),
        vec![1, 2]
    );
}
