//! Integration tests of the differentiable-SQL machinery: soft/exact
//! agreement, gradient flow, weight-threading, and the operator-swap
//! contract of paper §4.

use std::sync::Arc;

use tdp_core::autodiff::Var;
use tdp_core::encoding::EncodedTensor;
use tdp_core::exec::{
    ArgValue, Batch, ColumnData, DiffColumn, ExecContext, ExecError, ScalarUdf, TableFunction,
};
use tdp_core::nn::{Adam, Optimizer};
use tdp_core::storage::TableBuilder;
use tdp_core::tensor::Tensor;
use tdp_core::{QueryConfig, Tdp};

/// TVF emitting a PE column driven by a trainable logits parameter.
struct LogitClassifier {
    logits: Var,
    classes: usize,
}

impl TableFunction for LogitClassifier {
    fn name(&self) -> &str {
        "classify"
    }
    fn invoke_table(&self, input: &Batch, ctx: &ExecContext) -> Result<Batch, ExecError> {
        let diff = self.invoke_table_diff(input, ctx)?;
        let mut out = Batch::new();
        for (name, col) in diff.columns() {
            out.push(name.clone(), ColumnData::Exact(col.to_exact()));
        }
        Ok(out)
    }
    fn invoke_table_diff(&self, _input: &Batch, _ctx: &ExecContext) -> Result<Batch, ExecError> {
        let mut out = Batch::new();
        out.push(
            "Label",
            ColumnData::Diff(DiffColumn::pe(
                self.logits.softmax(1),
                Tensor::arange(self.classes),
            )),
        );
        Ok(out)
    }
    fn parameters(&self) -> Vec<Var> {
        vec![self.logits.clone()]
    }
}

fn fixture(n: usize, classes: usize) -> (Tdp, Var) {
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("x", (0..n).map(|i| i as f32).collect())
            .build("rows"),
    );
    let logits = Var::param(Tensor::<f32>::zeros(&[n, classes]));
    tdp.register_tvf(Arc::new(LogitClassifier {
        logits: logits.clone(),
        classes,
    }));
    (tdp, logits)
}

#[test]
fn soft_counts_conserve_mass() {
    let (tdp, _) = fixture(12, 4);
    let q = tdp
        .query_with(
            "SELECT Label, COUNT(*) FROM classify(rows) GROUP BY Label",
            QueryConfig::default().trainable(true),
        )
        .unwrap();
    let counts = q.run_counts().unwrap().value();
    assert_eq!(counts.numel(), 4);
    assert!((counts.sum() - 12.0).abs() < 1e-4, "soft mass = row count");
}

#[test]
fn soft_equals_exact_for_confident_models() {
    // With near-one-hot logits, soft counts must agree with the exact
    // (argmax-decoded) counts — the inference swap is then error-free.
    let (tdp, logits) = fixture(6, 2);
    let sharp: Vec<f32> = (0..6)
        .flat_map(|i| {
            if i % 3 == 0 {
                [30.0, -30.0]
            } else {
                [-30.0, 30.0]
            }
        })
        .collect();
    logits.set_value(Tensor::from_vec(sharp, &[6, 2]));
    let sql = "SELECT Label, COUNT(*) FROM classify(rows) GROUP BY Label";
    let q = tdp
        .query_with(sql, QueryConfig::default().trainable(true))
        .unwrap();
    let soft = q.run_counts().unwrap().value();
    let exact = q.run().unwrap();
    let exact_counts = exact.column("COUNT(*)").unwrap().data.decode_f32();
    assert!((soft.at(0) - 2.0).abs() < 1e-4);
    assert!((soft.at(1) - 4.0).abs() < 1e-4);
    assert_eq!(exact_counts.to_vec(), vec![2.0, 4.0]);
}

#[test]
fn trainable_count_supervision_converges_and_transfers() {
    let (tdp, logits) = fixture(8, 2);
    let q = tdp
        .query_with(
            "SELECT Label, COUNT(*) FROM classify(rows) GROUP BY Label",
            QueryConfig::default().trainable(true),
        )
        .unwrap();
    let target = Tensor::from_vec(vec![5.0f32, 3.0], &[2]);
    let mut opt = Adam::new(q.parameters(), 0.2);
    let mut last = f32::MAX;
    for _ in 0..150 {
        opt.zero_grad();
        let loss = q.run_counts().unwrap().mse_loss(&target);
        loss.backward();
        opt.step();
        last = loss.value().item();
    }
    // Count supervision alone admits fractional optima (every row at
    // p = 5/8 also yields soft counts [5, 3]); what must hold is that the
    // soft counts fit the target and total mass is conserved exactly.
    assert!(last < 1e-3, "soft counts must fit the target: loss {last}");
    let soft = q.run_counts().unwrap().value();
    assert!((soft.at(0) - 5.0).abs() < 0.05 && (soft.at(1) - 3.0).abs() < 0.05);
    let exact = q.run().unwrap();
    assert_eq!(
        exact.column("COUNT(*)").unwrap().data.decode_i64().sum(),
        8,
        "exact decode conserves rows"
    );
    let _ = logits;
}

#[test]
fn weighted_soft_filter_flows_gradients() {
    // Trainable threshold-style UDF: score(x) = x * w, filter > 1.
    struct ScoreUdf {
        w: Var,
    }
    impl ScalarUdf for ScoreUdf {
        fn name(&self) -> &str {
            "score"
        }
        fn invoke(&self, args: &[ArgValue], _: &ExecContext) -> Result<EncodedTensor, ExecError> {
            let x = args[0].as_column()?.decode_f32();
            Ok(EncodedTensor::F32(x.mul_scalar(self.w.value().item())))
        }
        fn invoke_diff(&self, args: &[ArgValue], _: &ExecContext) -> Result<DiffColumn, ExecError> {
            let x = match &args[0] {
                ArgValue::Column(c) => Var::constant(c.decode_f32()),
                ArgValue::DiffColumn(d) => d.var.clone(),
                other => return Err(ExecError::TypeMismatch(format!("{other:?}"))),
            };
            Ok(DiffColumn::plain(
                x.mul(&self.w.broadcast_to(&[x.shape()[0]])),
            ))
        }
        fn parameters(&self) -> Vec<Var> {
            vec![self.w.clone()]
        }
    }

    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("x", vec![0.5, 1.0, 1.5, 2.0])
            .build("t"),
    );
    let w = Var::param(Tensor::from_vec(vec![1.0f32], &[1]));
    tdp.register_udf(Arc::new(ScoreUdf { w: w.clone() }));
    let q = tdp
        .query_with(
            "SELECT COUNT(*) FROM t WHERE score(x) > 1.0",
            QueryConfig::default().trainable(true).temperature(0.5),
        )
        .unwrap();
    // Train the weight so the soft count reaches 2. (A generous temperature
    // and a small step size keep the relaxed predicate out of the saturated
    // sigmoid region, where gradients vanish.)
    let target = Tensor::from_vec(vec![2.0f32], &[1]);
    let mut opt = Adam::new(q.parameters(), 0.02);
    let mut last = f32::MAX;
    for _ in 0..300 {
        opt.zero_grad();
        let loss = q.run_counts().unwrap().mse_loss(&target);
        loss.backward();
        opt.step();
        last = loss.value().item();
    }
    assert!(
        last < 0.05,
        "trainable filter should fit the target count: {last}"
    );
    // Exact execution of the trained query returns an integer count near 2.
    let exact = q.run().unwrap();
    let c = exact.column("COUNT(*)").unwrap().data.decode_i64().at(0);
    assert!((1..=3).contains(&c), "exact count after training: {c}");
}

#[test]
fn non_trainable_query_rejects_diff_run() {
    let (tdp, _) = fixture(4, 2);
    let q = tdp
        .query("SELECT Label, COUNT(*) FROM classify(rows) GROUP BY Label")
        .unwrap();
    assert!(q.run_diff().is_err());
    assert!(q.run().is_ok());
}

#[test]
fn group_order_is_lexicographic_in_both_modes() {
    let (tdp, logits) = fixture(4, 3);
    // Confident: classes 2, 1, 0, 2.
    let mut l = vec![-20.0f32; 12];
    for (i, c) in [2usize, 1, 0, 2].iter().enumerate() {
        l[i * 3 + c] = 20.0;
    }
    logits.set_value(Tensor::from_vec(l, &[4, 3]));
    let sql = "SELECT Label, COUNT(*) FROM classify(rows) GROUP BY Label";
    let q = tdp
        .query_with(sql, QueryConfig::default().trainable(true))
        .unwrap();
    // Soft mode: dense table over all classes 0,1,2.
    let soft_batch = q.run_diff().unwrap();
    let labels = soft_batch.column("Label").unwrap().to_exact().decode_f32();
    assert_eq!(labels.to_vec(), vec![0.0, 1.0, 2.0]);
    // Exact mode: observed classes in ascending order.
    let exact = q.run().unwrap();
    assert_eq!(
        exact.column("Label").unwrap().data.decode_f32().to_vec(),
        vec![0.0, 1.0, 2.0]
    );
    assert_eq!(
        exact.column("COUNT(*)").unwrap().data.decode_i64().to_vec(),
        vec![1, 1, 2]
    );
}
