//! Integration tests of the engine/session split: one `TdpEngine`
//! shared by many sessions, a cross-session plan cache (compile once,
//! hit from any session, invalidate everywhere), session-local UDF
//! isolation versus engine-shared registration, and engine-level
//! observability counters.

use std::sync::Arc;

use tdp_core::storage::{Table, TableBuilder};
use tdp_core::TdpEngine;
use tdp_integration::HalveUdf;

fn engine_with_table() -> Arc<TdpEngine> {
    let engine = TdpEngine::new();
    engine.register_table(
        TableBuilder::new()
            .col_f32("v", vec![0.5, 1.5, 2.5, 3.5, 4.5])
            .col_i64("k", vec![0, 1, 0, 1, 0])
            .build("t"),
    );
    engine
}

fn col_f32(table: &Table, name: &str) -> Vec<f32> {
    table
        .columns()
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("no column {name}"))
        .data
        .decode_f32()
        .to_vec()
}

#[test]
fn two_sessions_one_compilation() {
    let engine = engine_with_table();
    let s1 = engine.session();
    let s2 = engine.session();

    let sql = "SELECT k, SUM(v) AS total FROM t GROUP BY k ORDER BY k";
    let r1 = s1.query(sql).unwrap().run().unwrap();
    let after_first = engine.plan_cache_stats();
    assert_eq!(after_first.misses, 1, "first session compiles");
    assert_eq!(after_first.hits, 0);

    let r2 = s2.query(sql).unwrap().run().unwrap();
    let after_second = engine.plan_cache_stats();
    assert_eq!(after_second.misses, 1, "second session must NOT recompile");
    assert_eq!(after_second.hits, 1, "second session hits the shared cache");
    assert!(engine.stats().plan_cache_hit_rate() > 0.0);

    assert_eq!(r1.pretty(100), r2.pretty(100), "shared plan, same bytes");
}

#[test]
fn literal_normalization_shares_plans_across_sessions() {
    let engine = engine_with_table();
    let s1 = engine.session();
    let s2 = engine.session();

    // Different literals, same normalized statement: one compilation.
    s1.query("SELECT SUM(v) FROM t WHERE v > 1.0")
        .unwrap()
        .run()
        .unwrap();
    s2.query("SELECT SUM(v) FROM t WHERE v > 3.0")
        .unwrap()
        .run()
        .unwrap();
    let stats = engine.plan_cache_stats();
    assert_eq!((stats.misses, stats.hits), (1, 1));
}

#[test]
fn catalog_change_in_one_session_invalidates_the_other() {
    let engine = engine_with_table();
    let s1 = engine.session();
    let s2 = engine.session();

    let sql = "SELECT * FROM t ORDER BY v";
    let before = s2.query(sql).unwrap().run().unwrap();
    assert_eq!(before.columns().len(), 2);
    assert_eq!(engine.plan_cache_stats().misses, 1);

    // Session 1 replaces `t` with a wider schema; session 2's cached
    // plan is now stale and must recompile, not serve the old shape.
    s1.register_table(
        TableBuilder::new()
            .col_f32("v", vec![10.0, 20.0])
            .col_i64("k", vec![7, 8])
            .col_f32("w", vec![0.1, 0.2])
            .build("t"),
    );
    let after = s2.query(sql).unwrap().run().unwrap();
    assert_eq!(after.columns().len(), 3, "session 2 sees the new schema");
    assert_eq!(col_f32(&after, "v"), vec![10.0, 20.0]);
    assert_eq!(
        engine.plan_cache_stats().misses,
        2,
        "stale cross-session entry recompiled exactly once"
    );
}

#[test]
fn session_local_udfs_stay_local_but_shared_udfs_are_global() {
    let engine = engine_with_table();
    let s1 = engine.session();
    let s2 = engine.session();

    s1.register_udf(Arc::new(HalveUdf));
    assert!(
        s1.query("SELECT halve(v) FROM t").is_ok(),
        "registering session sees its UDF"
    );
    let err = s2
        .query("SELECT halve(v) FROM t")
        .expect_err("session 2 must not see session 1's local UDF");
    assert!(
        err.to_string().contains("halve"),
        "error should name the unresolved function: {err}"
    );

    // Engine-shared registration is visible to every session, including
    // ones opened before the registration.
    engine.register_udf_shared(Arc::new(HalveUdf));
    let r2 = s2
        .query("SELECT halve(v) AS h FROM t ORDER BY h")
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(col_f32(&r2, "h"), vec![0.25, 0.75, 1.25, 1.75, 2.25]);
    let s3 = engine.session();
    assert!(s3.query("SELECT halve(v) FROM t").is_ok());
}

#[test]
fn local_udf_plans_do_not_poison_the_shared_cache() {
    let engine = engine_with_table();
    let s1 = engine.session();
    let s2 = engine.session();

    // Session 1 resolves halve() locally; its plan must not be served to
    // session 2, where the name does not resolve at all.
    s1.register_udf(Arc::new(HalveUdf));
    s1.query("SELECT halve(v) FROM t").unwrap().run().unwrap();
    assert_eq!(
        engine.plan_cache_stats().entries,
        0,
        "locally-resolved plans stay in the session overlay"
    );
    assert!(s2.query("SELECT halve(v) FROM t").is_err());
}

#[test]
fn shared_udf_registration_invalidates_cached_plans() {
    let engine = engine_with_table();
    let s1 = engine.session();
    let s2 = engine.session();

    s1.query("SELECT SUM(v) FROM t").unwrap().run().unwrap();
    assert_eq!(engine.plan_cache_stats().misses, 1);
    // Epoch bump: resolution may have changed, every session recompiles.
    engine.register_udf_shared(Arc::new(HalveUdf));
    s2.query("SELECT SUM(v) FROM t").unwrap().run().unwrap();
    assert_eq!(engine.plan_cache_stats().misses, 2);
}

#[test]
fn engine_counts_sessions_and_queries() {
    let engine = engine_with_table();
    assert_eq!(engine.stats().sessions_open, 0);
    let s1 = engine.session();
    let s2 = engine.session();
    assert_eq!(engine.stats().sessions_open, 2);
    assert_eq!(engine.stats().sessions_total, 2);

    s1.query("SELECT COUNT(*) FROM t").unwrap().run().unwrap();
    s2.query("SELECT COUNT(*) FROM t").unwrap().run().unwrap();
    assert_eq!(engine.stats().queries_served, 2);

    drop(s1);
    assert_eq!(engine.stats().sessions_open, 1);
    drop(s2);
    assert_eq!(engine.stats().sessions_open, 0);
    assert_eq!(engine.stats().sessions_total, 2, "total never decreases");
}

#[test]
fn sessions_on_threads_share_the_plan_cache() {
    let engine = engine_with_table();
    // Warm the cache from the main thread…
    engine
        .session()
        .query("SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k")
        .unwrap()
        .run()
        .unwrap();
    // …then hit it from fresh sessions on other threads.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let s = engine.session();
                s.query("SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k")
                    .unwrap()
                    .run()
                    .unwrap()
                    .pretty(100)
            })
        })
        .collect();
    let results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    let stats = engine.plan_cache_stats();
    assert_eq!(stats.misses, 1, "one compilation for five sessions");
    assert_eq!(stats.hits, 4);
}
