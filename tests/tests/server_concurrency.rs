//! Stress tests of the TCP server: many concurrent clients against one
//! engine must see byte-identical responses to a sequential oracle, an
//! overloaded server must reject with the typed `BUSY` error (not hang),
//! and graceful shutdown must drain in-flight queries.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use tdp_core::encoding::EncodedTensor;
use tdp_core::exec::{ArgValue, ExecContext, ExecError};
use tdp_core::storage::TableBuilder;
use tdp_core::{ArgType, FunctionSpec, ScalarUdf, TdpEngine, Volatility};
use tdp_server::{ServerConfig, TdpServer};

fn test_engine() -> Arc<TdpEngine> {
    let engine = TdpEngine::new();
    engine.register_table(
        TableBuilder::new()
            .col_f32("price", vec![3.0, 1.0, 2.0, 5.0, 4.0, 2.5, 0.5, 9.0])
            .col_str("item", &["b", "a", "a", "c", "b", "a", "c", "b"])
            .col_i64("qty", vec![10, 20, 30, 40, 50, 60, 70, 80])
            .build("orders"),
    );
    engine
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// Send one request line, collect the framed response up to the `.`.
fn roundtrip(stream: &TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
    let mut w = stream.try_clone().unwrap();
    writeln!(w, "{req}").unwrap();
    w.flush().unwrap();
    let mut out = String::new();
    loop {
        let mut line = String::new();
        assert_ne!(reader.read_line(&mut line).unwrap(), 0, "server hung up");
        if line.trim_end() == "." {
            return out;
        }
        out.push_str(&line);
    }
}

const QUERIES: &[&str] = &[
    "QUERY SELECT item, SUM(qty) AS total FROM orders GROUP BY item ORDER BY item",
    "QUERY SELECT COUNT(*) FROM orders WHERE price > 2.0",
    "QUERY SELECT price, qty FROM orders WHERE price >= 2.5 ORDER BY price",
    "QUERY SELECT item, AVG(price) AS p FROM orders GROUP BY item ORDER BY item",
    "QUERY SELECT SUM(price * qty) FROM orders",
    "EXPLAIN SELECT item FROM orders WHERE qty > 30 ORDER BY item",
];

#[test]
fn eight_concurrent_clients_match_the_sequential_oracle() {
    let server = TdpServer::bind(
        test_engine(),
        "127.0.0.1:0",
        // Generous admission: this test is about correctness under
        // concurrency, not rejection.
        ServerConfig::default()
            .max_concurrent(8)
            .max_queued(64)
            .queue_timeout(Duration::from_secs(30)),
    )
    .unwrap();
    let addr = server.local_addr();

    // Sequential oracle: one client, one query at a time.
    let oracle: Vec<String> = {
        let (stream, mut reader) = connect(addr);
        QUERIES
            .iter()
            .map(|q| roundtrip(&stream, &mut reader, q))
            .collect()
    };
    for (q, r) in QUERIES.iter().zip(&oracle) {
        assert!(r.starts_with("OK"), "oracle failed for {q}: {r}");
    }

    // 8 clients, each running every query, starting at a different
    // offset so distinct statements overlap in flight.
    let handles: Vec<_> = (0..8)
        .map(|client| {
            std::thread::spawn(move || {
                let (stream, mut reader) = connect(addr);
                (0..QUERIES.len())
                    .map(|i| {
                        let q = (client + i) % QUERIES.len();
                        (q, roundtrip(&stream, &mut reader, QUERIES[q]))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for handle in handles {
        for (q, response) in handle.join().unwrap() {
            assert_eq!(
                response, oracle[q],
                "concurrent response diverged from the sequential oracle for {}",
                QUERIES[q]
            );
        }
    }

    // 9 connections × repeated statements: the shared plan cache must
    // have served cross-session hits, visible over the wire via STATS.
    let (stream, mut reader) = connect(addr);
    let stats = roundtrip(&stream, &mut reader, "STATS");
    let hits: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("plan_cache_hits "))
        .expect("STATS reports plan_cache_hits")
        .trim()
        .parse()
        .unwrap();
    assert!(
        hits > 0,
        "cross-session plan-cache hits must be visible: {stats}"
    );
    assert!(server.engine().plan_cache_stats().hits >= hits.min(1));
    server.shutdown();
}

/// `stall(column)` — parks inside `invoke` until the test releases it,
/// and flags when execution has actually started. Registered
/// engine-shared, it pins the single execution slot deterministically.
struct StallUdf {
    gate: Arc<(Mutex<(bool, bool)>, Condvar)>, // (entered, released)
}

impl ScalarUdf for StallUdf {
    fn name(&self) -> &str {
        "stall"
    }

    fn spec(&self) -> FunctionSpec {
        FunctionSpec::scalar(self.name(), vec![ArgType::Column]).volatility(Volatility::Volatile)
    }

    fn invoke(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<EncodedTensor, ExecError> {
        let (lock, cv) = &*self.gate;
        let mut st = lock.lock().unwrap();
        st.0 = true;
        cv.notify_all();
        while !st.1 {
            st = cv.wait(st).unwrap();
        }
        drop(st);
        Ok(EncodedTensor::F32(args[0].as_column()?.decode_f32()))
    }
}

fn gate() -> Arc<(Mutex<(bool, bool)>, Condvar)> {
    Arc::new((Mutex::new((false, false)), Condvar::new()))
}

fn wait_entered(gate: &Arc<(Mutex<(bool, bool)>, Condvar)>) {
    let (lock, cv) = &**gate;
    let mut st = lock.lock().unwrap();
    while !st.0 {
        st = cv.wait(st).unwrap();
    }
}

fn release(gate: &Arc<(Mutex<(bool, bool)>, Condvar)>) {
    let (lock, cv) = &**gate;
    lock.lock().unwrap().1 = true;
    cv.notify_all();
}

#[test]
fn overload_is_rejected_with_a_typed_busy_error() {
    let engine = test_engine();
    let gate = gate();
    engine.register_udf_shared(Arc::new(StallUdf {
        gate: Arc::clone(&gate),
    }));
    let server = TdpServer::bind(
        engine,
        "127.0.0.1:0",
        // One slot, no queue: the second in-flight query must be turned
        // away immediately and deterministically.
        ServerConfig::default()
            .max_concurrent(1)
            .max_queued(0)
            .queue_timeout(Duration::from_millis(50)),
    )
    .unwrap();
    let addr = server.local_addr();

    // Client A occupies the only slot, parked inside the UDF.
    let blocker = std::thread::spawn(move || {
        let (stream, mut reader) = connect(addr);
        roundtrip(
            &stream,
            &mut reader,
            "QUERY SELECT stall(price) AS p FROM orders",
        )
    });
    wait_entered(&gate);

    // Client B is over capacity: typed error, not a hang.
    let (stream, mut reader) = connect(addr);
    let rejected = roundtrip(&stream, &mut reader, "QUERY SELECT COUNT(*) FROM orders");
    assert!(
        rejected.starts_with("ERR BUSY server busy"),
        "expected a typed busy rejection, got: {rejected}"
    );
    // Admission gates execution verbs only — observability stays live.
    let stats = roundtrip(&stream, &mut reader, "STATS");
    assert!(stats.contains("queries_rejected 1"), "{stats}");
    // Access-path counters render too (values depend on workload).
    for line in [
        "ivf_rebuilds ",
        "barriers_selection_fed ",
        "barriers_gathered ",
    ] {
        assert!(stats.contains(line), "STATS must report {line}: {stats}");
    }

    release(&gate);
    let blocked_response = blocker.join().unwrap();
    assert!(
        blocked_response.starts_with("OK 8 rows"),
        "the in-flight query completes after release: {blocked_response}"
    );

    // Slot free again: the previously rejected client succeeds.
    let retried = roundtrip(&stream, &mut reader, "QUERY SELECT COUNT(*) FROM orders");
    assert!(retried.starts_with("OK 1 rows"), "{retried}");
    assert_eq!(server.engine().stats().queries_rejected, 1);
    server.shutdown();
}

#[test]
fn shutdown_drains_the_in_flight_query() {
    let engine = test_engine();
    let gate = gate();
    engine.register_udf_shared(Arc::new(StallUdf {
        gate: Arc::clone(&gate),
    }));
    let server = TdpServer::bind(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let client = std::thread::spawn(move || {
        let (stream, mut reader) = connect(addr);
        roundtrip(
            &stream,
            &mut reader,
            "QUERY SELECT stall(price) AS p FROM orders",
        )
    });
    wait_entered(&gate);

    // Shut down while the query is executing; it must still complete and
    // deliver its response before the connection closes.
    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(30));
    release(&gate);
    shutdown.join().unwrap();

    let response = client.join().unwrap();
    assert!(
        response.starts_with("OK 8 rows"),
        "in-flight query must drain through shutdown: {response}"
    );
}
