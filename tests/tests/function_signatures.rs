//! Typed function signatures: prepare-time arity/type validation, TVF
//! position checks, declared-schema slot resolution through TVF outputs,
//! Immutable-UDF constant folding, parallel-safe UDF scheduling, and
//! sequential-fallback observability.

use std::sync::Arc;

use tdp_core::encoding::EncodedTensor;
use tdp_core::exec::{ArgValue, Batch, ColumnData, ExecContext, ExecError, TableFunction};
use tdp_core::storage::TableBuilder;
use tdp_core::tensor::Tensor;
use tdp_core::{ArgType, FunctionSpec, ParamValues, ScalarUdf, Tdp, TdpError, Volatility};
use tdp_integration::HalveUdf;

fn session() -> Tdp {
    let tdp = Tdp::new();
    let n = 400;
    let tags: Vec<String> = (0..n).map(|i| format!("t{}", i % 5)).collect();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("v", (0..n).map(|i| (i as f32 * 0.11).sin()).collect())
            .col_i64("k", (0..n).map(|i| (i % 7) as i64).collect())
            .col_str("tag", &tags)
            .build("t"),
    );
    tdp
}

/// `scale(column, number)` — declared two-arg signature for type tests.
struct ScaleUdf;

impl ScalarUdf for ScaleUdf {
    fn name(&self) -> &str {
        "scale"
    }
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::scalar(self.name(), vec![ArgType::Column, ArgType::Number])
            .volatility(Volatility::Immutable)
            .parallel_safe(true)
    }
    fn invoke(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<EncodedTensor, ExecError> {
        let col = args[0].as_column()?.decode_f32();
        let k = args[1].as_number()? as f32;
        Ok(EncodedTensor::F32(col.mul_scalar(k)))
    }
}

/// `add_tax(number)` — Immutable over a scalar, so calls on literals
/// fold into constants at prepare time.
struct AddTaxUdf {
    volatility: Volatility,
    name: &'static str,
}

impl ScalarUdf for AddTaxUdf {
    fn name(&self) -> &str {
        self.name
    }
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::scalar(self.name, vec![ArgType::Number]).volatility(self.volatility)
    }
    fn invoke(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<EncodedTensor, ExecError> {
        let x = args[0].as_number()? as f32;
        Ok(EncodedTensor::F32(Tensor::from_vec(vec![x * 1.1], &[1])))
    }
}

/// A FROM-position TVF with a declared `[Label, Score]` output schema.
struct LabelerTvf;

impl TableFunction for LabelerTvf {
    fn name(&self) -> &str {
        "labeler"
    }
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::dynamic(self.name())
            .returns(vec!["Label".into(), "Score".into()])
            .from_only()
    }
    fn invoke_table(&self, input: &Batch, _ctx: &ExecContext) -> Result<Batch, ExecError> {
        let n = input.rows();
        let labels: Vec<String> = (0..n).map(|i| format!("L{}", i % 3)).collect();
        let scores: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut out = Batch::new();
        out.push(
            "Label",
            ColumnData::Exact(EncodedTensor::from_strings(&labels)),
        );
        out.push(
            "Score",
            ColumnData::Exact(EncodedTensor::F32(Tensor::from_vec(scores, &[n]))),
        );
        Ok(out)
    }
}

/// A TVF that *lies* about its output schema — declares `[Expected]` but
/// emits `[Surprise]`.
struct DriftingTvf;

impl TableFunction for DriftingTvf {
    fn name(&self) -> &str {
        "drifting"
    }
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::dynamic(self.name())
            .returns(vec!["Expected".into()])
            .from_only()
    }
    fn invoke_table(&self, input: &Batch, _ctx: &ExecContext) -> Result<Batch, ExecError> {
        let n = input.rows();
        let mut out = Batch::new();
        out.push(
            "Surprise",
            ColumnData::Exact(EncodedTensor::F32(Tensor::from_vec(vec![1.0; n], &[n]))),
        );
        Ok(out)
    }
}

/// A column-preserving TVF whose schema derives from its input.
struct PassthroughTvf;

impl TableFunction for PassthroughTvf {
    fn name(&self) -> &str {
        "passthru"
    }
    fn spec(&self) -> FunctionSpec {
        FunctionSpec::dynamic(self.name())
            .returns_derived(|cols| Some(cols.to_vec()))
            .from_only()
    }
    fn invoke_table(&self, input: &Batch, _ctx: &ExecContext) -> Result<Batch, ExecError> {
        Ok(input.clone())
    }
}

fn expect_signature_err(result: Result<impl Sized, TdpError>, needle: &str, what: &str) {
    match result {
        Err(TdpError::Exec(ExecError::Signature(msg))) => {
            assert!(msg.contains(needle), "{what}: {msg}");
        }
        Err(other) => panic!("{what}: expected a signature error, got {other:?}"),
        Ok(_) => panic!("{what}: expected a signature error, got success"),
    }
}

// ----------------------------------------------------------------------
// Prepare-time arity / type validation
// ----------------------------------------------------------------------

#[test]
fn declared_arity_checked_at_prepare_time() {
    let tdp = session();
    tdp.register_udf_parallel(Arc::new(HalveUdf));
    expect_signature_err(
        tdp.query("SELECT halve(v, k) FROM t"),
        "expects 1 argument(s), got 2",
        "over-application",
    );
    expect_signature_err(
        tdp.query("SELECT halve() FROM t"),
        "expects 1 argument(s)",
        "under-application",
    );
    // The declared arity is fine — compiles and runs.
    let out = tdp.query("SELECT halve(v) AS h FROM t").unwrap();
    assert_eq!(out.run().unwrap().rows(), 400);
}

#[test]
fn declared_types_checked_at_prepare_time() {
    let tdp = session();
    tdp.register_udf_parallel(Arc::new(ScaleUdf));
    // A string literal where a column is declared (the literal rides an
    // auto-extracted parameter slot, so the check sees its value type).
    expect_signature_err(
        tdp.query("SELECT scale('nope', 2) FROM t"),
        "must be a column",
        "string for column",
    );
    // A number literal where... the second slot wants a number but gets a
    // string.
    expect_signature_err(
        tdp.query("SELECT scale(v, 'two') FROM t"),
        "must be a number",
        "string for number",
    );
    // A column where a scalar number is declared.
    expect_signature_err(
        tdp.query("SELECT scale(v, k) FROM t"),
        "must be a number",
        "column for number",
    );
    // Correct usage computes.
    let out = tdp
        .query("SELECT scale(v, 2) AS d FROM t WHERE v > 0.0")
        .unwrap()
        .run()
        .unwrap();
    assert!(out.rows() > 0);
}

#[test]
fn plan_cache_hit_still_rejects_wrongly_typed_literals() {
    // Literal auto-parameterisation gives `scale(v, 2)` and
    // `scale(v, 'two')` the SAME normalized cache key; serving the cached
    // plan must not skip the declared-type check of the new text's
    // extracted values.
    let tdp = session();
    tdp.register_udf_parallel(Arc::new(ScaleUdf));
    let ok = tdp.query("SELECT scale(v, 2) AS d FROM t").unwrap();
    assert_eq!(ok.run().unwrap().rows(), 400);
    let hits_before = tdp.plan_cache_stats().hits;
    expect_signature_err(
        tdp.query("SELECT scale(v, 'two') AS d FROM t"),
        "must be a number",
        "type error on the cache-hit path",
    );
    assert_eq!(
        tdp.plan_cache_stats().hits,
        hits_before + 1,
        "the invalid text shares the entry (same normalized key)"
    );
    // The entry stays healthy for valid literal variants.
    assert_eq!(
        tdp.query("SELECT scale(v, 3) AS d FROM t")
            .unwrap()
            .run()
            .unwrap()
            .rows(),
        400
    );
}

#[test]
fn bind_time_type_check_covers_explicit_params() {
    let tdp = session();
    tdp.register_udf_parallel(Arc::new(ScaleUdf));
    let p = tdp.prepare("SELECT scale(v, ?) AS d FROM t").unwrap();
    // Prepare succeeds — the explicit slot's type is unknown until bound.
    assert_eq!(p.param_count(), 1);
    // A string binding violates the declared Number argument at bind time.
    match p.bind(ParamValues::new().string("two")) {
        Err(TdpError::Exec(ExecError::Signature(msg))) => {
            assert!(msg.contains("must be a number"), "{msg}");
        }
        other => panic!("expected bind-time signature error, got {other:?}"),
    }
    // A numeric binding runs.
    let out = p
        .bind(ParamValues::new().number(3.0))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.rows(), 400);
}

#[test]
fn legacy_undeclared_udfs_keep_dynamic_behaviour() {
    struct Legacy;
    impl ScalarUdf for Legacy {
        fn name(&self) -> &str {
            "legacy"
        }
        fn invoke(
            &self,
            args: &[ArgValue],
            _ctx: &ExecContext,
        ) -> Result<EncodedTensor, ExecError> {
            Ok(EncodedTensor::F32(
                args[0].as_column()?.decode_f32().mul_scalar(2.0),
            ))
        }
    }
    let tdp = session();
    tdp.register_udf(Arc::new(Legacy));
    // No declared signature: any arity compiles (and fails at run time if
    // the implementation objects), exactly as before this API existed.
    let q = tdp.query("SELECT legacy(v, k, tag) FROM t").unwrap();
    assert!(q.run().is_ok(), "legacy impl reads args[0] only");
}

// ----------------------------------------------------------------------
// TVF positions
// ----------------------------------------------------------------------

#[test]
fn tvf_position_misuse_rejected_at_prepare_time() {
    let tdp = session();
    tdp.register_tvf(Arc::new(LabelerTvf));
    // FROM-only TVF used in projection position.
    expect_signature_err(
        tdp.query("SELECT labeler(v) FROM t"),
        "cannot be used in projection position",
        "projection misuse",
    );
    // The error names the function and the allowed position.
    match tdp.query("SELECT labeler(v) FROM t") {
        Err(TdpError::Exec(ExecError::Signature(msg))) => {
            assert!(msg.contains("labeler"), "{msg}");
            assert!(msg.contains("FROM labeler(...)"), "{msg}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // Projection-only TVF used in FROM position (extract_table's shape).
    struct ProjOnly;
    impl TableFunction for ProjOnly {
        fn name(&self) -> &str {
            "proj_only"
        }
        fn spec(&self) -> FunctionSpec {
            FunctionSpec::dynamic(self.name())
                .returns(vec!["A".into()])
                .projection_only()
        }
        fn invoke_cols(&self, _args: &[ArgValue], _ctx: &ExecContext) -> Result<Batch, ExecError> {
            let mut out = Batch::new();
            out.push(
                "A",
                ColumnData::Exact(EncodedTensor::F32(Tensor::from_vec(vec![1.0], &[1]))),
            );
            Ok(out)
        }
    }
    tdp.register_tvf(Arc::new(ProjOnly));
    expect_signature_err(
        tdp.query("SELECT v FROM proj_only(t)"),
        "cannot be used in FROM position",
        "FROM misuse",
    );
}

// ----------------------------------------------------------------------
// Declared-schema slot resolution
// ----------------------------------------------------------------------

#[test]
fn declared_tvf_schema_slot_resolves_downstream_expressions() {
    let tdp = session();
    tdp.register_tvf(Arc::new(LabelerTvf));
    let q = tdp
        .query("SELECT Label, Score FROM labeler(t) WHERE Score > 100 ORDER BY Score DESC")
        .unwrap();
    let text = q.explain();
    // The TVF's declared schema renders in EXPLAIN…
    assert!(
        text.contains("TvfScan: labeler -> [Label@0, Score@1]"),
        "{text}"
    );
    // …and the downstream filter / sort / projection reference its
    // outputs by slot, not by name.
    assert!(text.contains("(Score@1 > $1)"), "{text}");
    assert!(text.contains("Score@1 DESC"), "{text}");
    assert!(text.contains("Label@0"), "{text}");
    let out = q.run().unwrap();
    assert_eq!(out.rows(), 299, "rows 101..=399 pass the filter");
    let scores = out.column("Score").unwrap().data.decode_f32().to_vec();
    assert!(scores.windows(2).all(|w| w[0] >= w[1]), "sorted descending");
}

#[test]
fn unknown_tvf_output_column_fails_at_prepare_time() {
    let tdp = session();
    tdp.register_tvf(Arc::new(LabelerTvf));
    // Pre-declaration this error only surfaced at run time; now the
    // declared schema catches it in lower().
    let err = tdp.query("SELECT Missing FROM labeler(t)");
    assert!(
        matches!(err, Err(TdpError::Exec(ExecError::UnknownColumn(ref c))) if c == "Missing"),
        "{err:?}"
    );
}

#[test]
fn derived_tvf_schema_follows_the_input() {
    let tdp = session();
    tdp.register_tvf(Arc::new(PassthroughTvf));
    let q = tdp
        .query("SELECT v, k FROM passthru(t) WHERE k > 3")
        .unwrap();
    let text = q.explain();
    assert!(
        text.contains("TvfScan: passthru -> [v@0, k@1, tag@2]"),
        "{text}"
    );
    assert!(text.contains("(k@1 > $1)"), "{text}");
    let out = q.run().unwrap();
    assert!(out.rows() > 0);
}

#[test]
fn tvf_output_drift_fails_loudly_at_run_time() {
    let tdp = session();
    tdp.register_tvf(Arc::new(DriftingTvf));
    // Compiles against the declared schema…
    let q = tdp.query("SELECT Expected FROM drifting(t)").unwrap();
    // …but the implementation emits different columns: the slot contract
    // is broken, so execution must fail loudly, not read wrong slots.
    match q.run() {
        Err(TdpError::Exec(ExecError::Signature(msg))) => {
            assert!(msg.contains("drifting"), "{msg}");
            assert!(msg.contains("Expected"), "{msg}");
            assert!(msg.contains("Surprise"), "{msg}");
        }
        other => panic!("expected schema-drift error, got {other:?}"),
    }
}

// ----------------------------------------------------------------------
// Immutable-UDF constant folding
// ----------------------------------------------------------------------

#[test]
fn immutable_udf_calls_over_literals_fold_at_prepare_time() {
    let tdp = session();
    tdp.register_udf(Arc::new(AddTaxUdf {
        volatility: Volatility::Immutable,
        name: "add_tax",
    }));
    let q = tdp.query("SELECT v FROM t WHERE v > add_tax(100)").unwrap();
    let text = q.explain();
    assert!(
        !text.contains("add_tax("),
        "immutable call over a literal must fold away: {text}"
    );
    // The folded constant shares the plan-cache entry with the literal
    // spelling — the literal-invariance contract extends through folding.
    let plain = tdp.query("SELECT v FROM t WHERE v > 110").unwrap();
    assert_eq!(q.fingerprint(), plain.fingerprint());
    assert!(std::ptr::eq(q.physical_plan(), plain.physical_plan()));
}

#[test]
fn volatile_and_stable_udf_calls_never_fold() {
    let tdp = session();
    tdp.register_udf(Arc::new(AddTaxUdf {
        volatility: Volatility::Stable,
        name: "stable_tax",
    }));
    tdp.register_udf(Arc::new(AddTaxUdf {
        volatility: Volatility::Volatile,
        name: "volatile_tax",
    }));
    for name in ["stable_tax", "volatile_tax"] {
        let q = tdp
            .query(&format!("SELECT v FROM t WHERE v > {name}(100)"))
            .unwrap();
        assert!(
            q.explain().contains(&format!("{name}(")),
            "{name} must stay a run-time call: {}",
            q.explain()
        );
    }
}

#[test]
fn immutable_udf_over_column_args_still_runs_rowwise() {
    let tdp = session();
    tdp.register_udf_parallel(Arc::new(HalveUdf));
    // Column arguments cannot fold; the call must still compute per row.
    let out = tdp
        .query("SELECT halve(v) AS h FROM t LIMIT 3")
        .unwrap()
        .run()
        .unwrap();
    let h = out.column("h").unwrap().data.decode_f32().to_vec();
    let expect: Vec<f32> = (0..3).map(|i| (i as f32 * 0.11).sin() * 0.5).collect();
    assert_eq!(h, expect);
}

// ----------------------------------------------------------------------
// Parallel-safe UDF scheduling (the tentpole acceptance)
// ----------------------------------------------------------------------

#[test]
fn parallel_safe_udf_chain_runs_through_the_morsel_scheduler() {
    let tdp = session();
    tdp.register_udf_parallel(Arc::new(HalveUdf));
    tdp.set_morsel_rows(50); // 400 rows -> 8 morsels
    tdp.set_threads(4);
    let sql = "SELECT halve(v) AS h, k FROM t WHERE halve(v) > -0.4";
    let (out4, prof) = tdp.query(sql).unwrap().run_profiled().unwrap();
    assert!(
        prof.morsels > 1,
        "a parallel-safe UDF chain must split into morsels: {}",
        prof.pretty()
    );
    assert_eq!(prof.threads, 4);
    assert!(
        prof.fallback_reasons().is_empty(),
        "no sequential fallback expected: {:?}",
        prof.fallback_reasons()
    );
    // …and the result is identical to the single-threaded run.
    tdp.set_threads(1);
    let out1 = tdp.query(sql).unwrap().run().unwrap();
    assert_eq!(out1.rows(), out4.rows());
    let bits = |t: &tdp_core::storage::Table| -> Vec<u32> {
        t.column("h")
            .unwrap()
            .data
            .decode_f32()
            .to_vec()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    };
    assert_eq!(bits(&out1), bits(&out4), "bitwise identical across threads");
}

#[test]
fn session_bound_udf_still_falls_back_and_says_why() {
    let tdp = session();
    // Same implementation, but registered without Send + Sync proof:
    // the chain must stay on the session thread, observably.
    tdp.register_udf(Arc::new(HalveUdf));
    tdp.set_morsel_rows(50);
    tdp.set_threads(4);
    let q = tdp.query("SELECT halve(v) AS h FROM t").unwrap();
    assert!(
        q.explain()
            .contains("[sequential: udf-not-parallel-safe(halve)]"),
        "{}",
        q.explain()
    );
    let (_, prof) = q.run_profiled().unwrap();
    assert_eq!(
        prof.fallback_reasons(),
        vec!["udf-not-parallel-safe(halve)"],
        "{}",
        prof.pretty()
    );
}

// ----------------------------------------------------------------------
// Fallback-reason observability (EXPLAIN + run_profiled)
// ----------------------------------------------------------------------

#[test]
fn explain_annotates_scalar_subquery_fallback() {
    let tdp = session();
    let q = tdp
        .query("SELECT v FROM t WHERE v > (SELECT AVG(v) FROM t)")
        .unwrap();
    assert!(
        q.explain().contains("[sequential: scalar-subquery]"),
        "{}",
        q.explain()
    );
    let (_, prof) = q.run_profiled().unwrap();
    assert_eq!(prof.fallback_reasons(), vec!["scalar-subquery"]);
}

#[test]
fn explain_annotates_count_distinct_fallback() {
    let tdp = session();
    let q = tdp.query("SELECT COUNT(DISTINCT tag) FROM t").unwrap();
    assert!(
        q.explain().contains("[sequential: count-distinct]"),
        "{}",
        q.explain()
    );
}

#[test]
fn bound_explain_annotates_tensor_param_fallback() {
    let tdp = session();
    let p = tdp.prepare("SELECT v FROM t WHERE v > ?").unwrap();
    // Unbound, the slot is assumed scalar — no annotation…
    assert!(!p.explain().contains("tensor-param"), "{}", p.explain());
    // …but a tensor binding pins the chain to the session thread.
    let bound = p
        .bind(ParamValues::new().tensor(Tensor::<f32>::zeros(&[400])))
        .unwrap();
    assert!(
        bound.explain().contains("[sequential: tensor-param($1)]"),
        "{}",
        bound.explain()
    );
    // Parallel-safe chains carry no annotation at all.
    let clean = tdp.query("SELECT v FROM t WHERE v > 0.0").unwrap();
    assert!(
        !clean.explain().contains("[sequential:"),
        "{}",
        clean.explain()
    );
}
