use tdp_core::Tdp;
use tdp_storage::TableBuilder;

#[test]
fn group_by_expr_with_literal_e2e() {
    let tdp = Tdp::new();
    tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0, 2.0, 1.0]).build("t"));
    let r = tdp.query("SELECT x + 1, COUNT(*) FROM t GROUP BY x + 1");
    match &r {
        Ok(q) => { q.run().unwrap(); println!("OK"); }
        Err(e) => println!("ERR: {e}"),
    }
    assert!(r.is_ok(), "{r:?}");
}
