//! The paper's Listings 1–9, reproduced as integration tests against the
//! public `tdp_core` API. Each test is one listing (or the closest
//! equivalent our dialect admits) and asserts the behaviour the paper
//! describes around it.

use std::sync::Arc;

use tdp_core::nn::{Adam, Optimizer};
use tdp_core::storage::TableBuilder;
use tdp_core::tensor::{Device, Rng64, Tensor};
use tdp_core::{QueryConfig, Tdp};
use tdp_data::grid::generate_grids;
use tdp_data::income::{generate_income, make_bags, NUM_FEATURES};
use tdp_ml::{ClassifyIncomesTvf, ParseMnistGridTvf};

/// Listing 1: `tdp.sql.register_df(data, "numbers", device="cuda")`.
#[test]
fn listing1_register_dataframe_on_device() {
    let tdp = Tdp::new();
    tdp.set_default_device(Device::accel());
    tdp.register_table(
        TableBuilder::new()
            .col_f32("Digits", vec![1.0, 2.0, 1.0])
            .col_str("Sizes", &["s", "l", "s"])
            .build("numbers"),
    );
    let t = tdp.catalog().get("numbers").expect("registered");
    assert_eq!(t.rows(), 3);
}

/// Listing 2 + 3: compile the aggregate query, run it, get a table back.
#[test]
fn listing2_3_compile_and_execute() {
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("Digits", vec![3.0, 3.0, 7.0, 3.0])
            .col_str("Sizes", &["small", "small", "large", "large"])
            .build("numbers"),
    );
    let q = tdp
        .query("SELECT Digits, Sizes, COUNT(*) FROM numbers GROUP BY Digits, Sizes")
        .expect("compile");
    let result = q.run().expect("run");
    assert_eq!(result.rows(), 3); // (3,small)=2, (3,large)=1, (7,large)=1
    let counts = result.column("COUNT(*)").unwrap().data.decode_i64();
    assert_eq!(counts.sum(), 4);
}

/// Listing 4: the MNISTGrid TVF parses a grid into PE Digit/Size columns.
#[test]
fn listing4_parse_mnist_grid_tvf() {
    let mut rng = Rng64::new(1);
    let tdp = Tdp::new();
    tdp.register_tvf(Arc::new(ParseMnistGridTvf::new(&mut rng)));
    let grids = generate_grids(1, &mut rng);
    tdp.register_tensor(
        "MNIST_Grid",
        grids.samples[0].image.reshape(&[1, 1, 84, 84]),
    );
    let q = tdp
        .query(
            "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP BY Digit, Size",
        )
        .expect("compile");
    let out = q.run().expect("run");
    // Exact mode groups observed (argmax) classes; total count is 9 tiles.
    assert_eq!(out.column("COUNT(*)").unwrap().data.decode_i64().sum(), 9);
}

/// Listing 5 + 6: the trainable query inside a gradient-descent loop.
/// Asserts the training *mechanics* (differentiable execution, gradient
/// flow into every TVF parameter, in-place updates, numeric stability);
/// convergence quality is covered by `trainable_queries.rs` and the
/// `fig3_mnistgrid` / `exp2_reuse` benches.
#[test]
fn listing5_6_training_loop_mechanics() {
    let mut rng = Rng64::new(2);
    let tdp = Tdp::new();
    tdp.register_tvf(Arc::new(ParseMnistGridTvf::new(&mut rng)));
    let compiled_query = tdp
        .query_with(
            "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP BY Digit, Size",
            QueryConfig::default().trainable(true), // {TRAINABLE: True}
        )
        .expect("compile");

    let grids = generate_grids(4, &mut rng);
    let params = compiled_query.parameters();
    assert!(!params.is_empty(), "the query must expose TVF parameters");
    let initial: Vec<_> = params.iter().map(|p| p.value()).collect();

    let mut optimizer = Adam::new(params.clone(), 0.01);
    let mut losses = Vec::new();
    for i in 0..10 {
        let sample = &grids.samples[i % grids.len()];
        optimizer.zero_grad();
        tdp.register_tensor("MNIST_Grid", sample.image.reshape(&[1, 1, 84, 84]));
        let predicted_counts = compiled_query.run_counts().expect("diff run");
        let loss = predicted_counts.mse_loss(&sample.counts);
        loss.backward();
        // Every parameter of both parser CNNs must receive gradient.
        for p in &params {
            let g = p.grad().expect("gradient reaches every TVF parameter");
            assert!(g.all_finite(), "gradients must be finite");
        }
        optimizer.step();
        losses.push(loss.value().item());
    }
    assert!(losses.iter().all(|l| l.is_finite()), "losses stay finite");
    let moved = params
        .iter()
        .zip(&initial)
        .any(|(p, init)| p.value().max_abs_diff(init) > 1e-6);
    assert!(moved, "optimizer steps must update the parameters in place");
    assert!(
        losses.last().unwrap() < &(losses[0] * 3.0 + 1.0),
        "training must not diverge: {losses:?}"
    );
}

/// Listing 8: querying tables stored on document images (smoke version;
/// the full comparison lives in the OCR bench).
#[test]
fn listing8_sql_over_ocr_documents() {
    use tdp_data::documents::{generate_documents, DocGeometry};
    use tdp_ml::ExtractTableTvf;
    let mut rng = Rng64::new(3);
    let g = DocGeometry::iris();
    let ds = generate_documents(3, g, &mut rng);
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("images", ds.images.clone())
            .col_str("timestamp", &ds.timestamps)
            .build("Document"),
    );
    tdp.register_tvf(Arc::new(ExtractTableTvf::new(g, ds.schema.clone())));
    let sql = format!(
        "SELECT AVG(SepalLength), AVG(PetalLength) FROM \
         (SELECT extract_table(images) FROM Document WHERE timestamp = '{}')",
        ds.timestamps[1]
    );
    let out = tdp.query(&sql).unwrap().run().unwrap();
    assert_eq!(out.rows(), 1);
    let avg_sepal = out
        .column("AVG(SepalLength)")
        .unwrap()
        .data
        .decode_f32()
        .at(0);
    let truth = ds.tables[1].narrow(1, 0, 1).mean() as f32;
    assert!(
        (avg_sepal - truth).abs() < 0.05,
        "OCRed average {avg_sepal} vs ground truth {truth}"
    );
}

/// Listing 9: LLP — training from bag counts beats an untrained model.
#[test]
fn listing9_llp_learns_from_counts() {
    let mut rng = Rng64::new(4);
    let full = generate_income(2048, 0.05, &mut rng);
    let (train, test) = full.split(1024);
    let bags = make_bags(&train, 16, &mut rng);

    let tvf = Arc::new(ClassifyIncomesTvf::new(NUM_FEATURES, &mut rng));
    let tdp = Tdp::new();
    tdp.register_tvf(tvf.clone());
    let query = tdp
        .query_with(
            "SELECT Income, COUNT(*) FROM classify_incomes(Adult_Income_Bag) GROUP BY Income",
            QueryConfig::default().trainable(true),
        )
        .expect("compile");

    let err = |tvf: &ClassifyIncomesTvf| {
        let pred = tvf.predict(&test.features);
        pred.data()
            .iter()
            .zip(test.labels.data())
            .filter(|(p, l)| p != l)
            .count() as f64
            / test.len() as f64
    };
    let before = err(&tvf);

    let mut opt = Adam::new(query.parameters(), 0.05);
    for _ in 0..5 {
        for bag in &bags {
            opt.zero_grad();
            tdp.register_tensor("Adult_Income_Bag", bag.features.clone());
            let counts = query.run_counts().expect("diff run");
            counts.mse_loss(&bag.counts).backward();
            opt.step();
        }
    }
    let after = err(&tvf);
    assert!(
        after < 0.25 && after < before,
        "LLP training must recover the classifier: {before} -> {after}"
    );
    let _ = Tensor::<f32>::zeros(&[1]);
}
