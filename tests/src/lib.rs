//! Shared fixtures for the cross-crate integration tests.

use tdp_core::storage::{Table, TableBuilder};

/// A small orders/items fixture used by several SQL integration tests.
pub fn orders_table() -> Table {
    TableBuilder::new()
        .col_f32("price", vec![3.0, 1.0, 2.0, 5.0, 4.0, 2.5])
        .col_str("item", &["b", "a", "a", "c", "b", "a"])
        .col_i64("qty", vec![10, 20, 30, 40, 50, 60])
        .build("orders")
}
