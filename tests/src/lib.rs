//! Shared fixtures for the cross-crate integration tests.

use tdp_core::encoding::EncodedTensor;
use tdp_core::exec::{ArgValue, ExecContext, ExecError};
use tdp_core::storage::{Table, TableBuilder};
use tdp_core::{ArgType, FunctionSpec, ScalarUdf, Volatility};

/// A small orders/items fixture used by several SQL integration tests.
pub fn orders_table() -> Table {
    TableBuilder::new()
        .col_f32("price", vec![3.0, 1.0, 2.0, 5.0, 4.0, 2.5])
        .col_str("item", &["b", "a", "a", "c", "b", "a"])
        .col_i64("qty", vec![10, 20, 30, 40, 50, 60])
        .build("orders")
}

/// `halve(column)` — a stateless, declared-signature, parallel-safe
/// scalar UDF (the fixture for morsel-scheduler UDF tests). Register it
/// through [`tdp_core::Session::register_udf_parallel`] to let chains
/// applying it cross worker threads.
pub struct HalveUdf;

impl ScalarUdf for HalveUdf {
    fn name(&self) -> &str {
        "halve"
    }

    fn spec(&self) -> FunctionSpec {
        FunctionSpec::scalar(self.name(), vec![ArgType::Column])
            .volatility(Volatility::Immutable)
            .parallel_safe(true)
    }

    fn invoke(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<EncodedTensor, ExecError> {
        Ok(EncodedTensor::F32(
            args[0].as_column()?.decode_f32().mul_scalar(0.5),
        ))
    }
}
