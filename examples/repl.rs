//! An interactive SQL shell over a TDP session.
//!
//! The paper positions TDP next to DuckDB as an embeddable analytical
//! engine; this binary is the `duckdb`-style shell for it. It boots a
//! session pre-loaded with demo tables (relational, image and audio
//! columns, with CLIP-sim / AudioSim UDFs registered) and accepts SQL
//! plus a few meta-commands:
//!
//! ```text
//! .tables               list registered tables
//! .schema <table>       column names, encodings, rows
//! .explain <sql>        optimised plan without executing
//! .profile <sql>        execute with the per-operator profiler
//! .save <table> <path>  write a table as TDPF
//! .open <path>          register a TDPF file
//! .quit
//! ```
//!
//! Run with: `cargo run --release -p tdp-examples --bin repl`
//! (pipe SQL on stdin for scripted use: `echo "SELECT 1+1 FROM demo" | …`)

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use tdp_core::storage::TableBuilder;
use tdp_core::tensor::Rng64;
use tdp_core::Tdp;
use tdp_data::attachments::generate_attachments;
use tdp_data::audio::generate_audio;
use tdp_examples::timed;
use tdp_ml::{AudioSim, AudioTextSimilarityUdf, ClipSim, ImageTextSimilarityUdf};

fn boot() -> Tdp {
    let mut rng = Rng64::new(7);
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("price", vec![3.0, 1.0, 2.0, 5.0, 4.0, 2.5])
            .col_str("item", &["book", "bag", "bag", "candle", "book", "candle"])
            .col_i64("qty", vec![10, 20, 30, 40, 50, 60])
            .build("demo"),
    );
    let att = generate_attachments(60, 24, 36, &mut rng);
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("images", att.images)
            .col_i64("id", (0..60).collect())
            .build("attachments"),
    );
    let au = generate_audio(40, &mut rng);
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("clip", au.clips)
            .col_i64("id", (0..40).collect())
            .build("sounds"),
    );
    // Both similarity UDFs declare parallel-safe signatures, so chains
    // applying them morselize across the worker pool.
    tdp.register_udf_parallel(Arc::new(ImageTextSimilarityUdf::new(ClipSim::pretrained(
        24, 36, 6, 7,
    ))));
    tdp.register_udf_parallel(Arc::new(AudioTextSimilarityUdf::new(AudioSim::pretrained(
        6, 7,
    ))));
    tdp
}

fn list_tables(tdp: &Tdp) {
    for name in tdp.catalog().names() {
        let t = tdp.catalog().get(&name).expect("listed");
        println!(
            "  {name}  ({} rows, {} columns)",
            t.rows(),
            t.columns().len()
        );
    }
}

fn schema(tdp: &Tdp, table: &str) {
    match tdp.catalog().get(table) {
        None => println!("no such table: {table}"),
        Some(t) => {
            println!("{table}: {} rows, ~{} bytes", t.rows(), t.memory_bytes());
            for c in t.columns() {
                let shape = c.data.row_shape();
                let payload = if shape.is_empty() {
                    String::new()
                } else {
                    format!("  row shape {shape:?}")
                };
                println!("  {:<12} {:?}{payload}", c.name, c.kind());
            }
        }
    }
}

fn run_sql(tdp: &Tdp, sql: &str) {
    match tdp.query(sql) {
        Err(e) => println!("error: {e}"),
        Ok(q) => {
            let started = std::time::Instant::now();
            match q.run() {
                Err(e) => println!("error: {e}"),
                Ok(table) => {
                    println!("{}", table.pretty(20));
                    if table.rows() > 20 {
                        println!("… {} rows total", table.rows());
                    }
                    println!("({:.3} ms)", started.elapsed().as_secs_f64() * 1e3);
                }
            }
        }
    }
}

fn main() {
    let tdp = boot();
    println!("tdp-rs SQL shell — .help for commands, .quit to exit");
    println!(
        "demo tables: demo, attachments (images + CLIP-sim UDF), sounds (audio + AudioSim UDF)\n"
    );

    let stdin = io::stdin();
    let interactive = atty_stdin();
    loop {
        if interactive {
            print!("tdp> ");
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.splitn(3, ' ');
            match parts.next().unwrap_or("") {
                "quit" | "exit" => break,
                "help" => println!(
                    ".tables | .schema <t> | .explain <sql> | .profile <sql> | \
                     .save <t> <path> | .open <path> | .quit"
                ),
                "tables" => list_tables(&tdp),
                "schema" => schema(&tdp, parts.next().unwrap_or("")),
                "explain" => {
                    let sql = rest["explain".len()..].trim();
                    match tdp.query(sql) {
                        Ok(q) => print!("{}", q.explain()),
                        Err(e) => println!("error: {e}"),
                    }
                }
                "profile" => {
                    let sql = rest["profile".len()..].trim();
                    match tdp.query(sql).and_then(|q| q.run_profiled()) {
                        Ok((table, profile)) => {
                            println!("{}", table.pretty(10));
                            print!("{}", profile.pretty());
                        }
                        Err(e) => println!("error: {e}"),
                    }
                }
                "save" => {
                    let (t, p) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
                    match tdp.save_table(t, p) {
                        Ok(()) => println!("wrote {p}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                "open" => match tdp.register_file(parts.next().unwrap_or("")) {
                    Ok(name) => println!("registered '{name}'"),
                    Err(e) => println!("error: {e}"),
                },
                other => println!("unknown command .{other} (.help lists commands)"),
            }
            continue;
        }
        let (_, _secs) = timed(|| run_sql(&tdp, line));
    }
}

/// Crude interactivity probe without a libc dependency: scripted runs set
/// TERM=dumb or pipe stdin, where prompts only add noise.
fn atty_stdin() -> bool {
    std::env::var("TDP_REPL_PROMPT")
        .map(|v| v != "0")
        .unwrap_or(true)
}
