//! Label differential privacy through a trainable SQL query (paper §5.4).
//!
//! The LLP query of Listing 9 learns a classifier from per-bag label
//! counts. To protect individual labels, the Laplace mechanism adds noise
//! `Lap(1/ε)` to every count before it is used as supervision; the model
//! never sees a clean label or a clean count. This example trains at a few
//! privacy levels and prints the privacy/utility trade-off, including the
//! bag-size sweet spot the paper reports for ε = 0.1.
//!
//! Run with: `cargo run --release -p tdp-examples --bin label_dp`

use std::sync::Arc;

use tdp_core::nn::{Adam, Optimizer};
use tdp_core::tensor::Rng64;
use tdp_core::{QueryConfig, Tdp};
use tdp_data::income::{
    add_label_dp_noise, generate_income, make_bags, IncomeDataset, NUM_FEATURES,
};
use tdp_examples::banner;
use tdp_ml::ClassifyIncomesTvf;

fn test_error(tvf: &ClassifyIncomesTvf, data: &IncomeDataset) -> f64 {
    let pred = tvf.predict(&data.features);
    pred.data()
        .iter()
        .zip(data.labels.data())
        .filter(|(p, l)| p != l)
        .count() as f64
        / data.len() as f64
}

/// Train the Listing-9 query from (possibly noised) bag counts.
fn train(
    train_set: &IncomeDataset,
    bag_size: usize,
    epsilon: Option<f64>,
    seed: u64,
) -> ClassifyIncomesTvf {
    let mut rng = Rng64::new(seed);
    let mut bags = make_bags(train_set, bag_size, &mut rng);
    if let Some(eps) = epsilon {
        add_label_dp_noise(&mut bags, eps, &mut rng);
    }

    let tvf = Arc::new(ClassifyIncomesTvf::new(NUM_FEATURES, &mut rng));
    let tdp = Tdp::new();
    tdp.register_tvf(tvf.clone());
    let query = tdp
        .query_with(
            "SELECT Income, COUNT(*) FROM classify_incomes(Adult_Income_Bag) GROUP BY Income",
            QueryConfig::default().trainable(true),
        )
        .expect("compile");
    let mut opt = Adam::new(query.parameters(), 0.05);
    let steps = (3 * bags.len()).clamp(200, 900);
    for step in 0..steps {
        let bag = &bags[step % bags.len()];
        opt.zero_grad();
        tdp.register_tensor("Adult_Income_Bag", bag.features.clone());
        let counts = query.run_counts().expect("diff run");
        counts.mse_loss(&bag.counts).backward();
        opt.step();
    }
    drop(tdp);
    Arc::try_unwrap(tvf).ok().expect("sole owner")
}

fn main() {
    let mut rng = Rng64::new(29);
    let full = generate_income(6144, 0.1, &mut rng);
    let (train_set, test_set) = full.split(4096);

    banner("the setting");
    println!("census-style records; the income label is sensitive, features are not.");
    println!("supervision reaches the model only as Laplace-noised per-bag counts.\n");
    println!(
        "query: SELECT Income, COUNT(*) FROM classify_incomes(Adult_Income_Bag) GROUP BY Income"
    );

    banner("bag-size sweep at eps = 0.1 (the paper's Fig. 3 middle, gray line)");
    println!("{:>9} {:>12} {:>12}", "bag size", "LLP err", "LLP-DP err");
    let runs = 2u64;
    let mut dp_errors = Vec::new();
    for bag_size in [1usize, 8, 64, 256] {
        let mut clean_err = 0.0;
        let mut dp_err = 0.0;
        for r in 0..runs {
            let clean = train(&train_set, bag_size, None, 100 + bag_size as u64 + r);
            let noisy = train(&train_set, bag_size, Some(0.1), 200 + bag_size as u64 + r);
            clean_err += test_error(&clean, &test_set) / runs as f64;
            dp_err += test_error(&noisy, &test_set) / runs as f64;
        }
        dp_errors.push((bag_size, dp_err));
        println!("{bag_size:>9} {clean_err:>12.3} {dp_err:>12.3}");
    }
    let best = dp_errors
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    println!(
        "\nbest LLP-DP bag size: {} (error {:.3}) — tiny bags drown in noise, huge bags \
         dilute the signal",
        best.0, best.1
    );

    banner("privacy level sweep at bag size 64");
    println!("{:>9} {:>12}", "epsilon", "test error");
    for eps in [0.01f64, 0.1, 1.0] {
        let model = train(&train_set, 64, Some(eps), 300 + (eps * 1000.0) as u64);
        println!("{eps:>9} {:>12.3}", test_error(&model, &test_set));
    }
    let clean = train(&train_set, 64, None, 999);
    println!(
        "{:>9} {:>12.3}  (no noise)",
        "inf",
        test_error(&clean, &test_set)
    );
    println!("\nsmaller eps = stronger privacy = noisier counts = higher error.");
}
