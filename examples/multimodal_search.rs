//! Multimodal queries over email attachments (paper §5.1, Figure 2).
//!
//! Generates the attachment corpus (photos / receipts / logos), registers
//! the CLIP-sim `image_text_similarity` UDF, and runs the three query
//! shapes of Figure 2: a similarity filter, an aggregate over a filter,
//! and a top-k search — on CPU and on the simulated accelerator.
//!
//! Run with: `cargo run --release -p tdp-examples --bin multimodal_search`

use std::sync::Arc;

use tdp_core::storage::TableBuilder;
use tdp_core::tensor::Rng64;
use tdp_core::{Device, QueryConfig, Tdp};
use tdp_data::attachments::generate_attachments;
use tdp_examples::{banner, timed};
use tdp_ml::{ClipSim, ImageTextSimilarityUdf};

fn main() {
    let mut rng = Rng64::new(2023);
    let (h, w) = (48, 72);
    let n = 200; // paper's Figure 2 sample: 100 photos, 50 receipts, 50 logos

    banner("Dataset: email image attachments");
    let ds = generate_attachments(n, h, w, &mut rng);
    println!("generated {} attachments at {h}x{w}", ds.len());

    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("images", ds.images.clone())
            .build("Attachments"),
    );

    banner("Pretraining CLIP-sim (prototype calibration)");
    let model = ClipSim::pretrained(h, w, 8, 7);
    // The UDF declares its signature — (query: string, images: column),
    // immutable, parallel-safe — so arity/type errors surface at
    // prepare() and similarity chains run across the morsel worker pool.
    tdp.register_udf_parallel(Arc::new(ImageTextSimilarityUdf::new(model)));

    banner("Query 1 (filter + count): receipts above similarity 0.8");
    let q1 =
        "SELECT COUNT(*) FROM Attachments WHERE image_text_similarity('receipt', images) > 0.80";
    let (r1, t1) = timed(|| tdp.query(q1).unwrap().run().unwrap());
    println!("{}", r1.pretty(3));
    println!(
        "(ground truth: {} receipts) — {:.2}s",
        ds.classes.iter().filter(|c| c.is_receipt()).count(),
        t1
    );

    banner("Query 2 (filter): dog photos");
    let q2 = "SELECT images FROM Attachments WHERE image_text_similarity('dog', images) > 0.80";
    let (r2, t2) = timed(|| tdp.query(q2).unwrap().run().unwrap());
    println!(
        "returned {} image rows (ground truth {}) — {:.2}s",
        r2.rows(),
        ds.classes
            .iter()
            .filter(|c| format!("{c:?}") == "PhotoDog")
            .count(),
        t2
    );

    banner("Query 3 (top-k): the two best 'KFC Receipt' matches");
    let q3 = "SELECT image_text_similarity('KFC Receipt', images) AS score \
              FROM Attachments ORDER BY score DESC LIMIT 2";
    let (r3, t3) = timed(|| tdp.query(q3).unwrap().run().unwrap());
    println!("{}", r3.pretty(3));
    println!("top-k in {:.2}s", t3);

    banner("CPU vs simulated accelerator");
    let (_, cpu) = timed(|| tdp.query(q1).unwrap().run().unwrap());
    let accel_q = tdp
        .query_with(q1, QueryConfig::default().device(Device::accel()))
        .unwrap();
    let (_, acc) = timed(|| accel_q.run().unwrap());
    println!(
        "avg execution time  cpu: {:.2}s   {}: {:.2}s   speedup {:.1}x",
        cpu,
        Device::accel(),
        acc,
        cpu / acc.max(1e-9)
    );
}
