//! Learning a WHERE-clause threshold by gradient descent.
//!
//! §4 of the paper defines trainable queries as queries that (1) contain
//! tunable parameters and (2) compile to an end-to-end differentiable
//! plan. The MNISTGrid example puts the parameters inside a TVF; this
//! example puts one *inside the predicate itself*: a quality gate
//!
//! `SELECT COUNT(*) FROM readings WHERE v > threshold(v)`
//!
//! where `threshold` is a scalar UDF holding one trainable parameter θ.
//! In trainable mode the comparison relaxes to σ((v − θ)/τ) row weights
//! and COUNT(*) to the weight sum, so ∂count/∂θ exists and θ can be
//! fitted from aggregate supervision alone: "on this batch, 30 readings
//! should pass". At inference the exact operators swap back in and the
//! learned θ produces hard counts.
//!
//! Run with: `cargo run --release -p tdp-examples --bin trainable_filter`

use std::sync::Arc;

use tdp_core::autodiff::Var;
use tdp_core::encoding::EncodedTensor;
use tdp_core::exec::{ArgValue, DiffColumn, ExecContext, ExecError, ScalarUdf};
use tdp_core::nn::{Adam, Optimizer};
use tdp_core::storage::TableBuilder;
use tdp_core::tensor::{F32Tensor, Rng64, Tensor};
use tdp_core::{ParamValues, QueryConfig, Tdp};
use tdp_examples::banner;

/// `threshold(x)`: emits the trainable cutoff θ, broadcast to x's rows.
struct ThresholdUdf {
    theta: Var,
}

impl ScalarUdf for ThresholdUdf {
    fn name(&self) -> &str {
        "threshold"
    }
    fn invoke(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<EncodedTensor, ExecError> {
        let n = args[0].as_column()?.rows();
        let theta = self.theta.value().at(0);
        Ok(EncodedTensor::F32(Tensor::full(&[n], theta)))
    }
    fn invoke_diff(&self, args: &[ArgValue], _ctx: &ExecContext) -> Result<DiffColumn, ExecError> {
        let n = match &args[0] {
            ArgValue::Column(c) => c.rows(),
            ArgValue::DiffColumn(d) => d.var.shape()[0],
            other => {
                return Err(ExecError::TypeMismatch(format!(
                    "threshold expects a column, got {other:?}"
                )))
            }
        };
        Ok(DiffColumn::plain(self.theta.broadcast_to(&[n])))
    }
    fn parameters(&self) -> Vec<Var> {
        vec![self.theta.clone()]
    }
}

fn main() {
    let mut rng = Rng64::new(17);
    let true_cutoff = 0.62f32;
    let n = 500;

    banner("the task");
    println!("sensor readings v ~ U(0, 1); the (unknown) quality gate passes v > {true_cutoff}");
    println!("supervision: only the pass COUNT per batch — never the cutoff itself\n");

    let tdp = Tdp::new();
    let theta = Var::param(Tensor::from_vec(vec![0.1f32], &[1]));
    tdp.register_udf(Arc::new(ThresholdUdf {
        theta: theta.clone(),
    }));

    // Prepare once, outside the loop: parse → optimize → lower happens a
    // single time, and each iteration pays only a bind + kernel dispatch.
    let sql = "SELECT COUNT(*) FROM readings WHERE v > threshold(v)";
    let prepared = tdp
        .prepare_with(
            sql,
            QueryConfig::default().trainable(true).temperature(0.05),
        )
        .expect("prepare");
    println!("trainable query: {sql}");
    println!(
        "parameters discovered through the plan: {}",
        prepared.num_parameters()
    );

    banner("training from count supervision (Listing 5 loop)");
    let mut opt = Adam::new(prepared.parameters(), 0.02);
    for step in 0..=400 {
        // Fresh batch each step, re-registered under the same name.
        let vals: Vec<f32> = (0..n).map(|_| rng.uniform() as f32).collect();
        let target = vals.iter().filter(|&&v| v > true_cutoff).count() as f32;
        tdp.register_table(TableBuilder::new().col_f32("v", vals).build("readings"));

        opt.zero_grad();
        let query = prepared.bind(ParamValues::new()).expect("bind");
        let soft_count = query.run_counts().expect("diff run");
        let loss = soft_count.mse_loss(&F32Tensor::from_vec(vec![target], &[1]));
        loss.backward();
        opt.step();

        if step % 100 == 0 {
            println!(
                "step {step:>4}  θ = {:+.4}  soft count = {:7.2}  target = {target:5.0}  loss = {:.4}",
                theta.value().at(0),
                soft_count.value().at(0),
                loss.value().item(),
            );
        }
    }

    banner("inference with exact operators");
    let learned = theta.value().at(0);
    println!("learned θ = {learned:.4} (true cutoff {true_cutoff})");
    let vals: Vec<f32> = (0..n).map(|_| rng.uniform() as f32).collect();
    let true_count = vals.iter().filter(|&&v| v > true_cutoff).count();
    tdp.register_table(TableBuilder::new().col_f32("v", vals).build("readings"));
    // The learned cutoff is now just a value: bind it into a plain
    // parameterised gate — no UDF needed at inference time.
    let exact = tdp
        .prepare("SELECT COUNT(*) FROM readings WHERE v > ?")
        .expect("prepare")
        .bind(ParamValues::new().number(learned as f64))
        .expect("bind")
        .run()
        .expect("run");
    let got = exact.column("COUNT(*)").unwrap().data.decode_i64().at(0);
    println!("held-out batch: exact filtered count {got} vs ground truth {true_count}");
    assert!(
        (learned - true_cutoff).abs() < 0.05,
        "θ should land within 0.05 of the true cutoff"
    );
    println!("\nthe query learned its own WHERE clause.");
}
