//! The MNISTGrid trainable query (paper §3–§4, Figure 1, Listing 4–6).
//!
//! Shows the full anatomy of Figure 1: a grid image flows through the
//! trainable `parse_mnist_grid` TVF into probability-encoded Digit/Size
//! columns, which the *soft* GROUP BY + COUNT aggregates into a
//! differentiable counts table. A few gradient steps through the query
//! visibly pull the predicted counts toward the labels; the exact
//! (inference) execution of the same compiled query is shown alongside.
//!
//! Run with: `cargo run --release -p tdp-examples --bin mnist_grid`

use std::sync::Arc;

use tdp_core::nn::{Adam, Optimizer};
use tdp_core::tensor::Rng64;
use tdp_core::{QueryConfig, Tdp};
use tdp_data::grid::generate_grids;
use tdp_examples::banner;
use tdp_ml::ParseMnistGridTvf;

fn main() {
    let mut rng = Rng64::new(42);
    let tdp = Tdp::new();

    banner("Listing 4: registering the trainable TVF");
    let tvf = Arc::new(ParseMnistGridTvf::new(&mut rng));
    tdp.register_tvf(tvf.clone());

    banner("Listing 6: compiling the trainable query");
    let sql = "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP BY Digit, Size";
    let query = tdp
        .query_with(sql, QueryConfig::default().trainable(true))
        .expect("compile");
    println!("{sql}");
    println!("--- plan ---\n{}", query.explain());
    println!("trainable parameters: {}", query.num_parameters());

    banner("Training data");
    let train = generate_grids(256, &mut rng);
    println!(
        "{} grids of 3x3 digit tiles, labels = (digit, size) counts",
        train.len()
    );

    banner("Listing 5: the training loop (MSE on grouped counts)");
    // Mini-batches of grids stabilise the count supervision (single-grid
    // updates drive the parsers into premature softmax saturation); the
    // exp2_reuse bench shows this recipe reaching ~99% parser accuracy at
    // larger budgets.
    let mut opt = Adam::new(query.parameters(), 0.005);
    let iterations: usize = std::env::var("TDP_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(220);
    let batch = 8;
    for i in 0..iterations {
        opt.zero_grad();
        let mut acc: Option<tdp_core::autodiff::Var> = None;
        for b in 0..batch {
            let sample = &train.samples[(i * batch + b) % train.len()];
            tdp.register_tensor("MNIST_Grid", sample.image.reshape(&[1, 1, 84, 84]));
            let predicted = query.run_counts().expect("diff run");
            let l = predicted.mse_loss(&sample.counts);
            acc = Some(match acc {
                Some(a) => a.add(&l),
                None => l,
            });
        }
        let loss = acc.expect("non-empty batch").div_scalar(batch as f32);
        loss.backward();
        opt.step();
        if i % 40 == 0 || i + 1 == iterations {
            println!("iter {i:>4}  train mse {:.4}", loss.value().item());
        }
    }

    banner("Figure 1 anatomy: soft counts vs labels on a fresh grid");
    let mut test_rng = Rng64::new(999);
    let test = generate_grids(1, &mut test_rng);
    let sample = &test.samples[0];
    tdp.register_tensor("MNIST_Grid", sample.image.reshape(&[1, 1, 84, 84]));
    let soft = query.run_counts().expect("diff run").value();
    println!("digit size   soft_count  label");
    for d in 0..10 {
        for s in 0..2 {
            let g = d * 2 + s;
            let label = sample.counts.at(g);
            if label > 0.0 || soft.at(g) > 0.2 {
                println!(
                    "{d:>5} {}  {:>10.2}  {:>5}",
                    if s == 0 { "small" } else { "large" },
                    soft.at(g),
                    label
                );
            }
        }
    }

    banner("Inference-time operator swap: exact execution of the same query");
    let exact = query.run().expect("exact run");
    println!("{}", exact.pretty(25));

    banner("Component reuse (§5.5 Exp. 2): the digit parser standalone");
    let eval = tdp_data::digits::generate_digits(200, &mut test_rng);
    let logits = tdp_core::nn::module::predict(&tvf.digit_parser, &eval.images);
    let acc = tdp_core::nn::module::accuracy(&logits, &eval.digits);
    println!(
        "digit parser accuracy on 200 standalone digits: {:.1}% \
         (trained only through count supervision)",
        acc * 100.0
    );
}
