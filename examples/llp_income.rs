//! Learning from Label Proportions with a trainable SQL query
//! (paper §5.3, Listing 9) plus the label-DP variant (§5.4).
//!
//! Trains a linear income classifier using only per-bag class counts,
//! supervised through the trainable `GROUP BY Income / COUNT(*)` query;
//! then repeats with Laplace-noised counts (ε = 0.1) and reports
//! instance-level test error for both against a fully supervised run.
//!
//! Run with: `cargo run --release -p tdp-examples --bin llp_income`

use std::sync::Arc;

use tdp_core::nn::{Adam, Module, Optimizer};
use tdp_core::tensor::{Rng64, Tensor};
use tdp_core::{QueryConfig, Tdp};
use tdp_data::income::{add_label_dp_noise, generate_income, make_bags, NUM_FEATURES};
use tdp_examples::banner;
use tdp_ml::ClassifyIncomesTvf;

fn train_llp(bags: &[tdp_data::income::Bag], epochs: usize, seed: u64) -> ClassifyIncomesTvf {
    let mut rng = Rng64::new(seed);
    let tvf = Arc::new(ClassifyIncomesTvf::new(NUM_FEATURES, &mut rng));
    let tdp = Tdp::new();
    tdp.register_tvf(tvf.clone());
    let query = tdp
        .query_with(
            "SELECT Income, COUNT(*) FROM classify_incomes(Adult_Income_Bag) GROUP BY Income",
            QueryConfig::default().trainable(true),
        )
        .expect("compile");
    let mut opt = Adam::new(query.parameters(), 0.05);
    // Cycle bags for a bounded number of steps: small bags yield thousands
    // of cheap steps per epoch, large bags only a handful, so a step budget
    // equalises optimisation effort across bag sizes.
    let steps = (epochs * bags.len()).clamp(200, 1500);
    for step in 0..steps {
        let bag = &bags[step % bags.len()];
        opt.zero_grad();
        tdp.register_tensor("Adult_Income_Bag", bag.features.clone());
        let counts = query.run_counts().expect("diff run");
        counts.mse_loss(&bag.counts).backward();
        opt.step();
    }
    drop(query);
    drop(tdp); // release the registry's Arc so the TVF can be unwrapped
    Arc::try_unwrap(tvf)
        .ok()
        .expect("sole owner after session drop")
}

fn test_error(tvf: &ClassifyIncomesTvf, data: &tdp_data::income::IncomeDataset) -> f64 {
    let pred = tvf.predict(&data.features);
    let wrong = pred
        .data()
        .iter()
        .zip(data.labels.data())
        .filter(|(p, l)| p != l)
        .count();
    wrong as f64 / data.len() as f64
}

fn main() {
    let mut rng = Rng64::new(31);
    banner("Dataset: census-like income records");
    let full = generate_income(4096, 0.1, &mut rng);
    let (train, test) = full.split(2048);
    println!(
        "{} train / {} test records, {NUM_FEATURES} features",
        train.len(),
        test.len()
    );

    banner("Fully supervised reference (non-LLP)");
    let mut sup_rng = Rng64::new(77);
    let sup = ClassifyIncomesTvf::new(NUM_FEATURES, &mut sup_rng);
    let mut opt = Adam::new(sup.model.parameters(), 0.05);
    use tdp_core::autodiff::Var;
    for _ in 0..60 {
        opt.zero_grad();
        let logits = sup.model.forward(&Var::constant(train.features.clone()));
        let loss = logits.cross_entropy(&train.labels);
        loss.backward();
        opt.step();
    }
    let non_llp = test_error(&sup, &test);
    println!("non-LLP test error: {:.3}", non_llp);

    banner("LLP via the trainable SQL query (Listing 9)");
    println!("bag_size   LLP error   LLP-DP error (eps=0.1)");
    for bag_size in [1usize, 8, 16, 32, 64, 128] {
        let mut bag_rng = Rng64::new(bag_size as u64);
        let bags = make_bags(&train, bag_size, &mut bag_rng);
        let epochs = 3;
        let tvf = train_llp(&bags, epochs, 1000 + bag_size as u64);
        let err = test_error(&tvf, &test);

        let mut noisy = bags.clone();
        add_label_dp_noise(&mut noisy, 0.1, &mut bag_rng);
        let tvf_dp = train_llp(&noisy, epochs, 2000 + bag_size as u64);
        let err_dp = test_error(&tvf_dp, &test);
        println!("{bag_size:>8}   {err:>9.3}   {err_dp:>12.3}");
    }
    println!("\n(small bags ≈ non-LLP error {:.3}; DP error improves as bags grow — paper Fig. 3 middle)", non_llp);
    let _ = Tensor::<f32>::zeros(&[1]); // keep Tensor import exercised
}
