//! SQL over OCRed document images (paper §5.2, Listing 8).
//!
//! Generates document images containing rendered numeric tables, registers
//! them with timestamp metadata, and runs the paper's query: filter one
//! document by timestamp, `extract_table` it inside the query, and average
//! two extracted columns. The lazy TDP pipeline is compared against the
//! bulk-convert-then-load external-database baseline.
//!
//! Run with: `cargo run --release -p tdp-examples --bin ocr_documents`

use std::sync::Arc;

use tdp_baseline::{BaselineDb, BaselineTable, Predicate};
use tdp_core::storage::TableBuilder;
use tdp_core::tensor::Rng64;
use tdp_core::Tdp;
use tdp_data::documents::{generate_documents, DocGeometry};
use tdp_examples::{banner, timed};
use tdp_ml::ExtractTableTvf;

fn main() {
    let mut rng = Rng64::new(7);
    let g = DocGeometry::iris();
    let n_docs = 100;

    banner("Dataset: documents with rendered Iris-style tables");
    let (ds, gen_secs) = timed(|| generate_documents(n_docs, g, &mut rng));
    println!(
        "{} documents of {}x{} px in {:.2}s",
        ds.len(),
        g.height,
        g.width,
        gen_secs
    );

    banner("TDP: register raw images + metadata, extract lazily in-query");
    let tdp = Tdp::new();
    let (_, load_secs) = timed(|| {
        tdp.register_table(
            TableBuilder::new()
                .col_tensor("images", ds.images.clone())
                .col_str("timestamp", &ds.timestamps)
                .build("Document"),
        )
    });
    tdp.register_tvf(Arc::new(ExtractTableTvf::new(g, ds.schema.clone())));

    let target_ts = &ds.timestamps[n_docs / 2];
    let sql = format!(
        "SELECT AVG(SepalLength), AVG(PetalLength) \
         FROM (SELECT extract_table(images) FROM Document WHERE timestamp = '{target_ts}')"
    );
    println!("{sql}");
    // `extract_table` declares its output schema, so the aggregate's
    // inputs slot-resolve through the TVF at compile time:
    let compiled = tdp.query(&sql).unwrap();
    for line in compiled
        .explain()
        .lines()
        .filter(|l| l.contains("TvfProject"))
    {
        println!("  {}", line.trim());
    }
    let (result, query_secs) = timed(|| compiled.run().unwrap());
    println!("{}", result.pretty(3));

    banner("Baseline: bulk-extract all documents, load external DB, query");
    let tvf = ExtractTableTvf::new(g, ds.schema.clone());
    let (_, convert_secs) = timed(|| {
        // Convert EVERY image before anything can be queried.
        let table = tvf.extract_batch(&ds.images);
        let mut db = BaselineDb::new();
        let mut bt = BaselineTable::new();
        for (c, name) in ds.schema.iter().enumerate() {
            let col: Vec<f64> = (0..table.shape()[0])
                .map(|r| table.get(&[r, c]) as f64)
                .collect();
            bt.add_num(name, col);
        }
        let ts: Vec<String> = ds
            .timestamps
            .iter()
            .flat_map(|t| std::iter::repeat_n(t.clone(), g.rows))
            .collect();
        bt.add_str("timestamp", ts);
        db.create("iris", bt);
        db
    });
    // Re-run the query against the pre-built DB (cheap, like DuckDB).
    let tvf2 = ExtractTableTvf::new(g, ds.schema.clone());
    let table = tvf2.extract_batch(&ds.images.narrow(0, n_docs / 2, 1));
    let mut db = BaselineDb::new();
    let mut bt = BaselineTable::new();
    for (c, name) in ds.schema.iter().enumerate() {
        bt.add_num(
            name,
            (0..g.rows).map(|r| table.get(&[r, c]) as f64).collect(),
        );
    }
    bt.add_str("timestamp", vec![target_ts.clone(); g.rows]);
    db.create("one", bt);
    let (avg, baseline_q) = timed(|| {
        db.avg("one", &["SepalLength", "PetalLength"], &Predicate::True)
            .unwrap()
    });

    banner("Comparison (paper Fig. 3 left)");
    println!("TDP      : load {load_secs:.3}s + query(filter+convert one image) {query_secs:.3}s");
    println!("Baseline : bulk conversion of all {n_docs} images {convert_secs:.3}s + query {baseline_q:.6}s");
    println!(
        "TDP end-to-end is {:.0}x faster because only the filtered image is converted",
        convert_secs / query_secs.max(1e-9)
    );
    println!("baseline averages (sanity): {avg:?}");
    println!(
        "ground truth averages       : [{:.4}, {:.4}]",
        ds.tables[n_docs / 2].narrow(1, 0, 1).mean(),
        ds.tables[n_docs / 2].narrow(1, 2, 1).mean()
    );
}
