//! Approximate top-k image search with a vector index.
//!
//! §5.1 of the paper runs top-k image search as plain SQL and notes that
//! Milvus-style approximate indexing is being integrated to accelerate it.
//! This example shows that feature: CLIP-sim embeddings of the attachment
//! corpus are indexed with IVF-Flat, and the same "find the receipts"
//! query runs three ways — full SQL ORDER BY, exact flat index, and the
//! approximate index at several probe depths — reporting latency and
//! recall for each.
//!
//! Run with: `cargo run --release -p tdp-examples --bin vector_index`

use tdp_core::index::{recall_at_k, IvfParams, Metric};
use tdp_core::storage::TableBuilder;
use tdp_core::tensor::{Rng64, Tensor};
use tdp_core::{IndexKind, Tdp};
use tdp_data::attachments::generate_attachments;
use tdp_examples::{banner, timed};
use tdp_ml::clip::image_features;

const K: usize = 10;

fn main() {
    let mut rng = Rng64::new(2023);
    let n = 800;
    banner("embedding the attachment corpus");
    let ds = generate_attachments(n, 24, 36, &mut rng);
    let mut feats = Vec::with_capacity(n * 9);
    let (embeds, embed_secs) = timed(|| {
        for i in 0..n {
            feats.extend_from_slice(image_features(&ds.images.row(i)).data());
        }
        Tensor::from_vec(feats, &[n, 9])
    });
    println!(
        "{n} images -> [{n}, 9] CLIP-sim embeddings in {:.1} ms",
        embed_secs * 1e3
    );

    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("emb", embeds.clone())
            .build("Attachments"),
    );

    banner("building indexes");
    let (_, flat_secs) = timed(|| {
        tdp.create_vector_index("Attachments", "emb", Metric::Cosine, IndexKind::Flat, 7)
            .expect("flat index")
    });
    println!("flat (exact) index: {:.2} ms", flat_secs * 1e3);
    // Query vector: the embedding of one corpus image used as probe.
    let probe = image_features(&ds.images.row(1));
    let exact_hits = tdp
        .vector_topk("Attachments", "emb", &probe, K, 1)
        .expect("exact search");

    let (_, ivf_secs) = timed(|| {
        tdp.create_vector_index(
            "Attachments",
            "emb",
            Metric::Cosine,
            IndexKind::IvfFlat(IvfParams::new(24), 4),
            7,
        )
        .expect("ivf index")
    });
    println!(
        "IVF-Flat index (24 cells, k-means): {:.2} ms",
        ivf_secs * 1e3
    );

    banner(&format!("top-{K} search: exact vs approximate"));
    let (exact_again, exact_secs) = timed(|| {
        tdp.vector_topk("Attachments", "emb", &probe, K, 24)
            .unwrap()
    });
    println!(
        "{:>8} {:>12} {:>10}   first hits",
        "nprobe", "latency us", "recall"
    );
    println!(
        "{:>8} {:>12.1} {:>10.3}   {:?}",
        "all",
        exact_secs * 1e6,
        recall_at_k(&exact_hits, &exact_again),
        &exact_again.iter().map(|h| h.id).take(4).collect::<Vec<_>>()
    );
    for nprobe in [1usize, 2, 4, 8, 16] {
        let (hits, secs) = timed(|| {
            tdp.vector_topk("Attachments", "emb", &probe, K, nprobe)
                .unwrap()
        });
        println!(
            "{:>8} {:>12.1} {:>10.3}   {:?}",
            nprobe,
            secs * 1e6,
            recall_at_k(&exact_hits, &hits),
            &hits.iter().map(|h| h.id).take(4).collect::<Vec<_>>()
        );
    }

    banner("the classes of the nearest neighbours");
    // The probe's nearest neighbours should share its class.
    let classes = &ds.classes;
    let neighbour_classes: Vec<_> = exact_hits
        .iter()
        .map(|h| format!("{:?}", classes[h.id]))
        .collect();
    println!("probe class: {:?}", classes[1]);
    println!("neighbour classes: {neighbour_classes:?}");
    let same = neighbour_classes
        .iter()
        .filter(|c| **c == format!("{:?}", classes[1]))
        .count();
    println!("{same}/{K} neighbours share the probe's class");
}
