//! Shared helpers for the tdp-rs examples (timing and formatting only —
//! each example binary is a self-contained walkthrough of one paper
//! scenario and uses the public `tdp_core` API exclusively).

use std::time::Instant;

/// Run a closure and return (result, elapsed seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
