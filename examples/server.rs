//! A standalone TDP server: one shared engine, many TCP clients.
//!
//! The engine/session split puts everything shareable — catalog, the
//! cross-session plan cache, parallel-safe UDFs, compiled chain
//! kernels — behind an `Arc<TdpEngine>`; the server hands each TCP
//! connection its own session over that engine. Queries sent by any
//! client warm the plan cache for every other client, which `STATS`
//! makes visible (`plan_cache_hits` climbs as clients repeat each
//! other's statements).
//!
//! Run with: `cargo run --release -p tdp_examples --example server`
//! (set `TDP_ADDR` to override `127.0.0.1:5433`, `TDP_MAX_CONCURRENT`
//! to bound concurrent query execution). The process serves until
//! stdin closes or a `quit` line arrives, then drains in-flight
//! queries and exits. Talk to it with the `client` example or netcat:
//!
//! ```text
//! $ printf 'QUERY SELECT item, SUM(qty) FROM demo GROUP BY item\nQUIT\n' | nc 127.0.0.1 5433
//! ```

use std::io::BufRead;
use std::sync::Arc;

use tdp_core::storage::TableBuilder;
use tdp_core::tensor::Rng64;
use tdp_core::TdpEngine;
use tdp_data::attachments::generate_attachments;
use tdp_ml::{ClipSim, ImageTextSimilarityUdf};
use tdp_server::{ServerConfig, TdpServer};

fn boot() -> Arc<TdpEngine> {
    let mut rng = Rng64::new(7);
    let engine = TdpEngine::new();
    engine.register_table(
        TableBuilder::new()
            .col_f32("price", vec![3.0, 1.0, 2.0, 5.0, 4.0, 2.5])
            .col_str("item", &["book", "bag", "bag", "candle", "book", "candle"])
            .col_i64("qty", vec![10, 20, 30, 40, 50, 60])
            .build("demo"),
    );
    let att = generate_attachments(60, 24, 36, &mut rng);
    engine.register_table(
        TableBuilder::new()
            .col_tensor("images", att.images)
            .col_i64("id", (0..60).collect())
            .build("attachments"),
    );
    // Parallel-safe UDFs are engine-shared: every connection's session
    // sees CLIP_SIM without registering it.
    engine.register_udf_shared(Arc::new(ImageTextSimilarityUdf::new(ClipSim::pretrained(
        24, 36, 6, 7,
    ))));
    engine
}

fn main() {
    let addr = std::env::var("TDP_ADDR").unwrap_or_else(|_| "127.0.0.1:5433".to_string());
    let engine = boot();
    let server = match TdpServer::bind(engine, addr.as_str(), ServerConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("tdp server listening on {}", server.local_addr());
    println!("tables: demo, attachments (images + engine-shared CLIP_SIM UDF)");
    println!("verbs: QUERY | PREPARE | BIND | EXPLAIN | PROFILE | STATS | QUIT");
    println!("type 'quit' (or close stdin) to stop\n");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    let stats = server.engine().stats();
    println!(
        "shutting down: {} sessions served, {} queries ({} rejected), plan-cache hit rate {:.2}",
        stats.sessions_total,
        stats.queries_served,
        stats.queries_rejected,
        stats.plan_cache_hit_rate(),
    );
    server.shutdown();
}
