//! A line-protocol client for the TDP server example.
//!
//! Connects to a running server (see the `server` example), forwards
//! each stdin line as one request, and prints the framed response
//! (every reply ends with a lone `.`, which the client strips). Works
//! interactively or scripted:
//!
//! ```text
//! $ cargo run --release -p tdp_examples --example client <<'EOF'
//! PREPARE top SELECT item, SUM(qty) AS total FROM demo WHERE price >= ? GROUP BY item
//! BIND top 2.5
//! BIND top 4
//! STATS
//! QUIT
//! EOF
//! ```
//!
//! Set `TDP_ADDR` to point at a non-default server address.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn main() {
    let addr = std::env::var("TDP_ADDR").unwrap_or_else(|_| "127.0.0.1:5433".to_string());
    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e} (start the `server` example first)");
            std::process::exit(1);
        }
    };
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    eprintln!("connected to {addr} — one request per line, QUIT to leave");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        if writeln!(writer, "{request}")
            .and_then(|_| writer.flush())
            .is_err()
        {
            eprintln!("server closed the connection");
            break;
        }
        // Read one framed response: lines up to the `.` terminator.
        let mut done = false;
        loop {
            let mut reply = String::new();
            match reader.read_line(&mut reply) {
                Ok(0) | Err(_) => {
                    done = true;
                    break;
                }
                Ok(_) => {
                    if reply.trim_end() == "." {
                        break;
                    }
                    print!("{reply}");
                }
            }
        }
        if done || request.eq_ignore_ascii_case("QUIT") {
            break;
        }
    }
}
