//! Quickstart: the paper's Listings 1–3 end to end.
//!
//! Registers a small relational table (the `numbers` table of Listing 1),
//! compiles the aggregate query of Listing 2 for CPU and for the simulated
//! accelerator, executes it (Listing 3), and shows EXPLAIN output plus the
//! encoding metadata the storage layer keeps.
//!
//! Run with: `cargo run --release -p tdp-examples --bin quickstart`

use tdp_core::storage::TableBuilder;
use tdp_core::{Device, ParamValues, QueryConfig, Tdp};
use tdp_examples::{banner, timed};

fn main() {
    let tdp = Tdp::new();

    banner("Listing 1: ingesting data");
    // A little 'numbers' table: digit observations in two size classes.
    let digits = vec![3.0, 3.0, 7.0, 7.0, 7.0, 1.0, 3.0, 1.0];
    let sizes = vec![
        "small", "large", "small", "small", "large", "large", "small", "large",
    ];
    let table = TableBuilder::new()
        .col_f32("Digits", digits)
        .col_str("Sizes", &sizes)
        .build("numbers");
    println!(
        "registering 'numbers' ({} rows) into the session catalog",
        table.rows()
    );
    tdp.register_table(table);
    let stats = tdp.catalog().get("numbers").unwrap().stats();
    println!("stored as encoded tensor columns: {} bytes", stats.bytes);

    banner("Listing 2: query compilation");
    let sql = "SELECT Digits, Sizes, COUNT(*) FROM numbers GROUP BY Digits, Sizes";
    let compiled = tdp.query(sql).expect("compile");
    println!("{sql}");
    println!("--- physical plan ---\n{}", compiled.explain());

    banner("Listing 3: execution");
    let (result, secs) = timed(|| compiled.run().expect("run"));
    println!("{}", result.pretty(10));
    println!("executed in {:.3} ms on cpu", secs * 1e3);

    banner("Device portability: the same SQL compiled for the accelerator");
    let accel = tdp
        .query_with(sql, QueryConfig::default().device(Device::accel()))
        .expect("compile for accelerator");
    let (result2, secs2) = timed(|| accel.run().expect("run"));
    println!(
        "accelerator ({}) produced {} identical groups in {:.3} ms",
        Device::accel(),
        result2.rows(),
        secs2 * 1e3
    );
    assert_eq!(result.rows(), result2.rows());

    banner("Beyond scalars: a column of images in the same engine");
    // A 4-d tensor column: 4 tiny grayscale images as one table column.
    let images = tdp_core::tensor::Tensor::<f32>::ones(&[4, 1, 8, 8]);
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("images", images)
            .col_f32("brightness", vec![0.1, 0.9, 0.5, 0.7])
            .build("gallery"),
    );
    let bright = tdp
        .query("SELECT COUNT(*) FROM gallery WHERE brightness > 0.4")
        .unwrap()
        .run()
        .unwrap();
    println!("{}", bright.pretty(5));

    banner("Prepared statements: compile once, bind per run");
    // The hot-loop shape: one compile, many cheap bindings. The `?` is a
    // parameter slot in the compiled plan; no re-parse, no re-lower.
    let prepared = tdp
        .prepare("SELECT COUNT(*) FROM gallery WHERE brightness > ?")
        .expect("prepare");
    println!("{}", prepared.explain());
    for threshold in [0.2, 0.4, 0.6, 0.8] {
        let out = prepared
            .bind(ParamValues::new().number(threshold))
            .expect("bind")
            .run()
            .expect("run");
        println!(
            "brightness > {threshold}: {} image(s)",
            out.column("COUNT(*)").unwrap().data.decode_i64().at(0)
        );
    }
    let stats = tdp.plan_cache_stats();
    println!(
        "plan cache: {} entr{}, {} hit(s), {} miss(es)",
        stats.entries,
        if stats.entries == 1 { "y" } else { "ies" },
        stats.hits,
        stats.misses
    );
    println!("done.");
}
