//! SQL over audio: the third modality.
//!
//! The paper's opening claim is that the tensor abstraction lets one
//! engine hold "images, videos, audio, text as well as relational" data.
//! This example stores a corpus of waveforms as a 2-d tensor column, then:
//!
//! 1. filters clips with a natural-language criterion
//!    (`audio_text_similarity`, the audio twin of Listing 7),
//! 2. runs a top-k audio search through `ORDER BY … LIMIT` (the fused
//!    TopK operator),
//! 3. renders a result row to a playable WAV file — the Example 2.3
//!    "IPython.display.Audio" analog.
//!
//! Run with: `cargo run --release -p tdp-examples --bin audio_queries`

use std::sync::Arc;

use tdp_core::render;
use tdp_core::storage::TableBuilder;
use tdp_core::tensor::Rng64;
use tdp_core::Tdp;
use tdp_data::audio::{generate_audio, SAMPLE_RATE};
use tdp_examples::{banner, timed};
use tdp_ml::{AudioSim, AudioTextSimilarityUdf};

fn main() {
    let mut rng = Rng64::new(2024);
    let n = 100;

    banner("ingesting an audio corpus");
    let ds = generate_audio(n, &mut rng);
    println!(
        "{n} clips of {} samples at {} Hz stored as one [{}x{}] tensor column",
        ds.clips.shape()[1],
        SAMPLE_RATE,
        n,
        ds.clips.shape()[1]
    );
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("clip", ds.clips.clone())
            .col_i64("id", (0..n as i64).collect())
            .build("Sounds"),
    );
    tdp.register_udf(Arc::new(AudioTextSimilarityUdf::new(AudioSim::pretrained(
        8, 3,
    ))));

    banner("filtering by what the clip sounds like");
    for query in ["chirp", "noise", "clicks", "low tone"] {
        let sql = format!(
            "SELECT COUNT(*) FROM Sounds WHERE audio_text_similarity('{query}', clip) > 0.8"
        );
        let (out, secs) = timed(|| tdp.query(&sql).unwrap().run().unwrap());
        println!(
            "{query:>10}: {} clips ({:.1} ms)",
            out.column("COUNT(*)").unwrap().data.decode_i64().at(0),
            secs * 1e3
        );
    }

    banner("top-3 'siren-like' clips (fused TopK over a UDF score)");
    let q = tdp
        .query(
            "SELECT id, audio_text_similarity('siren', clip) AS score \
             FROM Sounds ORDER BY score DESC LIMIT 3",
        )
        .unwrap();
    println!("{}", q.explain());
    let top = q.run().unwrap();
    for i in 0..top.rows() {
        let id = top.column("id").unwrap().data.decode_i64().at(i);
        let score = top.column("score").unwrap().data.decode_f32().at(i);
        println!(
            "  clip {id:>3}  score {score:.3}  true class {:?}",
            ds.classes[id as usize]
        );
    }

    banner("rendering a result to WAV (Example 2.3's Audio output)");
    let hits = tdp
        .query("SELECT clip FROM Sounds WHERE audio_text_similarity('chirp', clip) > 0.8 LIMIT 1")
        .unwrap()
        .run()
        .unwrap();
    let wav = render::column_row_to_wav(&hits, "clip", 0, SAMPLE_RATE as u32).unwrap();
    let path = std::env::temp_dir().join("tdp_chirp.wav");
    std::fs::write(&path, &wav).unwrap();
    println!("wrote {} bytes to {}", wav.len(), path.display());
}
